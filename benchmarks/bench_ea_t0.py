"""EA-T0 — ablation: how much does the t_0 choice inside the bracket matter?

"Determining the initial period-length t_0 remains an art" (Section 6).  The
bench compares t_0 = bracket lower / mid / upper / 1-D-optimized across the
families, against the ground-truth optimum.  Measured: the bracket endpoints
cost up to tens of percent; mid is decent; the cheap 1-D search closes the
gap entirely — exactly the paper's "manageably narrow search space" story.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table


def test_ea_t0_ablation(benchmark):
    cases = [
        ("uniform L=300", repro.UniformRisk(300.0), 2.0),
        ("poly d=3 L=300", repro.PolynomialRisk(3, 300.0), 2.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 0.5),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0), 1.0),
    ]
    rows = []
    for name, p, c in cases:
        optimal = repro.optimize_schedule(p, c).expected_work
        ratios = {}
        for strategy in ("lower", "mid", "upper", "optimize"):
            try:
                res = repro.guideline_schedule(p, c, t0_strategy=strategy)
                ratios[strategy] = res.expected_work / optimal
            except Exception:
                ratios[strategy] = float("nan")
        rows.append([name, ratios["lower"], ratios["mid"], ratios["upper"],
                     ratios["optimize"]])
    print_table(
        ["case", "E ratio @lo", "E ratio @mid", "E ratio @hi", "E ratio @opt"],
        rows,
        title="EA-T0: sensitivity of expected work to the t0 choice within the bracket",
    )
    for row in rows:
        # 1-D search inside the bracket is essentially optimal...
        assert row[4] > 0.99
        # ...and dominates the blind endpoint choices.
        for j in (1, 2, 3):
            if row[j] == row[j]:  # skip NaN
                assert row[4] >= row[j] - 1e-9
    # Blind lower/mid choices retain most of the work (the bracket is
    # genuinely narrow)...
    finite = [row[j] for row in rows for j in (1, 2) if row[j] == row[j]]
    assert min(finite) > 0.5
    # ...but the coffee-break family's implicit UPPER bound sits near L where
    # p ≈ 0, so t0 = hi collapses there — a measured caveat to Theorem 3.3's
    # usefulness for steeply concave p (recorded in EXPERIMENTS.md).
    by_name = {r[0]: r for r in rows}
    assert by_name["geominc L=30"][3] < 0.1

    benchmark(
        lambda: repro.guideline_schedule(
            repro.UniformRisk(300.0), 2.0, t0_strategy="mid"
        )
    )
