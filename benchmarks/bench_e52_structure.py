"""E52-STRUCT — Theorem 5.2 and Corollaries 5.1-5.3.

On numerically-optimal schedules:

* concave p: period decrements >= c (strict decrease, Corollary 5.1);
* convex p: decrements <= c;
* uniform risk attains equality (tightness);
* period counts respect Corollary 5.3's ceiling, with the uniform optimum
  sitting at (or within one of) the floor version.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.structure import verify_structure


def test_e52_structure_table(benchmark):
    cases = [
        ("uniform L=200", repro.UniformRisk(200.0), 2.0),
        ("uniform L=1000", repro.UniformRisk(1000.0), 2.0),
        ("poly d=2 L=200", repro.PolynomialRisk(2, 200.0), 2.0),
        ("poly d=4 L=200", repro.PolynomialRisk(4, 200.0), 2.0),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0), 1.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 1.0),
    ]
    rows = []
    for name, p, c in cases:
        opt = repro.optimize_schedule(p, c)
        lifespan = p.lifespan if math.isfinite(p.lifespan) else float("nan")
        report = verify_structure(
            opt.schedule,
            c,
            lifespan=p.lifespan if math.isfinite(p.lifespan) else math.inf,
            tol=1e-4,  # NLP output satisfies the laws to solver precision
        )
        floor_bound = (
            int(math.floor(math.sqrt(2 * p.lifespan / c + 0.25) + 0.5))
            if math.isfinite(p.lifespan)
            else -1
        )
        rows.append([
            name,
            opt.num_periods,
            floor_bound,
            report.cor53_bound if math.isfinite(p.lifespan) else -1,
            report.min_decrement,
            report.max_decrement,
            report.concave_law_holds,
            report.convex_law_holds,
        ])
    print_table(
        ["case", "m*", "floor(5.8)", "ceil(5.8)", "min dec", "max dec",
         "dec>=c", "dec<=c"],
        rows,
        title="E52-STRUCT: Theorem 5.2 decrement laws + Corollary 5.3 period counts",
    )
    by_name = {r[0]: r for r in rows}
    # Concave families obey the >= c law.
    for name in ("uniform L=200", "uniform L=1000", "poly d=2 L=200",
                 "poly d=4 L=200", "geominc L=30"):
        assert by_name[name][6], name
    # Convex family obeys <= c.
    assert by_name["geomdec a=1.3"][7]
    # Uniform attains both (equality): tightness of Theorem 5.2.
    assert by_name["uniform L=200"][6] and by_name["uniform L=200"][7]
    # Corollary 5.3: strict ceiling respected; optimum within one of floor.
    for name in ("uniform L=200", "uniform L=1000"):
        m, floor_b, ceil_b = by_name[name][1], by_name[name][2], by_name[name][3]
        assert m < ceil_b
        assert abs(m - floor_b) <= 1

    benchmark(lambda: repro.optimize_schedule(repro.UniformRisk(200.0), 2.0))
