"""EV-MC — validation of eq. (2.1): Monte-Carlo episodes match analytic E.

Simulates hundreds of thousands of draconian episodes per family and checks
the sample-mean banked work lands within the confidence interval of the
analytic expected work — validating both the formula and the simulator's
accounting (a reclaim at exactly T_k kills period k, etc.).
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.simulation import estimate_expected_work, simulate_episodes


def test_ev_montecarlo_table(rng, benchmark, mc_engine):
    cases = [
        ("uniform L=200", repro.UniformRisk(200.0), 2.0),
        ("poly d=3 L=100", repro.PolynomialRisk(3, 100.0), 1.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 0.5),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0), 1.0),
        ("weibull k=1.8", repro.WeibullLife(k=1.8, scale=20.0), 0.5),
    ]
    n = 200_000 if mc_engine == "vectorized" else 50_000
    rows = []
    for name, p, c in cases:
        res = repro.guideline_schedule(p, c, grid=33)
        est = estimate_expected_work(res.schedule, p, c, n=n, rng=rng, engine=mc_engine)
        z = abs(est.mean - res.expected_work) / max(est.stderr, 1e-12)
        rows.append([name, res.expected_work, est.mean, est.stderr, z, z < 4.5])
    print_table(
        ["case", "analytic E", "MC mean", "stderr", "|z|", "consistent"],
        rows,
        title=f"EV-MC: eq.(2.1) vs {n:,} simulated episodes per family "
        f"({mc_engine} engine)",
    )
    for row in rows:
        assert row[5], row

    p = repro.UniformRisk(200.0)
    sched = repro.guideline_schedule(p, 2.0, grid=17).schedule
    bench_n = 100_000 if mc_engine == "vectorized" else 10_000
    benchmark(
        lambda: simulate_episodes(sched, p, 2.0, bench_n, rng, engine=mc_engine).mean_work
    )
