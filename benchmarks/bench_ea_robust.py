"""EA-ROBUST — ablation: approximate knowledge of the life function.

The paper asserts its results "extend easily to situations wherein this
knowledge is approximate, garnered possibly from trace data".  Quantified two
ways:

* systematic bias: the estimated lifespan / half-life off by up to ±50%;
* sampling noise: schedules computed from maximum-likelihood fits of n
  observed absences, n from 5 to 500.

Measured: ±25% parameter error costs under ~5% of optimal expected work, and
a few dozen trace samples already recover ≥ 99%.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.robustness import parameter_error_sweep, sampling_error_sweep
from repro.analysis.tables import print_table
from repro.traces.fitting import fit_geometric_decreasing, fit_uniform


def test_ea_robust_parameter_bias(benchmark):
    sweeps = [
        (
            "uniform L=200 (lifespan bias)",
            repro.UniformRisk(200.0),
            lambda eps: repro.UniformRisk(200.0 * (1 + eps)),
            2.0,
        ),
        (
            "geomdec a=1.2 (rate bias)",
            repro.GeometricDecreasingLifespan(1.2),
            lambda eps: repro.GeometricDecreasingLifespan(1.0 + 0.2 * (1 + eps)),
            0.5,
        ),
        (
            "geominc L=30 (lifespan bias)",
            repro.GeometricIncreasingRisk(30.0),
            lambda eps: repro.GeometricIncreasingRisk(30.0 * (1 + eps)),
            1.0,
        ),
    ]
    errors = (-0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5)
    rows = []
    for name, p_true, make, c in sweeps:
        points = parameter_error_sweep(p_true, make, c, errors=errors)
        rows.append([name] + [pt.ratio for pt in points])
    print_table(
        ["case"] + [f"{e:+.0%}" for e in errors],
        rows,
        title="EA-ROBUST: efficiency retained under systematic parameter error",
    )
    for row in rows:
        ratios = row[1:]
        assert ratios[3] == pytest.approx(1.0, abs=1e-4)   # zero error
        # ±10%: small cost (measured worst case ~7%, on the steeply concave
        # coffee-break family whose t0 hugs the lifespan).
        assert min(ratios[2], ratios[4]) > 0.9
    by_name = {r[0]: r[1:] for r in rows}
    # Uniform and memoryless degrade gracefully even at ±50%.
    assert min(by_name["uniform L=200 (lifespan bias)"]) > 0.6
    assert min(by_name["geomdec a=1.2 (rate bias)"]) > 0.9
    # FINDING: the coffee-break family is brutally asymmetric — its optimal
    # t0 hugs the lifespan, so OVERestimating L by 25%+ pushes the first
    # boundary past the true lifespan and banks NOTHING, while
    # underestimating by 25% still retains ~75%.  Estimate coffee breaks
    # conservatively.
    geominc = by_name["geominc L=30 (lifespan bias)"]
    assert geominc[5] == pytest.approx(0.0, abs=1e-6)  # +25%: total loss
    assert geominc[1] > 0.7                            # -25%: graceful

    p_true = repro.UniformRisk(200.0)
    benchmark(
        lambda: parameter_error_sweep(
            p_true, lambda e: repro.UniformRisk(200.0 * (1 + e)), 2.0,
            errors=(-0.1, 0.1),
        )
    )


def test_ea_robust_sampling(rng, benchmark):
    cases = [
        (
            "geomdec a=1.25, exp-MLE fit",
            repro.GeometricDecreasingLifespan(1.25),
            lambda data: fit_geometric_decreasing(data).life,
            0.5,
        ),
        (
            "uniform L=100, max-fit",
            repro.UniformRisk(100.0),
            lambda data: fit_uniform(data).life,
            2.0,
        ),
    ]
    sizes = (5, 20, 100, 500)
    rows = []
    for name, p_true, fitter, c in cases:
        points = sampling_error_sweep(
            p_true, fitter, c, sample_sizes=sizes, replications=8, rng=rng
        )
        rows.append([name] + [pt.ratio for pt in points])
    print_table(
        ["case"] + [f"n={n}" for n in sizes],
        rows,
        title="EA-ROBUST: efficiency retained when p is fitted from n trace samples",
    )
    for row in rows:
        ratios = row[1:]
        assert ratios[-1] > 0.99       # 500 samples: essentially exact
        assert ratios[1] > 0.9         # 20 samples already respectable
        assert ratios[-1] >= ratios[0] - 0.02

    benchmark(
        lambda: sampling_error_sweep(
            repro.GeometricDecreasingLifespan(1.25),
            lambda data: fit_geometric_decreasing(data).life,
            0.5, sample_sizes=(20,), replications=2, rng=rng,
        )
    )
