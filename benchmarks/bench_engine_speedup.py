"""ENGINE-SPEEDUP — vectorized vs scalar batch engine micro-benchmark.

Times both simulation engines on the same 100k-episode workload (uniform
risk, guideline schedule), verifies they agree bit-for-bit under the shared
seed contract, and records the speedup.  Runs two ways:

* under pytest (``pytest benchmarks/bench_engine_speedup.py -s``) — asserts
  exact parity and a >= 10x vectorized speedup;
* as a script (``python benchmarks/bench_engine_speedup.py [out.json]``) —
  additionally writes a JSON artifact (default
  ``benchmarks/engine_speedup.json``) for CI trend tracking.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.simulation import simulate_episodes
from repro.simulation.testing import assert_exact_parity, differential_schedule_check

N_EPISODES = 100_000
SEED = 19980330


def _time_engine(engine: str, schedule, p, c: float, n: int, repeats: int) -> float:
    """Median wall-clock seconds for one n-episode batch on the engine."""
    times = []
    for rep in range(repeats):
        rng = np.random.default_rng(SEED + rep)
        start = time.perf_counter()
        simulate_episodes(schedule, p, c, n, rng, engine=engine)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def measure(n: int = N_EPISODES, repeats: int = 3) -> dict:
    """Benchmark both engines and return the comparison record."""
    p = repro.UniformRisk(200.0)
    c = 2.0
    schedule = repro.guideline_schedule(p, c, grid=17).schedule
    report = differential_schedule_check(
        schedule, p, c, n=min(n, 20_000), seed=SEED, label="speedup-parity"
    )
    assert_exact_parity(report)
    scalar_s = _time_engine("scalar", schedule, p, c, n, repeats)
    vector_s = _time_engine("vectorized", schedule, p, c, n, repeats)
    return {
        "n_episodes": n,
        "schedule_periods": schedule.num_periods,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "speedup": scalar_s / vector_s,
        "exact_parity": report.exact,
        "episodes_per_second_vectorized": n / vector_s,
        "episodes_per_second_scalar": n / scalar_s,
    }


def test_engine_speedup(rng, benchmark):
    record = measure()
    print(
        f"\nENGINE-SPEEDUP: scalar {record['scalar_seconds'] * 1e3:.1f} ms, "
        f"vectorized {record['vectorized_seconds'] * 1e3:.3f} ms "
        f"-> {record['speedup']:.0f}x at {record['n_episodes']:,} episodes "
        f"(exact parity: {record['exact_parity']})"
    )
    assert record["exact_parity"]
    assert record["speedup"] >= 10.0, record

    p = repro.UniformRisk(200.0)
    sched = repro.guideline_schedule(p, 2.0, grid=17).schedule
    benchmark(lambda: simulate_episodes(sched, p, 2.0, N_EPISODES, rng).mean_work)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "engine_speedup.json",
        help="JSON artifact path (default: benchmarks/engine_speedup.json)",
    )
    parser.add_argument("--n", type=int, default=N_EPISODES,
                        help="episodes per batch (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, median taken (default: %(default)s)")
    args = parser.parse_args(argv)
    record = measure(n=args.n, repeats=args.repeats)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    return 0 if record["speedup"] >= 10.0 and record["exact_parity"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
