"""EA-PROG — ablation: progressive conditional re-planning vs a-priori schedules.

Section 6: the recurrence's progressive nature means "one could use
conditional, rather than absolute, probabilities to determine schedule S
progressively, period by period."  The bench compares, per family:

* the a-priori guideline schedule (plan once);
* the progressive schedule (re-plan after each survived period via the
  conditional life function);
* the exact optimum.

Measured: progressive is exactly optimal for the memoryless family, within a
few percent elsewhere — re-planning is a sound online strategy but not free
of the myopia it inherits from restarting t_0 each period.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.progressive import progressive_schedule


def test_ea_progressive_ablation(benchmark):
    cases = [
        ("uniform L=300", repro.UniformRisk(300.0), 2.0),
        ("poly d=2 L=200", repro.PolynomialRisk(2, 200.0), 2.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 0.8),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0), 1.0),
    ]
    rows = []
    for name, p, c in cases:
        apriori = repro.guideline_schedule(p, c).expected_work
        prog = progressive_schedule(p, c).expected_work(p, c)
        optimal = repro.optimize_schedule(p, c).expected_work
        rows.append([
            name, apriori, prog, optimal, apriori / optimal, prog / optimal,
        ])
    print_table(
        ["case", "E a-priori", "E progressive", "E optimal",
         "a-priori ratio", "progressive ratio"],
        rows,
        title="EA-PROG: plan-once vs conditional re-planning vs optimal",
    )
    by_name = {r[0]: r for r in rows}
    # Memoryless: progressive = optimal (conditioning is a no-op).
    assert by_name["geomdec a=1.3"][5] == pytest.approx(1.0, abs=2e-3)
    # Everywhere: progressive stays within a few percent of optimal.
    for row in rows:
        assert row[5] > 0.9
    # The a-priori guideline (with its t0 search) is never worse than
    # progressive by more than a whisker, and usually better.
    for row in rows:
        assert row[4] >= row[5] - 0.02

    p = repro.UniformRisk(300.0)
    benchmark(lambda: progressive_schedule(p, 2.0, t0_strategy="mid"))
