"""EV-TRACE — the end-to-end NOW story.

Synthetic owner traces → Kaplan-Meier survival → fitted smooth life function
→ guideline schedule → discrete-event task-farm simulation, compared against
practical baselines and the clairvoyant upper bound on identical owner
randomness.  Guideline sizing should beat every honest baseline and close
most of the gap to omniscient.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.baselines import (
    DoublingPolicy,
    FixedChunkPolicy,
    GuidelinePolicy,
    OmniscientPolicy,
    ProgressivePolicy,
    RandomizedDoublingPolicy,
)
from repro.now import Network, OwnerProcess, Workstation, run_farm
from repro.traces import fit_best, life_function_sampler
from repro.workloads import TaskPool, uniform_tasks

N_WS = 4
C = 1.0
HORIZON = 1500.0
TASK = 0.25


def _run(policy_factory, p_true, life_estimate, seed, horizon=HORIZON):
    rng = np.random.default_rng(seed)
    stations = [
        Workstation(i, OwnerProcess.from_life_function(p_true, present_mean=15.0))
        for i in range(N_WS)
    ]
    net = Network(stations, c=C)
    # Enough work that no policy exhausts the pool within the horizon.
    pool = TaskPool.from_durations(uniform_tasks(100_000, TASK))
    estimates = {i: life_estimate for i in range(N_WS)} if life_estimate else None
    return run_farm(net, pool, policy_factory, horizon, rng, life_estimates=estimates)


def test_ev_trace_pipeline(rng, benchmark):
    # Ground truth owner behaviour: half-life absences.
    a_true = 1.08
    p_true = repro.GeometricDecreasingLifespan(a_true)

    # Step 1-3: record a training trace and fit a smooth life function.
    durations = p_true.sample_reclaim_times(rng, 4000)
    fit = fit_best(durations)
    fitted = fit.life

    policies = [
        ("guideline(fitted p)", lambda ws: GuidelinePolicy(), fitted),
        ("progressive(fitted p)", lambda ws: ProgressivePolicy(), fitted),
        ("fixed chunk 5", lambda ws: FixedChunkPolicy(5.0), None),
        ("fixed chunk 20", lambda ws: FixedChunkPolicy(20.0), None),
        ("doubling from 2", lambda ws: DoublingPolicy(2.0), None),
        ("randomized [2]-style", lambda ws: RandomizedDoublingPolicy(
            2.0, np.random.default_rng(99)), None),
        ("omniscient (bound)", lambda ws: OmniscientPolicy(), None),
    ]
    rows = []
    results = {}
    for name, factory, estimate in policies:
        result = _run(factory, p_true, estimate, seed=1234)
        results[name] = result
        rows.append([
            name,
            result.total_work_done,
            result.total_work_lost,
            result.total_overhead,
            result.goodput,
            sum(s.periods_killed for s in result.stats.values()),
        ])
    print_table(
        ["policy", "work done", "work lost", "overhead", "goodput", "kills"],
        rows,
        title=f"EV-TRACE: fitted-trace scheduling on a {N_WS}-workstation farm "
              f"(fit family: {fit.family}, ks={fit.ks:.3f})",
    )
    done = {name: r.total_work_done for name, r in results.items()}
    omni = done["omniscient (bound)"]
    for name in ("fixed chunk 5", "fixed chunk 20", "doubling from 2",
                 "randomized [2]-style"):
        assert done["guideline(fitted p)"] > done[name], name
    assert done["guideline(fitted p)"] <= omni
    assert done["guideline(fitted p)"] / omni > 0.5
    assert results["omniscient (bound)"].total_work_lost == 0.0

    benchmark(
        lambda: _run(lambda ws: GuidelinePolicy(), p_true, fitted, seed=7,
                     horizon=200.0)
    )
