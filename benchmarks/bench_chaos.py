"""E-CHAOS — goodput under injected faults (the chaos fault matrix).

Sweeps every fault class in :data:`repro.analysis.chaos.FAULT_CLASSES`
(workstation crashes, dispatch loss/delay, overhead jitter, result
corruption, life drift, and serving-stack outages) against a fault-rate grid,
running the full resilient stack in every cell: the discrete-event farm with
the seeded fault runtime and the retry path, a PlanServer planning each
episode's schedule through its fallback chain, and a DegradedModePolicy
absorbing planner outages with the Theorem 3.2 closed-form anchor.

Acceptance: under every single-fault class the stack keeps serving valid
schedules (every cell banks positive goodput), the seed-averaged goodput
degrades monotonically in the fault rate, and each cell's fault log digest
is bit-reproducible.

Runs two ways:

* under pytest (``pytest benchmarks/bench_chaos.py -s``) — asserts the
  monotone-degradation and determinism criteria;
* as a script (``python benchmarks/bench_chaos.py [out.json]``) — writes the
  ``BENCH_chaos.json`` artifact for CI trend tracking (default:
  repo-root ``BENCH_chaos.json``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis.chaos import (
    FAULT_CLASSES,
    chaos_matrix,
    report_to_json,
    run_chaos_cell,
)

RATES = (0.0, 0.45, 0.9)
SEEDS = (0, 1, 2)


def measure(quick: bool = False) -> dict:
    """The full chaos matrix plus a determinism re-run of one faulted cell."""
    start = time.perf_counter()
    report = chaos_matrix(rates=RATES, seeds=SEEDS, quick=quick)
    report["elapsed_seconds"] = time.perf_counter() - start

    probe = ("message_loss", 0.45, SEEDS[0])
    first = run_chaos_cell(*probe)
    again = run_chaos_cell(*probe)
    report["determinism"] = {
        "cell": list(probe),
        "digest": first.fault_digest,
        "digests_match": first.fault_digest == again.fault_digest,
        "goodput_match": first.goodput == again.goodput,
    }
    return report


def _print_summary(report: dict) -> None:
    print(f"\nE-CHAOS ({len(report['cells'])} cells, "
          f"{report['elapsed_seconds']:.1f}s; rates {report['rates']}):")
    for fault_class, s in report["summary"].items():
        goodputs = ", ".join(f"{g:.3f}" for g in s["mean_goodput"])
        print(f"  {fault_class:18s} goodput [{goodputs}] "
              f"monotone={s['monotone']} degrades={s['degrades']}")
    d = report["determinism"]
    print(f"  determinism: digests_match={d['digests_match']} "
          f"goodput_match={d['goodput_match']}")


def _check(report: dict) -> list[str]:
    """The acceptance criteria, as a list of violations (empty = pass)."""
    problems = []
    for fault_class in FAULT_CLASSES:
        s = report["summary"][fault_class]
        if not s["monotone"]:
            problems.append(f"{fault_class}: goodput not monotone {s['mean_goodput']}")
        if not s["degrades"]:
            problems.append(f"{fault_class}: no degradation at max rate")
    for cell in report["cells"]:
        if not cell["goodput"] > 0.0:
            problems.append(
                f"{cell['fault_class']}@{cell['rate']} seed {cell['seed']}: "
                f"goodput {cell['goodput']} (stack stopped serving)"
            )
    d = report["determinism"]
    if not (d["digests_match"] and d["goodput_match"]):
        problems.append(f"determinism probe failed: {d}")
    return problems


def test_chaos_matrix_degrades_monotonically():
    report = measure()
    _print_summary(report)
    problems = _check(report)
    assert not problems, "\n".join(problems)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_chaos.json",
        help="JSON artifact path (default: repo-root BENCH_chaos.json)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="short horizon, single seed")
    args = parser.parse_args(argv)
    report = measure(quick=args.quick)
    report_to_json(report, args.out)
    _print_summary(report)
    problems = _check(report)
    for problem in problems:
        print(f"FAIL: {problem}")
    print(f"\nwrote {args.out}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
