"""E32-EXIST — Corollary 3.2: which life functions admit optimal schedules.

The Section 4 families all pass the literal test; the heavy-tailed Pareto
family ``p = (1+t)^{-d}`` (d > 1) shows the non-attainment signature the
paper attributes to it: the best m-period expected work keeps strictly
creeping upward with maximizers drifting to ever-larger spans, and the
normalized tail margin ``1 + (t-c) p'/p`` converges to ``1 - d < 0``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.existence import (
    satisfies_corollary_32,
    supremum_probe,
    tail_admissibility_margin,
)


def test_e32_existence_table(benchmark):
    families = [
        ("uniform L=100", repro.UniformRisk(100.0)),
        ("poly d=3 L=100", repro.PolynomialRisk(3, 100.0)),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3)),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0)),
        ("pareto d=1.5", repro.ParetoLife(1.5)),
        ("pareto d=2.0", repro.ParetoLife(2.0)),
        ("pareto d=3.0", repro.ParetoLife(3.0)),
    ]
    c = 0.5
    rows = []
    for name, p in families:
        literal = satisfies_corollary_32(p, c)
        tail = tail_admissibility_margin(p, c)
        finite = tail[np.isfinite(tail)]
        tail_limit = float(finite[-1])
        # Non-attainment signature: the normalized margin CONVERGES to a
        # finite negative constant (scale-free heavy tail — every horizon
        # looks the same, so no schedule is ever final).  Light tails and
        # finite lifespans instead diverge: there is a definite scale at
        # which the opportunity ends.
        converged = abs(finite[-1] - finite[-2]) < 0.05 * abs(finite[-1])
        signature = bool(converged and tail_limit < 0)
        rows.append([name, literal, tail_limit, signature])
    print_table(
        ["family", "Cor 3.2 literal", "tail margin limit", "non-attainment signature"],
        rows,
        title="E32-EXIST: Corollary 3.2 admissibility — Pareto (d>1) fails in the tail",
    )
    by_name = {r[0]: r for r in rows}
    for name in ("uniform L=100", "poly d=3 L=100", "geomdec a=1.3", "geominc L=30"):
        assert by_name[name][1]
        assert not by_name[name][3]
    for name, d in (("pareto d=1.5", 1.5), ("pareto d=2.0", 2.0), ("pareto d=3.0", 3.0)):
        assert by_name[name][3]
        assert by_name[name][2] == pytest.approx(1.0 - d, rel=0.02)

    benchmark(lambda: satisfies_corollary_32(repro.ParetoLife(2.0), c))


def test_e32_supremum_creep(benchmark):
    """Pareto's per-m supremum strictly increases with drifting maximizers;
    uniform's attains its max at small m and stays put."""
    pareto = supremum_probe(repro.ParetoLife(1.5), 0.5, m_values=[1, 2, 4, 8])
    ms = sorted(pareto)
    rows = [["pareto d=1.5", m, pareto[m][0], pareto[m][1]] for m in ms]
    uniform = supremum_probe(repro.UniformRisk(60.0), 2.0, m_values=[1, 2, 4, 8])
    rows += [["uniform L=60", m, uniform[m][0], uniform[m][1]] for m in sorted(uniform)]
    print_table(
        ["family", "m", "best E over m periods", "maximizer span"],
        rows,
        title="E32-EXIST: supremum probe — creep (Pareto) vs attainment (uniform)",
    )
    values = [pareto[m][0] for m in ms]
    assert all(b > a for a, b in zip(values, values[1:]))

    benchmark(lambda: supremum_probe(repro.ParetoLife(1.5), 0.5, m_values=[1, 2]))
