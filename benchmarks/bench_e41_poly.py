"""E41-POLY — Section 4.1, general degree d.

For ``p_{d,L}(t) = 1 - t^d/L^d``, d = 1..6:

* the explicit bracket ``(c/d)^{1/(d+1)} L^{d/(d+1)} <= t_0 <=
  2 (c/d)^{1/(d+1)} L^{d/(d+1)} + 1`` (eqs. 4.2/4.3 simplified) contains the
  numerically optimal ``t_0``;
* the guideline schedule's expected work is within a fraction of a percent of
  the NLP ground truth.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table

L, C = 300.0, 2.0


def _row(d: int) -> list:
    p = repro.PolynomialRisk(d, L)
    bracket = repro.polynomial_bracket(d, L, C)
    guided = repro.guideline_schedule(p, C)
    optimal = repro.optimize_schedule(p, C)
    return [
        d,
        bracket.lo,
        optimal.t0,
        bracket.hi,
        bracket.contains(optimal.t0, rtol=1e-6),
        guided.schedule.num_periods,
        optimal.num_periods,
        guided.expected_work,
        optimal.expected_work,
        guided.expected_work / optimal.expected_work,
    ]


def test_e41_poly_table(benchmark):
    rows = [_row(d) for d in range(1, 7)]
    print_table(
        ["d", "t0_lo", "t0*", "t0_hi", "in bracket", "m_guide", "m_opt",
         "E_guideline", "E_optimal", "ratio"],
        rows,
        title=f"E41-POLY: p_d,L (L={L}, c={C}) — bracket and efficiency per degree",
    )
    for row in rows:
        assert row[4]            # optimal t0 inside the closed-form bracket
        assert row[9] > 0.995    # guideline within 0.5% of optimal

    # Expected work grows with d: risk arrives later, so more is achievable.
    works = [row[8] for row in rows]
    assert all(b > a for a, b in zip(works, works[1:]))

    benchmark(lambda: repro.guideline_schedule(repro.PolynomialRisk(3, L), C))
