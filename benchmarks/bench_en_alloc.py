"""EN-ALLOC — extension: which workstations should the master steal from?

Rates each station by the renewal-reward steal rate (guideline episode value
over the owner's presence/absence cycle) and validates the ranking against
the discrete-event farm: racing the top-k selection beats racing the
bottom-k on identical randomness.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.baselines import GuidelinePolicy
from repro.now import (
    Network,
    OwnerProcess,
    StationProfile,
    Workstation,
    run_farm,
    select_stations,
    steal_rate,
)
from repro.workloads import TaskPool, uniform_tasks

C = 0.5


def _profiles():
    return [
        StationProfile(0, repro.UniformRisk(40.0), mean_present=10.0),
        StationProfile(1, repro.UniformRisk(40.0), mean_present=60.0),
        StationProfile(2, repro.GeometricDecreasingLifespan(1.05), mean_present=10.0),
        StationProfile(3, repro.GeometricIncreasingRisk(12.0), mean_present=10.0),
        StationProfile(4, repro.UniformRisk(8.0), mean_present=10.0),
        StationProfile(5, repro.UniformRisk(40.0), mean_present=10.0, speed=2.0),
    ]


def _race(profiles, seed=11, horizon=800.0):
    stations = [
        Workstation(p.ws_id, OwnerProcess.from_life_function(
            p.life, present_mean=p.mean_present), speed=p.speed)
        for p in profiles
    ]
    net = Network(stations, c=C)
    pool = TaskPool.from_durations(uniform_tasks(200_000, 0.25))
    return run_farm(net, pool, lambda ws: GuidelinePolicy(), horizon,
                    np.random.default_rng(seed))


def test_en_alloc_table(benchmark):
    profiles = _profiles()
    rows = []
    for prof in profiles:
        rate = steal_rate(prof, C)
        rows.append([
            prof.ws_id,
            type(prof.life).__name__,
            prof.mean_present,
            prof.speed,
            prof.life.expected_lifetime(),
            rate,
        ])
    print_table(
        ["ws", "life family", "mean present", "speed", "mean absent", "steal rate"],
        rows,
        title=f"EN-ALLOC: renewal-reward station rates (c = {C})",
    )
    picked = select_stations(profiles, C, budget=3)
    picked_ids = [p.ws_id for p, _ in picked]
    print(f"\ntop-3 selection: {picked_ids}")

    # The fast doubled-speed station and the often-absent stations win.
    assert 5 in picked_ids
    assert 1 not in picked_ids  # rarely absent
    assert 4 not in picked_ids  # tiny windows

    # Validate with the DES: top-3 farm beats bottom-3 farm.
    by_rate = sorted(profiles, key=lambda p: steal_rate(p, C), reverse=True)
    top = _race(by_rate[:3], seed=11)
    bottom = _race(by_rate[3:], seed=11)
    print(f"farm work: top-3 = {top.total_work_done:.0f}, "
          f"bottom-3 = {bottom.total_work_done:.0f}")
    assert top.total_work_done > 1.5 * bottom.total_work_done

    prof = profiles[0]
    benchmark(lambda: steal_rate(prof, C))
