"""JIT-SPEEDUP — compiled (numba) vs NumPy engine micro-benchmark.

Times the three kernels of :mod:`repro.jitkernels` against the NumPy engines
they shadow — the mixed-lane hetero recurrence, the homogeneous ``t_0``-grid
sweep, and the Monte-Carlo episode gather — verifies structural parity on
each workload, and records the speedups.  Runs two ways:

* under pytest (``pytest benchmarks/bench_jit_speedup.py -s``) — asserts
  parity and a >= 5x jit speedup per workload, **skipping when numba is not
  installed** (the kernels are an optional extra);
* as a script (``python benchmarks/bench_jit_speedup.py [out.json]``) —
  writes a JSON artifact (default ``benchmarks/BENCH_jit.json``).  Without
  numba it records the fallback reason and exits 0, so the nightly job stays
  green on runners without the ``jit`` extra.

The first jit call per workload pays numba compilation (or an on-disk cache
load); it is excluded by warming up before timing, matching how the serving
tier amortizes the cost across a process lifetime.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import jitkernels
from repro.core.batch_recurrence import generate_schedules_batch
from repro.core.hetero_recurrence import generate_schedules_hetero
from repro.simulation.vectorized import (
    simulate_episodes_jit,
    simulate_episodes_vectorized,
)

GRID = 129
LANES = 4096
EPISODES = 200_000
REPEATS = 5
MIN_SPEEDUP = 5.0

FAMILIES = [
    ("uniform", repro.UniformRisk(200.0), 2.0),
    ("poly3", repro.PolynomialRisk(3, 300.0), 2.0),
    ("geomdec", repro.GeometricDecreasingLifespan(1.2), 0.5),
    ("geominc", repro.GeometricIncreasingRisk(30.0), 1.0),
]


def _t0_grid(p, c, n: int) -> np.ndarray:
    """The widened Theorem 3.2/3.3 grid the optimizer itself sweeps."""
    bracket = repro.t0_bracket(p, c)
    lo = max(c * (1 + 1e-9), bracket.lo / 1.5)
    hi = bracket.hi * 1.5
    if np.isfinite(p.lifespan):
        hi = min(hi, p.lifespan * (1 - 1e-12))
    return np.linspace(lo, hi, n)


def _median_time(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _hetero_workload(lanes: int):
    """A mixed-(c, θ, t0) uniform-family batch, the serving tier's hot shape."""
    rng = np.random.default_rng(42)
    params = rng.uniform(80.0, 400.0, lanes)
    cs = rng.uniform(0.5, 3.0, lanes)
    t0s = cs * 1.5 + rng.uniform(0.0, 0.6, lanes) * params
    return cs, params, t0s


def _structural_match(a, b) -> bool:
    """Same period structure + E within accumulated-ULP noise (see kernels)."""
    return bool(
        np.array_equal(a.num_periods, b.num_periods)
        and np.array_equal(a.termination_codes, b.termination_codes)
        and np.array_equal(np.isnan(a.periods), np.isnan(b.periods))
        and np.allclose(a.periods, b.periods, rtol=1e-9, equal_nan=True)
        and np.allclose(a.expected_work, b.expected_work, rtol=1e-9)
    )


def measure(grid: int = GRID, lanes: int = LANES, episodes: int = EPISODES,
            repeats: int = REPEATS) -> dict:
    """Benchmark every workload; only call when :func:`jitkernels.available`."""
    jitkernels.kernels().warmup()  # compile/cache-load outside the timers
    workloads = {}

    # 1. Mixed-lane hetero recurrence (TableServer._polish_batch's engine).
    cs, params, t0s = _hetero_workload(lanes)
    a = generate_schedules_hetero("uniform", cs, params, t0s)
    b = generate_schedules_hetero("uniform", cs, params, t0s, engine="jit")
    numpy_s = _median_time(
        lambda: generate_schedules_hetero("uniform", cs, params, t0s), repeats)
    jit_s = _median_time(
        lambda: generate_schedules_hetero("uniform", cs, params, t0s,
                                          engine="jit"), repeats)
    workloads["hetero"] = {
        "lanes": lanes,
        "numpy_seconds": numpy_s,
        "jit_seconds": jit_s,
        "speedup": numpy_s / jit_s,
        "parity": _structural_match(a, b),
    }

    # 2. Homogeneous t0-grid sweep per family (optimize_t0_via_recurrence).
    for label, p, c in FAMILIES:
        ts = _t0_grid(p, c, grid)
        a = generate_schedules_batch(p, c, ts)
        b = generate_schedules_batch(p, c, ts, engine="jit")
        numpy_s = _median_time(lambda: generate_schedules_batch(p, c, ts),
                               repeats)
        jit_s = _median_time(
            lambda: generate_schedules_batch(p, c, ts, engine="jit"), repeats)
        workloads[f"batch-{label}"] = {
            "grid_points": grid,
            "numpy_seconds": numpy_s,
            "jit_seconds": jit_s,
            "speedup": numpy_s / jit_s,
            "parity": _structural_match(a, b),
        }

    # 3. Monte-Carlo episode gather (shared draws isolate the inner pass).
    p, c = repro.UniformRisk(200.0), 2.0
    schedule = repro.guideline_schedule(p, c).schedule
    reclaim = p.sample_reclaim_times(np.random.default_rng(7), episodes)
    a = simulate_episodes_vectorized(schedule, p, c, episodes,
                                     reclaim_times=reclaim)
    b = simulate_episodes_jit(schedule, p, c, episodes, reclaim_times=reclaim)
    numpy_s = _median_time(
        lambda: simulate_episodes_vectorized(schedule, p, c, episodes,
                                             reclaim_times=reclaim), repeats)
    jit_s = _median_time(
        lambda: simulate_episodes_jit(schedule, p, c, episodes,
                                      reclaim_times=reclaim), repeats)
    workloads["mc-gather"] = {
        "episodes": episodes,
        "numpy_seconds": numpy_s,
        "jit_seconds": jit_s,
        "speedup": numpy_s / jit_s,
        "parity": bool(
            np.array_equal(a.work, b.work)
            and np.array_equal(a.periods_completed, b.periods_completed)
        ),
    }

    return {
        "numba_available": True,
        "workloads": workloads,
        "min_speedup": min(w["speedup"] for w in workloads.values()),
    }


@pytest.mark.skipif(not jitkernels.available(),
                    reason="numba not importable (jit extra not installed)")
def test_jit_speedup():
    record = measure()
    print("\nJIT-SPEEDUP (compiled kernels vs NumPy engines):")
    for label, w in record["workloads"].items():
        print(
            f"  {label:14s} numpy {w['numpy_seconds'] * 1e3:8.2f} ms, "
            f"jit {w['jit_seconds'] * 1e3:7.2f} ms -> {w['speedup']:.1f}x "
            f"(parity: {w['parity']})"
        )
    for label, w in record["workloads"].items():
        assert w["parity"], label
        assert w["speedup"] >= MIN_SPEEDUP, (label, w)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "BENCH_jit.json",
        help="JSON artifact path (default: benchmarks/BENCH_jit.json)",
    )
    parser.add_argument("--grid", type=int, default=GRID,
                        help="t0 grid resolution (default: %(default)s)")
    parser.add_argument("--lanes", type=int, default=LANES,
                        help="hetero workload lanes (default: %(default)s)")
    parser.add_argument("--episodes", type=int, default=EPISODES,
                        help="MC gather episodes (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="timing repeats, median taken (default: %(default)s)")
    args = parser.parse_args(argv)
    if not jitkernels.available():
        record = {
            "numba_available": False,
            "reason": jitkernels.disabled_reason(),
        }
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
        print(f"\nwrote {args.out} (jit unavailable; >=5x gate not armed)")
        return 0
    record = measure(grid=args.grid, lanes=args.lanes, episodes=args.episodes,
                     repeats=args.repeats)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    ok = record["min_speedup"] >= MIN_SPEEDUP and all(
        w["parity"] for w in record["workloads"].values()
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
