"""E43-GEOMINC — Section 4.3: the geometrically increasing risk (coffee break).

For ``p(t) = (2^L - 2^t)/(2^L - 1)``:

* the guideline recurrence ``t_{k+1} = log2((t_k - c) ln 2 + 1)`` (eq. 4.7)
  vs [3]'s ``t_{k+1} = log2(t_k - c + 2)`` — different recurrences, nearly
  identical expected work once t_0 is optimized in each family;
* the optimal ``t_0`` sits at ``L - Θ(log L)`` (the paper's
  ``2^{t_0/2} t_0² <= 2^L <= 2^{t_0} t_0²`` window).
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.analysis.tables import print_table

SWEEP = [(16.0, 0.5), (32.0, 0.5), (32.0, 1.0), (64.0, 1.0), (128.0, 1.0)]


def _row(L: float, c: float) -> list:
    p = repro.GeometricIncreasingRisk(L)
    guided = repro.guideline_schedule(p, c)
    bclr = repro.geometric_increasing_optimal_schedule(L, c)
    nlp = repro.optimize_schedule(p, c)
    window = repro.geometric_increasing_window(L, c)
    return [
        L,
        c,
        window.lo,
        nlp.t0,
        window.hi,
        guided.t0,
        bclr.t0,
        guided.expected_work,
        bclr.expected_work,
        nlp.expected_work,
        guided.expected_work / nlp.expected_work,
    ]


def test_e43_geominc_table(benchmark):
    rows = [_row(L, c) for L, c in SWEEP]
    print_table(
        ["L", "c", "win_lo", "t0_nlp", "win_hi", "t0_guide", "t0_bclr",
         "E_guideline", "E_bclr", "E_nlp", "ratio"],
        rows,
        title="E43-GEOMINC: eq.(4.7) vs [3] recurrence vs NLP; t0 = L - Θ(log L)",
    )
    for row in rows:
        L, c = row[0], row[1]
        t0_nlp, ratio = row[3], row[10]
        # t0* = L - Θ(log L): within a small constant factor of the window.
        assert L - 5 * math.log2(L) < t0_nlp < L
        assert ratio > 0.99
        # Guideline and BCLR families agree closely.
        assert row[7] == pytest.approx(row[8], rel=0.02)

    benchmark(
        lambda: repro.guideline_schedule(repro.GeometricIncreasingRisk(32.0), 1.0)
    )


def test_e43_recurrences_differ_but_converge(benchmark):
    """The two recurrences produce different period sequences from the same
    t0, yet their optimized expected work nearly coincides."""
    import numpy as np

    c = 1.0
    t0 = 20.0
    guideline_next = repro.next_period(repro.GeometricIncreasingRisk(30.0), c, t0, t0)
    bclr_next = math.log2(t0 - c + 2.0)
    assert guideline_next != pytest.approx(bclr_next, rel=1e-3)

    benchmark(lambda: repro.geometric_increasing_optimal_schedule(32.0, 1.0))
