"""SEARCH-SPEEDUP — batch vs scalar recurrence sweep micro-benchmark.

Times the Corollary 3.1 recurrence over a 129-point ``t_0`` grid two ways for
each Section 4 family — one scalar :func:`generate_schedule` walk per grid
point vs one lane-based :func:`generate_schedules_batch` call — verifies
lane-for-lane parity, and records the speedups.  Also times a representative
``run_sweep`` workload serially vs on a process pool (recorded, not
asserted: pool startup dominates on small machines).  Runs two ways:

* under pytest (``pytest benchmarks/bench_search_speedup.py -s``) — asserts
  parity and a >= 5x batch speedup per family;
* as a script (``python benchmarks/bench_search_speedup.py [out.json]``) —
  additionally writes a JSON artifact (default
  ``benchmarks/BENCH_search_speedup.json``) for CI trend tracking.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.batch_recurrence import generate_schedules_batch
from repro.core.recurrence import generate_schedule
from repro.core.testing import assert_recurrence_parity, recurrence_parity_check
from repro.analysis.sweeps import cartesian_sweep, run_sweep

GRID = 129
REPEATS = 5
MIN_SPEEDUP = 5.0

FAMILIES = [
    ("uniform", repro.UniformRisk(200.0), 2.0),
    ("poly3", repro.PolynomialRisk(3, 300.0), 2.0),
    ("geomdec", repro.GeometricDecreasingLifespan(1.2), 0.5),
    ("geominc", repro.GeometricIncreasingRisk(30.0), 1.0),
]


def _t0_grid(p, c, n: int = GRID) -> np.ndarray:
    """The widened Theorem 3.2/3.3 grid the optimizer itself sweeps."""
    bracket = repro.t0_bracket(p, c)
    lo = max(c * (1 + 1e-9), bracket.lo / 1.5)
    hi = bracket.hi * 1.5
    if np.isfinite(p.lifespan):
        hi = min(hi, p.lifespan * (1 - 1e-12))
    return np.linspace(lo, hi, n)


def _median_time(fn, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def _sweep_point(L: float, c: float) -> list:
    """Module-level run_sweep target (picklable for the process pool)."""
    t0, outcome, ew = repro.optimize_t0_via_recurrence(repro.UniformRisk(L), c)
    return [t0, outcome.schedule.num_periods, ew]


def measure(grid: int = GRID, repeats: int = REPEATS) -> dict:
    """Benchmark every family and the sweep harness; return the record."""
    families = {}
    for label, p, c in FAMILIES:
        ts = _t0_grid(p, c, grid)
        report = recurrence_parity_check(p, c, ts, label=f"{label}-speedup")
        assert_recurrence_parity(report)

        def scalar_grid():
            for t0 in ts:
                generate_schedule(p, c, float(t0))

        scalar_s = _median_time(scalar_grid, repeats)
        batch_s = _median_time(lambda: generate_schedules_batch(p, c, ts), repeats)
        families[label] = {
            "grid_points": grid,
            "scalar_seconds": scalar_s,
            "batch_seconds": batch_s,
            "speedup": scalar_s / batch_s,
            "parity": report.match,
        }

    sweep_params = cartesian_sweep(L=[100.0, 200.0, 400.0, 800.0], c=[1.0, 2.0])
    serial_s = _median_time(lambda: run_sweep(sweep_params, _sweep_point), 1)
    start = time.perf_counter()
    parallel_points = run_sweep(sweep_params, _sweep_point, n_jobs=2)
    parallel_s = time.perf_counter() - start
    serial_points = run_sweep(sweep_params, _sweep_point)
    sweep_match = all(
        a.params == b.params and np.allclose(a.row, b.row)
        for a, b in zip(serial_points, parallel_points)
    )
    return {
        "grid_points": grid,
        "families": families,
        "min_family_speedup": min(f["speedup"] for f in families.values()),
        "sweep": {
            "points": len(sweep_params),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "n_jobs": 2,
            "results_match": sweep_match,
        },
    }


def test_search_speedup():
    record = measure()
    print("\nSEARCH-SPEEDUP (129-point t0 grid, batch vs scalar recurrence):")
    for label, f in record["families"].items():
        print(
            f"  {label:8s} scalar {f['scalar_seconds'] * 1e3:7.2f} ms, "
            f"batch {f['batch_seconds'] * 1e3:6.2f} ms -> {f['speedup']:.1f}x "
            f"(parity: {f['parity']})"
        )
    sw = record["sweep"]
    print(
        f"  sweep    serial {sw['serial_seconds'] * 1e3:.0f} ms, "
        f"2-proc {sw['parallel_seconds'] * 1e3:.0f} ms over {sw['points']} points "
        f"(match: {sw['results_match']})"
    )
    assert sw["results_match"]
    for label, f in record["families"].items():
        assert f["parity"], label
        assert f["speedup"] >= MIN_SPEEDUP, (label, f)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "BENCH_search_speedup.json",
        help="JSON artifact path (default: benchmarks/BENCH_search_speedup.json)",
    )
    parser.add_argument("--grid", type=int, default=GRID,
                        help="t0 grid resolution (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="timing repeats, median taken (default: %(default)s)")
    args = parser.parse_args(argv)
    record = measure(grid=args.grid, repeats=args.repeats)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    ok = record["min_family_speedup"] >= MIN_SPEEDUP and all(
        f["parity"] for f in record["families"].values()
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
