"""E-SHARD — multi-worker sharded serving: scaling curve + bit-parity gate.

Drives the 1024-query Zipf acceptance mix through the sharded serving tier
(:class:`repro.core.sharding.ShardedPlanServer`) at 1, 2, 4, and 8 worker
processes, each worker owning its own mmap'd guideline tables, plan cache,
and :class:`PlanServer` fallback chain, and compares every configuration's
plan stream **bit for bit** against the single-process
:meth:`PlanServer.serve_batch` reference — a fast wrong answer is
worthless, and a shard split that changed even one plan's source label
would invalidate the whole decomposition argument.

Acceptance is two-tier because throughput scaling is a property of the
*host*, not the code:

* **parity** (asserted everywhere): every worker count reproduces the
  single-process stream exactly, with zero fallback lanes and zero worker
  failures;
* **scaling** (asserted only where the host can physically deliver it):
  when the runner has >= 4 usable cores, best aggregate throughput must
  reach ``MIN_SCALING`` x the ``workers=1`` run.  On a single-core host
  the curve is flat by physics and only the parity gate applies; the
  emitted record carries ``cpu_count`` so trend dashboards can bucket
  runs by host shape.

Runs two ways:

* under pytest (``pytest benchmarks/bench_shard_scaling.py -s``) —
  asserts parity always, scaling when the host allows;
* as a script (``python benchmarks/bench_shard_scaling.py
  [BENCH_shard.json]``) — writes the JSON artifact for CI trend tracking
  (regenerated nightly).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis.loadgen import run_shard_scaling

QUERIES = 1024
BATCH_SIZE = 256
DISTINCT = 64
SKEW = 1.1
SEED = 0
GRID_POINTS = 9
SEARCH_GRID = 129
WORKERS = (1, 2, 4, 8)
#: Required best-vs-workers=1 throughput ratio on hosts with enough cores.
MIN_SCALING = 4.0
#: Cores needed before the scaling gate is physically meaningful.
MIN_CORES_FOR_SCALING_GATE = 4


def measure(
    queries: int = QUERIES,
    batch_size: int = BATCH_SIZE,
    grid_points: int = GRID_POINTS,
    search_grid: int = SEARCH_GRID,
    workers: tuple[int, ...] = WORKERS,
) -> dict:
    record = run_shard_scaling(
        queries=queries,
        batch_size=batch_size,
        distinct=DISTINCT,
        skew=SKEW,
        seed=SEED,
        grid_points=grid_points,
        search_grid=search_grid,
        workers=workers,
    )
    record["generated_unix"] = time.time()
    return record


def _print_summary(record: dict) -> None:
    cfg = record["config"]
    print(
        f"\nE-SHARD ({cfg['queries']} queries, batch {cfg['batch_size']}, "
        f"{cfg['distinct']} distinct, zipf skew {cfg['skew']:g}, "
        f"{record['cpu_count']} cpu(s)):"
    )
    sp = record["single_process"]
    print(
        f"  single-proc  {sp['throughput_qps']:10.0f} q/s   "
        f"p50 {sp['p50'] * 1e3:7.3f} ms  p95 {sp['p95'] * 1e3:7.3f} ms  "
        f"p99 {sp['p99'] * 1e3:7.3f} ms"
    )
    for entry in record["scaling"]:
        scale = record["scaling_vs_one"][str(entry["workers"])]
        print(
            f"  workers={entry['workers']:<4d} {entry['throughput_qps']:10.0f} q/s   "
            f"p50 {entry['p50'] * 1e3:7.3f} ms  p95 {entry['p95'] * 1e3:7.3f} ms  "
            f"p99 {entry['p99'] * 1e3:7.3f} ms  x{scale:.2f}  "
            f"(parity {'ok' if entry['parity_ok'] else 'FAILED'})"
        )
    print(
        f"  best scaling {record['best_scaling']:.2f}x over workers=1  "
        f"(parity {'ok' if record['parity_ok'] else 'FAILED'})"
    )


def test_shard_scaling_parity_and_throughput():
    record = measure()
    _print_summary(record)
    assert record["parity_ok"], (
        "sharded plan stream differs from the single-process reference: "
        f"{[(e['workers'], e['parity_mismatches']) for e in record['scaling']]}"
    )
    for entry in record["scaling"]:
        assert entry["fallback_lanes"] == 0, entry
        assert entry["worker_failures"] == 0, entry
        assert entry["throughput_qps"] > 0, entry
    cores = record["cpu_count"] or 1
    if cores >= MIN_CORES_FOR_SCALING_GATE:
        assert record["best_scaling"] >= MIN_SCALING, (
            f"best scaling {record['best_scaling']:.2f}x < {MIN_SCALING}x "
            f"on a {cores}-core host"
        )


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent.parent / "BENCH_shard.json",
        help="JSON artifact path (default: repo-root BENCH_shard.json)",
    )
    parser.add_argument("--queries", type=int, default=QUERIES,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE,
                        help="serve_batch chunk size (default: %(default)s)")
    parser.add_argument("--grid-points", type=int, default=GRID_POINTS,
                        help="warmed table resolution (default: %(default)s)")
    parser.add_argument("--search-grid", type=int, default=SEARCH_GRID,
                        help="t0 search resolution while warming (default: %(default)s)")
    parser.add_argument("--workers", type=int, nargs="+", default=list(WORKERS),
                        help="worker counts to sweep (default: %(default)s)")
    args = parser.parse_args(argv)
    record = measure(
        queries=args.queries,
        batch_size=args.batch_size,
        grid_points=args.grid_points,
        search_grid=args.search_grid,
        workers=tuple(args.workers),
    )
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    _print_summary(record)
    print(f"\nwrote {args.out}")
    cores = record["cpu_count"] or 1
    ok = record["parity_ok"]
    if cores >= MIN_CORES_FOR_SCALING_GATE and record["best_scaling"] < MIN_SCALING:
        print(f"FAIL: best scaling {record['best_scaling']:.2f}x < {MIN_SCALING}x")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
