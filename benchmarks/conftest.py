"""Shared benchmark configuration.

Each bench file reproduces one experiment from DESIGN.md's index: it computes
the full comparison table, prints it (visible with ``-s`` or in the captured
output), asserts the paper's qualitative shape, and times a representative
kernel with pytest-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(19980330)  # the IPPS'98 dates
