"""Shared benchmark configuration.

Each bench file reproduces one experiment from DESIGN.md's index: it computes
the full comparison table, prints it (visible with ``-s`` or in the captured
output), asserts the paper's qualitative shape, and times a representative
kernel with pytest-benchmark.

Monte-Carlo benches honour ``--mc-engine {vectorized,scalar}`` (default
``vectorized``) so the same reproduction tables can be regenerated on the
reference engine, e.g.::

    pytest benchmarks/bench_ev_montecarlo.py --mc-engine scalar -s
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--mc-engine",
        default="vectorized",
        choices=["vectorized", "scalar"],
        help="batch simulation engine for Monte-Carlo benches",
    )


@pytest.fixture
def mc_engine(request: pytest.FixtureRequest) -> str:
    """The engine the EV-MC benches run on (identical results either way)."""
    return request.config.getoption("--mc-engine")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(19980330)  # the IPPS'98 dates
