"""BENCH-FLEET — the vectorized multi-host fleet engine at scale.

Measures the :mod:`repro.now.fleet` event core at 100 / 1,000 / 10,000
hosts across the three dispatch policies (centralized sharing, randomized
work stealing, latency-aware stealing), records makespan / goodput /
steal rate / events-per-second per cell, checks the mean-field fixed-point
prediction against each simulation, and — at 1,000 hosts — times the
scalar baseline (a loop of N independent ``run_farm`` calls over the same
per-host shares, schedules, and RNG substreams) to compute the
host-events/sec speedup.  Runs two ways:

* under pytest (``pytest benchmarks/bench_fleet.py -s``) — asserts the
  n = 1 bit-parity gate and a >= ``MIN_SPEEDUP`` (20x) events/sec speedup
  at the gated host count;
* as a script (``python benchmarks/bench_fleet.py [out.json]``) — writes
  the JSON artifact (default ``benchmarks/BENCH_fleet.json``) and exits
  nonzero if parity fails or the speedup gate (armed only when the gated
  row simulates >= 1,000 hosts) misses.

The workload is dyadic (task duration 2^-6) so range-packing is
bit-exact, and the fleet run is timed best-of-2 — the first run pays the
one-time page-faulting of the ~100 MB task arrays, which the scalar
baseline never touches as a single block.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.fleetbench import (
    parity_check,
    run_policy_comparison,
    scalar_baseline,
    fleet_workload,
)
from repro.now.fleet import FleetSpec, plan_fleet_schedules, run_fleet

MIN_SPEEDUP = 20.0
GATE_HOSTS = 1_000
HORIZON = 800.0
SEED = 7

#: (hosts, work_per_host, task_duration) — granularity stays dyadic; the
#: 10k row carries less work per host to bound the global task array.
SCALES = [
    (100, 128.0, 0.015625),
    (1_000, 128.0, 0.015625),
    (10_000, 32.0, 0.0625),
]


def _timed_fleet_events_per_sec(spec, durations, plan) -> dict:
    """Best-of-2 sharing-policy run (rep 1 excludes cold page faults)."""
    best = None
    for _ in range(2):
        start = time.perf_counter()
        result = run_fleet(spec, durations, HORIZON, policy="sharing",
                           plan=plan)
        seconds = time.perf_counter() - start
        if best is None or seconds < best[1]:
            best = (result, seconds)
    result, seconds = best
    return {
        "events": result.events_processed,
        "seconds": seconds,
        "events_per_sec": result.events_processed / seconds,
        "finished": result.finished,
        "makespan": result.completion_time,
    }


def measure(scales=SCALES, gate_hosts: int = GATE_HOSTS) -> dict:
    """Run the full fleet benchmark; returns the artifact record."""
    gate = parity_check(seed=SEED)
    record: dict = {
        "seed": SEED,
        "horizon": HORIZON,
        "parity": gate,
        "scales": [],
        "gate_hosts": gate_hosts,
        "min_speedup_required": MIN_SPEEDUP,
        "speedup": None,
        "gate_armed": False,
    }
    for hosts, work, duration in scales:
        spec = FleetSpec.homogeneous(hosts, family="uniform", seed=SEED)
        plan = plan_fleet_schedules(spec, grid=9)
        durations = fleet_workload(hosts, work, duration)
        cell = run_policy_comparison(spec, durations, HORIZON, plan=plan)
        cell["work_per_host"] = work
        cell["task_duration"] = duration
        if hosts == gate_hosts:
            fleet_timing = _timed_fleet_events_per_sec(spec, durations, plan)
            base = scalar_baseline(spec, durations, HORIZON, plan=plan)
            speedup = fleet_timing["events_per_sec"] / base["events_per_sec"]
            cell["fleet_timing"] = fleet_timing
            cell["scalar_baseline"] = base
            cell["speedup"] = speedup
            record["speedup"] = speedup
            record["gate_armed"] = hosts >= 1_000
        record["scales"].append(cell)
    return record


def _print_summary(record: dict) -> None:
    gate = record["parity"]
    print(f"n=1 parity: {'ok' if gate['ok'] else 'FAILED'} "
          f"({gate['checks']} checks)")
    for line in gate["mismatches"]:
        print(f"  MISMATCH {line}")
    for cell in record["scales"]:
        print(f"\n{cell['hosts']:,} hosts ({cell['tasks']:,} tasks):")
        for name, r in cell["policies"].items():
            err = r["mean_field"]["makespan_rel_error"]
            print(f"  {name:17s} makespan {r['makespan']:8.2f}  "
                  f"goodput {r['goodput']:8.3f}  "
                  f"steal rate {r['steal_rate']:.3f}  "
                  f"{r['events_per_sec']:10,.0f} ev/s  "
                  f"mf err {'-' if err is None else f'{100 * err:.1f}%'}")
        if "speedup" in cell:
            ft, base = cell["fleet_timing"], cell["scalar_baseline"]
            print(f"  fleet {ft['events_per_sec']:,.0f} ev/s vs scalar "
                  f"baseline {base['events_per_sec']:,.0f} ev/s "
                  f"-> {cell['speedup']:.1f}x")


def _gate_ok(record: dict) -> bool:
    if not record["parity"]["ok"]:
        return False
    if record["gate_armed"]:
        return record["speedup"] is not None and record["speedup"] >= MIN_SPEEDUP
    return True


def test_fleet_bench():
    """The pytest face: a scaled-down run that still arms the 20x gate."""
    record = measure(
        scales=[(GATE_HOSTS, 128.0, 0.015625)], gate_hosts=GATE_HOSTS
    )
    _print_summary(record)
    assert record["parity"]["ok"], record["parity"]["mismatches"]
    assert record["gate_armed"]
    assert record["speedup"] >= MIN_SPEEDUP, record["speedup"]


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "BENCH_fleet.json",
        help="JSON artifact path (default: benchmarks/BENCH_fleet.json)",
    )
    parser.add_argument("--max-hosts", type=int, default=None,
                        help="drop scale rows above this host count")
    args = parser.parse_args(argv)
    scales = SCALES
    if args.max_hosts is not None:
        scales = [s for s in SCALES if s[0] <= args.max_hosts]
    start = time.perf_counter()
    record = measure(scales=scales)
    record["bench_seconds"] = time.perf_counter() - start
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    _print_summary(record)
    print(f"\nwrote {args.out} ({record['bench_seconds']:.0f}s)")
    if record["gate_armed"]:
        status = "PASS" if _gate_ok(record) else "FAIL"
        print(f"{status}: speedup {record['speedup']:.1f}x "
              f"(gate >= {MIN_SPEEDUP:g}x at {record['gate_hosts']:,} hosts)")
    else:
        print(f"speedup gate not armed (no row at >= 1,000 hosts)")
    return 0 if _gate_ok(record) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
