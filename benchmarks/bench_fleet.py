"""BENCH-FLEET — the vectorized multi-host fleet engine at scale.

Measures the :mod:`repro.now.fleet` event cores at 100 / 1,000 / 10,000 /
100,000 hosts across the three dispatch policies (centralized sharing,
randomized work stealing, latency-aware stealing), records makespan /
goodput / steal rate / events-per-second per cell, checks the mean-field
fixed-point prediction against each simulation, and arms two gates:

* **scalar gate** (1,000 hosts): the fleet engine must beat a loop of N
  independent ``run_farm`` calls over the same per-host shares, schedules,
  and RNG substreams by >= ``MIN_SPEEDUP`` (20x) host-events/sec;
* **core gate** (10,000 hosts): the batched calendar-queue core must beat
  the scalar binary-heap oracle by >= ``MIN_CORE_SPEEDUP`` (3x) events/sec
  on a churn-stress scenario — short presence cycles and tasks too large
  to ever fit a period budget, so the run is pure owner-churn event
  traffic, the regime where queue mechanics (not shared dispatch
  arithmetic) dominate the wall clock.

Both cores must also pass the bit-parity gates first: n = 1 ≡ ``run_farm``
for each core, and batched ≡ heap across all three policies, clean and
under each of the six fault classes.

Runs two ways:

* under pytest (``pytest benchmarks/bench_fleet.py -s``) — asserts the
  parity gates and the 20x scalar speedup at 1,000 hosts (the 3x core
  gate stays dark: it needs the 10k churn scenario, which is nightly
  territory);
* as a script (``python benchmarks/bench_fleet.py [out.json]``) — writes
  the JSON artifact (default ``benchmarks/BENCH_fleet.json``) and exits
  nonzero if parity fails or an armed gate misses.  ``--max-hosts`` drops
  scale rows *and* disarms any gate whose host count exceeds it.

The workload is dyadic (power-of-two task durations) so range-packing is
bit-exact.  The scalar gate times best-of-2 (the first rep pays the
one-time page-faulting of the large task arrays); the core duel times
median-of-3 (see :func:`core_speedup_duel` for why min-of-N is wrong
there).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.fleetbench import (
    cross_core_check,
    parity_check,
    run_policy_comparison,
    scalar_baseline,
    fleet_workload,
)
from repro.now.fleet import FleetSpec, plan_fleet_schedules, run_fleet

MIN_SPEEDUP = 20.0
GATE_HOSTS = 1_000
SEED = 7

#: Batched-vs-heap events/sec gate: armed only when the run reaches the
#: churn-stress host count (queue mechanics need scale to dominate).
MIN_CORE_SPEEDUP = 3.0
CORE_GATE_HOSTS = 10_000
CORE_GATE_HORIZON = 192.0
#: Fine buckets keep per-bucket cohorts near-singleton on this workload.
CORE_GATE_BUCKET_WIDTH = CORE_GATE_HORIZON / 4096.0

#: (hosts, work_per_host, task_duration, horizon) — granularity stays
#: dyadic; bigger rows carry less work per host to bound the global task
#: array, and the 100k row gets a tighter horizon so the batched core's
#: owner-timeline precompute (which scales with horizon, not makespan)
#: stays proportionate.
SCALES = [
    (100, 128.0, 0.015625, 800.0),
    (1_000, 128.0, 0.015625, 800.0),
    (10_000, 32.0, 0.0625, 800.0),
    (100_000, 8.0, 0.125, 200.0),
]


def _timed_fleet_events_per_sec(spec, durations, plan, horizon) -> dict:
    """Best-of-2 sharing-policy run (rep 1 excludes cold page faults)."""
    best = None
    for _ in range(2):
        start = time.perf_counter()
        result = run_fleet(spec, durations, horizon, policy="sharing",
                           plan=plan)
        seconds = time.perf_counter() - start
        if best is None or seconds < best[1]:
            best = (result, seconds)
    result, seconds = best
    return {
        "events": result.events_processed,
        "seconds": seconds,
        "events_per_sec": result.events_processed / seconds,
        "finished": result.finished,
        "makespan": result.completion_time,
    }


def core_speedup_duel(hosts: int = CORE_GATE_HOSTS, reps: int = 3) -> dict:
    """Time batched vs heap on the churn-stress scenario, median-of-reps.

    Every task is far larger than any period budget (so zero commits) and
    presence cycles are short, leaving nothing but owner churn + failed
    dispatch — the event-queue stress regime the core gate is meant to
    protect.  Reps interleave the two cores and the gate compares
    *medians*: the heap's big live tuple population makes its wall clock
    GC-noisy (±10%), and a min-of-N would let one lucky heap rep mask a
    real batched-core regression.
    """
    spec = FleetSpec.homogeneous(hosts, family="uniform", param=1.0,
                                 c=0.05, present_mean=0.5, seed=SEED)
    plan = plan_fleet_schedules(spec, grid=9)
    durations = np.full(hosts, 50.0)
    out: dict = {
        "hosts": hosts,
        "horizon": CORE_GATE_HORIZON,
        "bucket_width": CORE_GATE_BUCKET_WIDTH,
        "reps": reps,
        "cores": {},
    }
    timings: dict = {"heap": [], "batched": []}
    events: dict = {}
    for _ in range(reps):
        for core in ("heap", "batched"):
            start = time.perf_counter()
            result = run_fleet(
                spec, durations, CORE_GATE_HORIZON, policy="sharing",
                plan=plan, core=core,
                bucket_width=(CORE_GATE_BUCKET_WIDTH
                              if core == "batched" else None),
            )
            timings[core].append(time.perf_counter() - start)
            events[core] = result.events_processed
    for core in ("heap", "batched"):
        seconds = float(np.median(timings[core]))
        out["cores"][core] = {
            "events": events[core],
            "seconds": seconds,
            "seconds_all": timings[core],
            "events_per_sec": events[core] / seconds,
        }
    out["speedup"] = (out["cores"]["batched"]["events_per_sec"]
                      / out["cores"]["heap"]["events_per_sec"])
    return out


def measure(scales=SCALES, gate_hosts: int = GATE_HOSTS,
            core_gate_hosts: int = CORE_GATE_HOSTS) -> dict:
    """Run the full fleet benchmark; returns the artifact record."""
    parity = {core: parity_check(seed=SEED, core=core)
              for core in ("batched", "heap")}
    cross_core = cross_core_check(seed=SEED)
    max_hosts = max((s[0] for s in scales), default=0)
    record: dict = {
        "seed": SEED,
        "parity": parity["batched"],
        "parity_heap": parity["heap"],
        "cross_core": cross_core,
        "scales": [],
        "gate_hosts": gate_hosts,
        "min_speedup_required": MIN_SPEEDUP,
        "speedup": None,
        "gate_armed": False,
        "core_gate_hosts": core_gate_hosts,
        "min_core_speedup_required": MIN_CORE_SPEEDUP,
        "core_speedup": None,
        "core_gate_armed": False,
        "core_gate": None,
    }
    for hosts, work, duration, horizon in scales:
        spec = FleetSpec.homogeneous(hosts, family="uniform", seed=SEED)
        plan = plan_fleet_schedules(spec, grid=9)
        durations = fleet_workload(hosts, work, duration)
        cell = run_policy_comparison(spec, durations, horizon, plan=plan)
        cell["work_per_host"] = work
        cell["task_duration"] = duration
        if hosts == gate_hosts:
            fleet_timing = _timed_fleet_events_per_sec(spec, durations, plan,
                                                       horizon)
            base = scalar_baseline(spec, durations, horizon, plan=plan)
            speedup = fleet_timing["events_per_sec"] / base["events_per_sec"]
            cell["fleet_timing"] = fleet_timing
            cell["scalar_baseline"] = base
            cell["speedup"] = speedup
            record["speedup"] = speedup
            record["gate_armed"] = hosts >= 1_000
        record["scales"].append(cell)
    if max_hosts >= core_gate_hosts:
        duel = core_speedup_duel(core_gate_hosts)
        record["core_gate"] = duel
        record["core_speedup"] = duel["speedup"]
        record["core_gate_armed"] = core_gate_hosts >= 10_000
    return record


def _print_summary(record: dict) -> None:
    for label, key in (("batched", "parity"), ("heap", "parity_heap")):
        gate = record[key]
        print(f"n=1 parity [{label:>7}]: {'ok' if gate['ok'] else 'FAILED'} "
              f"({gate['checks']} checks)")
        for line in gate["mismatches"]:
            print(f"  MISMATCH {line}")
    cross = record["cross_core"]
    print(f"cross-core parity  : {'ok' if cross['ok'] else 'FAILED'} "
          f"({cross['checks']} checks)")
    for line in cross["mismatches"]:
        print(f"  MISMATCH {line}")
    for cell in record["scales"]:
        print(f"\n{cell['hosts']:,} hosts ({cell['tasks']:,} tasks, "
              f"horizon {cell['horizon']:g}):")
        for name, r in cell["policies"].items():
            err = r["mean_field"]["makespan_rel_error"]
            print(f"  {name:17s} makespan {r['makespan']:8.2f}  "
                  f"goodput {r['goodput']:8.3f}  "
                  f"steal rate {r['steal_rate']:.3f}  "
                  f"{r['events_per_sec']:10,.0f} ev/s  "
                  f"mf err {'-' if err is None else f'{100 * err:.1f}%'}")
        if "speedup" in cell:
            ft, base = cell["fleet_timing"], cell["scalar_baseline"]
            print(f"  fleet {ft['events_per_sec']:,.0f} ev/s vs scalar "
                  f"baseline {base['events_per_sec']:,.0f} ev/s "
                  f"-> {cell['speedup']:.1f}x")
    duel = record["core_gate"]
    if duel is not None:
        h, b = duel["cores"]["heap"], duel["cores"]["batched"]
        print(f"\ncore duel ({duel['hosts']:,} hosts, churn stress): "
              f"batched {b['events_per_sec']:,.0f} ev/s vs heap "
              f"{h['events_per_sec']:,.0f} ev/s -> {duel['speedup']:.2f}x")


def _gate_ok(record: dict) -> bool:
    if not (record["parity"]["ok"] and record["parity_heap"]["ok"]
            and record["cross_core"]["ok"]):
        return False
    if record["gate_armed"]:
        if record["speedup"] is None or record["speedup"] < MIN_SPEEDUP:
            return False
    if record["core_gate_armed"]:
        if (record["core_speedup"] is None
                or record["core_speedup"] < MIN_CORE_SPEEDUP):
            return False
    return True


def test_fleet_bench():
    """The pytest face: a scaled-down run that still arms the 20x gate."""
    record = measure(
        scales=[(GATE_HOSTS, 128.0, 0.015625, 800.0)], gate_hosts=GATE_HOSTS
    )
    _print_summary(record)
    assert record["parity"]["ok"], record["parity"]["mismatches"]
    assert record["parity_heap"]["ok"], record["parity_heap"]["mismatches"]
    assert record["cross_core"]["ok"], record["cross_core"]["mismatches"]
    assert record["gate_armed"]
    assert not record["core_gate_armed"]
    assert record["speedup"] >= MIN_SPEEDUP, record["speedup"]


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "BENCH_fleet.json",
        help="JSON artifact path (default: benchmarks/BENCH_fleet.json)",
    )
    parser.add_argument("--max-hosts", type=int, default=None,
                        help="drop scale rows above this host count "
                             "(also disarms out-of-range gates)")
    args = parser.parse_args(argv)
    scales = SCALES
    if args.max_hosts is not None:
        scales = [s for s in SCALES if s[0] <= args.max_hosts]
    start = time.perf_counter()
    record = measure(scales=scales)
    record["bench_seconds"] = time.perf_counter() - start
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    _print_summary(record)
    print(f"\nwrote {args.out} ({record['bench_seconds']:.0f}s)")
    if record["gate_armed"]:
        status = "PASS" if (record["speedup"] is not None
                            and record["speedup"] >= MIN_SPEEDUP) else "FAIL"
        print(f"{status}: scalar speedup {record['speedup']:.1f}x "
              f"(gate >= {MIN_SPEEDUP:g}x at {record['gate_hosts']:,} hosts)")
    else:
        print("scalar speedup gate not armed (no row at >= 1,000 hosts)")
    if record["core_gate_armed"]:
        status = ("PASS" if (record["core_speedup"] is not None
                             and record["core_speedup"] >= MIN_CORE_SPEEDUP)
                  else "FAIL")
        print(f"{status}: core speedup {record['core_speedup']:.2f}x "
              f"(gate >= {MIN_CORE_SPEEDUP:g}x at "
              f"{record['core_gate_hosts']:,} hosts)")
    else:
        print("core speedup gate not armed "
              f"(no row at >= {CORE_GATE_HOSTS:,} hosts)")
    return 0 if _gate_ok(record) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
