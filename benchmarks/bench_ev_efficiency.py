"""EV-EFF — the headline claim: guideline schedules are nearly optimal.

Sweeps every Section 4 family over overheads and horizon scales, reporting
E(guideline)/E(optimal) and whether the numerically-optimal t_0 falls in the
Theorem 3.2/3.3 bracket.  The paper promises "nearly optimal" with a
"factor-of-2" t_0 bracket; measured: ratios ≥ 0.99 across the sweep and the
bracket contains the optimum everywhere.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.efficiency import efficiency_report
from repro.analysis.tables import print_table


def _cases():
    for L in (50.0, 200.0, 800.0):
        for c in (0.5, 2.0, 8.0):
            if c * 10 < L:
                yield (f"uniform L={L:g} c={c:g}", repro.UniformRisk(L), c)
    for d in (2, 4):
        yield (f"poly d={d} L=200 c=2", repro.PolynomialRisk(d, 200.0), 2.0)
    for a in (1.1, 1.5):
        for c in (0.5, 1.0):
            yield (f"geomdec a={a} c={c}", repro.GeometricDecreasingLifespan(a), c)
    for L in (20.0, 60.0):
        yield (f"geominc L={L:g} c=1", repro.GeometricIncreasingRisk(L), 1.0)


def test_ev_efficiency_sweep(benchmark):
    rows = []
    for name, p, c in _cases():
        report = efficiency_report(p, c)
        rows.append([
            name,
            report.guideline.t0,
            report.optimal.t0,
            report.t0_in_bracket,
            report.bracket_ratio,
            report.guideline.expected_work,
            report.optimal.expected_work,
            report.ratio,
        ])
    print_table(
        ["case", "t0_guide", "t0_opt", "t0* in bracket", "bracket hi/lo",
         "E_guideline", "E_optimal", "ratio"],
        rows,
        title="EV-EFF: guideline vs ground-truth optimal across the Section 4 families",
    )
    worst = min(row[7] for row in rows)
    in_bracket = sum(1 for row in rows if row[3])
    print(f"\nworst ratio: {worst:.5f}; optimal t0 in bracket: {in_bracket}/{len(rows)}")
    assert worst > 0.99
    assert in_bracket == len(rows)
    # The paper's factor-of-2-ish bracket (allow slack for the +c/2 terms).
    assert max(row[4] for row in rows) < 4.0

    benchmark(lambda: efficiency_report(repro.UniformRisk(200.0), 2.0).ratio)
