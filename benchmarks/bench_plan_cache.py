"""PLAN-CACHE — warm vs cold schedule serving micro-benchmark.

Measures the two tiers the plan cache adds on top of the optimizers:

* **cache tier** — for each Section 4 family, times a cold
  :func:`optimize_schedule` call against repeated cache-served calls (same
  fingerprint, same ``(c, tolerance)`` key) and records the warm/cold
  speedup.  The served result must be bit-identical to the cold one.
* **table tier** — precomputes the per-family ``(c, parameter)`` guideline
  tables once, then serves a held-out off-grid query set via interpolation +
  polish and checks every answer against the full ``t_0`` optimizer
  (acceptance: relative expected-work error <= 1e-6).

Runs two ways:

* under pytest (``pytest benchmarks/bench_plan_cache.py -s``) — asserts a
  >= 50x warm speedup per family, bit-identical warm results, and the 1e-6
  off-grid accuracy bound;
* as a script (``python benchmarks/bench_plan_cache.py [out.json]``) —
  additionally writes a JSON artifact (default
  ``benchmarks/BENCH_plan_cache.json``) for CI trend tracking.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.analysis.tables_precompute import (
    TABLE_FAMILIES,
    TableServer,
    default_grids,
    make_family_life,
)
from repro.core.optimizer import optimize_t0_via_recurrence
from repro.core.plancache import PlanCache

WARM_REPEATS = 50
MIN_WARM_SPEEDUP = 50.0
MAX_TABLE_REL_ERROR = 1e-6
TABLE_GRID_POINTS = 9
HELDOUT_PER_FAMILY = 8

FAMILIES = [
    ("uniform", repro.UniformRisk(200.0), 2.0),
    ("poly3", repro.PolynomialRisk(3, 300.0), 2.0),
    ("geomdec", repro.GeometricDecreasingLifespan(1.2), 0.5),
    ("geominc", repro.GeometricIncreasingRisk(30.0), 1.0),
]


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def measure_cache(warm_repeats: int = WARM_REPEATS) -> dict:
    """Cold vs cache-served :func:`optimize_schedule` per family."""
    families = {}
    for label, p, c in FAMILIES:
        cold_start = time.perf_counter()
        cold = repro.optimize_schedule(p, c)
        cold_s = time.perf_counter() - cold_start

        cache = PlanCache()
        first = repro.optimize_schedule(p, c, cache=cache)
        warm_s = _median_time(
            lambda: repro.optimize_schedule(p, c, cache=cache), warm_repeats
        )
        warm = repro.optimize_schedule(p, c, cache=cache)
        identical = (
            np.array_equal(first.schedule.periods, warm.schedule.periods)
            and first.expected_work == warm.expected_work
            and np.array_equal(cold.schedule.periods, warm.schedule.periods)
            and cold.expected_work == warm.expected_work
        )
        families[label] = {
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s,
            "bit_identical": bool(identical),
            "cache_hits": cache.stats.hits,
        }
    return families


def measure_tables(
    grid_points: int = TABLE_GRID_POINTS, heldout: int = HELDOUT_PER_FAMILY
) -> dict:
    """Precompute tables, then check a held-out off-grid set vs the optimizer."""
    server = TableServer()
    grids = {
        fam: tuple(np.geomspace(g[0], g[-1], grid_points) for g in default_grids(fam))
        for fam in TABLE_FAMILIES
    }
    warm_start = time.perf_counter()
    server.warm(grids=grids)
    warm_seconds = time.perf_counter() - warm_start

    rng = np.random.default_rng(2024)
    families = {}
    for fam in sorted(TABLE_FAMILIES):
        c_grid, param_grid = grids[fam]
        worst_rel = 0.0
        table_s = optimizer_s = 0.0
        served = 0
        for _ in range(heldout):
            # Off-grid interior points (log-uniform, away from the edges).
            c = float(np.exp(rng.uniform(np.log(c_grid[0] * 1.05),
                                         np.log(c_grid[-1] * 0.95))))
            v = float(np.exp(rng.uniform(np.log(param_grid[0] * 1.02),
                                         np.log(param_grid[-1] * 0.98))))
            start = time.perf_counter()
            answer = server.query(fam, c, v)
            table_s += time.perf_counter() - start
            p = make_family_life(fam, v, dict(TABLE_FAMILIES[fam][1]))
            start = time.perf_counter()
            _, _, ew = optimize_t0_via_recurrence(p, c)
            optimizer_s += time.perf_counter() - start
            worst_rel = max(worst_rel, abs(answer.expected_work - ew) / abs(ew))
            served += answer.source == "table"
        families[fam] = {
            "heldout_points": heldout,
            "served_from_table": served,
            "worst_rel_error": worst_rel,
            "table_seconds": table_s,
            "optimizer_seconds": optimizer_s,
        }
    return {
        "grid_points": grid_points,
        "warm_seconds": warm_seconds,
        "families": families,
        "worst_rel_error": max(f["worst_rel_error"] for f in families.values()),
    }


def measure(warm_repeats: int = WARM_REPEATS,
            grid_points: int = TABLE_GRID_POINTS) -> dict:
    cache = measure_cache(warm_repeats)
    tables = measure_tables(grid_points)
    return {
        "cache": cache,
        "min_warm_speedup": min(f["speedup"] for f in cache.values()),
        "tables": tables,
    }


def test_plan_cache_speedup_and_accuracy():
    record = measure()
    print("\nPLAN-CACHE (cold optimize_schedule vs cache-served):")
    for label, f in record["cache"].items():
        print(
            f"  {label:8s} cold {f['cold_seconds'] * 1e3:8.2f} ms, "
            f"warm {f['warm_seconds'] * 1e6:7.1f} us -> {f['speedup']:8.0f}x "
            f"(identical: {f['bit_identical']})"
        )
    t = record["tables"]
    print(f"  tables warmed in {t['warm_seconds']:.2f}s "
          f"({t['grid_points']}x{t['grid_points']} per family)")
    for fam, f in t["families"].items():
        print(
            f"  {fam:8s} table {f['table_seconds'] * 1e3:6.1f} ms vs optimizer "
            f"{f['optimizer_seconds'] * 1e3:6.1f} ms over {f['heldout_points']} "
            f"held-out points, worst rel E error {f['worst_rel_error']:.2e}"
        )
    for label, f in record["cache"].items():
        assert f["bit_identical"], label
        assert f["speedup"] >= MIN_WARM_SPEEDUP, (label, f)
    for fam, f in t["families"].items():
        assert f["served_from_table"] == f["heldout_points"], (fam, f)
        assert f["worst_rel_error"] <= MAX_TABLE_REL_ERROR, (fam, f)


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent / "BENCH_plan_cache.json",
        help="JSON artifact path (default: benchmarks/BENCH_plan_cache.json)",
    )
    parser.add_argument("--warm-repeats", type=int, default=WARM_REPEATS,
                        help="warm-path timing repeats (default: %(default)s)")
    parser.add_argument("--grid-points", type=int, default=TABLE_GRID_POINTS,
                        help="table grid resolution (default: %(default)s)")
    args = parser.parse_args(argv)
    record = measure(warm_repeats=args.warm_repeats, grid_points=args.grid_points)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {args.out}")
    ok = (
        record["min_warm_speedup"] >= MIN_WARM_SPEEDUP
        and all(f["bit_identical"] for f in record["cache"].values())
        and record["tables"]["worst_rel_error"] <= MAX_TABLE_REL_ERROR
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
