"""E42-GEOMDEC — Section 4.2: the geometrically decreasing lifespan.

For ``p_a(t) = a^{-t}``:

* the bracket ``sqrt(c²/4 + c/ln a) + c/2 <= t_0 <= c + 1/ln a`` contains the
  transcendental optimum ``t_0 + a^{-t_0}/ln a = c + 1/ln a``, and the upper
  bound is close ("Note how close our guidelines' upper bound is to the
  optimal value");
* the guideline pipeline (recurrence + t_0 search) recovers [3]'s equal-period
  optimum and its closed-form expected work.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.analysis.tables import print_table

SWEEP = [(1.1, 0.5), (1.1, 1.0), (1.5, 0.5), (1.5, 1.0), (2.0, 0.5), (2.0, 1.0)]


def _row(a: float, c: float) -> list:
    p = repro.GeometricDecreasingLifespan(a)
    bracket = repro.geometric_decreasing_bracket(a, c)
    t_star = repro.geometric_decreasing_optimal_period(a, c)
    e_star = repro.geometric_decreasing_optimal_work(a, c)
    guided = repro.guideline_schedule(p, c)
    return [
        a,
        c,
        bracket.lo,
        t_star,
        bracket.hi,
        (bracket.hi - t_star) / t_star,
        guided.t0,
        guided.expected_work,
        e_star,
        guided.expected_work / e_star,
    ]


def test_e42_geomdec_table(benchmark):
    rows = [_row(a, c) for a, c in SWEEP]
    print_table(
        ["a", "c", "t0_lo", "t0*", "t0_hi", "hi gap", "t0_guide",
         "E_guideline", "E_opt(closed)", "ratio"],
        rows,
        title="E42-GEOMDEC: bracket vs transcendental optimum; guideline vs closed-form E",
    )
    for row in rows:
        a, c, lo, t_star, hi, gap, t0_g, _, _, ratio = row
        assert lo <= t_star * (1 + 1e-9) and t_star <= hi * (1 + 1e-9)
        assert ratio == pytest.approx(1.0, abs=2e-3)
        assert t0_g == pytest.approx(t_star, rel=1e-3)
    # Upper-bound tightness improves with c·ln a.
    gaps = {(a, c): row[5] for (a, c), row in zip(SWEEP, rows)}
    assert gaps[(2.0, 1.0)] < gaps[(1.1, 0.5)]

    benchmark(
        lambda: repro.guideline_schedule(repro.GeometricDecreasingLifespan(1.5), 1.0)
    )


def test_e42_equal_period_structure(benchmark):
    """[3]: all optimal periods equal; conditional risk is time-invariant."""
    a, c = 1.4, 0.8
    res = repro.geometric_decreasing_optimal_schedule(a, c)
    import numpy as np

    assert np.allclose(res.schedule.periods, res.t0, rtol=1e-9)
    benchmark(lambda: repro.geometric_decreasing_optimal_schedule(a, c))
