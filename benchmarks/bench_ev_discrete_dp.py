"""EV-DISC-DP — Section 6's discrete-analogue question, answered exactly.

Compares three levels on whole-task grids:

1. the continuous optimum (NLP) — an upper bound no discrete schedule meets;
2. the *exact discrete optimum* (dynamic programming over whole-task
   schedules);
3. the floor-quantized continuous guideline (the cheap recipe).

Measured: the quantized guideline tracks the DP optimum within ~1% even at
coarse granularity — the continuous guidelines do "yield valuable discrete
analogues".
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.discrete_opt import solve_discrete_optimal
from repro.simulation import discretize_schedule


def test_ev_discrete_dp_table(benchmark):
    cases = [
        ("uniform L=120 c=2", repro.UniformRisk(120.0), 2.0),
        ("poly d=2 L=120 c=2", repro.PolynomialRisk(2, 120.0), 2.0),
        ("geominc L=24 c=1", repro.GeometricIncreasingRisk(24.0), 1.0),
    ]
    taus = [4.0, 2.0, 1.0, 0.5]
    rows = []
    for name, p, c in cases:
        continuous = repro.optimize_schedule(p, c).expected_work
        guided = repro.guideline_schedule(p, c).schedule
        for tau in taus:
            dp = solve_discrete_optimal(p, c, tau)
            quant = discretize_schedule(guided, c, tau).expected_work(p, c)
            rows.append([
                name, tau, continuous, dp.expected_work, quant,
                quant / dp.expected_work,
                dp.expected_work / continuous,
            ])
    print_table(
        ["case", "tau", "E continuous*", "E discrete* (DP)", "E quantized guideline",
         "guide/DP", "DP/continuous"],
        rows,
        title="EV-DISC-DP: exact whole-task optimum vs quantized continuous guideline",
    )
    for row in rows:
        _, tau, continuous, dp_e, quant, guide_ratio, dp_ratio = row
        assert quant <= dp_e + 1e-9          # DP is the discrete ceiling
        assert dp_e <= continuous + 1e-9     # which sits below continuous
        # The cheap recipe stays close; coarsest grids on the steeply
        # concave coffee-break family can leave ~15% (measured: 0.84 at
        # tau=4 where a period holds ~2 tasks).
        assert guide_ratio > 0.8
    # Fine grids close both gaps.
    for name, _, _ in cases:
        case_rows = [r for r in rows if r[0] == name]
        assert case_rows[-1][5] > 0.99   # guideline/DP at tau = 0.5
        assert case_rows[-1][6] > 0.995  # DP/continuous at tau = 0.5

    p = repro.UniformRisk(120.0)
    benchmark(lambda: solve_discrete_optimal(p, 2.0, 1.0))
