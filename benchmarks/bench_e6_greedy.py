"""E6-GREEDY — Section 6: how good are greedy schedules?

The paper claims greedy is optimal for the geometric-decreasing scenario and
suboptimal for uniform risk.  Measured with the literal myopic greedy
(``t_k = argmax (t-c) p(T_{k-1}+t)``):

* uniform risk: greedy achieves ~75% of optimal — confirming "it does not";
* geometric decreasing: greedy picks the equal period ``c + 1/ln a`` — the
  *single-period* payoff maximizer — which differs from [3]'s optimal period
  (the steady-state *rate* maximizer) and achieves ~85-90% of optimal.

DEVIATION: the paper's "greedy yields the optimal schedule for the
geometrically decreasing lifespan scenario" does not hold for the myopic
recipe as printed; see EXPERIMENTS.md for the analysis.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.greedy import greedy_schedule


def test_e6_greedy_table(benchmark):
    cases = [
        ("uniform L=100", repro.UniformRisk(100.0), 2.0),
        ("uniform L=400", repro.UniformRisk(400.0), 2.0),
        ("poly d=3 L=100", repro.PolynomialRisk(3, 100.0), 1.0),
        ("geominc L=30", repro.GeometricIncreasingRisk(30.0), 1.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 0.8),
        ("geomdec a=2.0", repro.GeometricDecreasingLifespan(2.0), 0.5),
    ]
    rows = []
    for name, p, c in cases:
        greedy = greedy_schedule(p, c)
        e_greedy = greedy.expected_work(p, c)
        opt = repro.optimize_schedule(p, c)
        e_opt = max(opt.expected_work, e_greedy)
        guided = repro.guideline_schedule(p, c)
        rows.append([
            name,
            greedy.num_periods,
            float(greedy.periods[0]),
            e_greedy,
            guided.expected_work,
            e_opt,
            e_greedy / e_opt,
            guided.expected_work / e_opt,
        ])
    print_table(
        ["case", "m_greedy", "t0_greedy", "E_greedy", "E_guideline", "E_opt",
         "greedy ratio", "guideline ratio"],
        rows,
        title="E6-GREEDY: myopic greedy vs guideline vs optimal",
    )
    by_name = {r[0]: r for r in rows}
    # Uniform: greedy strictly suboptimal (paper: "it does not").
    assert by_name["uniform L=400"][6] < 0.8
    # Geomdec: myopic greedy also measurably suboptimal (paper deviation).
    assert 0.75 < by_name["geomdec a=1.3"][6] < 0.99
    # Guideline dominates greedy everywhere.
    for row in rows:
        assert row[7] >= row[6] - 1e-9

    benchmark(lambda: greedy_schedule(repro.UniformRisk(100.0), 2.0))


def test_e6_geomdec_greedy_analysis(benchmark):
    """Pin the two candidate periods: myopic = c + 1/ln a; optimal t* solves
    a^{-t} + t ln a = 1 + c ln a."""
    a, c = 1.3, 0.8
    p = repro.GeometricDecreasingLifespan(a)
    greedy = greedy_schedule(p, c)
    myopic = c + 1.0 / math.log(a)
    t_star = repro.geometric_decreasing_optimal_period(a, c)
    rows = [[
        a, c, myopic, float(greedy.periods[0]), t_star,
        greedy.expected_work(p, c), repro.geometric_decreasing_optimal_work(a, c),
    ]]
    print_table(
        ["a", "c", "myopic c+1/ln a", "greedy t0", "optimal t*", "E_greedy", "E_opt"],
        rows,
        title="E6-GREEDY: geomdec — myopic period vs rate-optimal period",
    )
    assert float(greedy.periods[0]) == pytest.approx(myopic, rel=1e-5)
    assert myopic > t_star * 1.2  # clearly different

    benchmark(lambda: greedy_schedule(p, c, max_periods=50))
