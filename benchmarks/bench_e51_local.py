"""E51-LOCAL — Theorem 5.1: local sufficiency of system (3.6).

For concave life functions, any schedule satisfying the Corollary 3.1
recurrence beats every [k, ±δ] perturbation of itself — even when its t_0 is
*not* the optimal one.  The bench probes a ladder of δ's across several
starting points per family and reports the worst (largest) perturbation gain
observed: all non-positive.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.perturbation import perturbation_margins


def test_e51_local_optimality(benchmark):
    cases = [
        ("uniform", repro.UniformRisk(200.0), 2.0),
        ("poly d=2", repro.PolynomialRisk(2, 200.0), 2.0),
        ("poly d=4", repro.PolynomialRisk(4, 120.0), 1.0),
        ("geominc", repro.GeometricIncreasingRisk(30.0), 1.0),
    ]
    rows = []
    for name, p, c in cases:
        bracket = repro.t0_bracket(p, c)
        for label, t0 in [
            ("lower", bracket.lo),
            ("mid", bracket.mid),
            ("upper", min(bracket.hi, p.lifespan * 0.97)),
        ]:
            if t0 <= c:
                continue
            out = repro.generate_schedule(p, c, t0)
            if out.schedule.num_periods < 2:
                continue
            report = perturbation_margins(out.schedule, p, c)
            rows.append([
                name,
                label,
                out.schedule.num_periods,
                report.max_gain,
                report.locally_optimal,
            ])
    print_table(
        ["family", "t0 choice", "m", "max perturbation gain", "locally optimal"],
        rows,
        precision=6,
        title="E51-LOCAL: Theorem 5.1 — recurrence schedules beat all [k,±δ] perturbations",
    )
    for row in rows:
        assert row[3] <= 1e-9, row
        assert row[4]

    p = repro.UniformRisk(200.0)
    out = repro.generate_schedule(p, 2.0, 25.0)
    benchmark(lambda: perturbation_margins(out.schedule, p, 2.0))
