"""EW-WORST — the worst-case sequel (footnote 1), previewed.

How do the expected-work guideline schedules fare against an *adversary* who
picks the reclaim time, and what does the worst-case-optimal schedule look
like?  Measured:

* guideline schedules (tuned for E) have mediocre competitive ratios — the
  adversary kills their big early periods;
* the worst-case-optimal geometric family degenerates to equal periods pinned
  at the minimum episode length: with additive overhead the ratio
  ``(t-c)/(2t-c) -> 1/2`` from below;
* doubling (the classical online intuition, and [2]'s shape) is *worse* than
  tuned equal chunks under this additive-overhead measure.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.baselines import doubling_schedule, fixed_chunk_schedule
from repro.core.worstcase import competitive_ratio, optimize_competitive_schedule

C = 1.0
HORIZON = 200.0
MIN_EPISODE = 8.0


def test_ew_worstcase_table(benchmark):
    p = repro.UniformRisk(HORIZON)  # used only to build comparison schedules
    # NB: a schedule whose FIRST boundary sits exactly at the adversary's
    # earliest reclaim time scores 0 — "reclaimed by T_k" kills period k — so
    # sensible baselines keep their first boundary strictly inside the
    # guaranteed window.
    safe = 0.9 * MIN_EPISODE
    entries = [
        ("guideline (E-tuned, uniform)", repro.guideline_schedule(p, C).schedule),
        ("fixed chunks inside window", fixed_chunk_schedule(p, C, safe)),
        ("fixed chunks @ 2x window", fixed_chunk_schedule(p, C, 2 * MIN_EPISODE)),
        ("doubling inside window", doubling_schedule(p, C, first=safe)),
    ]
    opt = optimize_competitive_schedule(C, HORIZON, min_episode=MIN_EPISODE)
    rows = []
    for name, schedule in entries:
        ratio = competitive_ratio(
            schedule, C, min_episode=MIN_EPISODE, horizon=HORIZON
        )
        expected = schedule.expected_work(p, C)
        rows.append([name, schedule.num_periods, ratio, expected])
    rows.append([
        "worst-case optimized (geometric family)",
        opt.schedule.num_periods,
        opt.ratio,
        opt.schedule.expected_work(p, C),
    ])
    print_table(
        ["schedule", "m", "competitive ratio", "E under uniform p"],
        rows,
        title=f"EW-WORST: adversarial reclaim, R in [{MIN_EPISODE}, {HORIZON}], c={C}",
    )
    by_name = {r[0]: r for r in rows}
    best = by_name["worst-case optimized (geometric family)"]
    # The optimizer wins the worst-case game...
    for name, _ in entries:
        assert best[2] >= by_name[name][2] - 1e-9
    # ...clearing the naive equal-chunk ceiling (t-c)/(2t-c) by hiding extra
    # boundaries inside the guaranteed window, yet still below 1.
    naive_ceiling = (MIN_EPISODE - C) / (2 * MIN_EPISODE - C)
    assert naive_ceiling <= best[2] < 1.0
    # But pays for it in expectation: the E-tuned guideline earns much more
    # expected work than the worst-case schedule.
    assert by_name["guideline (E-tuned, uniform)"][3] > best[3]
    # And doubling loses to equal chunks under the additive-overhead measure.
    assert (by_name["fixed chunks inside window"][2]
            > by_name["doubling inside window"][2])

    benchmark(
        lambda: optimize_competitive_schedule(C, HORIZON, min_episode=MIN_EPISODE)
    )
