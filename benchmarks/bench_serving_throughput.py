"""SERVING — batched vs scalar plan-serving throughput benchmark.

Drives the three serving front ends against the same Zipf-skewed query
stream (see :mod:`repro.analysis.loadgen`):

* **scalar** — one :meth:`PlanServer.serve` call per query (the
  pre-batching baseline, dominated by per-call dispatch overhead);
* **batched** — :meth:`PlanServer.serve_batch` in fixed-size chunks: one
  vectorized interpolate + polish pass per family table and tier, with
  duplicate queries coalesced onto a single serve;
* **open-loop** — concurrent :meth:`BatchingPlanServer.submit` calls,
  exercising singleflight coalescing and the size-or-deadline flush.

The batched plans must be **bit-identical** to the scalar loop's
(t0, periods, expected work, termination, and source) — a fast wrong
answer is worthless — and the batch speedup must clear
``MIN_BATCH_SPEEDUP`` on the acceptance configuration (1024-query Zipf
mix, batch 256).

Runs two ways:

* under pytest (``pytest benchmarks/bench_serving_throughput.py -s``) —
  asserts parity and the >= 10x speedup;
* as a script (``python benchmarks/bench_serving_throughput.py
  [BENCH_serving.json]``) — additionally writes the JSON artifact for CI
  trend tracking (regenerated nightly).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis.loadgen import run_servebench

QUERIES = 1024
BATCH_SIZE = 256
DISTINCT = 64
SKEW = 1.1
SEED = 0
GRID_POINTS = 9
SEARCH_GRID = 129
MIN_BATCH_SPEEDUP = 10.0


def measure(
    queries: int = QUERIES,
    batch_size: int = BATCH_SIZE,
    grid_points: int = GRID_POINTS,
    search_grid: int = SEARCH_GRID,
) -> dict:
    record = run_servebench(
        queries=queries,
        batch_size=batch_size,
        distinct=DISTINCT,
        skew=SKEW,
        seed=SEED,
        grid_points=grid_points,
        search_grid=search_grid,
    )
    record["generated_unix"] = time.time()
    return record


def _print_summary(record: dict) -> None:
    cfg = record["config"]
    print(
        f"\nSERVING ({cfg['queries']} queries, batch {cfg['batch_size']}, "
        f"{cfg['distinct']} distinct, zipf skew {cfg['skew']:g}):"
    )
    for mode in ("scalar", "batched", "open_loop"):
        if mode not in record:
            continue
        r = record[mode]
        print(
            f"  {mode:10s} {r['throughput_qps']:10.0f} q/s   "
            f"p50 {r['p50'] * 1e3:7.3f} ms  p95 {r['p95'] * 1e3:7.3f} ms  "
            f"p99 {r['p99'] * 1e3:7.3f} ms"
        )
    print(
        f"  speedup    {record['batch_speedup']:.1f}x  "
        f"(parity {'ok' if record['parity_ok'] else 'FAILED'}, "
        f"{record['batched_stats']['coalesced']} coalesced)"
    )


def test_serving_batch_speedup_and_parity():
    record = measure()
    _print_summary(record)
    assert record["parity_ok"], (
        f"{record['parity_mismatches']} batched plan(s) differ from the scalar loop"
    )
    assert record["batch_speedup"] >= MIN_BATCH_SPEEDUP, record["batch_speedup"]
    assert record["batched"]["throughput_qps"] > 0


def main(argv: list[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", type=Path,
        default=Path(__file__).parent.parent / "BENCH_serving.json",
        help="JSON artifact path (default: repo-root BENCH_serving.json)",
    )
    parser.add_argument("--queries", type=int, default=QUERIES,
                        help="stream length (default: %(default)s)")
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE,
                        help="serve_batch chunk size (default: %(default)s)")
    parser.add_argument("--grid-points", type=int, default=GRID_POINTS,
                        help="warmed table resolution (default: %(default)s)")
    parser.add_argument("--search-grid", type=int, default=SEARCH_GRID,
                        help="t0 search resolution while warming (default: %(default)s)")
    args = parser.parse_args(argv)
    record = measure(
        queries=args.queries,
        batch_size=args.batch_size,
        grid_points=args.grid_points,
        search_grid=args.search_grid,
    )
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    _print_summary(record)
    print(f"\nwrote {args.out}")
    ok = record["parity_ok"] and record["batch_speedup"] >= MIN_BATCH_SPEEDUP
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
