"""ER-RISK — extension: the banked-work distribution and risk-averse schedules.

Between the paper's expectation objective and its sequel's worst case sit the
distributional trade-offs: a mean-optimal schedule concentrates a lot of mass
on "owner came back before the first big period ended, banked nothing".
The bench reports the exact distribution's spread and quantiles for the
mean-optimal schedule, then shows what increasing risk aversion
(max ``E - λ·Std``) buys: lower variance and fatter lower quantiles at a
small mean cost.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.distribution import optimize_risk_averse, work_distribution


def test_er_risk_table(benchmark):
    p = repro.UniformRisk(300.0)
    c = 2.0
    lambdas = [0.0, 0.5, 1.0, 2.0, 4.0]
    rows = []
    for lam in lambdas:
        schedule, dist = optimize_risk_averse(p, c, risk_aversion=lam, grid=201)
        rows.append([
            lam,
            float(schedule.periods[0]),
            schedule.num_periods,
            dist.mean,
            dist.std,
            dist.quantile(0.1),
            dist.quantile(0.25),
            dist.cvar_lower(0.25),
        ])
    print_table(
        ["lambda", "t0", "m", "mean", "std", "q10", "q25", "CVaR25"],
        rows,
        title="ER-RISK: risk-averse t0 choice (max E - lambda*Std), uniform L=300 c=2",
    )
    means = [r[3] for r in rows]
    stds = [r[4] for r in rows]
    # Monotone trade-off along the risk-aversion path.
    assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(stds, stds[1:]))
    # The trade is worthwhile by its own objective at every lambda.
    for lam, row in zip(lambdas, rows):
        assert row[3] - lam * row[4] >= rows[0][3] - lam * rows[0][4] - 1e-9

    benchmark(lambda: work_distribution(
        repro.guideline_schedule(p, c, grid=17).schedule, p, c))
