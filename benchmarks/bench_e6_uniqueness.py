"""E6-UNIQ — Section 6's open question: are optimal schedules unique?

Theorem 3.1 reduces the question to the 1-D map ``t_0 -> E(S(t_0); p)``
(distinct optima must differ in ``t_0``, and the recurrence propagates the
rest).  The bench scans that landscape:

* every Section 4 family: a single peak — consistent with the paper's
  "each of the life functions studied in [3] admits a unique optimal
  schedule";
* a coffee-break/meeting *mixture*: genuinely multimodal (several local
  maxima), showing why the open question resists — though even there the
  global maximum is numerically unique.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.core.uniqueness import (
    count_expected_work_peaks,
    is_unique_optimum_numerically,
    scan_t0_landscape,
)


def test_e6_uniqueness_table(benchmark):
    mixture = repro.MixtureLife(
        [repro.GeometricIncreasingRisk(12.0), repro.UniformRisk(120.0)], [0.7, 0.3]
    )
    cases = [
        ("uniform L=100", repro.UniformRisk(100.0), 2.0),
        ("poly d=3 L=100", repro.PolynomialRisk(3, 100.0), 1.0),
        ("geomdec a=1.3", repro.GeometricDecreasingLifespan(1.3), 0.5),
        ("geominc L=25", repro.GeometricIncreasingRisk(25.0), 1.0),
        ("coffee/meeting mixture", mixture, 0.5),
    ]
    rows = []
    for name, p, c in cases:
        peaks = count_expected_work_peaks(p, c, n_points=513)
        unique = is_unique_optimum_numerically(p, c, n_points=513)
        landscape = scan_t0_landscape(p, c, n_points=513)
        rows.append([name, peaks, unique, landscape.argmax, landscape.max])
    print_table(
        ["family", "local maxima of E(t0)", "global max unique", "argmax t0", "max E"],
        rows,
        title="E6-UNIQ: the t0 landscape (Theorem 3.1 reduces uniqueness to 1-D)",
    )
    by_name = {r[0]: r for r in rows}
    for name in ("uniform L=100", "poly d=3 L=100", "geomdec a=1.3", "geominc L=25"):
        assert by_name[name][1] == 1, name
        assert by_name[name][2], name
    assert by_name["coffee/meeting mixture"][1] >= 2

    benchmark(lambda: count_expected_work_peaks(repro.UniformRisk(100.0), 2.0,
                                                n_points=129))
