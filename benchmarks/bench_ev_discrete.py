"""EV-DISC — Section 6's open question: discrete analogues.

Quantizes continuous guideline schedules onto whole-task grids and measures
the expected-work loss as task granularity coarsens.  The continuous
guidelines degrade gracefully: sub-1% loss once a period holds ~20 tasks.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis.tables import print_table
from repro.simulation import discretization_report, discretize_schedule


def test_ev_discrete_table(benchmark):
    cases = [
        ("uniform L=300 c=2", repro.UniformRisk(300.0), 2.0),
        ("geominc L=30 c=1", repro.GeometricIncreasingRisk(30.0), 1.0),
        ("geomdec a=1.2 c=1", repro.GeometricDecreasingLifespan(1.2), 1.0),
    ]
    taus = [8.0, 4.0, 2.0, 1.0, 0.25]
    rows = []
    for name, p, c in cases:
        res = repro.guideline_schedule(p, c)
        for tau in taus:
            try:
                rep = discretization_report(res.schedule, p, c, tau)
            except Exception:
                continue
            rows.append([name, tau, rep.continuous_work, rep.discrete_work,
                         rep.relative_loss, rep.periods_dropped])
    print_table(
        ["case", "task len", "E continuous", "E discrete", "rel loss", "dropped"],
        rows,
        title="EV-DISC: quantizing guideline schedules onto whole-task grids",
    )
    # Loss shrinks as tasks get finer, reaching <1% at tau = 0.25.
    for name, _, _ in cases:
        case_rows = [r for r in rows if r[0] == name]
        assert case_rows[-1][4] < 0.01
        assert case_rows[0][4] >= case_rows[-1][4] - 1e-9
    # Floor-mode quantization never gains.
    for r in rows:
        assert r[3] <= r[2] + 1e-9

    p = repro.UniformRisk(300.0)
    sched = repro.guideline_schedule(p, 2.0).schedule
    benchmark(lambda: discretize_schedule(sched, 2.0, 1.0))
