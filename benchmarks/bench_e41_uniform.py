"""E41-UNIFORM — Section 4.1, d = 1 (uniform risk).

Reproduces the Section 4.1 comparison for ``p(t) = 1 - t/L``:

* eq. (4.1): the guideline recurrence collapses to ``t_k = t_{k-1} - c``,
  identical to [3]'s optimal recurrence;
* eq. (4.4) vs (4.5): the bracket ``sqrt(cL) <= t_0 <= 2 sqrt(cL) + 1``
  contains the true ``t_0 ≈ sqrt(2cL)``;
* guideline-with-t0-search achieves the optimal expected work exactly.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis.tables import print_table

SWEEP = [(100.0, 1.0), (400.0, 1.0), (400.0, 4.0), (1600.0, 4.0), (10000.0, 2.0)]


def _row(L: float, c: float) -> list:
    p = repro.UniformRisk(L)
    bracket = repro.uniform_bracket(L, c)
    exact = repro.uniform_optimal_schedule(L, c)
    guided = repro.guideline_schedule(p, c)
    return [
        L,
        c,
        bracket.lo,
        math.sqrt(2 * c * L),
        exact.t0,
        bracket.hi,
        exact.num_periods,
        guided.expected_work,
        exact.expected_work,
        guided.expected_work / exact.expected_work,
    ]


def test_e41_uniform_table(benchmark):
    rows = [_row(L, c) for L, c in SWEEP]
    print_table(
        [
            "L", "c", "lo=sqrt(cL)", "sqrt(2cL)", "t0*", "hi=2sqrt(cL)+1",
            "m*", "E_guideline", "E_optimal", "ratio",
        ],
        rows,
        title="E41-UNIFORM: eq.(4.4) bracket vs eq.(4.5) optimum; guideline vs optimal E",
    )
    for row in rows:
        lo, sqrt2cl, t0_star, hi, ratio = row[2], row[3], row[4], row[5], row[9]
        assert lo <= t0_star <= hi            # (4.4) brackets the optimum
        assert lo <= sqrt2cl <= hi            # and its asymptotic form
        assert ratio == pytest.approx(1.0, abs=1e-6)  # guideline = optimal

    benchmark(lambda: repro.guideline_schedule(repro.UniformRisk(400.0), 2.0))


def test_e41_decrement_identity(benchmark):
    """Eq. (4.1): generated periods decrease by exactly c."""
    p = repro.UniformRisk(1000.0)
    c = 3.0
    out = repro.generate_schedule(p, c, 60.0)
    decs = -np.diff(out.schedule.periods)
    assert np.allclose(decs, c)
    benchmark(lambda: repro.generate_schedule(p, c, 60.0))
