"""The shipped examples must run clean (the fast ones, end to end)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "t0 bracket" in out
    assert "E(guideline)/E(optimal) = 1.000000" in out
    assert "Monte-Carlo check" in out


def test_coffee_break_runs():
    out = _run("coffee_break.py")
    assert "Coffee break" in out
    assert "guideline recurrence" in out


def test_adaptive_rescheduling_runs():
    out = _run("adaptive_rescheduling.py")
    assert "progressive schedule" in out
    assert "MC check" in out


def test_risk_profiles_runs():
    out = _run("risk_profiles.py")
    assert "Risk aversion" in out
    assert "adversarial reclaim" in out


@pytest.mark.slow
def test_checkpointing_runs():
    out = _run("checkpointing.py", timeout=600.0)
    assert "guideline interval finishes first" in out


@pytest.mark.slow
def test_overnight_farm_runs():
    out = _run("overnight_farm.py", timeout=900.0)
    assert "clairvoyant bound" in out
