"""Public API surface: everything advertised is importable and documented."""

from __future__ import annotations

import inspect

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"


def test_public_callables_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        elif inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_subpackages_importable():
    import repro.analysis
    import repro.baselines
    import repro.now
    import repro.simulation
    import repro.traces
    import repro.workloads

    for module in (
        repro.analysis,
        repro.baselines,
        repro.now,
        repro.simulation,
        repro.traces,
        repro.workloads,
    ):
        assert module.__doc__
        for name in module.__all__:
            assert hasattr(module, name)


def test_quickstart_snippet_runs():
    """The README/module-docstring quickstart must keep working."""
    p = repro.UniformRisk(lifespan=1000.0)
    result = repro.guideline_schedule(p, c=4.0)
    assert result.schedule.num_periods > 1
    assert result.expected_work > 0
