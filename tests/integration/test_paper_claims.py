"""Integration tests pinning the paper's quantitative claims end to end.

Each test corresponds to an entry in EXPERIMENTS.md; the benchmark harness
prints the full tables, these tests pin the shape of the results so
regressions are caught in CI.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro.analysis.efficiency import efficiency_report


class TestSection41:
    """§4.1: the polynomial family p_{d,L}."""

    def test_uniform_guideline_is_exactly_optimal(self):
        """For d = 1 the guideline recurrence IS [3]'s optimal recurrence, so
        optimizing t0 inside the bracket recovers the exact optimum."""
        for L, c in [(100.0, 1.0), (400.0, 2.0), (1000.0, 4.0)]:
            report = efficiency_report(repro.UniformRisk(L), c)
            assert report.ratio == pytest.approx(1.0, abs=1e-6)

    def test_eq_44_bracket_vs_eq_45_optimal(self):
        """sqrt(cL) <= sqrt(2cL) <= 2 sqrt(cL) + 1 across two decades."""
        for L in (100.0, 1000.0, 10000.0):
            for c in (1.0, 4.0):
                br = repro.uniform_bracket(L, c)
                exact = repro.uniform_optimal_schedule(L, c)
                assert br.contains(exact.t0, rtol=1e-9)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_poly_guideline_near_optimal(self, d):
        report = efficiency_report(repro.PolynomialRisk(d, 200.0), 2.0)
        assert report.ratio > 0.995
        assert report.t0_in_bracket


class TestSection42:
    """§4.2: the geometric-decreasing (half-life) family."""

    def test_guideline_recovers_exact_optimum(self):
        for a in (1.1, 1.5, 2.0):
            for c in (0.2, 1.0):
                p = repro.GeometricDecreasingLifespan(a)
                res = repro.guideline_schedule(p, c)
                closed = repro.geometric_decreasing_optimal_work(a, c)
                assert res.expected_work == pytest.approx(closed, rel=1e-4)

    def test_upper_bound_close_to_optimal_t0(self):
        a, c = 1.5, 1.0
        br = repro.geometric_decreasing_bracket(a, c)
        t_star = repro.geometric_decreasing_optimal_period(a, c)
        assert br.hi >= t_star
        assert (br.hi - t_star) / t_star < 0.4


class TestSection43:
    """§4.3: the geometric-increasing (coffee-break) family."""

    def test_guideline_vs_bclr_family(self):
        """Both recurrences, each with its t0 optimized, land within 1%."""
        for L in (20.0, 40.0):
            c = 1.0
            p = repro.GeometricIncreasingRisk(L)
            guided = repro.guideline_schedule(p, c)
            exact = repro.geometric_increasing_optimal_schedule(L, c)
            ratio = guided.expected_work / exact.expected_work
            assert 0.99 < ratio < 1.01

    def test_t0_scaling_L_minus_log(self):
        """t0* = L - Θ(log L) per the 2^{t0/2} t0² <= 2^L <= 2^{t0} t0² window."""
        for L in (32.0, 128.0, 512.0):
            res = repro.geometric_increasing_optimal_schedule(L, 1.0)
            assert L - 4 * math.log2(L) <= res.t0 <= L - 0.5 * math.log2(L)


class TestHeadlineEfficiency:
    """The 'nearly optimal' claim, quantified across the families."""

    @pytest.mark.parametrize("factory,c", [
        (lambda: repro.UniformRisk(300.0), 2.0),
        (lambda: repro.PolynomialRisk(3, 300.0), 2.0),
        (lambda: repro.GeometricDecreasingLifespan(1.3), 0.5),
        (lambda: repro.GeometricIncreasingRisk(30.0), 1.0),
    ])
    def test_guideline_within_one_percent(self, factory, c):
        report = efficiency_report(factory(), c)
        assert report.ratio > 0.99

    def test_even_mid_bracket_t0_is_decent(self):
        """Without any search, the bracket midpoint already gets most of the
        work — the bracket genuinely narrows the space."""
        for factory, c in [
            (lambda: repro.UniformRisk(300.0), 2.0),
            (lambda: repro.GeometricIncreasingRisk(30.0), 1.0),
        ]:
            p = factory()
            mid = repro.guideline_schedule(p, c, t0_strategy="mid")
            opt = repro.optimize_schedule(p, c)
            assert mid.expected_work / opt.expected_work > 0.8


class TestEndToEndTracePipeline:
    """Trace -> survival -> fit -> schedule: the Section 1 story."""

    def test_fitted_schedule_near_true_optimal(self, rng):
        from repro.traces import fit_best

        a_true, c = 1.2, 1.0
        p_true = repro.GeometricDecreasingLifespan(a_true)
        durations = p_true.sample_reclaim_times(rng, 5000)
        fitted = fit_best(durations).life
        sched = repro.guideline_schedule(fitted, c).schedule
        # Evaluate the fitted-schedule under the TRUE life function.
        achieved = sched.expected_work(p_true, c)
        optimal = repro.geometric_decreasing_optimal_work(a_true, c)
        assert achieved / optimal > 0.97

    def test_smoothed_schedule_usable(self, rng):
        from repro.traces import kaplan_meier, smooth_survival

        p_true = repro.UniformRisk(50.0)
        c = 1.0
        durations = p_true.sample_reclaim_times(rng, 8000)
        smoothed = smooth_survival(kaplan_meier(durations))
        sched = repro.guideline_schedule(smoothed, c).schedule
        achieved = sched.expected_work(p_true, c)
        optimal = repro.uniform_optimal_schedule(50.0, c).expected_work
        assert achieved / optimal > 0.9
