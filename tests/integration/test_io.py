"""JSON round-trips for schedules and guideline results."""

from __future__ import annotations

import json

import pytest

import repro
from repro.exceptions import CycleStealingError
from repro.io import (
    dumps,
    guideline_result_from_dict,
    guideline_result_to_dict,
    loads,
    schedule_from_dict,
    schedule_to_dict,
)


class TestScheduleRoundTrip:
    def test_exact_floats(self):
        s = repro.Schedule([13.642857142857144, 11.642857142857142, 0.1])
        restored = loads(dumps(s))
        assert isinstance(restored, repro.Schedule)
        assert restored == s  # bitwise float equality

    def test_dict_shape(self):
        d = schedule_to_dict(repro.Schedule([1.0, 2.0]))
        assert d["kind"] == "schedule"
        assert d["periods"] == [1.0, 2.0]
        assert schedule_from_dict(d) == repro.Schedule([1.0, 2.0])


class TestGuidelineResultRoundTrip:
    def test_full_provenance(self, paper_life):
        result = repro.guideline_schedule(paper_life, 0.5, grid=17)
        restored = loads(dumps(result, indent=2))
        assert isinstance(restored, repro.GuidelineResult)
        assert restored.schedule == result.schedule
        assert restored.expected_work == result.expected_work
        assert restored.t0 == result.t0
        assert restored.bracket.lo == result.bracket.lo
        assert restored.termination is result.termination
        assert restored.t0_strategy == result.t0_strategy

    def test_json_is_plain(self):
        result = repro.guideline_schedule(repro.UniformRisk(100.0), 2.0)
        payload = json.loads(dumps(result))
        assert payload["kind"] == "guideline_result"
        assert isinstance(payload["periods"], list)


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(CycleStealingError):
            loads(json.dumps({"kind": "mystery", "format": 1}))

    def test_wrong_kind_for_loader(self):
        d = schedule_to_dict(repro.Schedule([1.0]))
        with pytest.raises(CycleStealingError):
            guideline_result_from_dict(d)

    def test_future_format_rejected(self):
        d = schedule_to_dict(repro.Schedule([1.0]))
        d["format"] = 99
        with pytest.raises(CycleStealingError):
            schedule_from_dict(d)

    def test_unserializable_type(self):
        with pytest.raises(TypeError):
            dumps(42)  # type: ignore[arg-type]
