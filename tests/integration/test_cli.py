"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main, make_life_function


class TestParsing:
    def test_schedule_uniform(self, capsys):
        status = main(["schedule", "--family", "uniform", "--lifespan", "480",
                       "--c", "3"])
        assert status == 0
        out = capsys.readouterr().out
        assert "t0 bracket" in out
        assert "expected work" in out

    def test_schedule_geomdec_with_strategy(self, capsys):
        status = main(["schedule", "--family", "geomdec", "--a", "1.2",
                       "--c", "0.5", "--t0-strategy", "mid"])
        assert status == 0
        assert "strategy: mid" in capsys.readouterr().out

    def test_schedule_explicit_t0(self, capsys):
        main(["schedule", "--family", "uniform", "--lifespan", "100",
              "--c", "2", "--t0", "20"])
        out = capsys.readouterr().out
        assert "20" in out
        assert "explicit" in out

    def test_compare(self, capsys):
        status = main(["compare", "--family", "geominc", "--lifespan", "20",
                       "--c", "1"])
        assert status == 0
        out = capsys.readouterr().out
        for label in ("guideline", "greedy", "progressive", "optimal"):
            assert label in out

    def test_missing_family_param_errors(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--family", "uniform", "--c", "3"])  # no lifespan

    def test_fit_from_file(self, tmp_path, capsys, rng):
        p = repro.GeometricDecreasingLifespan(1.3)
        data = p.sample_reclaim_times(rng, 500)
        path = tmp_path / "durations.txt"
        path.write_text("\n".join(f"{d:.6f}" for d in data))
        status = main(["fit", str(path), "--c", "0.5"])
        assert status == 0
        out = capsys.readouterr().out
        assert "fitted:" in out
        assert "expected work" in out

    def test_fit_too_few(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("1.0\n")
        with pytest.raises(SystemExit):
            main(["fit", str(path), "--c", "0.5"])

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_mc_engines(self, capsys, engine):
        status = main(["mc", "--family", "uniform", "--lifespan", "100",
                       "--c", "2", "--n", "20000", "--engine", engine])
        assert status == 0
        out = capsys.readouterr().out
        assert f"engine        : {engine}" in out
        assert "consistent    : True" in out

    def test_mc_engines_identical_output(self, capsys):
        """Same seed => both engines print the same estimate."""
        main(["mc", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--n", "10000", "--engine", "vectorized"])
        vec = capsys.readouterr().out
        main(["mc", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--n", "10000", "--engine", "scalar"])
        sca = capsys.readouterr().out
        pick = lambda txt: [l for l in txt.splitlines()
                            if l.startswith(("MC mean", "analytic", "|z|"))]
        assert pick(vec) == pick(sca)

    def test_mc_confidence_flag(self, capsys):
        status = main(["mc", "--family", "uniform", "--lifespan", "100",
                       "--c", "2", "--n", "5000", "--confidence", "0.99"])
        assert status == 0
        assert "99% CI" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    def test_t0opt_engines(self, capsys, engine):
        status = main(["t0opt", "--family", "uniform", "--lifespan", "400",
                       "--c", "2", "--engine", engine])
        assert status == 0
        out = capsys.readouterr().out
        assert f"engine        : {engine}" in out
        for label in ("t0 chosen", "periods", "termination", "expected work"):
            assert label in out

    def test_t0opt_engines_identical_output(self, capsys):
        """Both search engines print the same t0/periods/E."""
        main(["t0opt", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--engine", "batch"])
        batch = capsys.readouterr().out
        main(["t0opt", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--engine", "scalar"])
        scalar = capsys.readouterr().out
        pick = lambda txt: [l for l in txt.splitlines()
                            if l.startswith(("t0 chosen", "periods", "expected"))]
        assert pick(batch) == pick(scalar)

    def test_t0opt_grid_flag(self, capsys):
        status = main(["t0opt", "--family", "geomdec", "--a", "1.2",
                       "--c", "0.5", "--grid", "33"])
        assert status == 0
        assert "grid = 33" in capsys.readouterr().out

    def test_t0opt_bad_grid(self):
        with pytest.raises(SystemExit):
            main(["t0opt", "--family", "uniform", "--lifespan", "100",
                  "--c", "2", "--grid", "1"])


class TestLifeFunctionFactory:
    def test_all_families(self):
        parser = build_parser()
        cases = [
            (["schedule", "--family", "uniform", "--lifespan", "10", "--c", "1"],
             repro.UniformRisk),
            (["schedule", "--family", "poly", "--d", "3", "--lifespan", "10",
              "--c", "1"], repro.PolynomialRisk),
            (["schedule", "--family", "geomdec", "--a", "1.5", "--c", "1"],
             repro.GeometricDecreasingLifespan),
            (["schedule", "--family", "geominc", "--lifespan", "10", "--c", "1"],
             repro.GeometricIncreasingRisk),
            (["schedule", "--family", "weibull", "--k", "0.8", "--scale", "5",
              "--c", "1"], repro.WeibullLife),
        ]
        for argv, cls in cases:
            args = parser.parse_args(argv)
            assert isinstance(make_life_function(args), cls)
