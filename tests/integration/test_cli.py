"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main, make_life_function


class TestParsing:
    def test_schedule_uniform(self, capsys):
        status = main(["schedule", "--family", "uniform", "--lifespan", "480",
                       "--c", "3"])
        assert status == 0
        out = capsys.readouterr().out
        assert "t0 bracket" in out
        assert "expected work" in out

    def test_schedule_geomdec_with_strategy(self, capsys):
        status = main(["schedule", "--family", "geomdec", "--a", "1.2",
                       "--c", "0.5", "--t0-strategy", "mid"])
        assert status == 0
        assert "strategy: mid" in capsys.readouterr().out

    def test_schedule_explicit_t0(self, capsys):
        main(["schedule", "--family", "uniform", "--lifespan", "100",
              "--c", "2", "--t0", "20"])
        out = capsys.readouterr().out
        assert "20" in out
        assert "explicit" in out

    def test_compare(self, capsys):
        status = main(["compare", "--family", "geominc", "--lifespan", "20",
                       "--c", "1"])
        assert status == 0
        out = capsys.readouterr().out
        for label in ("guideline", "greedy", "progressive", "optimal"):
            assert label in out

    def test_missing_family_param_errors(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--family", "uniform", "--c", "3"])  # no lifespan

    def test_fit_from_file(self, tmp_path, capsys, rng):
        p = repro.GeometricDecreasingLifespan(1.3)
        data = p.sample_reclaim_times(rng, 500)
        path = tmp_path / "durations.txt"
        path.write_text("\n".join(f"{d:.6f}" for d in data))
        status = main(["fit", str(path), "--c", "0.5"])
        assert status == 0
        out = capsys.readouterr().out
        assert "fitted:" in out
        assert "expected work" in out

    def test_fit_too_few(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("1.0\n")
        with pytest.raises(SystemExit):
            main(["fit", str(path), "--c", "0.5"])

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_mc_engines(self, capsys, engine):
        status = main(["mc", "--family", "uniform", "--lifespan", "100",
                       "--c", "2", "--n", "20000", "--engine", engine])
        assert status == 0
        out = capsys.readouterr().out
        assert f"engine        : {engine}" in out
        assert "consistent    : True" in out

    def test_mc_engines_identical_output(self, capsys):
        """Same seed => both engines print the same estimate."""
        main(["mc", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--n", "10000", "--engine", "vectorized"])
        vec = capsys.readouterr().out
        main(["mc", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--n", "10000", "--engine", "scalar"])
        sca = capsys.readouterr().out
        pick = lambda txt: [l for l in txt.splitlines()
                            if l.startswith(("MC mean", "analytic", "|z|"))]
        assert pick(vec) == pick(sca)

    def test_mc_confidence_flag(self, capsys):
        status = main(["mc", "--family", "uniform", "--lifespan", "100",
                       "--c", "2", "--n", "5000", "--confidence", "0.99"])
        assert status == 0
        assert "99% CI" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    def test_t0opt_engines(self, capsys, engine):
        status = main(["t0opt", "--family", "uniform", "--lifespan", "400",
                       "--c", "2", "--engine", engine])
        assert status == 0
        out = capsys.readouterr().out
        assert f"engine        : {engine}" in out
        for label in ("t0 chosen", "periods", "termination", "expected work"):
            assert label in out

    def test_t0opt_engines_identical_output(self, capsys):
        """Both search engines print the same t0/periods/E."""
        main(["t0opt", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--engine", "batch"])
        batch = capsys.readouterr().out
        main(["t0opt", "--family", "geominc", "--lifespan", "30", "--c", "1",
              "--engine", "scalar"])
        scalar = capsys.readouterr().out
        pick = lambda txt: [l for l in txt.splitlines()
                            if l.startswith(("t0 chosen", "periods", "expected"))]
        assert pick(batch) == pick(scalar)

    def test_t0opt_grid_flag(self, capsys):
        status = main(["t0opt", "--family", "geomdec", "--a", "1.2",
                       "--c", "0.5", "--grid", "33"])
        assert status == 0
        assert "grid = 33" in capsys.readouterr().out

    def test_t0opt_bad_grid(self):
        with pytest.raises(SystemExit):
            main(["t0opt", "--family", "uniform", "--lifespan", "100",
                  "--c", "2", "--grid", "1"])


class TestPlanCacheCommand:
    def test_warm_query_stats_clear_cycle(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "plancache")
        status = main(["plancache", "warm", "--family", "uniform",
                       "--cache-dir", cache_dir, "--grid-points", "5",
                       "--search-grid", "33"])
        assert status == 0
        out = capsys.readouterr().out
        assert "warmed uniform" in out
        assert "5x5" in out

        status = main(["plancache", "query", "--family", "uniform",
                       "--c", "2.0", "--value", "200",
                       "--cache-dir", cache_dir])
        assert status == 0
        out = capsys.readouterr().out
        assert "source        : table" in out
        assert "expected work" in out

        status = main(["plancache", "stats", "--cache-dir", cache_dir])
        assert status == 0
        out = capsys.readouterr().out
        assert "table uniform : 5x5" in out
        assert "table poly    : missing" in out

        status = main(["plancache", "clear", "--cache-dir", cache_dir,
                       "--tables"])
        assert status == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        main(["plancache", "stats", "--cache-dir", cache_dir])
        assert "table uniform : missing" in capsys.readouterr().out

    def test_warm_smoke_default_grid(self, tmp_path, capsys):
        """The documented tier-1 smoke invocation, on a tiny grid."""
        status = main(["plancache", "warm", "--family", "uniform",
                       "--cache-dir", str(tmp_path), "--grid-points", "3",
                       "--search-grid", "17"])
        assert status == 0
        assert "1 table(s)" in capsys.readouterr().out

    def test_query_outside_table_falls_back(self, tmp_path, capsys):
        status = main(["plancache", "query", "--family", "geominc",
                       "--c", "1.0", "--value", "30",
                       "--cache-dir", str(tmp_path)])  # nothing warmed
        assert status == 0
        assert "source        : optimizer" in capsys.readouterr().out

    def test_warm_bad_grid_points(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["plancache", "warm", "--family", "uniform",
                  "--cache-dir", str(tmp_path), "--grid-points", "1"])

    def test_query_matches_t0opt(self, tmp_path, capsys):
        """A table-served answer agrees with the direct t0 optimizer CLI."""
        cache_dir = str(tmp_path)
        main(["plancache", "warm", "--family", "geominc",
              "--cache-dir", cache_dir, "--grid-points", "5"])
        capsys.readouterr()
        main(["plancache", "query", "--family", "geominc",
              "--c", "1.0", "--value", "30", "--cache-dir", cache_dir])
        served = capsys.readouterr().out
        main(["t0opt", "--family", "geominc", "--lifespan", "30", "--c", "1"])
        direct = capsys.readouterr().out
        pick = lambda txt: [l.split(":")[1].strip() for l in txt.splitlines()
                            if l.startswith("expected work")]
        ew_served = float(pick(served)[0])
        ew_direct = float(pick(direct)[0])
        assert ew_served == pytest.approx(ew_direct, rel=1e-6)


class TestCachedCommands:
    def test_t0opt_cache_dir_round_trip(self, tmp_path, capsys):
        argv = ["t0opt", "--family", "uniform", "--lifespan", "300",
                "--c", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        pick = lambda txt: [l for l in txt.splitlines()
                            if l.startswith(("t0 chosen", "expected"))]
        assert pick(cold) == pick(warm)
        assert any((tmp_path / "v1").glob("*.json"))

    def test_compare_cache_dir(self, tmp_path, capsys):
        from repro.core import reset_default_plan_cache

        argv = ["compare", "--family", "geominc", "--lifespan", "20",
                "--c", "1", "--cache-dir", str(tmp_path)]
        reset_default_plan_cache()  # fresh process-default cache per "run"
        assert main(argv) == 0
        assert "plan cache" in capsys.readouterr().out
        reset_default_plan_cache()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "disk hits" in out
        assert "0 misses" in out


class TestLifeFunctionFactory:
    def test_all_families(self):
        parser = build_parser()
        cases = [
            (["schedule", "--family", "uniform", "--lifespan", "10", "--c", "1"],
             repro.UniformRisk),
            (["schedule", "--family", "poly", "--d", "3", "--lifespan", "10",
              "--c", "1"], repro.PolynomialRisk),
            (["schedule", "--family", "geomdec", "--a", "1.5", "--c", "1"],
             repro.GeometricDecreasingLifespan),
            (["schedule", "--family", "geominc", "--lifespan", "10", "--c", "1"],
             repro.GeometricIncreasingRisk),
            (["schedule", "--family", "weibull", "--k", "0.8", "--scale", "5",
              "--c", "1"], repro.WeibullLife),
        ]
        for argv, cls in cases:
            args = parser.parse_args(argv)
            assert isinstance(make_life_function(args), cls)


class TestChaosCommand:
    def test_quick_subset_writes_report(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        status = main([
            "chaos", "--quick",
            "--classes", "message_loss", "planner_outage",
            "--out", str(out),
        ])
        assert status == 0
        text = capsys.readouterr().out
        assert "chaos matrix" in text
        assert "message_loss" in text and "planner_outage" in text
        import json as _json

        report = _json.loads(out.read_text())
        assert set(report["summary"]) == {"message_loss", "planner_outage"}
        assert all(c["goodput"] > 0.0 for c in report["cells"])

    def test_unknown_class_errors(self):
        with pytest.raises(Exception):
            main(["chaos", "--quick", "--classes", "meteor_strike"])


class TestServebenchCommand:
    @pytest.mark.slow
    def test_quick_run_reports_parity_and_throughput(self, tmp_path, capsys):
        out = tmp_path / "serving.json"
        status = main(["servebench", "--quick", "--out", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "batch speedup" in text
        assert "parity: ok" in text
        import json as _json

        record = _json.loads(out.read_text())
        assert record["parity_ok"] is True
        assert record["batched"]["throughput_qps"] > 0
        assert record["scalar"]["throughput_qps"] > 0
        for key in ("p50", "p95", "p99"):
            assert record["batched"][key] >= 0

    def test_min_speedup_gate(self, capsys):
        # An impossible bar must flip the exit status, not crash.
        status = main(["servebench", "--quick", "--queries", "64",
                       "--min-speedup", "1e9"])
        assert status == 1
        assert "FAIL" in capsys.readouterr().out

    def test_plancache_stats_show_latency(self, tmp_path, capsys):
        status = main(["plancache", "stats", "--cache-dir", str(tmp_path)])
        assert status == 0
        assert "latency" in capsys.readouterr().out


class TestFleetCommand:
    def test_quick_gates_parity_and_prints_table(self, capsys):
        status = main(["fleet", "--quick"])
        assert status == 0
        text = capsys.readouterr().out
        assert "n=1 parity [batched]: ok" in text
        assert "n=1 parity [   heap]: ok" in text
        assert "cross-core parity  : ok" in text
        assert "sharing" in text and "stealing-latency" in text

    def test_core_flag_selects_heap(self, capsys):
        status = main(["fleet", "--hosts", "8", "--core", "heap",
                       "--work-per-host", "4", "--task-duration", "0.25",
                       "--policy", "sharing"])
        assert status == 0
        assert "heap core" in capsys.readouterr().out

    def test_bucket_width_flag(self, capsys):
        status = main(["fleet", "--hosts", "8", "--bucket-width", "2.5",
                       "--work-per-host", "4", "--task-duration", "0.25",
                       "--policy", "sharing"])
        assert status == 0
        assert "batched core" in capsys.readouterr().out

    def test_profile_prints_hotspots(self, capsys):
        status = main(["fleet", "--hosts", "8", "--profile",
                       "--profile-top", "5", "--work-per-host", "4",
                       "--task-duration", "0.25", "--policy", "sharing"])
        assert status == 0
        text = capsys.readouterr().out
        assert "cumulative" in text
        assert "run_fleet" in text

    def test_single_policy_with_artifact(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        status = main(["fleet", "--hosts", "12", "--policy", "stealing",
                       "--work-per-host", "8", "--task-duration", "0.25",
                       "--out", str(out)])
        assert status == 0
        import json as _json

        record = _json.loads(out.read_text())
        assert record["hosts"] == 12
        assert set(record["policies"]) == {"stealing"}
        entry = record["policies"]["stealing"]
        assert entry["events_per_sec"] > 0
        assert entry["mean_field"]["makespan"] > 0

    def test_hetero_mode(self, capsys):
        status = main(["fleet", "--hosts", "8", "--hetero",
                       "--work-per-host", "4", "--task-duration", "0.25",
                       "--policy", "sharing"])
        assert status == 0
        assert "hetero" in capsys.readouterr().out

    def test_bad_hosts_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--hosts", "0"])
