"""Shared fixtures: canonical life functions, RNGs, and warmed table dirs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    MixtureLife,
    ParetoLife,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)

#: The warmed-table smoke configuration shared by serving tests: small
#: enough to warm in ~1 s, rich enough to exercise on-grid, off-grid, and
#: out-of-bounds table paths.
TABLE_FIXTURE_FAMILIES = ("uniform", "geomdec")
TABLE_FIXTURE_GRID_POINTS = 5
TABLE_FIXTURE_SEARCH_GRID = 33


@pytest.fixture(scope="session")
def warmed_table_dir(tmp_path_factory) -> dict:
    """A session-scoped directory of precomputed guideline tables.

    Warmed **once** per test session and shared by every batched-serving
    and multiprocess-sharding test — worker processes mmap the same npz
    files, so re-precomputing per test would dominate the suite's runtime.
    Consumers must open it read-only (``TableServer(cache_dir=...,
    cache=PlanCache())``) and never write through it.

    Returns a dict: ``dir`` (Path), ``families``, ``grids`` (the exact
    per-family ``(c_grid, param_grid)`` arrays warmed), ``search_grid``.
    """
    from repro.analysis.tables_precompute import TableServer, default_grids
    from repro.core.plancache import PlanCache

    path = tmp_path_factory.mktemp("guideline-tables")
    grids = {
        fam: tuple(
            np.geomspace(g[0], g[-1], TABLE_FIXTURE_GRID_POINTS)
            for g in default_grids(fam)
        )
        for fam in TABLE_FIXTURE_FAMILIES
    }
    server = TableServer(cache_dir=path, cache=PlanCache())
    server.warm(
        families=list(TABLE_FIXTURE_FAMILIES),
        grids=grids,
        search_grid=TABLE_FIXTURE_SEARCH_GRID,
    )
    return {
        "dir": path,
        "families": TABLE_FIXTURE_FAMILIES,
        "grids": grids,
        "search_grid": TABLE_FIXTURE_SEARCH_GRID,
    }


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(20260706)


def _paper_families() -> dict:
    return {
        "uniform": UniformRisk(100.0),
        "poly2": PolynomialRisk(2, 100.0),
        "poly3": PolynomialRisk(3, 80.0),
        "geomdec": GeometricDecreasingLifespan(1.1),
        "geominc": GeometricIncreasingRisk(30.0),
    }


@pytest.fixture(params=list(_paper_families()))
def paper_life(request):
    """Each Section 4 family, one at a time (parametrized)."""
    return _paper_families()[request.param]


@pytest.fixture(params=["uniform", "poly2", "geominc"])
def concave_life(request):
    """The concave (finite-lifespan) families."""
    return _paper_families()[request.param]


@pytest.fixture
def all_families():
    """Every analytic family, including the extras."""
    fams = _paper_families()
    fams["weibull_convex"] = WeibullLife(k=0.8, scale=20.0)
    fams["weibull_general"] = WeibullLife(k=1.8, scale=20.0)
    fams["pareto"] = ParetoLife(d=2.0)
    fams["mixture"] = MixtureLife(
        [UniformRisk(50.0), UniformRisk(150.0)], [0.5, 0.5]
    )
    return fams
