"""Shared fixtures: canonical life functions, RNGs, and tolerances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    MixtureLife,
    ParetoLife,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(20260706)


def _paper_families() -> dict:
    return {
        "uniform": UniformRisk(100.0),
        "poly2": PolynomialRisk(2, 100.0),
        "poly3": PolynomialRisk(3, 80.0),
        "geomdec": GeometricDecreasingLifespan(1.1),
        "geominc": GeometricIncreasingRisk(30.0),
    }


@pytest.fixture(params=list(_paper_families()))
def paper_life(request):
    """Each Section 4 family, one at a time (parametrized)."""
    return _paper_families()[request.param]


@pytest.fixture(params=["uniform", "poly2", "geominc"])
def concave_life(request):
    """The concave (finite-lifespan) families."""
    return _paper_families()[request.param]


@pytest.fixture
def all_families():
    """Every analytic family, including the extras."""
    fams = _paper_families()
    fams["weibull_convex"] = WeibullLife(k=0.8, scale=20.0)
    fams["weibull_general"] = WeibullLife(k=1.8, scale=20.0)
    fams["pareto"] = ParetoLife(d=2.0)
    fams["mixture"] = MixtureLife(
        [UniformRisk(50.0), UniformRisk(150.0)], [0.5, 0.5]
    )
    return fams
