"""Tasks, pools, generators, and period packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workloads.generators import (
    bimodal_tasks,
    jittered_tasks,
    lognormal_tasks,
    uniform_tasks,
)
from repro.workloads.packing import pack_period
from repro.workloads.tasks import Task, TaskPool


class TestTask:
    def test_positive_duration_required(self):
        with pytest.raises(WorkloadError):
            Task(0, 0.0)
        with pytest.raises(WorkloadError):
            Task(1, -1.0)


class TestTaskPool:
    def test_from_durations(self):
        pool = TaskPool.from_durations([1.0, 2.0, 3.0])
        assert pool.pending_count == 3
        assert pool.pending_work == pytest.approx(6.0)
        assert not pool.exhausted

    def test_checkout_fifo_prefix(self):
        pool = TaskPool.from_durations([1.0, 2.0, 3.0, 1.0])
        taken = pool.checkout(3.5)
        assert [t.task_id for t in taken] == [0, 1]
        assert pool.pending_count == 2

    def test_checkout_stops_at_first_misfit(self):
        # FIFO: the 3.0 task blocks even though the 1.0 after it would fit.
        pool = TaskPool.from_durations([1.0, 3.0, 1.0])
        taken = pool.checkout(2.0)
        assert [t.task_id for t in taken] == [0]

    def test_checkout_empty_when_budget_too_small(self):
        pool = TaskPool.from_durations([5.0])
        assert pool.checkout(1.0) == []

    def test_checkout_negative_budget(self):
        pool = TaskPool.from_durations([1.0])
        with pytest.raises(WorkloadError):
            pool.checkout(-1.0)

    def test_commit_and_restore(self):
        pool = TaskPool.from_durations([1.0, 2.0, 3.0])
        taken = pool.checkout(3.5)
        pool.restore(taken)
        assert [t.task_id for t in pool] == [0, 1, 2]  # back at the front
        taken = pool.checkout(3.5)
        pool.commit(taken)
        assert pool.completed_work == pytest.approx(3.0)
        assert pool.pending_count == 1

    def test_exhausted(self):
        pool = TaskPool.from_durations([1.0])
        pool.commit(pool.checkout(2.0))
        assert pool.exhausted


class TestGenerators:
    def test_uniform(self):
        assert np.allclose(uniform_tasks(5, 2.0), 2.0)
        with pytest.raises(WorkloadError):
            uniform_tasks(0)
        with pytest.raises(WorkloadError):
            uniform_tasks(3, -1.0)

    def test_jittered_within_bounds(self, rng):
        d = jittered_tasks(1000, 2.0, 0.25, rng)
        assert np.all(d >= 1.5 - 1e-12)
        assert np.all(d <= 2.5 + 1e-12)
        with pytest.raises(WorkloadError):
            jittered_tasks(10, 1.0, 1.0, rng)

    def test_lognormal_positive_and_skewed(self, rng):
        d = lognormal_tasks(20_000, 1.0, 1.0, rng)
        assert np.all(d > 0)
        assert np.mean(d) > np.median(d)  # right skew
        with pytest.raises(WorkloadError):
            lognormal_tasks(10, 0.0, 1.0, rng)

    def test_bimodal_fractions(self, rng):
        d = bimodal_tasks(20_000, 1.0, 10.0, 0.3, rng)
        frac_long = np.mean(d == 10.0)
        assert frac_long == pytest.approx(0.3, abs=0.02)
        with pytest.raises(WorkloadError):
            bimodal_tasks(10, 1.0, 2.0, 1.5, rng)


class TestPacking:
    def test_pack_fills_budget(self):
        pool = TaskPool.from_durations([2.0] * 10)
        bundle = pack_period(pool, planned_length=7.0, c=1.0)
        assert len(bundle.tasks) == 3  # 3 * 2.0 = 6.0 <= 6.0
        assert bundle.work == pytest.approx(6.0)
        assert bundle.realized_length == pytest.approx(7.0)

    def test_pack_partial_budget(self):
        pool = TaskPool.from_durations([2.0] * 10)
        bundle = pack_period(pool, planned_length=6.0, c=1.0)
        assert len(bundle.tasks) == 2
        assert bundle.realized_length == pytest.approx(5.0)  # undershoots plan

    def test_unproductive_plan_rejected(self):
        pool = TaskPool.from_durations([1.0])
        with pytest.raises(WorkloadError):
            pack_period(pool, planned_length=0.5, c=1.0)

    def test_empty_pool_gives_empty_bundle(self):
        pool = TaskPool()
        bundle = pack_period(pool, 5.0, 1.0)
        assert bundle.empty
