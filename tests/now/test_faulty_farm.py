"""Fault injection in the NOW farm: differential bit-identity and behaviour."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.policies import GuidelinePolicy
from repro.core.life_functions import UniformRisk
from repro.exceptions import SimulationError
from repro.faults import (
    CrashFault,
    FaultPlan,
    LifeDriftFault,
    MessageDelayFault,
    MessageLossFault,
    OverheadJitterFault,
    ResultCorruptionFault,
)
from repro.now.farm import RetryPolicy, run_farm
from repro.now.network import Network, Workstation
from repro.now.owner import OwnerProcess
from repro.workloads.generators import uniform_tasks
from repro.workloads.tasks import TaskPool


def _network(n_ws: int = 3, c: float = 1.0, lifespan: float = 30.0,
             present_mean: float = 5.0) -> Network:
    p = UniformRisk(lifespan)
    return Network(
        [
            Workstation(i, OwnerProcess.from_life_function(p, present_mean))
            for i in range(n_ws)
        ],
        c=c,
    )


def _pool(n: int = 4000, duration: float = 0.5) -> TaskPool:
    return TaskPool.from_durations(uniform_tasks(n, duration))


def _run(faults=None, retry=None, seed: int = 42, horizon: float = 300.0,
         policy=GuidelinePolicy, n_ws: int = 3):
    return run_farm(
        _network(n_ws),
        _pool(),
        lambda ws: policy(),
        horizon=horizon,
        rng=np.random.default_rng(seed),
        faults=faults,
        retry=retry,
    )


def _fingerprint(result) -> tuple:
    """Everything observable about a run, for exact comparison."""
    return (
        result.tasks_completed,
        result.completion_time,
        result.events_processed,
        tuple(
            (
                s.episodes, s.periods_committed, s.periods_killed,
                s.tasks_completed, s.work_done, s.work_lost,
                s.overhead_paid, s.idle_absent_time,
            )
            for s in result.stats.values()
        ),
    )


class TestDifferentialBitIdentity:
    def test_null_plan_bit_identical_to_no_plan(self):
        baseline = _run(faults=None)
        nulled = _run(faults=FaultPlan(seed=123))
        assert _fingerprint(nulled) == _fingerprint(baseline)
        assert nulled.fault_log is not None and len(nulled.fault_log) == 0
        assert baseline.fault_log is None

    def test_null_plan_with_retry_policy_bit_identical(self):
        # The retry path only activates on lost dispatches; with no loss
        # injector it must not perturb anything.
        baseline = _run(faults=None)
        resilient = _run(faults=FaultPlan(seed=0), retry=RetryPolicy())
        assert _fingerprint(resilient) == _fingerprint(baseline)

    def test_fault_runs_are_reproducible(self):
        plan = FaultPlan(
            seed=5,
            injectors=(MessageLossFault(0.3), ResultCorruptionFault(0.2)),
        )
        a = _run(faults=plan, retry=RetryPolicy())
        b = _run(faults=plan, retry=RetryPolicy())
        assert _fingerprint(a) == _fingerprint(b)
        assert a.fault_log.digest() == b.fault_log.digest()


class TestCrash:
    def test_crash_kills_in_flight_and_blocks_dispatch(self):
        plan = FaultPlan(seed=2, injectors=(CrashFault(mtbf=15.0, restart_time=5.0),))
        result = _run(faults=plan)
        assert result.total_crashes > 0
        kinds = result.fault_log.counts()
        assert kinds.get("crash", 0) == result.total_crashes
        assert kinds.get("restart", 0) >= result.total_crashes - 1
        # Crashes cost goodput relative to the clean run.
        clean = _run(faults=None)
        assert result.goodput < clean.goodput

    def test_crash_only_accounting(self):
        plan = FaultPlan(seed=8, injectors=(CrashFault(mtbf=10.0, restart_time=2.0),))
        result = _run(faults=plan)
        for s in result.stats.values():
            assert s.dispatches_lost == 0
            assert s.periods_corrupted == 0


class TestDispatchFaults:
    def test_loss_without_retry_idles(self):
        plan = FaultPlan(seed=3, injectors=(MessageLossFault(0.6),))
        result = _run(faults=plan, retry=None)
        assert result.total_dispatches_lost > 0
        assert all(s.retries == 0 for s in result.stats.values())

    def test_loss_with_retry_recovers_goodput(self):
        plan = FaultPlan(seed=3, injectors=(MessageLossFault(0.6),))
        without = _run(faults=plan, retry=None)
        with_retry = _run(faults=plan, retry=RetryPolicy())
        assert sum(s.retries for s in with_retry.stats.values()) > 0
        assert with_retry.fault_log.counts().get("retry", 0) > 0
        assert with_retry.goodput > without.goodput

    def test_delay_stretches_periods(self):
        plan = FaultPlan(seed=4, injectors=(MessageDelayFault(0.8, delay_mean=2.0),))
        result = _run(faults=plan)
        delayed = sum(s.dispatches_delayed for s in result.stats.values())
        assert delayed > 0
        assert sum(s.delay_time for s in result.stats.values()) > 0.0
        assert result.goodput < _run(faults=None).goodput

    def test_jitter_changes_overhead_paid(self):
        plan = FaultPlan(seed=6, injectors=(OverheadJitterFault(1.0),))
        jittered = _run(faults=plan)
        clean = _run(faults=None)
        assert jittered.fault_log.counts().get("overhead_jitter", 0) > 0
        assert jittered.total_overhead != clean.total_overhead


class TestCommitAndDrift:
    def test_corruption_wastes_work(self):
        plan = FaultPlan(seed=7, injectors=(ResultCorruptionFault(0.5),))
        result = _run(faults=plan)
        assert result.total_periods_corrupted > 0
        assert result.total_work_lost > 0.0
        # Corrupted tasks return to the pool: conservation still holds.
        assert result.tasks_completed <= 4000

    def test_drift_shortens_absences_after_cutover(self):
        plan = FaultPlan(
            seed=9, injectors=(LifeDriftFault(at_fraction=0.5, scale=0.2),)
        )
        drifted = _run(faults=plan)
        clean = _run(faults=None)
        assert drifted.fault_log.counts().get("life_drift", 0) >= 1
        assert drifted.goodput < clean.goodput


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(SimulationError):
            RetryPolicy(base_backoff=0.0)
        with pytest.raises(SimulationError):
            RetryPolicy(factor=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(max_backoff=0.01)
        with pytest.raises(SimulationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=1.5)

    def test_delay_is_bounded_exponential(self):
        policy = RetryPolicy(timeout=0.5, base_backoff=0.25, factor=2.0,
                             max_backoff=1.0, jitter=0.0)
        delays = [policy.delay(k) for k in range(6)]
        assert delays[0] == pytest.approx(0.75)
        assert delays[1] == pytest.approx(1.0)
        # Capped at timeout + max_backoff from attempt 2 on.
        assert all(d == pytest.approx(1.5) for d in delays[2:])
        # Jitter only shrinks the backoff component, never below timeout.
        jittery = RetryPolicy(timeout=0.5, max_backoff=1.0, jitter=1.0)
        assert jittery.delay(5, u=0.999) >= 0.5

    def test_retries_capped_per_episode(self):
        plan = FaultPlan(seed=10, injectors=(MessageLossFault(1.0),))
        retry = RetryPolicy(max_retries=2)
        result = _run(faults=plan, retry=retry, horizon=120.0)
        # Every dispatch is lost: nothing ever commits, and each episode
        # retries at most max_retries times.
        assert result.tasks_completed == 0
        for s in result.stats.values():
            assert s.retries <= retry.max_retries * s.episodes


class TestFarmResultSurface:
    def test_fault_totals_exposed(self):
        plan = FaultPlan(
            seed=12,
            injectors=(MessageLossFault(0.4), ResultCorruptionFault(0.3)),
        )
        result = _run(faults=plan, retry=RetryPolicy())
        assert result.total_dispatches_lost == sum(
            s.dispatches_lost for s in result.stats.values()
        )
        assert result.total_periods_corrupted == sum(
            s.periods_corrupted for s in result.stats.values()
        )
        assert math.isnan(result.completion_time) or result.finished
