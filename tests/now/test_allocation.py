"""Multi-workstation selection by long-run steal rate."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import SimulationError
import numpy as np

from repro.now.allocation import (
    StationProfile,
    episode_value,
    estimate_episode_value,
    estimate_steal_rate,
    select_stations,
    steal_rate,
)


def _profile(ws_id, life, present=10.0, speed=1.0):
    return StationProfile(ws_id=ws_id, life=life, mean_present=present, speed=speed)


class TestEpisodeValue:
    def test_matches_guideline_expected_work(self):
        p = repro.UniformRisk(100.0)
        prof = _profile(0, p)
        value = episode_value(prof, 2.0)
        direct = repro.guideline_schedule(p, 2.0, grid=65).expected_work
        assert value == pytest.approx(direct, rel=1e-9)

    def test_speed_scales_value(self):
        p = repro.UniformRisk(100.0)
        slow = episode_value(_profile(0, p, speed=1.0), 2.0)
        fast = episode_value(_profile(0, p, speed=2.0), 2.0)
        assert fast == pytest.approx(2.0 * slow)

    def test_hopeless_station_is_zero(self):
        # Overhead exceeds the whole opportunity window.
        p = repro.UniformRisk(1.0)
        assert episode_value(_profile(0, p), 2.0) == 0.0


class TestStealRate:
    def test_renewal_reward_formula(self):
        p = repro.UniformRisk(100.0)
        prof = _profile(0, p, present=30.0)
        rate = steal_rate(prof, 2.0)
        expected = episode_value(prof, 2.0) / (30.0 + 50.0)  # mean absent = L/2
        assert rate == pytest.approx(expected, rel=1e-6)

    def test_rarely_absent_owner_rates_low(self):
        p = repro.UniformRisk(100.0)
        often = steal_rate(_profile(0, p, present=5.0), 2.0)
        rarely = steal_rate(_profile(1, p, present=500.0), 2.0)
        assert often > rarely


class TestMonteCarloEstimators:
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_episode_value_consistent_with_analytic(self, engine):
        p = repro.UniformRisk(100.0)
        prof = _profile(0, p, speed=2.0)
        est = estimate_episode_value(
            prof, 2.0, n=40_000, rng=np.random.default_rng(5), engine=engine
        )
        assert est.consistent_with(episode_value(prof, 2.0))
        assert est.stderr > 0.0

    def test_steal_rate_consistent_with_analytic(self):
        p = repro.UniformRisk(100.0)
        prof = _profile(0, p, present=25.0)
        est = estimate_steal_rate(prof, 2.0, n=40_000, rng=np.random.default_rng(6))
        assert est.consistent_with(steal_rate(prof, 2.0))

    def test_unschedulable_station_worth_zero(self):
        # beta <= 1 log-logistic: tail too heavy to bracket -> scheduler refuses.
        from repro.core.life_functions import LogLogisticLife

        prof = _profile(0, LogLogisticLife(alpha=15.0, beta=0.8))
        est = estimate_episode_value(prof, 1.0, n=100)
        assert est.mean == 0.0 and est.stderr == 0.0
        assert episode_value(prof, 1.0) == 0.0


class TestSelection:
    def test_picks_best_by_rate(self):
        profiles = [
            _profile(0, repro.UniformRisk(100.0), present=10.0),       # good
            _profile(1, repro.UniformRisk(100.0), present=1000.0),     # rare
            _profile(2, repro.UniformRisk(100.0), present=10.0, speed=3.0),  # best
            _profile(3, repro.UniformRisk(5.0), present=10.0),         # tiny window
        ]
        picked = select_stations(profiles, c=2.0, budget=2)
        assert [prof.ws_id for prof, _ in picked] == [2, 0]
        rates = [rate for _, rate in picked]
        assert rates[0] >= rates[1]

    def test_budget_validation(self):
        with pytest.raises(SimulationError):
            select_stations([], c=1.0, budget=0)

    def test_profile_validation(self):
        with pytest.raises(SimulationError):
            _profile(0, repro.UniformRisk(10.0), present=0.0)
        with pytest.raises(SimulationError):
            _profile(0, repro.UniformRisk(10.0), speed=-1.0)
