"""The start_absent fast path: single-episode experiments via the farm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.policies import SchedulePolicy
from repro.core.life_functions import UniformRisk
from repro.core.schedule import Schedule
from repro.now.farm import run_farm
from repro.now.network import Network, Workstation
from repro.now.owner import OwnerProcess
from repro.workloads.generators import uniform_tasks
from repro.workloads.tasks import TaskPool


def test_start_absent_gives_immediate_episode(rng):
    p = UniformRisk(50.0)
    net = Network(
        [Workstation(0, OwnerProcess.from_life_function(p, present_mean=1e9))],
        c=1.0,
    )
    pool = TaskPool.from_durations(uniform_tasks(1000, 0.5))
    sched = Schedule([10.0, 8.0])
    result = run_farm(
        net, pool, lambda ws: SchedulePolicy(sched), 60.0, rng, start_absent=True
    )
    # With a (practically) never-returning... no: absence IS sampled from p,
    # so the owner returns within 50; but the episode started at t = 0.
    stats = result.stats[0]
    assert stats.episodes == 1
    assert stats.periods_committed + stats.periods_killed >= 1


def test_start_absent_matches_analytic_expectation():
    """Averaged over many single-episode farms, banked work approaches
    E(S; p) — the farm agrees with the episode-level model."""
    p = UniformRisk(50.0)
    c = 1.0
    sched = Schedule([10.0, 8.0, 6.0])
    works = []
    for seed in range(300):
        net = Network(
            [Workstation(0, OwnerProcess.from_life_function(p, present_mean=1e9))],
            c=c,
        )
        pool = TaskPool.from_durations(uniform_tasks(10_000, 0.0625))
        result = run_farm(
            net, pool, lambda ws: SchedulePolicy(sched), 1e6,
            np.random.default_rng(seed), start_absent=True,
        )
        works.append(result.total_work_done)
    mean = float(np.mean(works))
    analytic = sched.expected_work(p, c)
    stderr = float(np.std(works) / np.sqrt(len(works)))
    # Tasks quantize periods slightly (realized <= planned), so the farm can
    # only undershoot the continuous expectation; allow that bias plus noise.
    assert mean <= analytic + 4 * stderr
    assert mean >= analytic * 0.9 - 4 * stderr
