"""The fault-tolerant checkpointing analogue of [7]."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError, SimulationError
from repro.now.checkpointing import (
    save_schedule,
    simulate_fault_prone_job,
)


class _FixedFailures:
    """Stub failure process with a scripted sequence of failure times."""

    def __init__(self, times):
        self._times = list(times)

    def sample_reclaim_times(self, rng, n):
        return np.array([self._times.pop(0) for _ in range(n)], dtype=float)


class TestSaveSchedule:
    def test_is_guideline_schedule(self):
        p = GeometricDecreasingLifespan(1.1)
        s = save_schedule(p, c_save=0.5)
        assert s.num_periods >= 1
        assert np.all(s.periods > 0.5)


class TestSimulation:
    def test_job_completes(self, rng):
        p = GeometricDecreasingLifespan(1.05)
        run = simulate_fault_prone_job(p, 0.5, total_work=200.0, rng=rng)
        assert run.completion_time > 200.0  # overhead + losses cost something
        assert run.saves_committed > 0

    def test_no_failures_means_no_loss(self, rng):
        # A failure distribution with an enormous half-life: effectively no
        # failures within the job.
        p = GeometricDecreasingLifespan(1.0 + 1e-7)
        schedule = Schedule([1000.0] * 5)
        run = simulate_fault_prone_job(
            p, 1.0, total_work=2000.0, schedule=schedule, rng=rng
        )
        assert run.failures == 0
        assert run.work_lost == 0.0
        # Completion = work + overhead of the saves used.
        expected_saves = int(np.ceil(2000.0 / 999.0))
        assert run.saves_committed == expected_saves

    def test_guideline_beats_bad_intervals(self):
        """Guideline save intervals finish sooner than extreme alternatives."""
        p = GeometricDecreasingLifespan(1.15)
        c, W = 0.5, 120.0

        def mean_time(schedule, seed=0, n=60):
            rng = np.random.default_rng(seed)
            return float(
                np.mean(
                    [
                        simulate_fault_prone_job(
                            p, c, W, schedule=schedule, rng=rng
                        ).completion_time
                        for _ in range(n)
                    ]
                )
            )

        guided = mean_time(save_schedule(p, c))
        tiny = mean_time(Schedule([0.6] * 4000))
        huge = mean_time(Schedule([80.0] * 200))
        assert guided < tiny
        assert guided < huge

    def test_invalid_total_work(self, rng):
        with pytest.raises(SimulationError):
            simulate_fault_prone_job(UniformRisk(10.0), 1.0, 0.0, rng=rng)

    def test_unfinishable_schedule_rejected(self, rng):
        p = UniformRisk(10.0)
        schedule = Schedule([0.5, 0.5])  # both periods below the save cost
        with pytest.raises(SimulationError):
            simulate_fault_prone_job(p, 1.0, 10.0, schedule=schedule, rng=rng)


class TestEdgeCases:
    def test_zero_length_save_schedule_rejected(self, rng):
        # A schedule with no periods cannot even be constructed ...
        with pytest.raises(InvalidScheduleError):
            Schedule([])
        # ... and a single-period one whose save cost consumes the whole
        # period banks nothing (c_save > t0): the job can never finish.
        with pytest.raises(SimulationError):
            simulate_fault_prone_job(
                UniformRisk(10.0), 3.0, 5.0, schedule=Schedule([2.0]), rng=rng
            )

    def test_failure_exactly_at_checkpoint_boundary_kills_period(self):
        """'Reclaimed BY time T_k' (eq. 2.1): a failure landing exactly on a
        save boundary destroys that period's work."""
        p = _FixedFailures([2.0, 100.0])
        schedule = Schedule([2.0, 2.0])  # boundaries at 2.0 and 4.0
        run = simulate_fault_prone_job(
            p, c_save=1.0, total_work=2.0, schedule=schedule,
            rng=np.random.default_rng(0),
        )
        # Epoch 1 dies exactly at the first boundary: nothing banked, the
        # full 2.0 elapsed lost.  Epoch 2 is failure-free and banks both
        # 1-unit periods.
        assert run.failures == 1
        assert run.work_lost == pytest.approx(2.0)
        assert run.saves_committed == 2
        assert run.completion_time == pytest.approx(2.0 + 4.0)

    def test_oversized_save_cost_on_some_periods_still_finishes(self):
        """c_save > t_i zeroes period i's banked work without stalling the
        job, as long as some period clears the save cost."""
        p = _FixedFailures([6.0, 6.0])
        schedule = Schedule([0.5, 5.0])  # first period is pure overhead
        run = simulate_fault_prone_job(
            p, c_save=1.0, total_work=8.0, schedule=schedule,
            rng=np.random.default_rng(0),
        )
        # Only the 5.0-period banks (5.0 - 1.0 = 4.0 per epoch): two epochs,
        # with the first idling from schedule exhaustion (5.5) to its
        # failure (6.0) and losing nothing.
        assert run.failures == 1
        assert run.work_lost == 0.0
        assert run.saves_committed == 4
        assert run.completion_time == pytest.approx(6.0 + 5.5)
