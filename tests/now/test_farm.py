"""The discrete-event NOW farm: conservation laws and policy behaviour."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.policies import (
    FixedChunkPolicy,
    GuidelinePolicy,
    OmniscientPolicy,
    SchedulePolicy,
)
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.exceptions import SimulationError
from repro.now.farm import run_farm
from repro.now.network import Network, Workstation
from repro.now.owner import OwnerProcess
from repro.traces.synthetic import exponential_sampler
from repro.workloads.generators import uniform_tasks
from repro.workloads.tasks import TaskPool


def _network(n_ws: int, p, c: float = 1.0, present_mean: float = 10.0) -> Network:
    stations = [
        Workstation(i, OwnerProcess.from_life_function(p, present_mean))
        for i in range(n_ws)
    ]
    return Network(stations, c=c)


class TestConservation:
    def test_tasks_conserved(self, rng):
        p = GeometricDecreasingLifespan(1.2)
        net = _network(3, p)
        pool = TaskPool.from_durations(uniform_tasks(500, 0.5))
        result = run_farm(net, pool, lambda ws: GuidelinePolicy(), 500.0, rng)
        assert result.tasks_completed + pool.pending_count == 500
        assert len(pool.completed) == result.tasks_completed

    def test_work_accounting_consistent(self, rng):
        p = GeometricDecreasingLifespan(1.2)
        net = _network(2, p)
        pool = TaskPool.from_durations(uniform_tasks(400, 0.5))
        result = run_farm(net, pool, lambda ws: FixedChunkPolicy(4.0), 600.0, rng)
        assert result.total_work_done == pytest.approx(pool.completed_work)
        assert result.total_work_done == pytest.approx(0.5 * result.tasks_completed)

    def test_completion_detected(self, rng):
        p = GeometricDecreasingLifespan(1.1)
        net = _network(4, p, present_mean=2.0)
        pool = TaskPool.from_durations(uniform_tasks(50, 0.25))
        result = run_farm(net, pool, lambda ws: GuidelinePolicy(), 10_000.0, rng)
        assert result.finished
        assert not math.isnan(result.completion_time)
        assert result.completion_time <= 10_000.0

    def test_unfinished_has_nan_completion(self, rng):
        p = GeometricDecreasingLifespan(1.2)
        net = _network(1, p, present_mean=1000.0)  # owner almost always home
        pool = TaskPool.from_durations(uniform_tasks(10_000, 1.0))
        result = run_farm(net, pool, lambda ws: FixedChunkPolicy(3.0), 50.0, rng)
        assert not result.finished
        assert math.isnan(result.completion_time)

    def test_invalid_horizon(self, rng):
        net = _network(1, UniformRisk(10.0))
        with pytest.raises(SimulationError):
            run_farm(net, TaskPool(), lambda ws: FixedChunkPolicy(2.0), 0.0, rng)


class TestPolicies:
    def test_omniscient_never_loses_work(self, rng):
        p = UniformRisk(20.0)
        net = _network(2, p)
        pool = TaskPool.from_durations(uniform_tasks(2000, 0.25))
        result = run_farm(net, pool, lambda ws: OmniscientPolicy(), 300.0, rng)
        assert result.total_work_lost == 0.0
        assert result.total_work_done > 0.0

    def test_omniscient_beats_fixed_chunk(self, rng):
        p = UniformRisk(20.0)
        pool_a = TaskPool.from_durations(uniform_tasks(100_000, 0.25))
        pool_b = TaskPool.from_durations(uniform_tasks(100_000, 0.25))
        net_a = _network(2, p)
        net_b = _network(2, p)
        omni = run_farm(net_a, pool_a, lambda ws: OmniscientPolicy(), 2000.0,
                        np.random.default_rng(5))
        fixed = run_farm(net_b, pool_b, lambda ws: FixedChunkPolicy(4.0), 2000.0,
                         np.random.default_rng(5))
        assert omni.total_work_done > fixed.total_work_done

    def test_draconian_kill_returns_tasks(self, rng):
        """Killed periods restore their tasks; nothing vanishes."""
        p = UniformRisk(5.0)  # short windows: many kills
        net = _network(1, p, c=0.5)
        pool = TaskPool.from_durations(uniform_tasks(1000, 0.25))
        result = run_farm(
            net, pool, lambda ws: FixedChunkPolicy(6.0), 400.0, rng
        )
        stats = result.stats[0]
        assert stats.periods_killed > 0
        assert result.tasks_completed + pool.pending_count == 1000

    def test_schedule_policy_replays(self, rng):
        p = UniformRisk(50.0)
        net = _network(1, p, c=1.0, present_mean=1.0)
        pool = TaskPool.from_durations(uniform_tasks(10_000, 0.5))
        sched = Schedule([10.0, 8.0, 6.0])
        result = run_farm(net, pool, lambda ws: SchedulePolicy(sched), 200.0, rng)
        assert result.events_processed > 0
        stats = result.stats[0]
        assert stats.episodes >= 1

    def test_guideline_beats_bad_fixed_chunk(self):
        """The headline end-to-end claim: guideline sizing outperforms naive
        chunking on the same owner process."""
        p = UniformRisk(30.0)
        results = {}
        for name, factory in [
            ("guideline", lambda ws: GuidelinePolicy()),
            ("tiny", lambda ws: FixedChunkPolicy(1.5)),
            ("huge", lambda ws: FixedChunkPolicy(29.0)),
        ]:
            net = _network(3, p, c=1.0)
            pool = TaskPool.from_durations(uniform_tasks(200_000, 0.25))
            results[name] = run_farm(
                net, pool, factory, 3000.0, np.random.default_rng(11)
            ).total_work_done
        assert results["guideline"] > results["tiny"]
        assert results["guideline"] > results["huge"]


class TestNetworkValidation:
    def test_duplicate_ids_rejected(self):
        own = OwnerProcess.from_life_function(UniformRisk(10.0), 5.0)
        with pytest.raises(SimulationError):
            Network([Workstation(0, own), Workstation(0, own)], c=1.0)

    def test_empty_network_rejected(self):
        with pytest.raises(SimulationError):
            Network([], c=1.0)

    def test_negative_overhead_rejected(self):
        own = OwnerProcess.from_life_function(UniformRisk(10.0), 5.0)
        with pytest.raises(SimulationError):
            Network([Workstation(0, own)], c=-1.0)

    def test_bad_speed_rejected(self):
        own = OwnerProcess.from_life_function(UniformRisk(10.0), 5.0)
        with pytest.raises(SimulationError):
            Workstation(0, own, speed=0.0)

    @pytest.mark.parametrize("speed", [math.inf, math.nan, -2.0])
    def test_nonfinite_speed_rejected(self, speed):
        own = OwnerProcess.from_life_function(UniformRisk(10.0), 5.0)
        with pytest.raises(SimulationError):
            Workstation(0, own, speed=speed)

    def test_speed_scales_throughput(self):
        p = GeometricDecreasingLifespan(1.1)

        def run(speed):
            own = OwnerProcess.from_life_function(p, 5.0)
            net = Network([Workstation(0, own, speed=speed)], c=0.5)
            pool = TaskPool.from_durations(uniform_tasks(100_000, 0.25))
            return run_farm(
                net, pool, lambda ws: GuidelinePolicy(), 2000.0,
                np.random.default_rng(3),
            ).total_work_done

        assert run(2.0) > 1.5 * run(1.0)


class TestPolicyContract:
    def test_nonpositive_period_raises(self, rng):
        """A policy handing back t <= 0 is a contract violation the farm
        names explicitly instead of looping forever on zero-length periods."""

        class BrokenPolicy:
            def start_episode(self, info):
                pass

            def next_period(self, elapsed):
                return 0.0

        net = _network(1, UniformRisk(10.0))
        pool = TaskPool.from_durations(uniform_tasks(10, 0.5))
        with pytest.raises(SimulationError, match="non-positive"):
            run_farm(net, pool, lambda ws: BrokenPolicy(), 100.0, rng)

    def test_negative_period_raises(self, rng):
        class NegativePolicy:
            def start_episode(self, info):
                pass

            def next_period(self, elapsed):
                return -3.0

        net = _network(1, UniformRisk(10.0))
        pool = TaskPool.from_durations(uniform_tasks(10, 0.5))
        with pytest.raises(SimulationError, match="non-positive"):
            run_farm(net, pool, lambda ws: NegativePolicy(), 100.0, rng)

    def test_none_period_declines_quietly(self, rng):
        """None still means "decline": the episode idles, no error."""

        class DecliningPolicy:
            def start_episode(self, info):
                pass

            def next_period(self, elapsed):
                return None

        net = _network(1, UniformRisk(10.0))
        pool = TaskPool.from_durations(uniform_tasks(10, 0.5))
        result = run_farm(net, pool, lambda ws: DecliningPolicy(), 100.0, rng)
        assert result.tasks_completed == 0
