"""Randomized properties of the fleet engine (hypothesis).

Five laws the ISSUE pins down:

* an n = 1 fleet is bit-identical to ``run_farm`` whatever the drawn
  configuration (the differential anchor for everything else);
* the batched calendar-queue core is bit-identical to the heap oracle on
  any drawn configuration, fault plan, and bucket width;
* a fleet is a pure function of ``(seed, spec, policy)`` — rebuilding and
  rerunning reproduces every statistic, and relabeling host keys while
  permuting the per-host vectors permutes the per-host results;
* goodput degrades monotonically (within tolerance) as crash churn rises;
* per-host accounting is conserved: committed + killed periods never
  exceed dispatches, and work totals stay consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.fleetbench import fleet_workload, parity_check
from repro.faults import CrashFault, FaultPlan
from repro.now.fleet import FLEET_POLICIES, FleetSpec, run_fleet


@st.composite
def parity_configs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**20))
    family = draw(st.sampled_from(["uniform", "poly", "geomdec", "geominc"]))
    policy = draw(st.sampled_from(FLEET_POLICIES))
    n_tasks = draw(st.integers(min_value=16, max_value=512))
    # Dyadic durations keep range-packing bit-exact (the parity contract).
    duration = draw(st.sampled_from([0.0625, 0.125, 0.25, 0.5]))
    with_faults = draw(st.booleans())
    return seed, family, policy, n_tasks, duration, with_faults


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=parity_configs())
def test_single_host_parity(config):
    seed, family, policy, n_tasks, duration, with_faults = config
    report = parity_check(
        seed=seed, family=family, policies=(policy,),
        with_faults=with_faults, n_tasks=n_tasks,
        task_duration=duration, horizon=400.0,
    )
    assert report["ok"], report["mismatches"]


@st.composite
def fleet_configs(draw):
    n_hosts = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    policy = draw(st.sampled_from(FLEET_POLICIES))
    hetero = draw(st.booleans())
    work = draw(st.sampled_from([4.0, 8.0, 16.0]))
    return n_hosts, seed, policy, hetero, work


def _spec(n_hosts, seed, hetero):
    if hetero:
        return FleetSpec.heterogeneous(n_hosts, seed=seed)
    return FleetSpec.homogeneous(n_hosts, seed=seed)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=fleet_configs())
def test_seed_determinism(config):
    n_hosts, seed, policy, hetero, work = config
    durations = fleet_workload(n_hosts, work, 0.25)
    a = run_fleet(_spec(n_hosts, seed, hetero), durations, 300.0,
                  policy=policy)
    b = run_fleet(_spec(n_hosts, seed, hetero), durations, 300.0,
                  policy=policy)
    assert a.events_processed == b.events_processed
    assert a.completion_time == b.completion_time or (
        np.isnan(a.completion_time) and np.isnan(b.completion_time)
    )
    assert np.array_equal(a.work_done, b.work_done)
    assert np.array_equal(a.episodes, b.episodes)
    assert np.array_equal(a.steals_succeeded, b.steals_succeeded)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**20),
       n_hosts=st.integers(min_value=3, max_value=12))
def test_host_permutation_invariance(seed, n_hosts):
    """Relabeling hosts (keys + vectors permuted together) permutes the
    per-host outputs of the sharing fleet; aggregates are unchanged.

    Sharing only: stealing's victim draw indexes hosts by *position*, so
    permuting positions legitimately changes victim choices.
    """
    base = FleetSpec.heterogeneous(n_hosts, seed=seed)
    perm = np.random.default_rng(seed + 1).permutation(n_hosts)
    permuted = FleetSpec(
        family=base.family,
        cs=base.cs[perm],
        params=base.params[perm],
        speeds=base.speeds[perm],
        present_means=base.present_means[perm],
        d=base.d,
        seed=base.seed,
        host_keys=base.host_keys[perm],
    )
    durations = fleet_workload(n_hosts, 8.0, 0.25)
    # The shared pool is a global FIFO, so per-host *task* assignment is
    # order-dependent; run each host's schedule over an identical private
    # share instead by comparing only owner-process-driven statistics.
    a = run_fleet(base, durations, 300.0, policy="sharing")
    b = run_fleet(permuted, durations, 300.0, policy="sharing")
    assert np.array_equal(a.episodes[perm], b.episodes)
    assert a.events_processed == b.events_processed


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_goodput_degrades_under_churn(seed):
    spec = FleetSpec.homogeneous(16, seed=seed)
    durations = fleet_workload(16, 16.0, 0.25)
    goodputs = []
    for mtbf in (None, 40.0, 10.0):
        faults = None
        if mtbf is not None:
            faults = FaultPlan(seed=seed + 1, injectors=(
                CrashFault(mtbf=mtbf, restart_time=4.0),
            ))
        result = run_fleet(spec, durations, 200.0, policy="sharing",
                           faults=faults)
        goodputs.append(result.goodput)
    # Monotone within stochastic slack: heavier churn never *helps* much.
    assert goodputs[1] <= goodputs[0] * 1.05
    assert goodputs[2] <= goodputs[0] * 1.05


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=fleet_configs(),
       bucket_width=st.one_of(st.none(), st.floats(0.05, 500.0)),
       with_faults=st.booleans())
def test_cross_core_bit_parity(config, bucket_width, with_faults):
    """The batched calendar-queue core equals the heap oracle bit-for-bit
    on any drawn configuration, fault plan, and bucket width."""
    n_hosts, seed, policy, hetero, work = config
    spec = _spec(n_hosts, seed, hetero)
    durations = fleet_workload(n_hosts, work, 0.25)
    faults = None
    if with_faults:
        faults = FaultPlan(seed=seed + 3, injectors=(
            CrashFault(mtbf=50.0, restart_time=3.0),
        ))
    runs = {}
    for core in ("heap", "batched"):
        runs[core] = run_fleet(
            spec, durations, 300.0, policy=policy, faults=faults,
            record_log=True, core=core,
            bucket_width=bucket_width if core == "batched" else None,
        )
    a, b = runs["heap"], runs["batched"]
    assert a.events_processed == b.events_processed
    assert a.completion_time == b.completion_time or (
        np.isnan(a.completion_time) and np.isnan(b.completion_time)
    )
    assert a.dispatch_log == b.dispatch_log
    assert np.array_equal(a.work_done, b.work_done)
    assert np.array_equal(a.idle_absent_time, b.idle_absent_time)
    assert np.array_equal(a.episodes, b.episodes)
    assert np.array_equal(a.steals_succeeded, b.steals_succeeded)
    if with_faults:
        assert a.fault_log.digest() == b.fault_log.digest()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=fleet_configs())
def test_per_host_conservation(config):
    n_hosts, seed, policy, hetero, work = config
    spec = _spec(n_hosts, seed, hetero)
    durations = fleet_workload(n_hosts, work, 0.25)
    result = run_fleet(spec, durations, 300.0, policy=policy)
    assert result.tasks_completed <= result.tasks_total
    assert int(np.sum(result.tasks_completed_per_host)) == result.tasks_completed
    assert np.all(result.work_done >= 0)
    assert np.all(result.work_lost >= 0)
    assert np.all(result.overhead_paid >= 0)
    assert np.all(result.episodes >= 0)
    assert np.all(result.steals_succeeded <= result.steals_attempted)
    # Work committed per host is a whole number of 0.25-tasks.
    quarters = result.work_done / 0.25
    assert np.allclose(quarters, np.round(quarters))
    assert float(np.sum(result.work_done)) == pytest.approx(
        0.25 * result.tasks_completed
    )
