"""The vectorized fleet engine: bit-parity with run_farm + policy semantics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.fleetbench import (
    cross_core_check,
    fleet_workload,
    parity_check,
    run_policy_comparison,
    scalar_baseline,
)
from repro.exceptions import SimulationError
from repro.faults import CrashFault, FaultPlan, MessageLossFault
from repro.now.fleet import (
    FLEET_CORES,
    FLEET_POLICIES,
    FleetSpec,
    host_network,
    host_rng,
    mean_field_fleet,
    plan_fleet_schedules,
    run_fleet,
)


class TestParity:
    """n = 1 fleets must be bit-identical to run_farm — the tentpole gate."""

    def test_clean_parity_all_policies(self):
        report = parity_check(seed=3, with_faults=False,
                              n_tasks=512, horizon=600.0)
        assert report["ok"], report["mismatches"]

    def test_faulted_parity_all_policies(self):
        report = parity_check(seed=7, with_faults=True)
        assert report["ok"], report["mismatches"]

    @pytest.mark.parametrize("family", ["poly", "geomdec", "geominc"])
    def test_parity_other_families(self, family):
        report = parity_check(seed=11, family=family, with_faults=False,
                              policies=("sharing",), n_tasks=512,
                              horizon=600.0)
        assert report["ok"], report["mismatches"]


class TestCrossCore:
    """The batched calendar-queue core must be bit-identical to the heap
    oracle — all policies, clean and under every fault class."""

    def test_all_policies_all_fault_classes(self):
        report = cross_core_check(seed=5)
        assert report["ok"], report["mismatches"]

    def test_start_absent(self):
        report = cross_core_check(seed=9, start_absent=True)
        assert report["ok"], report["mismatches"]

    @pytest.mark.parametrize("family", ["poly", "geomdec", "geominc"])
    def test_other_families(self, family):
        report = cross_core_check(seed=11, family=family,
                                  policies=("sharing", "stealing"))
        assert report["ok"], report["mismatches"]

    def test_heap_n1_matches_run_farm(self):
        report = parity_check(seed=13, core="heap", n_tasks=512,
                              horizon=600.0)
        assert report["ok"], report["mismatches"]

    def test_bucket_width_is_pure_performance_knob(self):
        """Any bucket width gives the same results — width only moves work
        between the bucket partition and the in-bucket sort."""
        spec = FleetSpec.heterogeneous(12, seed=4)
        durations = fleet_workload(12, 8.0, 0.25)
        ref = run_fleet(spec, durations, 200.0, policy="stealing",
                        core="heap")
        for width in (0.37, 5.0, 10_000.0):
            got = run_fleet(spec, durations, 200.0, policy="stealing",
                            core="batched", bucket_width=width)
            assert got.events_processed == ref.events_processed
            assert got.completion_time == ref.completion_time
            assert np.array_equal(got.work_done, ref.work_done)
            assert np.array_equal(got.steals_succeeded, ref.steals_succeeded)

    def test_result_records_core(self):
        spec = FleetSpec.homogeneous(2, seed=1)
        durations = np.full(8, 0.25)
        for core in FLEET_CORES:
            result = run_fleet(spec, durations, 50.0, core=core)
            assert result.core == core


class TestFleetSpec:
    def test_homogeneous_shape(self):
        spec = FleetSpec.homogeneous(5)
        assert spec.n_hosts == 5
        assert spec.cs.shape == (5,)
        assert np.array_equal(spec.host_keys, np.arange(5))

    def test_heterogeneous_deterministic(self):
        a = FleetSpec.heterogeneous(8, seed=3)
        b = FleetSpec.heterogeneous(8, seed=3)
        assert np.array_equal(a.cs, b.cs)
        assert np.array_equal(a.speeds, b.speeds)
        assert not np.array_equal(
            a.cs, FleetSpec.heterogeneous(8, seed=4).cs
        )

    def test_bad_family_rejected(self):
        with pytest.raises(SimulationError):
            FleetSpec.homogeneous(2, family="weibull")

    def test_bad_speed_rejected(self):
        with pytest.raises(SimulationError):
            FleetSpec(
                family="uniform",
                cs=np.ones(2),
                params=np.full(2, 64.0),
                speeds=np.array([1.0, 0.0]),
                present_means=np.full(2, 8.0),
            )

    def test_nonfinite_speed_rejected(self):
        with pytest.raises(SimulationError):
            FleetSpec(
                family="uniform",
                cs=np.ones(2),
                params=np.full(2, 64.0),
                speeds=np.array([1.0, math.inf]),
                present_means=np.full(2, 8.0),
            )

    def test_duplicate_keys_rejected(self):
        with pytest.raises(SimulationError):
            FleetSpec(
                family="uniform",
                cs=np.ones(2),
                params=np.full(2, 64.0),
                speeds=np.ones(2),
                present_means=np.full(2, 8.0),
                host_keys=np.array([3, 3]),
            )


class TestPlan:
    def test_periods_exceed_overhead(self):
        spec = FleetSpec.heterogeneous(16, seed=5)
        plan = plan_fleet_schedules(spec, grid=5)
        for i in range(16):
            schedule = plan.schedule(i)
            assert schedule.num_periods >= 1
            assert all(t > spec.cs[i] for t in schedule.periods)

    def test_expected_work_positive(self):
        spec = FleetSpec.homogeneous(4)
        plan = plan_fleet_schedules(spec, grid=5)
        assert np.all(plan.expected_work > 0)


class TestPolicySemantics:
    def _run(self, policy, n_hosts=24, seed=2, **kw):
        spec = FleetSpec.homogeneous(n_hosts, seed=seed)
        durations = fleet_workload(n_hosts, 16.0, 0.25)
        return run_fleet(spec, durations, 600.0, policy=policy, **kw)

    def test_sharing_never_steals(self):
        result = self._run("sharing")
        assert result.total_steals == 0
        assert result.finished

    def test_stealing_steals_under_imbalance(self):
        result = self._run("stealing")
        assert result.finished
        assert np.sum(result.steals_attempted) > 0

    def test_latency_charges_rtt(self):
        plain = self._run("stealing")
        latency = self._run("stealing-latency")
        assert float(np.sum(plain.steal_wait)) == 0.0
        assert float(np.sum(latency.steal_wait)) > 0.0
        assert np.sum(latency.steal_wait) == pytest.approx(
            np.sum(latency.steals_succeeded) * 1.0  # homogeneous c = 1
        )

    def test_policies_complete_same_work(self):
        results = {p: self._run(p) for p in FLEET_POLICIES}
        for result in results.values():
            assert result.finished
            assert result.tasks_completed == result.tasks_total

    def test_faster_hosts_do_more_work(self):
        n = 12
        speeds = np.where(np.arange(n) < n // 2, 4.0, 1.0)
        spec = FleetSpec(
            family="uniform",
            cs=np.ones(n),
            params=np.full(n, 64.0),
            speeds=speeds.astype(float),
            present_means=np.full(n, 8.0),
            seed=9,
        )
        durations = fleet_workload(n, 24.0, 0.25)
        result = run_fleet(spec, durations, 600.0, policy="sharing")
        fast = float(np.sum(result.work_done[: n // 2]))
        slow = float(np.sum(result.work_done[n // 2:]))
        assert fast > slow

    def test_churn_kills_and_restores(self):
        spec = FleetSpec.homogeneous(16, seed=4)
        durations = fleet_workload(16, 16.0, 0.25)
        faults = FaultPlan(seed=5, injectors=(
            CrashFault(mtbf=30.0, restart_time=2.0),
            MessageLossFault(0.2),
        ))
        result = run_fleet(spec, durations, 400.0, policy="sharing",
                           faults=faults)
        assert int(np.sum(result.crashes)) > 0
        assert result.fault_log is not None
        assert result.fault_log.digest()
        # Conservation still holds under churn.
        assert result.tasks_completed <= result.tasks_total


class TestValidation:
    def test_bad_policy(self):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError):
            run_fleet(spec, np.ones(4), 10.0, policy="gossip")

    @pytest.mark.parametrize("horizon", [0.0, -5.0, math.inf, math.nan])
    def test_bad_horizon(self, horizon):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError,
                           match="horizon must be positive and finite"):
            run_fleet(spec, np.ones(4), horizon)

    @pytest.mark.parametrize("fraction", [0.0, -0.25, 1.5, math.nan])
    def test_bad_steal_fraction(self, fraction):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError,
                           match=r"steal_fraction must lie in \(0, 1\]"):
            run_fleet(spec, np.ones(4), 10.0, steal_fraction=fraction)

    def test_bad_core(self):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError, match="unknown fleet core"):
            run_fleet(spec, np.ones(4), 10.0, core="quantum")

    @pytest.mark.parametrize("width", [0.0, -1.0, math.inf])
    def test_bad_bucket_width(self, width):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError,
                           match="bucket_width must be positive and finite"):
            run_fleet(spec, np.ones(4), 10.0, bucket_width=width)

    def test_heterogeneous_rejects_empty_fleet(self):
        with pytest.raises(SimulationError, match="at least one host"):
            FleetSpec.heterogeneous(0)

    @pytest.mark.parametrize("kwargs", [
        {"c_range": (0.0, 1.0)},
        {"c_range": (2.0, 1.0)},
        {"param_range": (-3.0, 5.0)},
        {"speed_range": (0.5, math.inf)},
        {"present_mean_range": (math.nan, 4.0)},
    ])
    def test_heterogeneous_rejects_bad_ranges(self, kwargs):
        with pytest.raises(SimulationError, match="0 < lo <= hi"):
            FleetSpec.heterogeneous(4, **kwargs)

    def test_empty_durations(self):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError):
            run_fleet(spec, np.array([]), 10.0)

    def test_nonpositive_duration(self):
        spec = FleetSpec.homogeneous(2)
        with pytest.raises(SimulationError):
            run_fleet(spec, np.array([1.0, 0.0]), 10.0)


class TestMeanField:
    def test_prediction_in_range(self):
        spec = FleetSpec.homogeneous(100, seed=7)
        plan = plan_fleet_schedules(spec, grid=9)
        durations = fleet_workload(100, 32.0, 0.25)
        result = run_fleet(spec, durations, 800.0, plan=plan)
        mf = mean_field_fleet(spec, plan, float(durations.sum()))
        assert result.finished
        assert 0.25 <= mf["makespan"] / result.completion_time <= 4.0
        assert mf["goodput"] > 0
        assert mf["per_host_goodput"].shape == (100,)

    def test_latency_policy_predicts_slower(self):
        spec = FleetSpec.homogeneous(50, seed=7)
        plan = plan_fleet_schedules(spec, grid=9)
        base = mean_field_fleet(spec, plan, 1000.0, policy="stealing")
        slow = mean_field_fleet(spec, plan, 1000.0,
                                policy="stealing-latency")
        assert slow["makespan"] >= base["makespan"]


class TestHarness:
    def test_policy_comparison_record(self):
        spec = FleetSpec.homogeneous(8, seed=1)
        durations = fleet_workload(8, 8.0, 0.25)
        record = run_policy_comparison(spec, durations, 300.0)
        assert set(record["policies"]) == set(FLEET_POLICIES)
        for r in record["policies"].values():
            assert r["events_per_sec"] > 0
            assert r["mean_field"]["makespan"] > 0

    def test_scalar_baseline_matches_contract(self):
        spec = FleetSpec.homogeneous(4, seed=1)
        plan = plan_fleet_schedules(spec, grid=5)
        durations = fleet_workload(4, 8.0, 0.25)
        base = scalar_baseline(spec, durations, 300.0, plan=plan)
        assert base["events"] > 0
        assert base["tasks_completed"] == durations.size

    def test_host_helpers_agree_with_spec(self):
        spec = FleetSpec.heterogeneous(3, seed=2)
        net = host_network(spec, 1)
        assert len(net) == 1
        assert net.c == spec.cs[1]
        assert net.workstations[0].speed == spec.speeds[1]
        # Substreams differ per host but are reproducible.
        a = host_rng(spec, 0).random(4)
        b = host_rng(spec, 0).random(4)
        other = host_rng(spec, 1).random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, other)
