"""OwnerProcess units plus randomized conservation properties of the farm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.policies import DoublingPolicy, FixedChunkPolicy, GuidelinePolicy
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.now.farm import run_farm
from repro.now.network import Network, Workstation
from repro.now.owner import OwnerProcess
from repro.workloads.generators import uniform_tasks
from repro.workloads.tasks import TaskPool


class TestOwnerProcess:
    def test_from_life_function_samples_match(self, rng):
        p = UniformRisk(10.0)
        owner = OwnerProcess.from_life_function(p, present_mean=5.0)
        absences = np.array([owner.next_absent(rng) for _ in range(2000)])
        assert absences.max() <= 10.0 + 1e-9
        assert absences.mean() == pytest.approx(5.0, abs=0.4)

    def test_present_durations_positive(self, rng):
        owner = OwnerProcess.from_life_function(UniformRisk(10.0), present_mean=2.0)
        presents = [owner.next_present(rng) for _ in range(500)]
        assert all(x > 0 for x in presents)

    def test_invalid_present_mean(self):
        with pytest.raises(ValueError):
            OwnerProcess.from_life_function(UniformRisk(10.0), present_mean=0.0)

    def test_true_life_recorded(self):
        p = GeometricDecreasingLifespan(1.5)
        owner = OwnerProcess.from_life_function(p, present_mean=1.0)
        assert owner.true_life is p


@st.composite
def farm_configs(draw):
    n_ws = draw(st.integers(min_value=1, max_value=4))
    c = draw(st.floats(min_value=0.1, max_value=2.0))
    n_tasks = draw(st.integers(min_value=10, max_value=300))
    task_len = draw(st.floats(min_value=0.1, max_value=2.0))
    horizon = draw(st.floats(min_value=10.0, max_value=300.0))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    policy_kind = draw(st.sampled_from(["fixed", "doubling", "guideline"]))
    return n_ws, c, n_tasks, task_len, horizon, seed, policy_kind


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=farm_configs())
def test_farm_conservation_properties(config):
    """Whatever the configuration: tasks are conserved, work totals are
    consistent, and no statistic goes negative."""
    n_ws, c, n_tasks, task_len, horizon, seed, policy_kind = config
    p = GeometricDecreasingLifespan(1.2)
    stations = [
        Workstation(i, OwnerProcess.from_life_function(p, present_mean=5.0))
        for i in range(n_ws)
    ]
    net = Network(stations, c=c)
    pool = TaskPool.from_durations(uniform_tasks(n_tasks, task_len))

    def factory(ws):
        if policy_kind == "fixed":
            return FixedChunkPolicy(max(3.0 * c, task_len + c + 0.1))
        if policy_kind == "doubling":
            return DoublingPolicy(max(2.0 * c, task_len + c + 0.1))
        return GuidelinePolicy()

    result = run_farm(net, pool, factory, horizon, np.random.default_rng(seed))

    # Task conservation: completed + pending == total, with no duplicates.
    assert result.tasks_completed + pool.pending_count == n_tasks
    completed_ids = [t.task_id for t in pool.completed]
    pending_ids = [t.task_id for t in pool]
    assert len(set(completed_ids) | set(pending_ids)) == n_tasks
    assert len(completed_ids) + len(pending_ids) == n_tasks

    # Work accounting.
    assert result.total_work_done == pytest.approx(pool.completed_work)
    assert result.total_work_done == pytest.approx(task_len * result.tasks_completed)
    assert pool.pending_work == pytest.approx(task_len * pool.pending_count)

    for stats in result.stats.values():
        assert stats.work_done >= 0 and stats.work_lost >= 0
        assert stats.overhead_paid >= 0
        assert stats.periods_committed >= 0 and stats.periods_killed >= 0
        # Each committed or killed period paid exactly one overhead.
        assert stats.overhead_paid == pytest.approx(
            c * (stats.periods_committed + stats.periods_killed)
        )
