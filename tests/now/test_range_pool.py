"""Hypothesis property suite for the fleet's ``_RangePool`` in isolation.

The pool is the fleet engine's O(log) replacement for per-Task checkout,
so its contract carries the whole bit-parity story:

* **conservation** — any interleaving of ``checkout`` / ``restore_front``
  / ``steal_tail`` / ``extend_back`` conserves the task-index multiset and
  keeps ``count`` consistent with the ranges;
* **scalar admission** — ``checkout`` reproduces the sequential
  ``used + d <= budget + 1e-12`` test of ``TaskPool.checkout`` task by
  task, including on adversarial dyadic workloads and budgets sitting
  exactly on (or within 1e-12 of) prefix-sum boundaries;
* **cut-seed independence** — the mean-duration hint and the binary
  search land on the same unique cut, and the JIT fix-up entry point is
  interchangeable with the inline loops.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.now.fleet import _RangePool


def _pool(durations, ranges=None, fixup=None):
    cum = np.concatenate(([0.0], np.cumsum(durations)))
    if ranges is None:
        ranges = [(0, len(durations))]
    return _RangePool(ranges, cum, fixup=fixup)


def _indices(pool):
    return [k for lo, hi in pool.ranges for k in range(lo, hi)]


def _scalar_checkout(durations, order, budget):
    """The literal TaskPool admission loop over prefix-sum work values."""
    cum = np.concatenate(([0.0], np.cumsum(durations)))
    limit = budget + 1e-12
    used = 0.0
    taken = []
    for k in order:
        d = float(cum[k + 1] - cum[k])
        if used + d > limit:
            break
        used += d
        taken.append(k)
    return taken, used


def _reference_fixup(cum, base, used, limit, lo, hi, j):
    """Pure-Python mirror of ``jitkernels.kernels.fleet_checkout_fixup``."""
    if j < lo:
        j = lo
    elif j > hi:
        j = hi
    while j < hi and used + (cum[j + 1] - base) <= limit:
        j += 1
    while j > lo and used + (cum[j] - base) > limit:
        j -= 1
    return j


#: Dyadic durations: partial prefix sums are exact, so checkout must be
#: *bit*-identical to the scalar loop, not merely close.
dyadic_durations = st.lists(
    st.sampled_from([0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 2.0]),
    min_size=1, max_size=64,
).map(np.array)

#: Messy float durations for the conservation / cut-uniqueness laws
#: (those must hold for any positive durations, rounding noise included).
messy_durations = st.lists(
    st.floats(min_value=1e-6, max_value=10.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=48,
).map(np.array)


@st.composite
def pool_budgets(draw, durations_strategy):
    durations = draw(durations_strategy)
    total = float(np.sum(durations))
    mode = draw(st.sampled_from(["plain", "boundary", "boundary-eps"]))
    if mode == "plain":
        budget = draw(st.floats(min_value=0.0, max_value=total * 1.25,
                                allow_nan=False))
    else:
        # Sit exactly on a prefix-sum boundary, or 1e-12 either side of
        # it — the admission tolerance's own knife edge.
        cum = np.concatenate(([0.0], np.cumsum(durations)))
        k = draw(st.integers(min_value=0, max_value=len(durations)))
        budget = float(cum[k])
        if mode == "boundary-eps":
            budget += draw(st.sampled_from([-1e-12, 1e-12]))
    return durations, max(0.0, budget)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=pool_budgets(dyadic_durations))
def test_checkout_matches_scalar_admission(case):
    durations, budget = case
    pool = _pool(durations)
    taken, used, n_taken = pool.checkout(budget)
    got = [k for lo, hi in taken for k in range(lo, hi)]
    want, want_used = _scalar_checkout(durations, range(len(durations)),
                                       budget)
    assert got == want
    assert used == want_used
    assert n_taken == len(want)
    assert pool.count == len(durations) - n_taken
    assert _indices(pool) == list(range(len(want), len(durations)))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=pool_budgets(st.one_of(dyadic_durations, messy_durations)),
       inv_mean_scale=st.floats(min_value=0.05, max_value=20.0),
       use_fixup=st.booleans())
def test_cut_is_seed_independent(case, inv_mean_scale, use_fixup):
    """Binary search, any mean-duration hint, and the fix-up entry point
    all land on the same unique cut."""
    durations, budget = case
    mean = float(np.mean(durations))
    fixup = _reference_fixup if use_fixup else None
    base_pool = _pool(durations)
    a = base_pool.checkout(budget)
    b = _pool(durations, fixup=fixup).checkout(
        budget, inv_mean=inv_mean_scale / mean)
    assert a == b


@st.composite
def op_sequences(draw):
    durations = draw(st.one_of(dyadic_durations, messy_durations))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    ops = [draw(st.sampled_from(["checkout", "restore", "steal", "extend"]))
           for _ in range(n_ops)]
    knobs = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in ops]
    return durations, ops, knobs


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seq=op_sequences())
def test_round_trips_conserve_indices_and_count(seq):
    """Random op interleavings conserve the index multiset and count, and
    every parked range re-enters exactly as it left."""
    durations, ops, knobs = seq
    n = len(durations)
    total = float(np.sum(durations))
    pool = _pool(durations)
    parked = deque()  # (ranges, n_tasks) checked out or stolen, FIFO
    for op, knob in zip(ops, knobs):
        if op == "checkout":
            taken, used, n_taken = pool.checkout(knob * total)
            assert used <= knob * total + 1e-12
            if n_taken:
                parked.append((taken, n_taken))
        elif op == "steal":
            stolen, got = pool.steal_tail(int(knob * n) + 1)
            assert got == sum(hi - lo for lo, hi in stolen)
            if got:
                parked.append((stolen, got))
        elif parked:
            ranges, n_tasks = parked.popleft()
            if op == "restore":
                pool.restore_front(ranges)
            else:
                pool.extend_back(ranges)
        held = sum(k for _, k in parked)
        assert pool.count == n - held
        assert pool.count == sum(hi - lo for lo, hi in pool.ranges)
        in_pool = _indices(pool)
        out = sorted(k for ranges, _ in parked
                     for lo, hi in ranges for k in range(lo, hi))
        assert sorted(in_pool + out) == list(range(n))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(durations=st.one_of(dyadic_durations, messy_durations),
       frac=st.floats(min_value=0.1, max_value=0.9))
def test_checkout_restore_is_identity(durations, frac):
    pool = _pool(durations)
    before = _indices(pool)
    taken, used, n_taken = pool.checkout(frac * float(np.sum(durations)))
    pool.restore_front(taken)
    assert _indices(pool) == before
    assert pool.count == len(durations)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(durations=st.one_of(dyadic_durations, messy_durations),
       target=st.integers(min_value=0, max_value=80))
def test_steal_tail_takes_exact_fifo_suffix(durations, target):
    """A steal removes exactly ``min(target, count)`` tasks, and they are
    precisely the FIFO tail in original order."""
    n = len(durations)
    pool = _pool(durations)
    stolen, got = pool.steal_tail(target)
    assert got == min(target, n)
    flat = [k for lo, hi in stolen for k in range(lo, hi)]
    assert flat == list(range(n - got, n))
    assert _indices(pool) == list(range(n - got))
    # A thief queueing the loot preserves global FIFO order within it.
    thief = _pool(durations, ranges=[])
    thief.extend_back(stolen)
    assert _indices(thief) == flat
