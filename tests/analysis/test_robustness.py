"""Robustness of the guidelines to misestimated life functions."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.robustness import (
    misestimation_ratio,
    parameter_error_sweep,
    sampling_error_sweep,
)


class TestParameterError:
    def test_zero_error_is_optimal(self):
        p = repro.UniformRisk(200.0)
        ratio, _ = misestimation_ratio(p, p, 2.0)
        assert ratio == pytest.approx(1.0, abs=1e-6)

    def test_graceful_degradation_uniform(self):
        """±30% lifespan error costs only a few percent — the paper's
        'extends easily to approximate knowledge' claim, quantified."""
        p_true = repro.UniformRisk(200.0)
        points = parameter_error_sweep(
            p_true,
            lambda eps: repro.UniformRisk(200.0 * (1 + eps)),
            2.0,
            errors=(-0.3, -0.1, 0.0, 0.1, 0.3),
        )
        by_err = {pt.error: pt.ratio for pt in points}
        assert by_err[0.0] == pytest.approx(1.0, abs=1e-6)
        assert by_err[-0.3] > 0.85
        assert by_err[0.3] > 0.95
        # More error never helps (on each side of zero).
        assert by_err[-0.3] <= by_err[-0.1] + 1e-9
        assert by_err[0.3] <= by_err[0.1] + 1e-9

    def test_half_life_error_geomdec(self):
        a_true = 1.2
        p_true = repro.GeometricDecreasingLifespan(a_true)
        points = parameter_error_sweep(
            p_true,
            lambda eps: repro.GeometricDecreasingLifespan(1.0 + (a_true - 1.0) * (1 + eps)),
            0.5,
            errors=(-0.5, 0.0, 0.5),
        )
        assert all(pt.ratio > 0.9 for pt in points)


class TestSamplingError:
    def test_ratio_improves_with_samples(self, rng):
        from repro.traces.fitting import fit_geometric_decreasing

        p_true = repro.GeometricDecreasingLifespan(1.25)
        points = sampling_error_sweep(
            p_true,
            lambda data: fit_geometric_decreasing(data).life,
            c=0.5,
            sample_sizes=(5, 50, 500),
            replications=6,
            rng=rng,
        )
        ratios = [pt.ratio for pt in points]
        assert ratios[-1] > 0.995       # 500 samples: essentially optimal
        assert ratios[-1] >= ratios[0]  # more data never hurts on average
        assert all(r > 0.7 for r in ratios)  # even 5 samples is workable


class TestZeroOptimalWork:
    def test_explicit_zero_optimum_warns_and_returns_zero(self):
        p = repro.UniformRisk(50.0)
        with pytest.warns(RuntimeWarning, match="misestimation ratio 0.0"):
            ratio, t0 = misestimation_ratio(p, p, 1.0, optimal_work=0.0)
        assert ratio == 0.0
        assert t0 > 0.0

    def test_unproductive_overhead_warns_instead_of_dividing(self):
        # c equal to the true lifespan: the hat schedule exists (built from
        # the optimistic estimate) but the true optimum banks nothing.
        p_true = repro.UniformRisk(2.0)
        p_hat = repro.UniformRisk(50.0)
        with pytest.warns(RuntimeWarning):
            ratio, _ = misestimation_ratio(p_true, p_hat, 2.0)
        assert ratio == 0.0
