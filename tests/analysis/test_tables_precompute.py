"""Precomputed guideline tables: sweep, persistence, interpolation, serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables_precompute import (
    TABLE_FAMILIES,
    TABLE_SCHEMA_VERSION,
    GuidelineTable,
    TableServer,
    default_grids,
    load_table,
    make_family_life,
    precompute_table,
    save_table,
    table_path,
)
from repro.core.optimizer import optimize_t0_via_recurrence
from repro.exceptions import PlanCacheError


@pytest.fixture(scope="module")
def uniform_table() -> GuidelineTable:
    return precompute_table(
        "uniform",
        c_grid=np.geomspace(1.0, 4.0, 5),
        param_grid=np.geomspace(80.0, 640.0, 5),
    )


class TestPrecompute:
    def test_shapes_and_monotone_t0(self, uniform_table):
        assert uniform_table.shape == (5, 5)
        assert uniform_table.t0.shape == (5, 5)
        assert np.all(np.isfinite(uniform_table.t0))
        # t0* grows with L for the uniform family (Section 4.1: ~ sqrt(2cL)).
        assert np.all(np.diff(uniform_table.t0, axis=1) > 0)

    def test_grid_matches_scalar_optimizer(self, uniform_table):
        i, j = 2, 3
        p = make_family_life("uniform", float(uniform_table.param_grid[j]))
        t0, _, ew = optimize_t0_via_recurrence(
            p, float(uniform_table.c_grid[i]),
            grid=uniform_table.search_grid, widen=uniform_table.search_widen,
        )
        assert uniform_table.t0[i, j] == pytest.approx(t0, rel=1e-12)
        assert uniform_table.expected_work[i, j] == pytest.approx(ew, rel=1e-12)

    def test_process_pool_matches_serial(self):
        kwargs = dict(c_grid=np.geomspace(1.0, 3.0, 3),
                      param_grid=np.geomspace(20.0, 60.0, 3), search_grid=33)
        serial = precompute_table("geominc", **kwargs)
        pooled = precompute_table("geominc", n_jobs=2, **kwargs)
        np.testing.assert_array_equal(serial.t0, pooled.t0)
        np.testing.assert_array_equal(serial.expected_work, pooled.expected_work)

    def test_rejects_bad_grids(self):
        with pytest.raises(PlanCacheError):
            precompute_table("uniform", c_grid=np.array([1.0]),
                             param_grid=np.array([10.0, 20.0]))
        with pytest.raises(PlanCacheError):
            precompute_table("uniform", c_grid=np.array([2.0, 1.0]),
                             param_grid=np.array([10.0, 20.0]))

    def test_unknown_family(self):
        with pytest.raises(PlanCacheError):
            make_family_life("exotic", 1.0)
        with pytest.raises(PlanCacheError):
            default_grids("exotic")


class TestInterpolation:
    def test_on_grid_point_recovers_corner(self, uniform_table):
        c = float(uniform_table.c_grid[2])
        v = float(uniform_table.param_grid[2])
        t0, lo, hi = uniform_table.interpolate_t0(c, v)
        assert lo <= t0 <= hi
        assert t0 == pytest.approx(uniform_table.t0[2, 2], rel=1e-9)

    def test_off_grid_between_corners(self, uniform_table):
        c = float(np.sqrt(uniform_table.c_grid[1] * uniform_table.c_grid[2]))
        v = float(np.sqrt(uniform_table.param_grid[1] * uniform_table.param_grid[2]))
        t0, lo, hi = uniform_table.interpolate_t0(c, v)
        corners = uniform_table.t0[1:3, 1:3]
        assert float(np.min(corners)) == lo
        assert float(np.max(corners)) == hi
        assert lo <= t0 <= hi

    def test_contains(self, uniform_table):
        assert uniform_table.contains(2.0, 100.0)
        assert not uniform_table.contains(0.5, 100.0)
        assert not uniform_table.contains(2.0, 1e6)

    def test_nan_cell_raises(self, uniform_table):
        broken = GuidelineTable(
            family=uniform_table.family,
            param_name=uniform_table.param_name,
            fixed=uniform_table.fixed,
            c_grid=uniform_table.c_grid,
            param_grid=uniform_table.param_grid,
            t0=np.where(np.eye(5, dtype=bool), np.nan, uniform_table.t0),
            expected_work=uniform_table.expected_work,
            num_periods=uniform_table.num_periods,
        )
        with pytest.raises(Exception):
            broken.interpolate_t0(float(broken.c_grid[0]) * 1.01,
                                  float(broken.param_grid[0]) * 1.01)


class TestPersistence:
    def test_npz_round_trip(self, uniform_table, tmp_path):
        path = table_path(tmp_path, "uniform")
        save_table(uniform_table, path)
        loaded = load_table(path)
        assert loaded is not None
        assert loaded.family == "uniform"
        assert loaded.param_name == uniform_table.param_name
        assert loaded.schema_version == TABLE_SCHEMA_VERSION
        np.testing.assert_array_equal(loaded.t0, uniform_table.t0)
        np.testing.assert_array_equal(loaded.expected_work,
                                      uniform_table.expected_work)
        np.testing.assert_array_equal(loaded.c_grid, uniform_table.c_grid)

    def test_missing_file_is_none(self, tmp_path):
        assert load_table(tmp_path / "nope.npz") is None

    def test_corrupt_file_is_none(self, uniform_table, tmp_path):
        path = table_path(tmp_path, "uniform")
        save_table(uniform_table, path)
        path.write_bytes(b"garbage" * 100)
        assert load_table(path) is None

    def test_truncated_file_is_none(self, uniform_table, tmp_path):
        path = table_path(tmp_path, "uniform")
        save_table(uniform_table, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert load_table(path) is None


class TestServer:
    def test_off_grid_query_accuracy(self, uniform_table):
        server = TableServer()
        server.add_table(uniform_table)
        rng = np.random.default_rng(7)
        for _ in range(4):
            c = float(rng.uniform(1.1, 3.8))
            L = float(rng.uniform(90.0, 600.0))
            answer = server.query("uniform", c, L)
            assert answer.source == "table"
            p = make_family_life("uniform", L)
            _, _, ew = optimize_t0_via_recurrence(p, c)
            assert answer.expected_work == pytest.approx(ew, rel=1e-6)
            assert answer.schedule.num_periods >= 1
        assert server.counters["table"] == 4
        assert server.counters["optimizer"] == 0

    def test_out_of_bounds_falls_back_to_optimizer(self, uniform_table):
        server = TableServer()
        server.add_table(uniform_table)
        answer = server.query("uniform", 20.0, 5000.0)
        assert answer.source == "optimizer"
        p = make_family_life("uniform", 5000.0)
        _, _, ew = optimize_t0_via_recurrence(p, 20.0)
        assert answer.expected_work == pytest.approx(ew, rel=1e-12)

    def test_no_table_falls_back(self, tmp_path):
        server = TableServer(cache_dir=tmp_path)  # nothing warmed
        answer = server.query("geomdec", 0.5, 1.3)
        assert answer.source == "optimizer"

    def test_corrupt_table_on_disk_falls_back(self, uniform_table, tmp_path):
        path = table_path(tmp_path, "uniform")
        save_table(uniform_table, path)
        path.write_bytes(b"junk")
        server = TableServer(cache_dir=tmp_path)
        answer = server.query("uniform", 2.0, 100.0)
        assert answer.source == "optimizer"

    def test_warm_persists_and_reloads(self, tmp_path):
        grids = {"geominc": (np.geomspace(0.5, 2.0, 3), np.geomspace(15.0, 60.0, 3))}
        server = TableServer(cache_dir=tmp_path)
        built = server.warm(families=["geominc"], grids=grids, search_grid=33)
        assert set(built) == {"geominc"}
        assert table_path(tmp_path, "geominc").exists()
        fresh = TableServer(cache_dir=tmp_path)
        answer = fresh.query("geominc", 1.0, 30.0)
        assert answer.source == "table"

    def test_no_polish_query(self, uniform_table):
        server = TableServer()
        server.add_table(uniform_table)
        answer = server.query("uniform", 2.1, 111.0, polish=False)
        assert answer.source == "table"
        p = make_family_life("uniform", 111.0)
        _, _, ew = optimize_t0_via_recurrence(p, 2.1)
        # Raw bilinear t0 (no polish): still close, though not 1e-6 tight.
        assert answer.expected_work == pytest.approx(ew, rel=1e-2)

    def test_all_families_declared(self):
        assert set(TABLE_FAMILIES) == {"uniform", "poly", "geomdec", "geominc"}
        for fam in TABLE_FAMILIES:
            c_grid, param_grid = default_grids(fam)
            assert c_grid.size >= 2 and param_grid.size >= 2
            p = make_family_life(fam, float(param_grid[0]),
                                 dict(TABLE_FAMILIES[fam][1]))
            assert p(0.0) == pytest.approx(1.0)


class TestBatchQueries:
    def _answers_equal(self, a, b):
        return (
            a.family == b.family
            and a.c == b.c
            and a.param_value == b.param_value
            and a.t0 == b.t0
            and a.expected_work == b.expected_work
            and a.source == b.source
            and a.termination == b.termination
            and np.array_equal(a.schedule.periods, b.schedule.periods)
        )

    def test_query_batch_matches_scalar_loop(self, uniform_table):
        """Mixed on-grid / off-grid / out-of-bounds: bit-identical answers."""
        queries = [
            (float(uniform_table.c_grid[2]), float(uniform_table.param_grid[1])),
            (2.3, 199.0),
            (20.0, 5000.0),  # out of bounds -> optimizer fallback
            (1.7, 333.3),
            (3.9, 91.0),
        ]
        batch_server = TableServer()
        batch_server.add_table(uniform_table)
        batch = batch_server.query_batch(
            ["uniform"] * len(queries),
            [q[0] for q in queries],
            [q[1] for q in queries],
        )
        scalar_server = TableServer()
        scalar_server.add_table(uniform_table)
        scalar = [scalar_server.query("uniform", c, v) for c, v in queries]
        assert len(batch) == len(queries)
        for a, b in zip(batch, scalar):
            assert self._answers_equal(a, b)
        for key in ("table", "optimizer"):
            assert batch_server.counters[key] == scalar_server.counters[key]

    def test_query_batch_groups_families(self, uniform_table):
        """A mixed-family batch answers each lane from its own table."""
        server = TableServer()
        server.add_table(uniform_table)
        answers = server.query_batch(
            ["uniform", "geomdec", "uniform"],
            [2.0, 0.5, 2.5],
            [150.0, 1.3, 200.0],
        )
        assert [a.source for a in answers] == ["table", "optimizer", "table"]
        assert [a.family for a in answers] == ["uniform", "geomdec", "uniform"]

    def test_query_batch_rejects_mismatched_lengths(self, uniform_table):
        server = TableServer()
        server.add_table(uniform_table)
        with pytest.raises(PlanCacheError):
            server.query_batch(["uniform"], [1.0, 2.0], [100.0])

    def test_query_batch_unknown_family(self):
        with pytest.raises(PlanCacheError, match="unknown table family"):
            TableServer().query_batch(["nope"], [1.0], [100.0])

    def test_interpolate_t0_batch_matches_scalar(self, uniform_table):
        cs = np.array([1.5, 2.5, 3.5])
        vs = np.array([100.0, 250.0, 500.0])
        est, lo, hi, valid = uniform_table.interpolate_t0_batch(cs, vs)
        assert valid.all()
        for k in range(cs.size):
            s_est, s_lo, s_hi = uniform_table.interpolate_t0(
                float(cs[k]), float(vs[k])
            )
            assert est[k] == s_est and lo[k] == s_lo and hi[k] == s_hi


class TestMmapTables:
    def test_mmap_load_equals_memory_load(self, uniform_table, tmp_path):
        path = save_table(uniform_table, table_path(tmp_path, "uniform"))
        mem = load_table(path)
        mapped = load_table(path, mmap_mode="r")
        assert mapped is not None
        np.testing.assert_array_equal(mem.t0, mapped.t0)
        np.testing.assert_array_equal(mem.expected_work, mapped.expected_work)
        np.testing.assert_array_equal(mem.num_periods, mapped.num_periods)

    def test_mmap_arrays_are_read_only_views(self, uniform_table, tmp_path):
        path = save_table(uniform_table, table_path(tmp_path, "uniform"))
        mapped = load_table(path, mmap_mode="r")
        assert not mapped.t0.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            mapped.t0[0, 0] = 1.0

    def test_mmap_serving_matches_memory_serving(self, uniform_table, tmp_path):
        save_table(uniform_table, table_path(tmp_path, "uniform"))
        mapped = TableServer(cache_dir=tmp_path, mmap_tables=True)
        plain = TableServer(cache_dir=tmp_path, mmap_tables=False)
        a = mapped.query("uniform", 2.3, 199.0)
        b = plain.query("uniform", 2.3, 199.0)
        assert a.t0 == b.t0 and a.expected_work == b.expected_work
        assert np.array_equal(a.schedule.periods, b.schedule.periods)

    def test_compressed_npz_falls_back_to_memory_load(self, uniform_table, tmp_path):
        # np.load cannot mmap inside a compressed archive: the loader must
        # silently fall back to a plain in-memory load, never fail.
        path = table_path(tmp_path, "uniform")
        save_table(uniform_table, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = dict(data)
        np.savez_compressed(path, **arrays)
        mapped = load_table(path, mmap_mode="r")
        assert mapped is not None
        np.testing.assert_array_equal(mapped.t0, uniform_table.t0)


class TestFallbackCache:
    def test_off_grid_fallback_rides_the_cache(self, uniform_table, tmp_path):
        """Out-of-bounds queries warm the plan cache instead of re-optimizing."""
        server = TableServer(cache_dir=tmp_path)
        server.add_table(uniform_table)
        assert server.cache is not None  # auto-created over cache_dir
        first = server.query("uniform", 20.0, 5000.0)
        assert first.source == "optimizer"
        misses_after_first = server.cache.stats.misses
        hits_after_first = server.cache.stats.hits
        second = server.query("uniform", 20.0, 5000.0)
        assert second.source == "optimizer"
        assert server.cache.stats.hits > hits_after_first
        assert server.cache.stats.misses == misses_after_first
        assert second.t0 == first.t0
        assert second.expected_work == first.expected_work
        assert np.array_equal(second.schedule.periods, first.schedule.periods)

    def test_explicit_cache_not_replaced(self, uniform_table, tmp_path):
        from repro.core.plancache import PlanCache

        cache = PlanCache()
        server = TableServer(cache_dir=tmp_path, cache=cache)
        assert server.cache is cache
