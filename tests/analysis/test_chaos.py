"""Tier-1 smoke of the chaos matrix (E-CHAOS runs the full grid nightly)."""

from __future__ import annotations

import pytest

from repro.analysis.chaos import (
    FAULT_CLASSES,
    ChaosConfig,
    QUICK_CONFIG,
    build_fault_plan,
    chaos_matrix,
    run_chaos_cell,
)
from repro.exceptions import FaultPlanError
from repro.faults import CrashFault, MessageLossFault


class TestBuildFaultPlan:
    def test_zero_rate_is_null_plan(self):
        for fault_class in FAULT_CLASSES:
            plan, tier_rates = build_fault_plan(fault_class, 0.0, seed=1)
            assert plan.is_null
            assert tier_rates is None

    def test_farm_classes_map_to_injectors(self):
        plan, tier_rates = build_fault_plan("crash", 0.5, seed=2)
        assert tier_rates is None
        assert isinstance(plan.get(CrashFault), CrashFault)
        plan, _ = build_fault_plan("message_loss", 0.3, seed=2)
        assert plan.get(MessageLossFault).prob == 0.3

    def test_planner_outage_maps_to_tier_rates(self):
        plan, tier_rates = build_fault_plan("planner_outage", 0.7, seed=3)
        assert plan.is_null
        assert tier_rates == {
            "table": 0.7, "cache": 0.7, "optimizer": 0.7, "guideline": 0.7,
        }

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            build_fault_plan("meteor_strike", 0.5, seed=0)
        with pytest.raises(FaultPlanError):
            build_fault_plan("crash", 1.5, seed=0)
        with pytest.raises(FaultPlanError):
            ChaosConfig(n_ws=0)
        with pytest.raises(FaultPlanError):
            chaos_matrix(rates=(0.9, 0.0))
        with pytest.raises(FaultPlanError):
            chaos_matrix(classes=["nope"])


class TestCellDeterminism:
    def test_cell_reproducible_bit_for_bit(self):
        a = run_chaos_cell("message_loss", 0.6, seed=0, config=QUICK_CONFIG)
        b = run_chaos_cell("message_loss", 0.6, seed=0, config=QUICK_CONFIG)
        assert a.fault_digest == b.fault_digest
        assert a.goodput == b.goodput
        # Everything except the serving latency timers is bit-identical.
        da, db = a.as_dict(), b.as_dict()
        sa, sb = da.pop("serving"), db.pop("serving")
        assert da == db
        assert sa["breakers"] == sb["breakers"]
        for tier in sa["tiers"]:
            counters_a = {
                k: v for k, v in sa["tiers"][tier].items()
                if not k.endswith("_seconds")
            }
            counters_b = {
                k: v for k, v in sb["tiers"][tier].items()
                if not k.endswith("_seconds")
            }
            assert counters_a == counters_b

    def test_faulted_cell_observably_faulted(self):
        cell = run_chaos_cell("message_loss", 0.6, seed=0, config=QUICK_CONFIG)
        assert cell.dispatches_lost > 0
        assert cell.retries > 0
        assert cell.goodput > 0.0


class TestQuickMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        return chaos_matrix(quick=True)

    def test_shape(self, report):
        assert set(report["summary"]) == set(FAULT_CLASSES)
        assert len(report["cells"]) == len(FAULT_CLASSES) * 3  # 3 rates x 1 seed
        assert report["seeds"] == [0]

    def test_stack_survives_every_cell(self, report):
        """Acceptance: the chain keeps serving valid schedules in every cell."""
        for cell in report["cells"]:
            assert cell["goodput"] > 0.0, (
                f"{cell['fault_class']}@{cell['rate']}: stack stopped serving"
            )
            assert cell["episodes"] > 0

    def test_goodput_degrades_monotonically(self, report):
        """Acceptance: seed-averaged goodput non-increasing in the rate."""
        for fault_class, s in report["summary"].items():
            assert s["monotone"], (
                f"{fault_class}: goodput {s['mean_goodput']} not monotone"
            )
            assert s["degrades"], f"{fault_class}: no degradation at max rate"

    def test_planner_outage_cells_degrade_to_closed_form(self, report):
        outage = [
            c for c in report["cells"]
            if c["fault_class"] == "planner_outage" and c["rate"] > 0.5
        ]
        assert outage
        for cell in outage:
            assert cell["planner_failures"] + cell["degraded_episodes"] > 0
            errors = sum(
                t["errors"] for t in cell["serving"]["tiers"].values()
            )
            assert errors > 0

    def test_zero_rate_cells_identical_across_classes(self, report):
        """Rate 0 is the shared baseline: every class replays the same run."""
        baselines = {
            c["fault_class"]: c for c in report["cells"] if c["rate"] == 0.0
        }
        digests = {c["fault_digest"] for c in baselines.values()}
        goodputs = {c["goodput"] for c in baselines.values()}
        assert len(digests) == 1
        assert len(goodputs) == 1
