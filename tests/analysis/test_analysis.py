"""Analysis helpers: tables, sweeps, efficiency reports."""

from __future__ import annotations

import math

import pytest

from repro.analysis.efficiency import efficiency_report, work_ratio
from repro.analysis.sweeps import cartesian_sweep, run_sweep
from repro.analysis.tables import format_table
from repro.core.life_functions import UniformRisk
from repro.exceptions import SweepError


class TestTables:
    def test_basic_render(self):
        text = format_table(
            ["name", "value", "ok"],
            [["alpha", 1.25, True], ["beta", 3.5e-9, False]],
            title="demo",
        )
        assert "demo" in text
        assert "alpha" in text
        assert "yes" in text and "no" in text
        assert "3.5e-09" in text or "3.50e-09" in text

    def test_nan_rendering(self):
        text = format_table(["x"], [[float("nan")]])
        assert "nan" in text

    def test_alignment_consistent(self):
        text = format_table(["a", "b"], [["x", 1.0], ["longer", 2.0]])
        lines = text.splitlines()
        assert len(set(len(l) for l in lines[-2:])) == 1


def _affine(x, y):
    """Module-level sweep target so process pools can pickle it."""
    return [x + 10 * y]


def _explodes_on_three(x, y):
    """Module-level sweep target that fails for one specific point."""
    if x == 3:
        raise ZeroDivisionError("boom")
    return [x + y]


class TestSweeps:
    def test_cartesian(self):
        combos = cartesian_sweep(c=[1, 2], L=[10, 20, 30])
        assert len(combos) == 6
        assert {"c": 2, "L": 30} in combos

    def test_run_sweep(self):
        points = run_sweep(
            cartesian_sweep(x=[1, 2], y=[3]),
            lambda x, y: [x + y],
        )
        assert [p.row[0] for p in points] == [4, 5]
        assert points[0].params == {"x": 1, "y": 3}

    def test_parallel_matches_serial(self):
        params = cartesian_sweep(x=list(range(6)), y=[1, 2])
        serial = run_sweep(params, _affine)
        parallel = run_sweep(params, _affine, n_jobs=2)
        assert [p.row for p in parallel] == [p.row for p in serial]
        assert [p.params for p in parallel] == [p.params for p in serial]

    def test_explicit_chunksize(self):
        params = cartesian_sweep(x=list(range(5)), y=[3])
        points = run_sweep(params, _affine, n_jobs=2, chunksize=2)
        assert [p.row[0] for p in points] == [30, 31, 32, 33, 34]

    def test_caller_managed_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        params = cartesian_sweep(x=[1, 2, 3], y=[0])
        with ThreadPoolExecutor(max_workers=2) as pool:
            points = run_sweep(params, _affine, executor=pool)
        assert [p.row[0] for p in points] == [1, 2, 3]

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            run_sweep([{"x": 1, "y": 1}], _affine, n_jobs=0)
        with pytest.raises(ValueError):
            run_sweep([{"x": 1, "y": 1}], _affine, n_jobs=-2)

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError, match="chunksize"):
            run_sweep([{"x": 1, "y": 1}], _affine, n_jobs=2, chunksize=0)
        with pytest.raises(ValueError, match="chunksize"):
            run_sweep([{"x": 1, "y": 1}], _affine, chunksize=-1)

    def test_failure_names_offending_point_serial(self):
        params = cartesian_sweep(x=[1, 2, 3, 4], y=[0])
        with pytest.raises(SweepError) as excinfo:
            run_sweep(params, _explodes_on_three)
        assert "'x': 3" in str(excinfo.value)
        assert excinfo.value.params == {"x": 3, "y": 0}
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_failure_names_offending_point_process_pool(self):
        params = cartesian_sweep(x=[1, 2, 3, 4], y=[0])
        with pytest.raises(SweepError) as excinfo:
            run_sweep(params, _explodes_on_three, n_jobs=2)
        assert "'x': 3" in str(excinfo.value)
        assert excinfo.value.params == {"x": 3, "y": 0}  # survives pickling


class TestEfficiency:
    def test_work_ratio_conventions(self):
        assert work_ratio(5.0, 10.0) == 0.5
        assert work_ratio(0.0, 0.0) == 1.0
        assert math.isinf(work_ratio(1.0, 0.0))

    def test_report_uniform(self):
        report = efficiency_report(UniformRisk(150.0), 2.0)
        assert 0.99 <= report.ratio <= 1.0 + 1e-9
        assert report.t0_in_bracket
        assert report.bracket_ratio < 3.0
