"""Fault plans, the fault runtime's seeded streams, and the fault log."""

from __future__ import annotations

import pytest

from repro.exceptions import FaultPlanError
from repro.faults import (
    CrashFault,
    DispatchFate,
    FaultLog,
    FaultPlan,
    LifeDriftFault,
    MessageDelayFault,
    MessageLossFault,
    OverheadJitterFault,
    ResultCorruptionFault,
)


class TestInjectorValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CrashFault(mtbf=0.0),
            lambda: CrashFault(mtbf=10.0, restart_time=-1.0),
            lambda: MessageLossFault(prob=1.5),
            lambda: MessageLossFault(prob=-0.1),
            lambda: MessageDelayFault(prob=2.0),
            lambda: MessageDelayFault(prob=0.5, delay_mean=0.0),
            lambda: OverheadJitterFault(sigma=-0.5),
            lambda: ResultCorruptionFault(prob=1.01),
            lambda: LifeDriftFault(at_fraction=1.5),
            lambda: LifeDriftFault(scale=0.0),
        ],
    )
    def test_bad_parameters_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            bad()

    def test_duplicate_classes_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(injectors=(MessageLossFault(0.1), MessageLossFault(0.2)))

    def test_non_injector_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(injectors=("not a fault",))


class TestPlan:
    def test_null_plan(self):
        plan = FaultPlan(seed=3)
        assert plan.is_null
        assert plan.get(CrashFault) is None

    def test_get_and_describe(self):
        crash = CrashFault(mtbf=50.0, restart_time=2.0)
        plan = FaultPlan(seed=5, injectors=(crash, MessageLossFault(0.3)))
        assert plan.get(CrashFault) is crash
        desc = plan.describe()
        assert desc["seed"] == 5
        assert {d["kind"] for d in desc["injectors"]} == {
            "CrashFault", "MessageLossFault",
        }

    def test_runtime_rejects_bad_horizon(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().start([0], horizon=0.0)


class TestRuntimeDeterminism:
    def test_crash_schedule_deterministic_and_non_overlapping(self):
        plan = FaultPlan(seed=11, injectors=(CrashFault(mtbf=20.0, restart_time=5.0),))
        rt1 = plan.start([0, 1, 2], horizon=500.0)
        rt2 = plan.start([0, 1, 2], horizon=500.0)
        for ws in (0, 1, 2):
            sched = rt1.crash_schedule(ws)
            assert sched == rt2.crash_schedule(ws)
            for (crash, restart), (next_crash, _) in zip(sched, sched[1:]):
                assert restart <= next_crash  # outages never overlap
            assert all(crash < 500.0 for crash, _ in sched)

    def test_dispatch_fates_deterministic(self):
        plan = FaultPlan(
            seed=7,
            injectors=(
                MessageLossFault(0.4),
                MessageDelayFault(0.5, delay_mean=1.0),
                OverheadJitterFault(0.3),
            ),
        )
        fates1 = [plan.start([0], 100.0).dispatch_fate(0, t, 1.0) for t in range(20)]
        rt = plan.start([0], 100.0)
        fates2 = [rt.dispatch_fate(0, t, 1.0) for t in range(20)]
        # Re-draw per fresh runtime vs one runtime differ (stream position),
        # but two fresh runtimes replay identically:
        rt3 = plan.start([0], 100.0)
        fates3 = [rt3.dispatch_fate(0, t, 1.0) for t in range(20)]
        assert fates2 == fates3
        assert fates1[0] == fates2[0]

    def test_streams_independent(self):
        """Adding a corruption injector must not move the dispatch stream."""
        base = FaultPlan(seed=9, injectors=(MessageLossFault(0.5),))
        plus = FaultPlan(
            seed=9, injectors=(MessageLossFault(0.5), ResultCorruptionFault(0.5))
        )
        rt_base, rt_plus = base.start([0], 100.0), plus.start([0], 100.0)
        fates_base = [rt_base.dispatch_fate(0, t, 1.0) for t in range(30)]
        fates_plus = [rt_plus.dispatch_fate(0, t, 1.0) for t in range(30)]
        assert fates_base == fates_plus

    def test_drift_applies_after_fraction(self):
        plan = FaultPlan(
            seed=1, injectors=(LifeDriftFault(at_fraction=0.5, scale=0.25),)
        )
        rt = plan.start([0], horizon=100.0)
        assert rt.absence_scale(0, 10.0) == 1.0
        assert rt.absence_scale(0, 50.0) == 0.25
        assert rt.absence_scale(0, 99.0) == 0.25
        # Logged once per workstation, not per episode.
        assert sum(1 for e in rt.log if e.kind == "life_drift") == 1


class TestFaultLog:
    def test_digest_is_order_and_value_sensitive(self):
        log1, log2, log3 = FaultLog(), FaultLog(), FaultLog()
        log1.record(1.0, "crash", 0)
        log1.record(2.0, "restart", 0)
        log2.record(2.0, "restart", 0)
        log2.record(1.0, "crash", 0)
        log3.record(1.0, "crash", 0)
        log3.record(2.0 + 1e-12, "restart", 0)
        assert log1.digest() != log2.digest()
        assert log1.digest() != log3.digest()
        replay = FaultLog()
        replay.record(1.0, "crash", 0)
        replay.record(2.0, "restart", 0)
        assert replay.digest() == log1.digest()

    def test_counts_and_dicts(self):
        log = FaultLog()
        log.record(1.0, "message_loss", 0)
        log.record(2.0, "message_loss", 1)
        log.record(3.0, "message_delay", 0, {"delay": 0.5})
        assert log.counts() == {"message_loss": 2, "message_delay": 1}
        dicts = log.as_dicts()
        assert dicts[2]["detail"] == {"delay": 0.5}
        assert log.by_kind("message_loss")[0].ws_id == 0

    def test_clean_fate_property(self):
        assert DispatchFate(lost=False, delay=0.0, c_effective=1.0).clean
        assert not DispatchFate(lost=True, c_effective=1.0).clean
