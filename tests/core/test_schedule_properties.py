"""Property-based tests (hypothesis) for Schedule invariants and t ⊖ c
accounting.

Randomized instances pin the algebra of eq. (2.1) itself:

* expected work is non-negative and monotone non-increasing in the overhead
  ``c`` (every period's ``t ⊖ c`` is);
* for degenerate life functions (the ``p ≡ 1``-on-support step function,
  i.e. a deterministic reclaim at ``L``) eq. (2.1) collapses to the exact
  finite sum ``sum_{T_i < L} (t_i ⊖ c)`` — including ``L`` beyond the
  schedule span, where every period banks;
* realized work is a non-decreasing step function of the reclaim time,
  bounded by the all-periods total, and the batch helper agrees with the
  scalar ``Schedule.realized_work`` everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.life_functions import UniformRisk
from repro.core.schedule import Schedule
from repro.simulation.episode import completed_periods, realized_work
from repro.simulation.testing import DeterministicLife

periods_strategy = st.lists(
    st.floats(min_value=0.05, max_value=40.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=10,
)
overhead_strategy = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy)
def test_work_per_period_is_t_minus_c_clamped(periods, c):
    s = Schedule(periods)
    expected = np.maximum(0.0, np.asarray(periods) - c)
    np.testing.assert_allclose(s.work_per_period(c), expected)
    assert np.all(s.work_per_period(c) >= 0.0)


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy)
def test_expected_work_nonnegative(periods, c):
    s = Schedule(periods)
    p = UniformRisk(120.0)
    assert s.expected_work(p, c) >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    periods=periods_strategy,
    c_lo=overhead_strategy,
    c_delta=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_expected_work_monotone_nonincreasing_in_c(periods, c_lo, c_delta):
    """More overhead can never increase E(S; p): t ⊖ c shrinks pointwise."""
    s = Schedule(periods)
    p = UniformRisk(120.0)
    hi = s.expected_work(p, c_lo)
    lo = s.expected_work(p, c_lo + c_delta)
    assert lo <= hi + 1e-12 * max(1.0, abs(hi))


@settings(max_examples=60, deadline=None)
@given(
    periods=periods_strategy,
    c=overhead_strategy,
    lifespan=st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
)
def test_degenerate_life_equals_exact_sum(periods, c, lifespan):
    """Eq. (2.1) with a step life function is the literal §2.1 sum."""
    s = Schedule(periods)
    p = DeterministicLife(lifespan)
    analytic = s.expected_work(p, c)
    exact = float(np.sum(s.work_per_period(c)[s.boundaries < lifespan]))
    assert analytic == pytest.approx(exact, rel=1e-12, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy)
def test_degenerate_life_beyond_span_banks_everything(periods, c):
    """A reclaim after T_{m-1} banks every period: E = sum(t_i ⊖ c)."""
    s = Schedule(periods)
    p = DeterministicLife(s.total_length * 1.5 + 1.0)
    assert s.expected_work(p, c) == pytest.approx(float(np.sum(s.work_per_period(c))))


@settings(max_examples=60, deadline=None)
@given(
    periods=periods_strategy,
    c=overhead_strategy,
    reclaims=st.lists(
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
        min_size=1,
        max_size=16,
    ),
)
def test_batch_realized_work_matches_scalar(periods, c, reclaims):
    s = Schedule(periods)
    batch = realized_work(s, np.asarray(reclaims), c)
    scalar = np.array([s.realized_work(r, c) for r in reclaims])
    # cumsum (batch) vs pairwise np.sum (scalar) differ in the last ulp.
    np.testing.assert_allclose(np.atleast_1d(batch), scalar, rtol=1e-12, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy)
def test_realized_work_monotone_in_reclaim_time(periods, c):
    """Surviving longer never loses banked work, and never beats the total."""
    s = Schedule(periods)
    grid = np.linspace(0.0, s.total_length * 1.2 + 1.0, 64)
    works = np.atleast_1d(realized_work(s, grid, c))
    assert np.all(np.diff(works) >= 0.0)
    assert works[0] == 0.0  # reclaim at 0 banks nothing
    assert works[-1] == pytest.approx(float(np.sum(s.work_per_period(c))))


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy)
def test_completed_periods_draconian_at_boundaries(periods):
    """A reclaim exactly at T_k completes exactly k periods (kills period k)."""
    s = Schedule(periods)
    ks = completed_periods(s, s.boundaries)
    np.testing.assert_array_equal(ks, np.arange(s.num_periods))
