"""The high-level guideline_schedule API."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    UniformRisk,
    WeibullLife,
)
from repro.core.recurrence import satisfies_recurrence
from repro.exceptions import CycleStealingError


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["optimize", "lower", "mid", "upper"])
    def test_all_strategies_produce_schedules(self, paper_life, strategy):
        res = guideline_schedule(paper_life, 0.5, t0_strategy=strategy, grid=33)
        assert res.schedule.num_periods >= 1
        assert res.expected_work >= 0.0
        assert res.t0_strategy == strategy

    def test_optimize_beats_fixed_points(self, paper_life):
        c = 0.5
        best = guideline_schedule(paper_life, c, t0_strategy="optimize", grid=65)
        for strategy in ("lower", "mid", "upper"):
            other = guideline_schedule(paper_life, c, t0_strategy=strategy)
            assert best.expected_work >= other.expected_work - 1e-9

    def test_explicit_t0(self):
        res = guideline_schedule(UniformRisk(100.0), 1.0, t0=12.0)
        assert res.t0 == 12.0
        assert res.t0_strategy == "explicit"
        assert res.schedule[0] == pytest.approx(12.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            guideline_schedule(UniformRisk(100.0), 1.0, t0_strategy="best")

    def test_strategy_points_inside_bracket(self):
        res_lo = guideline_schedule(UniformRisk(100.0), 1.0, t0_strategy="lower")
        res_hi = guideline_schedule(UniformRisk(100.0), 1.0, t0_strategy="upper")
        assert res_lo.t0 == pytest.approx(res_lo.bracket.lo)
        assert res_hi.t0 <= res_hi.bracket.hi


class TestOutputs:
    def test_schedule_satisfies_recurrence(self, paper_life):
        res = guideline_schedule(paper_life, 0.5, grid=33)
        if res.schedule.num_periods >= 2:
            assert satisfies_recurrence(res.schedule, paper_life, 0.5)

    def test_general_shape_fallback(self):
        p = WeibullLife(k=1.8, scale=10.0)
        res = guideline_schedule(p, 0.3, grid=33)
        assert res.schedule.num_periods >= 1
        assert res.expected_work > 0

    def test_expected_work_consistent(self):
        p = UniformRisk(200.0)
        res = guideline_schedule(p, 2.0)
        assert res.expected_work == pytest.approx(res.schedule.expected_work(p, 2.0))

    def test_bracket_reported(self):
        res = guideline_schedule(UniformRisk(400.0), 4.0)
        assert res.bracket.lo == pytest.approx(40.0, rel=1e-6)  # sqrt(cL)
        assert res.bracket.lo <= res.t0 * 1.5

    def test_overhead_too_large_raises(self):
        # c exceeding L: the Theorem 3.2 fixed point cannot exist inside the
        # support (BracketError, a CycleStealingError subclass).
        with pytest.raises(CycleStealingError):
            guideline_schedule(UniformRisk(1.0), 1.5, t0_strategy="lower")

    def test_memoryless_equal_periods(self):
        # The repelling fixed point lets the tail drift; the bulk of the
        # schedule sits at the optimal equal period.
        res = guideline_schedule(GeometricDecreasingLifespan(1.4), 1.0)
        bulk = res.schedule.periods[: min(10, res.schedule.num_periods)]
        assert np.allclose(bulk, res.t0, rtol=1e-3)
        from repro.core.exact import geometric_decreasing_optimal_period

        assert res.t0 == pytest.approx(
            geometric_decreasing_optimal_period(1.4, 1.0), rel=1e-6
        )
