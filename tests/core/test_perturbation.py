"""Shifts, perturbations, and Theorem 5.1 local optimality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.perturbation import (
    is_locally_optimal,
    perturbation_gain,
    perturbation_margins,
    perturbed,
    shift_gain,
    shifted,
)
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError


class TestEditConstructors:
    def test_shift_changes_one_period(self):
        s = Schedule([5.0, 4.0, 3.0])
        up = shifted(s, 1, 0.5)
        assert list(up) == [5.0, 4.5, 3.0]
        down = shifted(s, 1, -0.5)
        assert list(down) == [5.0, 3.5, 3.0]

    def test_shift_cannot_kill_period(self):
        with pytest.raises(InvalidScheduleError):
            shifted(Schedule([5.0, 4.0]), 1, -4.0)

    def test_perturbation_preserves_later_boundaries(self):
        s = Schedule([5.0, 4.0, 3.0])
        q = perturbed(s, 0, 1.0)
        assert list(q) == [6.0, 3.0, 3.0]
        assert q.total_length == pytest.approx(s.total_length)

    def test_perturbation_needs_successor(self):
        with pytest.raises(InvalidScheduleError):
            perturbed(Schedule([5.0, 4.0]), 1, 0.5)

    def test_perturbation_feasibility(self):
        with pytest.raises(InvalidScheduleError):
            perturbed(Schedule([5.0, 4.0]), 0, 4.0)


class TestTheorem51:
    """Recurrence-satisfying schedules beat all [k, ±δ] perturbations
    (concave life functions)."""

    @pytest.mark.parametrize("factory,c", [
        (lambda: UniformRisk(200.0), 2.0),
        (lambda: PolynomialRisk(2, 100.0), 1.0),
        (lambda: PolynomialRisk(4, 100.0), 1.0),
    ])
    def test_local_optimality_concave(self, factory, c):
        p = factory()
        res = guideline_schedule(p, c, grid=65)
        if res.schedule.num_periods < 2:
            pytest.skip("needs at least two periods")
        report = perturbation_margins(res.schedule, p, c)
        assert report.max_gain <= 1e-10
        assert is_locally_optimal(res.schedule, p, c)

    def test_strict_inferiority_of_large_perturbations(self):
        p = UniformRisk(300.0)
        c = 2.0
        res = guideline_schedule(p, c)
        base = res.expected_work
        gain = perturbation_gain(res.schedule, p, c, 0, 0.25 * res.schedule[1])
        assert gain < 0

    def test_non_optimal_schedule_detected(self):
        p = UniformRisk(100.0)
        c = 1.0
        bad = Schedule([10.0, 10.0, 10.0])  # violates the decrement law
        report = perturbation_margins(bad, p, c)
        assert report.max_gain > 0
        assert not is_locally_optimal(bad, p, c)

    def test_single_period_trivially_optimal(self):
        report = perturbation_margins(Schedule([5.0]), UniformRisk(10.0), 1.0)
        assert report.locally_optimal


class TestShiftsAndTheorem31:
    def test_optimal_schedule_resists_shifts(self):
        """Theorem 3.1's proof: no ⟨k, ±δ⟩ shift improves an optimal schedule."""
        from repro.core.exact import uniform_optimal_schedule

        L, c = 200.0, 2.0
        p = UniformRisk(L)
        res = uniform_optimal_schedule(L, c)
        for k in range(res.num_periods):
            for delta in (0.01, 0.1, 1.0):
                assert shift_gain(res.schedule, p, c, k, delta) <= 1e-9
                if res.schedule[k] > delta:
                    assert shift_gain(res.schedule, p, c, k, -delta) <= 1e-9

    def test_geomdec_equal_periods_resist_perturbation(self):
        from repro.core.exact import geometric_decreasing_optimal_schedule

        a, c = 1.3, 0.7
        p = GeometricDecreasingLifespan(a)
        res = geometric_decreasing_optimal_schedule(a, c)
        report = perturbation_margins(res.schedule, p, c)
        assert report.max_gain <= 1e-9
