"""Batch (lane-based) recurrence engine vs the scalar Corollary 3.1 oracle."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_recurrence import (
    BatchRecurrenceResult,
    batch_expected_work,
    generate_schedules_batch,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from repro.core.recurrence import Termination, generate_schedule
from repro.core.testing import (
    assert_recurrence_parity,
    canonical_recurrence_cases,
    default_t0_grid,
    recurrence_parity_check,
    recurrence_parity_matrix,
)
from repro.exceptions import InvalidScheduleError
from repro.simulation.testing import DeterministicLife


class TestValidation:
    def test_negative_overhead(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedules_batch(UniformRisk(100.0), -1.0, np.array([10.0]))

    def test_non_1d_grid(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedules_batch(UniformRisk(100.0), 1.0, np.ones((2, 2)))

    def test_empty_grid(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedules_batch(UniformRisk(100.0), 1.0, np.array([]))

    def test_non_finite_t0(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedules_batch(UniformRisk(100.0), 1.0, np.array([10.0, np.nan]))

    def test_unproductive_t0(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedules_batch(UniformRisk(100.0), 2.0, np.array([10.0, 2.0]))


class TestResultStructure:
    def test_shapes_and_padding(self):
        p, c = UniformRisk(100.0), 2.0
        res = generate_schedules_batch(p, c, np.array([10.0, 30.0, 60.0]))
        assert isinstance(res, BatchRecurrenceResult)
        assert res.n_lanes == 3
        m = res.periods.shape[1]
        assert res.targets.shape == (3, max(m - 1, 0))
        for i in range(3):
            k = int(res.num_periods[i])
            assert np.all(np.isfinite(res.periods[i, :k]))
            assert np.all(np.isnan(res.periods[i, k:]))
        assert res.expected_work.shape == (3,)
        assert res.best == int(np.argmax(res.expected_work))

    def test_boundaries_are_masked_cumsum(self):
        p, c = UniformRisk(100.0), 2.0
        res = generate_schedules_batch(p, c, np.array([15.0, 40.0]))
        for i in range(2):
            k = int(res.num_periods[i])
            np.testing.assert_allclose(
                res.boundaries[i, :k], np.cumsum(res.periods[i, :k]), rtol=0, atol=0
            )
            assert np.all(np.isnan(res.boundaries[i, k:]))

    def test_t0_at_or_beyond_lifespan_clamps(self):
        """t0 >= L mirrors the scalar single-clamped-period outcome."""
        p, c = UniformRisk(50.0), 1.0
        res = generate_schedules_batch(p, c, np.array([10.0, 50.0, 80.0]))
        scalar = generate_schedule(p, c, 80.0)
        assert res.termination(1) is Termination.LIFESPAN_EXHAUSTED
        assert res.termination(2) is Termination.LIFESPAN_EXHAUSTED
        assert int(res.num_periods[2]) == scalar.schedule.num_periods == 1
        assert float(res.periods[2, 0]) == float(scalar.schedule.periods[0])
        assert res.outcome(2).targets.size == 0


class TestBatchExpectedWork:
    def test_matches_schedule_expected_work(self):
        p, c = PolynomialRisk(2, 100.0), 2.0
        res = generate_schedules_batch(p, c, default_t0_grid(p, c))
        for i in range(res.n_lanes):
            assert float(res.expected_work[i]) == pytest.approx(
                res.schedule(i).expected_work(p, c), rel=1e-12, abs=1e-12
            )

    def test_standalone_scorer(self):
        periods = np.array([[20.0, 15.0, np.nan], [30.0, np.nan, np.nan]])
        p, c = UniformRisk(100.0), 2.0
        ew = batch_expected_work(periods, p, c)
        s0 = (20.0 - c) * p(20.0) + (15.0 - c) * p(35.0)
        s1 = (30.0 - c) * p(30.0)
        np.testing.assert_allclose(ew, [s0, s1], rtol=1e-12)


class TestFastParity:
    """One tier-1 cell per Section 4 family (full matrix runs under -m slow)."""

    @pytest.mark.parametrize(
        "p,c",
        [
            (UniformRisk(100.0), 2.0),
            (PolynomialRisk(3, 80.0), 1.5),
            (GeometricDecreasingLifespan(1.2), 0.5),
            (GeometricIncreasingRisk(30.0), 1.0),
        ],
        ids=["uniform", "poly3", "geomdec", "geominc"],
    )
    def test_section4_family(self, p, c):
        assert_recurrence_parity(recurrence_parity_check(p, c, label=repr(p)))

    def test_generic_path_parity(self):
        """use_closed_form=False forces the p/derivative/inverse lane path."""
        p, c = UniformRisk(100.0), 2.0
        assert_recurrence_parity(
            recurrence_parity_check(p, c, use_closed_form=False, label="generic")
        )

    def test_deterministic_step_function(self):
        """The degenerate step life function (GENERAL shape, derivative 0)."""
        p, c = DeterministicLife(40.0), 1.0
        grid = np.array([5.0, 15.0, 39.0, 40.0, 55.0])
        assert_recurrence_parity(recurrence_parity_check(p, c, grid, label="step"))


@settings(max_examples=25, deadline=None)
@given(
    family=st.sampled_from(["uniform", "poly2", "geomdec", "geominc", "weibull"]),
    c=st.floats(0.25, 4.0),
    frac=st.floats(0.02, 0.98),
    use_closed_form=st.booleans(),
)
def test_parity_property(family, c, frac, use_closed_form):
    """Random (family, c, t0): batch lane == scalar oracle."""
    p = {
        "uniform": UniformRisk(120.0),
        "poly2": PolynomialRisk(2, 100.0),
        "geomdec": GeometricDecreasingLifespan(1.3),
        "geominc": GeometricIncreasingRisk(25.0),
        "weibull": WeibullLife(k=1.5, scale=30.0),
    }[family]
    horizon = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-6))
    t0 = c + frac * (horizon - c)
    if t0 <= c * (1 + 1e-9):
        return
    report = recurrence_parity_check(
        p, c, np.array([t0]), use_closed_form=use_closed_form,
        max_periods=300, label=f"{family} t0={t0:.4g}",
    )
    assert_recurrence_parity(report)


@pytest.mark.slow
@pytest.mark.parametrize("use_closed_form", [True, False])
def test_full_parity_matrix(use_closed_form):
    """Every canonical family, 17-lane grid, both recurrence step paths."""
    reports = recurrence_parity_matrix(use_closed_form=use_closed_form)
    assert len(reports) == len(canonical_recurrence_cases())
    for report in reports:
        assert_recurrence_parity(report)
