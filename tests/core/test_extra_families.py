"""Gompertz and log-logistic life functions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.existence import tail_admissibility_margin
from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GompertzLife,
    LogLogisticLife,
)


class TestGompertz:
    def test_survival_axioms(self):
        GompertzLife(b=0.1, eta=0.3).validate()

    def test_hazard_grows_exponentially(self):
        g = GompertzLife(b=0.1, eta=0.5)
        ts = np.linspace(0.0, 10.0, 11)
        hz = np.asarray(g.hazard(ts))
        assert np.allclose(hz, 0.1 * np.exp(0.5 * ts), rtol=1e-9)

    def test_small_eta_approaches_exponential(self):
        g = GompertzLife(b=0.2, eta=1e-6)
        e = GeometricDecreasingLifespan(math.exp(0.2))
        ts = np.linspace(0.0, 20.0, 9)
        assert np.allclose(np.asarray(g(ts)), np.asarray(e(ts)), rtol=1e-4)

    def test_inverse_round_trip(self):
        g = GompertzLife(b=0.05, eta=0.4)
        ys = np.array([0.9, 0.5, 0.05, 1e-6])
        assert np.allclose(np.asarray(g(g.inverse(ys))), ys, rtol=1e-9)

    def test_derivative_matches_numeric(self):
        g = GompertzLife(b=0.1, eta=0.3)
        ts = np.linspace(0.1, 8.0, 9)
        h = 1e-7
        numeric = (np.asarray(g(ts + h)) - np.asarray(g(ts - h))) / (2 * h)
        assert np.allclose(np.asarray(g.derivative(ts)), numeric, rtol=1e-5)

    def test_schedulable(self):
        res = guideline_schedule(GompertzLife(b=0.05, eta=0.3), 0.3)
        assert res.expected_work > 0
        assert res.schedule.num_periods >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GompertzLife(b=0.0, eta=1.0)
        with pytest.raises(ValueError):
            GompertzLife(b=1.0, eta=-0.1)


class TestLogLogistic:
    def test_survival_axioms(self):
        LogLogisticLife(alpha=5.0, beta=2.0).validate()

    def test_median_at_alpha(self):
        ll = LogLogisticLife(alpha=7.0, beta=2.5)
        assert ll(7.0) == pytest.approx(0.5)
        assert ll.inverse(0.5) == pytest.approx(7.0)

    def test_inverse_round_trip(self):
        ll = LogLogisticLife(alpha=3.0, beta=1.5)
        ys = np.array([0.99, 0.5, 0.01])
        assert np.allclose(np.asarray(ll(ll.inverse(ys))), ys, rtol=1e-9)

    def test_heavy_tail_non_attainment_signature(self):
        """beta <= 1: tail margin converges to 1 - beta <= 0, like Pareto."""
        margins = tail_admissibility_margin(LogLogisticLife(5.0, 0.8), 0.5)
        finite = margins[np.isfinite(margins)]
        assert finite[-1] == pytest.approx(1.0 - 0.8, abs=0.05)

    def test_light_enough_tail_schedulable(self):
        res = guideline_schedule(LogLogisticLife(alpha=10.0, beta=3.0), 0.5)
        assert res.expected_work > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogLogisticLife(alpha=0.0, beta=1.0)
        with pytest.raises(ValueError):
            LogLogisticLife(alpha=1.0, beta=0.0)
