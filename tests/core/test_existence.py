"""Corollary 3.2 existence test and the Pareto non-attainment probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.existence import (
    admissibility_margin,
    satisfies_corollary_32,
    supremum_probe,
    tail_admissibility_margin,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    ParetoLife,
    UniformRisk,
)


class TestLiteralTest:
    def test_paper_families_pass(self, paper_life):
        assert satisfies_corollary_32(paper_life, 0.5)

    def test_margin_formula(self):
        p = UniformRisk(10.0)
        # margin = p(t) + (t-c) p'(t) = 1 - t/10 - (t-c)/10.
        c = 1.0
        ts = np.array([2.0, 5.0])
        expected = 1 - ts / 10 - (ts - c) / 10
        assert np.allclose(admissibility_margin(p, c, ts), expected)

    def test_fails_when_overhead_swallows_lifespan(self):
        assert not satisfies_corollary_32(UniformRisk(1.0), 2.0)


class TestParetoNonAttainment:
    def test_tail_margin_eventually_negative(self):
        """For p = (1+t)^{-d}, d > 1: deep in the tail
        1 + (t-c) p'/p -> 1 - d < 0 — the paper's non-admissibility signature."""
        margins = tail_admissibility_margin(ParetoLife(2.0), 1.0)
        assert np.all(margins[np.isfinite(margins)] < 0)
        assert margins[-1] == pytest.approx(1.0 - 2.0, rel=1e-3)

    def test_tail_margin_positive_for_geomdec(self):
        """Exponential tails keep (t-c)p'/p = -(t-c) ln a ... growing — wait,
        it also goes negative; what distinguishes Pareto is the *limit*:
        for exponential the margin crosses once and the crossing time is the
        finite optimal horizon; for Pareto the normalized margin converges to
        the constant 1-d < 0 — scale-free, no finite horizon.  We pin the
        Pareto constancy here."""
        margins = tail_admissibility_margin(ParetoLife(3.0), 0.5)
        finite = margins[np.isfinite(margins)]
        # Converges to 1 - d = -2 (scale-free), rather than diverging.
        assert np.allclose(finite[-3:], -2.0, rtol=0.02)

    def test_supremum_creeps_upward(self):
        """Best m-period E keeps strictly increasing with drifting maximizers:
        the empirical signature that no optimal schedule exists."""
        probe = supremum_probe(ParetoLife(1.5), 0.5, m_values=[1, 2, 4, 8])
        ms = sorted(probe)
        values = [probe[m][0] for m in ms]
        spans = [probe[m][1] for m in ms]
        assert all(b > a * (1 + 1e-6) for a, b in zip(values, values[1:]))
        assert spans[-1] > spans[0] * 1.5

    def test_supremum_stabilizes_for_uniform(self):
        """For an admissible concave family the best-E sequence attains its
        maximum at a small finite m and does NOT keep creeping upward —
        the opposite of the Pareto signature.  (Values beyond the optimal m
        dip slightly because the NLP must place forced-minimum periods.)"""
        probe = supremum_probe(UniformRisk(60.0), 2.0, m_values=[4, 6, 8, 12, 16])
        ms = sorted(probe)
        values = [probe[m][0] for m in ms]
        m_at_max = ms[int(np.argmax(values))]
        assert m_at_max <= 8
        assert values[-1] <= max(values) + 1e-9  # no creep
