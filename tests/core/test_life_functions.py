"""Base-class behaviour: vectorization, conditionals, hazard, generic inverse."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    ConditionalLifeFunction,
    GeometricDecreasingLifespan,
    LifeFunction,
    PolynomialRisk,
    Shape,
    UniformRisk,
)
from repro.exceptions import InvalidLifeFunctionError, SupportError


class _GridOnly(LifeFunction):
    """A family with no closed-form inverse, to exercise the generic path."""

    def __init__(self, lifespan: float) -> None:
        super().__init__()
        self._lifespan = lifespan

    def _evaluate(self, t):
        x = t / self._lifespan
        return (1.0 - x) ** 2  # quadratic survival, convex

    def _derivative(self, t):
        x = t / self._lifespan
        return -2.0 * (1.0 - x) / self._lifespan

    @property
    def lifespan(self) -> float:
        return self._lifespan

    @property
    def shape(self) -> Shape:
        return Shape.CONVEX


class _Increasing(LifeFunction):
    """Violates monotonicity — must fail validation."""

    def __init__(self) -> None:
        super().__init__()

    def _evaluate(self, t):
        return np.minimum(1.0, 0.5 + 0.1 * t)

    def _derivative(self, t):
        return np.full_like(t, 0.1)

    @property
    def lifespan(self) -> float:
        return 10.0

    @property
    def shape(self) -> Shape:
        return Shape.GENERAL


def test_scalar_and_array_evaluation_agree():
    p = UniformRisk(10.0)
    ts = np.array([0.0, 2.5, 9.0])
    arr = np.asarray(p(ts))
    for i, t in enumerate(ts):
        assert arr[i] == pytest.approx(float(p(float(t))))


def test_scalar_input_returns_python_float():
    p = UniformRisk(10.0)
    assert isinstance(p(3.0), float)
    assert isinstance(p.derivative(3.0), float)


def test_generic_inverse_matches_closed_form():
    grid_only = _GridOnly(20.0)
    ys = np.linspace(0.01, 0.99, 17)
    ts = np.asarray(grid_only.inverse(ys))
    assert np.allclose(np.asarray(grid_only(ts)), ys, atol=1e-4)


def test_inverse_rejects_out_of_range():
    with pytest.raises(ValueError):
        UniformRisk(10.0).inverse(1.5)
    with pytest.raises(ValueError):
        UniformRisk(10.0).inverse(-0.1)


def test_hazard_rate():
    p = GeometricDecreasingLifespan(math.e)  # hazard identically 1
    ts = np.linspace(0.0, 5.0, 7)
    assert np.allclose(np.asarray(p.hazard(ts)), 1.0)


def test_hazard_infinite_where_survival_zero():
    p = UniformRisk(10.0)
    assert p.hazard(11.0) == math.inf


def test_expected_lifetime_uniform():
    assert UniformRisk(10.0).expected_lifetime() == pytest.approx(5.0, rel=1e-6)


def test_expected_lifetime_exponential():
    p = GeometricDecreasingLifespan(math.e)  # mean 1
    assert p.expected_lifetime() == pytest.approx(1.0, rel=1e-4)


class TestConditional:
    def test_starts_at_one(self):
        cond = UniformRisk(10.0).conditional(4.0)
        assert cond(0.0) == pytest.approx(1.0)

    def test_uniform_conditional_is_uniform_on_remainder(self):
        cond = UniformRisk(10.0).conditional(4.0)
        ref = UniformRisk(6.0)
        ts = np.linspace(0.0, 6.0, 13)
        assert np.allclose(np.asarray(cond(ts)), np.asarray(ref(ts)))

    def test_lifespan_shrinks(self):
        cond = UniformRisk(10.0).conditional(4.0)
        assert cond.lifespan == pytest.approx(6.0)

    def test_shape_inherited(self):
        assert PolynomialRisk(3, 10.0).conditional(2.0).shape is Shape.CONCAVE

    def test_conditioning_past_lifespan_rejected(self):
        with pytest.raises(SupportError):
            UniformRisk(10.0).conditional(10.0)
        with pytest.raises(SupportError):
            UniformRisk(10.0).conditional(-1.0)

    def test_is_conditional_type(self):
        assert isinstance(UniformRisk(10.0).conditional(1.0), ConditionalLifeFunction)

    def test_derivative_scaling(self):
        p = PolynomialRisk(2, 10.0)
        cond = p.conditional(3.0)
        t = 2.0
        expected = float(p.derivative(3.0 + t)) / float(p(3.0))
        assert cond.derivative(t) == pytest.approx(expected)


def test_validate_rejects_increasing():
    with pytest.raises(InvalidLifeFunctionError):
        _Increasing().validate()


def test_validate_rejects_bad_start():
    class BadStart(_GridOnly):
        def _evaluate(self, t):
            return 0.9 * super()._evaluate(t)

    with pytest.raises(InvalidLifeFunctionError):
        BadStart(10.0).validate()


def test_sample_reclaim_within_support(rng):
    p = _GridOnly(25.0)
    samples = p.sample_reclaim_times(rng, 1000)
    assert np.all(samples >= 0)
    assert np.all(samples <= 25.0)
