"""The Corollary 3.1 recurrence engine: closed forms, generic path, termination."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from repro.core.recurrence import (
    Termination,
    generate_schedule,
    next_period,
    recurrence_residuals,
    satisfies_recurrence,
)
from repro.exceptions import InvalidScheduleError


class TestClosedForms:
    def test_uniform_decrement_law(self):
        """Eq. (4.1): for d = 1 the recurrence is exactly t_k = t_{k-1} - c."""
        p = UniformRisk(100.0)
        out = generate_schedule(p, 2.0, 15.0)
        decs = -np.diff(out.schedule.periods)
        assert np.allclose(decs, 2.0)

    def test_polynomial_closed_form_matches_generic(self):
        p = PolynomialRisk(3, 60.0)
        closed = generate_schedule(p, 1.0, 20.0, use_closed_form=True)
        generic = generate_schedule(p, 1.0, 20.0, use_closed_form=False)
        assert closed.schedule.num_periods == generic.schedule.num_periods
        assert np.allclose(closed.schedule.periods, generic.schedule.periods, rtol=1e-6)

    def test_geometric_decreasing_closed_form_matches_generic(self):
        p = GeometricDecreasingLifespan(1.2)
        t_star = 8.0
        closed = next_period(p, 1.0, t_star, t_star, use_closed_form=True)
        generic = next_period(p, 1.0, t_star, t_star, use_closed_form=False)
        assert closed == pytest.approx(generic, rel=1e-8)

    def test_geometric_decreasing_eq_46(self):
        """Eq. (4.6): a^{-t_k} + t_{k-1} ln a = 1 + c ln a."""
        a, c = 1.3, 0.5
        p = GeometricDecreasingLifespan(a)
        t_prev = 3.0
        t_next = next_period(p, c, t_prev, 10.0)
        assert a ** (-t_next) + t_prev * math.log(a) == pytest.approx(
            1 + c * math.log(a), rel=1e-12
        )

    def test_geometric_decreasing_solvability_bound(self):
        """Eq. (4.6) is solvable only while t_{k-1} < c + 1/ln a."""
        a, c = 2.0, 1.0
        p = GeometricDecreasingLifespan(a)
        limit = c + 1.0 / math.log(a)
        assert next_period(p, c, limit * 0.99, 5.0) is not None
        assert next_period(p, c, limit * 1.01, 5.0) is None

    def test_geometric_increasing_eq_47(self):
        """Eq. (4.7): t_k = log2((t_{k-1} - c) ln 2 + 1)."""
        p = GeometricIncreasingRisk(30.0)
        c = 1.0
        t_prev = 10.0
        t_next = next_period(p, c, t_prev, 12.0)
        assert t_next == pytest.approx(math.log2((t_prev - c) * math.log(2) + 1))

    def test_geometric_increasing_closed_matches_generic(self):
        p = GeometricIncreasingRisk(25.0)
        closed = generate_schedule(p, 0.5, 18.0, use_closed_form=True)
        generic = generate_schedule(p, 0.5, 18.0, use_closed_form=False)
        m = min(closed.schedule.num_periods, generic.schedule.num_periods)
        assert m >= 2
        assert np.allclose(
            closed.schedule.periods[:m], generic.schedule.periods[:m], rtol=1e-6
        )


class TestGeneratedSchedules:
    def test_residuals_vanish(self, paper_life):
        c = 0.5
        t0 = 0.25 * (
            paper_life.lifespan if math.isfinite(paper_life.lifespan) else 20.0
        )
        out = generate_schedule(paper_life, c, max(t0, 2 * c))
        if out.schedule.num_periods >= 2:
            res = recurrence_residuals(out.schedule, paper_life, c)
            assert np.max(np.abs(res)) < 1e-8
            assert satisfies_recurrence(out.schedule, paper_life, c)

    def test_all_periods_productive(self, paper_life):
        c = 0.5
        t0 = 10.0
        out = generate_schedule(paper_life, c, t0)
        assert np.all(out.schedule.periods > c)

    def test_concave_terminates_finite(self, concave_life):
        out = generate_schedule(concave_life, 1.0, concave_life.lifespan * 0.3)
        assert out.termination in (
            Termination.TARGET_NONPOSITIVE,
            Termination.UNPRODUCTIVE,
            Termination.LIFESPAN_EXHAUSTED,
        )
        assert out.schedule.total_length <= concave_life.lifespan + 1e-9

    def test_weibull_general_shape_runs(self):
        p = WeibullLife(k=1.7, scale=15.0)
        out = generate_schedule(p, 0.5, 8.0)
        assert out.schedule.num_periods >= 1
        if out.schedule.num_periods >= 2:
            assert satisfies_recurrence(out.schedule, p, 0.5)

    def test_t0_not_exceeding_c_rejected(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedule(UniformRisk(10.0), 2.0, 2.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(InvalidScheduleError):
            generate_schedule(UniformRisk(10.0), -1.0, 5.0)

    def test_t0_at_lifespan_clamps(self):
        p = UniformRisk(10.0)
        out = generate_schedule(p, 1.0, 12.0)
        assert out.schedule.num_periods == 1
        assert out.termination is Termination.LIFESPAN_EXHAUSTED
        assert out.schedule.total_length <= 10.0

    def test_max_periods_cap(self):
        # Memoryless family at the fixed point would iterate forever.
        a = 1.3
        p = GeometricDecreasingLifespan(a)
        from repro.core.exact import geometric_decreasing_optimal_period

        t_star = geometric_decreasing_optimal_period(a, 0.5)
        out = generate_schedule(p, 0.5, t_star, max_periods=37, tail_tol=0.0)
        assert out.schedule.num_periods == 37
        assert out.termination is Termination.MAX_PERIODS

    def test_tail_negligible_for_fixed_point(self):
        a = 1.5
        p = GeometricDecreasingLifespan(a)
        from repro.core.exact import geometric_decreasing_optimal_period

        t_star = geometric_decreasing_optimal_period(a, 1.0)
        out = generate_schedule(p, 1.0, t_star)
        assert out.termination is Termination.TAIL_NEGLIGIBLE
        # Periods sit at the fixed point (the repelling iteration drifts at
        # float precision, so the very tail is slightly off).
        assert np.allclose(out.schedule.periods, t_star, rtol=1e-4)

    def test_fixed_point_instability_above(self):
        """The guideline recurrence repels from the fixed point: a t0 above
        t* grows until the target goes non-positive."""
        a, c = 1.5, 1.0
        from repro.core.exact import geometric_decreasing_optimal_period

        t_star = geometric_decreasing_optimal_period(a, c)
        p = GeometricDecreasingLifespan(a)
        out = generate_schedule(p, c, t_star * 1.05)
        assert out.termination is Termination.TARGET_NONPOSITIVE
        assert np.all(np.diff(out.schedule.periods) > 0)  # growing

    def test_fixed_point_instability_below(self):
        a, c = 1.5, 1.0
        from repro.core.exact import geometric_decreasing_optimal_period

        t_star = geometric_decreasing_optimal_period(a, c)
        p = GeometricDecreasingLifespan(a)
        out = generate_schedule(p, c, t_star * 0.95)
        assert out.termination is Termination.UNPRODUCTIVE
        assert np.all(np.diff(out.schedule.periods) < 0)  # shrinking


class TestResiduals:
    def test_single_period_empty(self):
        res = recurrence_residuals(
            __import__("repro").core.Schedule([5.0]), UniformRisk(10.0), 1.0
        )
        assert res.size == 0

    def test_non_recurrence_schedule_fails_check(self):
        from repro.core.schedule import Schedule

        s = Schedule([5.0, 5.0, 5.0])  # equal periods violate (3.6) for uniform
        assert not satisfies_recurrence(s, UniformRisk(100.0), 1.0)
