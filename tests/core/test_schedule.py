"""Schedule value type and expected-work accounting (eq. 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule, expected_work, truncate_infinite
from repro.exceptions import InvalidScheduleError
from repro.types import positive_subtraction


class TestConstruction:
    def test_basic(self):
        s = Schedule([3.0, 2.0, 1.0])
        assert s.num_periods == 3
        assert s.total_length == pytest.approx(6.0)
        assert np.allclose(s.boundaries, [3.0, 5.0, 6.0])

    def test_rejects_empty(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([])

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0, 0.0])
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0, -2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0, np.inf])
        with pytest.raises(InvalidScheduleError):
            Schedule([np.nan])

    def test_rejects_2d(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(np.ones((2, 2)))

    def test_immutable(self):
        s = Schedule([1.0, 2.0])
        with pytest.raises(ValueError):
            s.periods[0] = 5.0

    def test_equality_and_hash(self):
        a = Schedule([1.0, 2.0])
        b = Schedule([1.0, 2.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schedule([1.0, 2.5])

    def test_iteration_and_indexing(self):
        s = Schedule([1.0, 2.0, 3.0])
        assert list(s) == [1.0, 2.0, 3.0]
        assert s[1] == 2.0
        assert len(s) == 3

    def test_start_of(self):
        s = Schedule([1.0, 2.0, 3.0])
        assert s.start_of(0) == 0.0
        assert s.start_of(2) == pytest.approx(3.0)
        with pytest.raises(IndexError):
            s.start_of(3)


class TestWorkAccounting:
    def test_positive_subtraction_operator(self):
        assert positive_subtraction(5.0, 2.0) == 3.0
        assert positive_subtraction(1.0, 2.0) == 0.0
        assert np.allclose(positive_subtraction(np.array([3.0, 1.0]), 2.0), [1.0, 0.0])

    def test_work_per_period(self):
        s = Schedule([5.0, 1.0, 3.0])
        assert np.allclose(s.work_per_period(2.0), [3.0, 0.0, 1.0])

    def test_expected_work_by_hand(self):
        # E = (t0-c) p(T0) + (t1-c) p(T1) for p = 1 - t/10, c = 1.
        p = UniformRisk(10.0)
        s = Schedule([4.0, 3.0])
        expected = 3.0 * 0.6 + 2.0 * 0.3
        assert expected_work(s, p, 1.0) == pytest.approx(expected)
        assert s.expected_work(p, 1.0) == pytest.approx(expected)

    def test_unproductive_periods_contribute_zero(self):
        p = UniformRisk(10.0)
        with_pad = Schedule([4.0, 0.5, 3.0])
        # The 0.5 period contributes no work but delays the last boundary.
        expected = 3.0 * float(p(4.0)) + 2.0 * float(p(7.5))
        assert with_pad.expected_work(p, 1.0) == pytest.approx(expected)

    def test_boundaries_beyond_lifespan_contribute_zero(self):
        p = UniformRisk(10.0)
        s = Schedule([6.0, 6.0])
        assert s.expected_work(p, 1.0) == pytest.approx(5.0 * 0.4)

    def test_negative_overhead_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0]).expected_work(UniformRisk(10.0), -0.5)

    def test_realized_work_semantics(self):
        s = Schedule([4.0, 3.0])
        c = 1.0
        # Reclaim before the first boundary: nothing banked.
        assert s.realized_work(3.9, c) == 0.0
        # Reclaim exactly at T_0 kills period 0 ("reclaimed BY time T_k").
        assert s.realized_work(4.0, c) == 0.0
        # Reclaim inside period 1: only period 0 banked.
        assert s.realized_work(5.0, c) == pytest.approx(3.0)
        # Reclaim after everything: both banked.
        assert s.realized_work(100.0, c) == pytest.approx(5.0)

    def test_productive_mask_and_flag(self):
        s = Schedule([4.0, 0.5, 3.0])
        assert list(s.productive_mask(1.0)) == [True, False, True]
        assert not s.is_productive(1.0)
        assert Schedule([4.0, 3.0, 0.5]).is_productive(1.0)  # last may be <= c


class TestEdits:
    def test_with_period(self):
        s = Schedule([1.0, 2.0]).with_period(0, 5.0)
        assert list(s) == [5.0, 2.0]

    def test_drop_period(self):
        s = Schedule([1.0, 2.0, 3.0]).drop_period(1)
        assert list(s) == [1.0, 3.0]
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0]).drop_period(0)

    def test_merge_first_two(self):
        s = Schedule([1.0, 2.0, 3.0]).merge_first_two()
        assert list(s) == [3.0, 3.0]
        with pytest.raises(InvalidScheduleError):
            Schedule([1.0]).merge_first_two()

    def test_split_first(self):
        s = Schedule([4.0, 1.0]).split_first(1.5)
        assert list(s) == [1.5, 2.5, 1.0]
        with pytest.raises(InvalidScheduleError):
            Schedule([4.0]).split_first(4.0)

    def test_merge_theorem_32_identity(self):
        """The merge comparison from Theorem 3.2's proof:
        E(S) - E(S~) = (t0 - c) p(t0) - t0 p(T1)."""
        p = UniformRisk(20.0)
        c = 1.0
        s = Schedule([5.0, 4.0, 3.0])
        merged = s.merge_first_two()
        lhs = s.expected_work(p, c) - merged.expected_work(p, c)
        t0, T1 = 5.0, 9.0
        rhs = (t0 - c) * float(p(t0)) - t0 * float(p(T1))
        assert lhs == pytest.approx(rhs)

    def test_split_lemma_31_identity(self):
        """The split comparison from Lemma 3.1's proof:
        E(S^) - E(S) = (t^ - c) p(t^) - t^ p(t0)."""
        p = UniformRisk(20.0)
        c = 1.0
        s = Schedule([8.0, 4.0])
        t_hat = 3.0
        split = s.split_first(t_hat)
        lhs = split.expected_work(p, c) - s.expected_work(p, c)
        rhs = (t_hat - c) * float(p(t_hat)) - t_hat * float(p(8.0))
        assert lhs == pytest.approx(rhs)


class TestTruncateInfinite:
    def test_constant_periods_geometric_decay(self):
        p = GeometricDecreasingLifespan(1.5)
        s = truncate_infinite(lambda i: 4.0, p, 1.0, tol=1e-12)
        # Tail error relative to the closed form is below tol.
        q = 1.5 ** (-4.0)
        closed = 3.0 * q / (1 - q)
        assert s.expected_work(p, 1.0) == pytest.approx(closed, rel=1e-10)

    def test_finite_iterable_allowed(self):
        p = UniformRisk(10.0)
        s = truncate_infinite([4.0, 3.0], p, 1.0)
        assert s.num_periods == 2

    def test_stops_at_lifespan(self):
        p = UniformRisk(10.0)
        s = truncate_infinite(lambda i: 3.0, p, 1.0)
        assert s.total_length >= 10.0
        assert s.num_periods == 4

    def test_nonconvergent_raises(self):
        p = GeometricDecreasingLifespan(1.0 + 1e-9)  # decays extremely slowly
        with pytest.raises(InvalidScheduleError):
            truncate_infinite(lambda i: 1e-6 + 2.0, p, 2.0, max_periods=50)

    def test_empty_source_raises(self):
        with pytest.raises(InvalidScheduleError):
            truncate_infinite([], UniformRisk(10.0), 1.0)
