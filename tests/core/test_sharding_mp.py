"""Cross-process bit-parity and chaos for the sharded serving tier.

The contract under test: splitting a ``serve_batch`` stream across N shard
worker processes changes *where* plans are computed but not a single bit of
*what* comes back — plans, source labels, and per-lane errors included —
and a worker death mid-run degrades throughput, never answers.

Boundedness note: this environment has no pytest-timeout plugin, so the
no-hung-futures guarantee is asserted directly — every dispatch path is
bounded by ``request_timeout`` inside :class:`ShardedPlanServer`, and the
chaos tests assert the measured wall time stays far under the budget that
a hang would consume.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.loadgen import zipf_query_mix
from repro.core.plancache import PlanCache
from repro.core.serving import PlanServer, TierChaos
from repro.core.sharding import (
    ShardConfig,
    ShardedPlanServer,
    build_shard_server,
    split_batch,
)
from repro.exceptions import FaultInjectionError, ShardingError

pytestmark = pytest.mark.multiproc


def _plans_equal(a, b, source: bool = True) -> bool:
    return (
        a.t0 == b.t0
        and a.expected_work == b.expected_work
        and a.termination == b.termination
        and (a.source == b.source or not source)
        and np.array_equal(a.schedule.periods, b.schedule.periods)
    )


def _mix_lists(n: int, distinct: int = 24, seed: int = 0):
    mix = zipf_query_mix(n, distinct=distinct, seed=seed)
    return list(mix.families), list(mix.cs), list(mix.param_values)


class TestCrossProcessParity:
    def test_workers_match_single_process_with_tables(self, warmed_table_dir):
        """The acceptance-shape parity: a batch stream over warmed tables.

        The reference is the exact per-worker stack (mmap'd tables +
        memory-only plan cache) run in one process; three worker processes
        must reproduce its plans bit for bit — including source labels,
        whose divergence would reveal cache/table tier drift — across a
        stream of batches, i.e. with cache warmth evolving.
        """
        table_dir = warmed_table_dir["dir"]
        fams, cs, vs = _mix_lists(96, seed=3)
        reference = build_shard_server(
            ShardConfig(shard=0, n_shards=1, table_dir=str(table_dir))
        )
        with ShardedPlanServer(workers=3, table_dir=table_dir) as sharded:
            for lo in (0, 32, 64):  # three chunks: parity must survive warmth
                chunk = slice(lo, lo + 32)
                want = reference.serve_batch(fams[chunk], cs[chunk], vs[chunk])
                got = sharded.serve_batch(fams[chunk], cs[chunk], vs[chunk])
                assert len(got) == len(want)
                for a, b in zip(got, want):
                    assert _plans_equal(a, b), (a.source, b.source)
            stats = sharded.stats_dict()
        assert stats["fallback_lanes"] == 0
        assert stats["worker_failures"] == 0
        assert stats["exhausted"] == 0

    def test_workers1_matches_plain_serve_batch(self):
        """The ISSUE's literal gate: N workers vs plain serve_batch."""
        fams, cs, vs = _mix_lists(48, seed=5)
        plain = PlanServer(cache=PlanCache())
        want, want_errors = plain._serve_batch_impl(fams, cs, vs)
        assert not want_errors
        for workers in (1, 4):
            with ShardedPlanServer(workers=workers) as sharded:
                got = sharded.serve_batch(fams, cs, vs)
            assert all(_plans_equal(a, b) for a, b in zip(got, want))

    def test_per_lane_errors_cross_process(self):
        """Invalid lanes fail identically (type + message) over the wire."""
        fams = ["uniform", "nosuchfamily", "poly", "alsonotafamily", "uniform"]
        cs = [0.1, 0.1, 0.2, 0.3, 0.15]
        vs = [60.0, 60.0, 80.0, 70.0, 65.0]
        reference = PlanServer(cache=PlanCache())
        want, want_errors = reference._serve_batch_impl(fams, cs, vs)
        assert sorted(want_errors) == [1, 3]
        with ShardedPlanServer(workers=3) as sharded:
            got, got_errors = sharded.try_serve_batch(fams, cs, vs)
        assert sorted(got_errors) == sorted(want_errors)
        for i, err in want_errors.items():
            assert type(got_errors[i]).__name__ == type(err).__name__
            assert str(got_errors[i]) == str(err)
        for i, plan in enumerate(want):
            if i in want_errors:
                assert got[i] is None
            else:
                assert _plans_equal(got[i], plan)

    def test_chaos_parity_multiprocess_vs_inprocess(self):
        """Per-shard RNG substreams: worker processes draw the same chaos.

        The in-process mode runs the identical sharded decomposition
        serially (same per-shard :class:`TierChaos` salts), so the worker
        processes must reproduce it bit for bit — plans, sources, *and*
        which lanes died to injected faults.
        """
        rates = {"optimizer": 0.4, "cache": 0.2}
        fams, cs, vs = _mix_lists(64, seed=11)
        with ShardedPlanServer(
            workers=3, chaos_rates=rates, chaos_seed=7, inprocess=True
        ) as serial, ShardedPlanServer(
            workers=3, chaos_rates=rates, chaos_seed=7
        ) as procs:
            for _ in range(2):  # chaos streams advance across batches
                want, want_errors = serial.try_serve_batch(fams, cs, vs)
                got, got_errors = procs.try_serve_batch(fams, cs, vs)
                assert sorted(got_errors) == sorted(want_errors)
                for i in range(len(fams)):
                    if i in want_errors:
                        assert type(got_errors[i]).__name__ == type(
                            want_errors[i]
                        ).__name__
                        assert str(got_errors[i]) == str(want_errors[i])
                    else:
                        assert _plans_equal(got[i], want[i])

    def test_shard_salt_changes_chaos_stream(self):
        """Shards draw from distinct substreams: salt in, different draws out."""

        def draws(chaos: TierChaos) -> list[bool]:
            out = []
            for _ in range(64):
                try:
                    chaos.maybe_fail("optimizer")
                    out.append(False)
                except FaultInjectionError:
                    out.append(True)
            return out

        plain = draws(TierChaos({"optimizer": 0.5}, seed=0))
        shard0 = draws(TierChaos({"optimizer": 0.5}, seed=0, shard=0))
        shard1 = draws(TierChaos({"optimizer": 0.5}, seed=0, shard=1))
        assert shard0 != shard1  # distinct per-shard streams
        assert plain != shard0  # and the unsalted PR-5 stream is untouched
        assert draws(TierChaos({"optimizer": 0.5}, seed=0, shard=1)) == shard1


class TestWorkerChaos:
    def test_kill_one_worker_monotone_degradation(self, warmed_table_dir):
        """One dead shard: surviving lanes untouched, its lanes via fallback.

        ``max_restarts=0`` forces the pure degradation path.  The elapsed
        bound is the no-hung-futures assertion: a hung dispatch would eat
        the full ``request_timeout`` per batch.
        """
        table_dir = warmed_table_dir["dir"]
        fams, cs, vs = _mix_lists(64, seed=3)
        victim = max(
            range(3), key=lambda s: len(split_batch(fams, vs, 3)[s])
        )
        dead_lanes = set(split_batch(fams, vs, 3)[victim])
        assert dead_lanes, "mix must route lanes onto the victim shard"

        healthy = ShardedPlanServer(workers=3, table_dir=table_dir, inprocess=True)
        h1, e1 = healthy.try_serve_batch(fams, cs, vs)
        h2, e2 = healthy.try_serve_batch(fams, cs, vs)
        assert not e1 and not e2

        with ShardedPlanServer(
            workers=3, table_dir=table_dir,
            request_timeout=15.0, max_restarts=0, breaker_cooldown=0.01,
        ) as sharded:
            p1, err1 = sharded.try_serve_batch(fams, cs, vs)
            assert not err1
            sharded.kill_worker(victim)
            start = time.perf_counter()
            p2, err2 = sharded.try_serve_batch(fams, cs, vs)
            elapsed = time.perf_counter() - start
            stats = sharded.stats_dict()

        assert not err2, "a dead shard must degrade, not fail lanes"
        for i in range(len(fams)):
            if i in dead_lanes:
                # Fallback serves from a cold chain: content identical,
                # source label may differ (optimizer vs cache).
                assert _plans_equal(p2[i], h2[i], source=False), i
            else:
                assert _plans_equal(p2[i], h2[i]), i  # bit-identical
        assert stats["fallback_lanes"] == len(dead_lanes)
        assert stats["restarts"] == 0
        assert stats["worker_failures"] >= 1
        assert elapsed < 60.0, f"dispatch not bounded: {elapsed:.1f}s"

    def test_restart_budget_revives_worker(self):
        """Within the budget a killed shard is respawned and serves again."""
        fams, cs, vs = _mix_lists(48, seed=3)
        victim = max(range(2), key=lambda s: len(split_batch(fams, vs, 2)[s]))
        with ShardedPlanServer(
            workers=2, request_timeout=15.0, max_restarts=2,
            breaker_cooldown=0.01,
        ) as sharded:
            p1, e1 = sharded.try_serve_batch(fams, cs, vs)
            assert not e1
            sharded.kill_worker(victim)
            p2, e2 = sharded.try_serve_batch(fams, cs, vs)
            stats = sharded.stats_dict()
            assert not e2
            assert stats["restarts"] >= 1
            assert stats["fallback_lanes"] == 0  # restart beat the fallback
            assert stats["alive"][victim]
        for i in range(len(fams)):
            # The restarted shard's cache is cold again, so compare content.
            assert _plans_equal(p2[i], p1[i], source=False), i


class TestLifecycle:
    def test_ping_and_worker_stats(self):
        with ShardedPlanServer(workers=2) as sharded:
            pongs = sharded.ping()
            assert [p["shard"] for p in pongs] == [0, 1]
            assert len({p["pid"] for p in pongs}) == 2  # distinct processes
            sharded.serve_batch(["uniform", "poly"], [0.1, 0.2], [60.0, 80.0])
            stats = sharded.worker_stats()
        assert len(stats) == 2
        assert all(s is not None for s in stats)
        assert sum(s["served"] for s in stats) == 2

    def test_close_is_idempotent_and_serve_after_close_raises(self):
        sharded = ShardedPlanServer(workers=2)
        sharded.close()
        sharded.close()
        with pytest.raises(ShardingError, match="closed"):
            sharded.serve_batch(["uniform"], [0.1], [60.0])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ShardingError, match="workers"):
            ShardedPlanServer(workers=0)
        with pytest.raises(ShardingError, match="request_timeout"):
            ShardedPlanServer(workers=1, request_timeout=0.0, inprocess=True)
        with pytest.raises(ShardingError, match="max_restarts"):
            ShardedPlanServer(workers=1, max_restarts=-1, inprocess=True)

    def test_empty_batch(self):
        with ShardedPlanServer(workers=2, inprocess=True) as sharded:
            assert sharded.try_serve_batch([], [], []) == ([], {})
