"""The :mod:`repro.jitkernels` subsystem: probe, fallback, and jit↔NumPy parity.

Two test populations:

* **Always-run** — the capability probe, the ``REPRO_DISABLE_JIT`` override,
  the transparent-fallback contract (``engine="jit"`` must be *bit-identical*
  to the NumPy engines whenever the kernels are unavailable), and the CLI's
  explicit-error behavior.  These are what tier-1 exercises in this repo's
  container, where numba is not installed.
* **numba-armed** (``skipif not available()``) — the hypothesis differential
  suite comparing the compiled kernels against the NumPy engines across all
  Section 4 families and the mixed-lane hetero engine, plus the on-disk
  kernel-cache warm-start test.  These arm on the CI leg that installs the
  ``jit`` extra.

Parity tolerance: uniform / poly ``d = 1`` lanes are bit-identical (pure
arithmetic); the remaining families may differ at the transcendental sites
listed in :mod:`repro.jitkernels.kernels` (``pow``/``exp``/``log``/
``expm1``/``log2``), bounded here at 4 ULP per emitted period.  Structure —
period counts, termination codes, NaN padding — must always be identical.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import jitkernels
from repro.core.batch_recurrence import batch_expected_work, generate_schedules_batch
from repro.core.hetero_recurrence import generate_schedules_hetero
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from repro.exceptions import InvalidScheduleError, JITUnavailableError

#: Maximum tolerated divergence at the documented transcendental sites.
MAX_ULP = 4

needs_numba = pytest.mark.skipif(
    not jitkernels.available(), reason="numba not importable (jit extra not installed)"
)


@pytest.fixture
def fresh_probe(monkeypatch):
    """Re-probe around the test and restore the memo afterwards."""
    saved = jitkernels._probe_result
    yield monkeypatch
    jitkernels._probe_result = saved


def _force_unavailable(monkeypatch, reason="forced off for test"):
    monkeypatch.setattr(jitkernels, "_probe_result", (False, reason))


# ----------------------------------------------------------------------
# The capability probe (always run)
# ----------------------------------------------------------------------


def test_probe_is_consistent():
    ok = jitkernels.available()
    assert isinstance(ok, bool)
    if ok:
        assert jitkernels.disabled_reason() == ""
        assert jitkernels.kernels() is not None
    else:
        assert jitkernels.disabled_reason()
        with pytest.raises(JITUnavailableError):
            jitkernels.kernels()


def test_disable_env_wins(fresh_probe):
    fresh_probe.setenv(jitkernels.DISABLE_ENV, "1")
    jitkernels.refresh()
    assert not jitkernels.available()
    assert jitkernels.DISABLE_ENV in jitkernels.disabled_reason()
    # "0" and empty mean enabled (fall through to the import probe).
    fresh_probe.setenv(jitkernels.DISABLE_ENV, "0")
    jitkernels.refresh()
    assert jitkernels.DISABLE_ENV not in jitkernels.disabled_reason()


def test_require_and_resolve(fresh_probe):
    _force_unavailable(fresh_probe)
    with pytest.raises(JITUnavailableError, match="forced off"):
        jitkernels.require("unit test")
    assert jitkernels.resolve_engine("jit", "batch") == "batch"
    assert jitkernels.resolve_engine("scalar", "batch") == "scalar"
    fresh_probe.setattr(jitkernels, "_probe_result", (True, ""))
    jitkernels.require("unit test")  # must not raise
    assert jitkernels.resolve_engine("jit", "batch") == "jit"


def test_family_codes():
    assert jitkernels.family_code("uniform") == jitkernels.FAM_POLY
    assert jitkernels.family_code("poly") == jitkernels.FAM_POLY
    assert jitkernels.family_code("geomdec") == jitkernels.FAM_GEOMDEC
    assert jitkernels.family_code("geominc") == jitkernels.FAM_GEOMINC
    with pytest.raises(JITUnavailableError):
        jitkernels.family_code("weibull")


def test_life_family_of_maps_section4_families():
    assert jitkernels.life_family_of(UniformRisk(100.0)) == (jitkernels.FAM_POLY, 1, 100.0)
    assert jitkernels.life_family_of(PolynomialRisk(3, 50.0)) == (
        jitkernels.FAM_POLY, 3, 50.0,
    )
    assert jitkernels.life_family_of(GeometricDecreasingLifespan(1.25)) == (
        jitkernels.FAM_GEOMDEC, 1, 1.25,
    )
    assert jitkernels.life_family_of(GeometricIncreasingRisk(30.0)) == (
        jitkernels.FAM_GEOMINC, 1, 30.0,
    )
    # Non-family and *subclassed* life functions must not map: a subclass may
    # override evaluation semantics the kernels know nothing about.
    assert jitkernels.life_family_of(WeibullLife(1.5, 100.0)) is None

    class Tweaked(UniformRisk):
        pass

    assert jitkernels.life_family_of(Tweaked(100.0)) is None


def test_numba_cache_dir_rides_the_plan_cache_dir(fresh_probe, tmp_path):
    fresh_probe.setenv("REPRO_CACHE_DIR", str(tmp_path / "plans"))
    assert jitkernels.numba_cache_dir() == tmp_path / "plans" / "numba"


# ----------------------------------------------------------------------
# Transparent fallback: engine="jit" without numba == the NumPy engines
# (always run; on numba hosts the probe is forced off)
# ----------------------------------------------------------------------


def _assert_batch_results_identical(a, b):
    np.testing.assert_array_equal(a.periods, b.periods)  # NaN-equal
    np.testing.assert_array_equal(a.num_periods, b.num_periods)
    np.testing.assert_array_equal(a.termination_codes, b.termination_codes)
    np.testing.assert_array_equal(a.expected_work, b.expected_work)


def test_homogeneous_fallback_is_bit_identical(fresh_probe):
    _force_unavailable(fresh_probe)
    p, c = repro.UniformRisk(200.0), 2.0
    ts = np.linspace(5.0, 150.0, 33)
    a = generate_schedules_batch(p, c, ts)
    b = generate_schedules_batch(p, c, ts, engine="jit")
    _assert_batch_results_identical(a, b)
    np.testing.assert_array_equal(a.targets, b.targets)


def test_hetero_fallback_is_bit_identical(fresh_probe):
    _force_unavailable(fresh_probe)
    cs = np.array([0.5, 1.0, 2.0, 3.0])
    params = np.array([80.0, 120.0, 200.0, 400.0])
    t0s = np.array([4.0, 9.0, 25.0, 60.0])
    a = generate_schedules_hetero("uniform", cs, params, t0s)
    b = generate_schedules_hetero("uniform", cs, params, t0s, engine="jit")
    _assert_batch_results_identical(a, b)


def test_scoring_and_optimizer_fallback(fresh_probe):
    _force_unavailable(fresh_probe)
    p, c = repro.PolynomialRisk(2, 150.0), 1.5
    base = generate_schedules_batch(p, c, np.linspace(4.0, 100.0, 9))
    np.testing.assert_array_equal(
        batch_expected_work(base.periods, p, c),
        batch_expected_work(base.periods, p, c, engine="jit"),
    )
    t0_a, out_a, ew_a = repro.optimize_t0_via_recurrence(p, c, engine="batch")
    t0_b, out_b, ew_b = repro.optimize_t0_via_recurrence(p, c, engine="jit")
    assert (t0_a, ew_a) == (t0_b, ew_b)
    np.testing.assert_array_equal(out_a.schedule.periods, out_b.schedule.periods)


def test_mc_engine_fallback(fresh_probe):
    _force_unavailable(fresh_probe)
    from repro.simulation import estimate_expected_work

    p, c = repro.UniformRisk(100.0), 1.0
    schedule = repro.guideline_schedule(p, c).schedule
    a = estimate_expected_work(p=p, c=c, schedule=schedule, n=4000,
                               rng=np.random.default_rng(11), engine="vectorized")
    b = estimate_expected_work(p=p, c=c, schedule=schedule, n=4000,
                               rng=np.random.default_rng(11), engine="jit")
    assert a.mean == b.mean and a.stderr == b.stderr


def test_fleet_fallback_is_bit_identical(fresh_probe):
    """``run_fleet(engine="jit")`` without numba degrades to the inline
    checkout fix-up and ``np.lexsort`` — bit-identically, on both cores."""
    from repro.now.fleet import FleetSpec, _fleet_kernels, run_fleet

    _force_unavailable(fresh_probe)
    assert _fleet_kernels() == (None, None)
    spec = FleetSpec.heterogeneous(8, seed=5)
    durations = np.full(256, 0.25)
    for core in ("batched", "heap"):
        a = run_fleet(spec, durations, 200.0, policy="stealing", core=core)
        b = run_fleet(spec, durations, 200.0, policy="stealing", core=core,
                      engine="jit")
        assert a.events_processed == b.events_processed
        assert a.completion_time == b.completion_time
        np.testing.assert_array_equal(a.work_done, b.work_done)
        np.testing.assert_array_equal(a.steals_succeeded, b.steals_succeeded)


def test_unknown_engine_rejected():
    p = repro.UniformRisk(100.0)
    with pytest.raises(InvalidScheduleError):
        generate_schedules_batch(p, 1.0, [5.0], engine="cuda")
    with pytest.raises(InvalidScheduleError):
        generate_schedules_hetero(
            "uniform", np.array([1.0]), np.array([100.0]), np.array([5.0]),
            engine="cuda",
        )
    with pytest.raises(InvalidScheduleError):
        batch_expected_work(np.array([[5.0]]), p, 1.0, engine="cuda")
    with pytest.raises(ValueError):
        repro.optimize_t0_via_recurrence(p, 1.0, engine="cuda")


def test_cli_errors_clearly_when_jit_named(fresh_probe, capsys):
    from repro.cli import main

    _force_unavailable(fresh_probe, reason="numba is not importable (test)")
    with pytest.raises(SystemExit) as exc:
        main(["t0opt", "--family", "uniform", "--lifespan", "100",
              "--c", "2", "--engine", "jit"])
    assert "numba" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(["mc", "--family", "uniform", "--lifespan", "100",
              "--c", "2", "--engine", "jit"])
    assert "numba" in str(exc.value)
    with pytest.raises(SystemExit) as exc:
        main(["servebench", "--quick", "--engine", "jit"])
    assert "numba" in str(exc.value)


def test_cli_rejects_jit_with_workers(fresh_probe):
    from repro.cli import main

    # Force the probe open so the check under test (jit x sharded tier is
    # unsupported) is what fires, with or without numba installed.
    fresh_probe.setattr(jitkernels, "_probe_result", (True, ""))
    with pytest.raises(SystemExit, match="--workers"):
        main(["servebench", "--quick", "--engine", "jit", "--workers", "2"])


# ----------------------------------------------------------------------
# Differential suite: compiled kernels vs the NumPy engines (numba only)
# ----------------------------------------------------------------------

#: (family, d, parameter strategy) for the hetero engine sweep.
_FAMILY_CASES = [
    ("uniform", 1, st.floats(20.0, 500.0)),
    ("poly", 1, st.floats(20.0, 500.0)),
    ("poly", 3, st.floats(20.0, 500.0)),
    ("geomdec", 1, st.floats(1.05, 2.0)),
    ("geominc", 1, st.floats(5.0, 60.0)),
]

#: Families whose kernels involve no transcendental (bit-identical required).
_EXACT = {("uniform", 1), ("poly", 1)}


def _hetero_case(family, d, params, cs, t0s):
    a = generate_schedules_hetero(family, cs, params, t0s, d=d)
    b = generate_schedules_hetero(family, cs, params, t0s, d=d, engine="jit")
    assert a.periods.shape == b.periods.shape
    np.testing.assert_array_equal(a.num_periods, b.num_periods)
    np.testing.assert_array_equal(a.termination_codes, b.termination_codes)
    assert np.array_equal(np.isnan(a.periods), np.isnan(b.periods))
    mask = ~np.isnan(a.periods)
    if (family, d) in _EXACT:
        np.testing.assert_array_equal(a.periods, b.periods)
        np.testing.assert_array_equal(a.expected_work, b.expected_work)
    else:
        np.testing.assert_array_max_ulp(a.periods[mask], b.periods[mask], MAX_ULP)
        # E accumulates the (<= MAX_ULP) per-period noise across up to
        # thousands of periods; bound it relatively instead of per-ULP.
        np.testing.assert_allclose(a.expected_work, b.expected_work, rtol=1e-9)


@needs_numba
@settings(max_examples=40, deadline=None)
@given(
    case=st.sampled_from(_FAMILY_CASES),
    data=st.data(),
)
def test_hetero_jit_matches_numpy(case, data):
    family, d, param_strategy = case
    n = data.draw(st.integers(1, 12), label="lanes")
    params = np.array([data.draw(param_strategy) for _ in range(n)])
    cs = np.array([data.draw(st.floats(0.05, 3.0)) for _ in range(n)])
    # t0 anywhere from just-productive to past the lifespan clamp.
    t0s = np.array([
        data.draw(st.floats(1.05, 1.8)) * cs[i]
        + data.draw(st.floats(0.0, 1.2)) * (params[i] if family != "geomdec" else 50.0)
        for i in range(n)
    ])
    _hetero_case(family, d, params, cs, t0s)


@needs_numba
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_homogeneous_jit_matches_numpy(data):
    label = data.draw(st.sampled_from(["uniform", "poly3", "geomdec", "geominc"]))
    if label == "uniform":
        p = UniformRisk(data.draw(st.floats(30.0, 500.0)))
    elif label == "poly3":
        p = PolynomialRisk(3, data.draw(st.floats(30.0, 500.0)))
    elif label == "geomdec":
        p = GeometricDecreasingLifespan(data.draw(st.floats(1.05, 1.9)))
    else:
        p = GeometricIncreasingRisk(data.draw(st.floats(6.0, 60.0)))
    c = data.draw(st.floats(0.1, 2.5))
    hi = p.lifespan * 0.999 if np.isfinite(p.lifespan) else 60.0
    if hi <= c * 1.1:
        hi = c * 4.0
    ts = np.linspace(c * 1.05, hi, data.draw(st.integers(2, 33)))
    a = generate_schedules_batch(p, c, ts)
    b = generate_schedules_batch(p, c, ts, engine="jit")
    np.testing.assert_array_equal(a.num_periods, b.num_periods)
    np.testing.assert_array_equal(a.termination_codes, b.termination_codes)
    assert np.array_equal(np.isnan(a.periods), np.isnan(b.periods))
    mask = ~np.isnan(a.periods)
    tmask = ~np.isnan(a.targets)
    if label == "uniform":
        np.testing.assert_array_equal(a.periods, b.periods)
        np.testing.assert_array_equal(a.expected_work, b.expected_work)
        np.testing.assert_array_equal(a.targets, b.targets)
    else:
        np.testing.assert_array_max_ulp(a.periods[mask], b.periods[mask], MAX_ULP)
        assert np.array_equal(np.isnan(a.targets), np.isnan(b.targets))
        np.testing.assert_allclose(a.targets[tmask], b.targets[tmask],
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(a.expected_work, b.expected_work, rtol=1e-9)


@needs_numba
def test_scoring_kernel_matches_scalar_order():
    # expected_work_rows accumulates left-to-right like the hetero engine,
    # so scoring a hetero result's own periods must reproduce its E exactly.
    cs = np.array([0.5, 1.0, 2.0])
    params = np.array([90.0, 150.0, 300.0])
    t0s = np.array([5.0, 12.0, 30.0])
    for family in ("uniform", "geomdec", "geominc"):
        pv = params if family != "geomdec" else np.array([1.2, 1.4, 1.1])
        res = generate_schedules_hetero(family, cs, pv, t0s, engine="jit")
        kern = jitkernels.kernels()
        rescored = kern.expected_work_rows(
            np.ascontiguousarray(res.periods), jitkernels.family_code(family),
            1, cs, pv,
        )
        np.testing.assert_array_equal(res.expected_work, rescored)


@needs_numba
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_fleet_checkout_fixup_matches_python(data):
    """The compiled cut fix-up converges to the same index as the inline
    loops in ``_RangePool.checkout`` from any starting seed."""
    kern = jitkernels.kernels()
    n = data.draw(st.integers(1, 40), label="tasks")
    durs = np.array([data.draw(st.sampled_from([0.0625, 0.25, 1.0, 1e-6]))
                     for _ in range(n)])
    cum = np.concatenate(([0.0], np.cumsum(durs)))
    lo = data.draw(st.integers(0, n - 1), label="lo")
    hi = data.draw(st.integers(lo, n), label="hi")
    base = float(cum[lo])
    used = data.draw(st.floats(0.0, 4.0), label="used")
    limit = used + data.draw(st.floats(0.0, 8.0), label="budget") + 1e-12
    j_seed = data.draw(st.integers(-2, n + 2), label="seed")

    j = j_seed
    if j < lo:
        j = lo
    elif j > hi:
        j = hi
    while j < hi and used + (float(cum[j + 1]) - base) <= limit:
        j += 1
    while j > lo and used + (float(cum[j]) - base) > limit:
        j -= 1
    assert int(kern.fleet_checkout_fixup(cum, base, used, limit,
                                         lo, hi, j_seed)) == j


@needs_numba
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_fleet_event_order_matches_lexsort(data):
    kern = jitkernels.kernels()
    n = data.draw(st.integers(1, 200), label="events")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    # Duplicate times/prios on purpose; seqs are unique, so the
    # (time, prio, seq) key is total and the order must be exact.
    times = rng.choice(np.linspace(0.0, 10.0, 17), n)
    prios = rng.integers(-1, 4, n).astype(np.int64)
    seqs = rng.permutation(n).astype(np.int64)
    np.testing.assert_array_equal(
        kern.fleet_event_order(times, prios, seqs),
        np.lexsort((seqs, prios, times)),
    )


@needs_numba
def test_gather_kernel_bit_identical():
    kern = jitkernels.kernels()
    rng = np.random.default_rng(3)
    boundaries = np.sort(rng.uniform(0.0, 100.0, 37))
    cumulative = np.concatenate(([0.0], np.cumsum(rng.uniform(0.0, 5.0, 37))))
    # Include exact boundary hits: side='left' must kill the hit period.
    reclaim = np.concatenate([rng.uniform(-1.0, 105.0, 500), boundaries[:5]])
    work, k = kern.episodes_gather(boundaries, cumulative, reclaim)
    k_ref = np.searchsorted(boundaries, reclaim, side="left")
    np.testing.assert_array_equal(k, k_ref)
    np.testing.assert_array_equal(work, cumulative[k_ref])


# ----------------------------------------------------------------------
# On-disk kernel cache warm start (numba only)
# ----------------------------------------------------------------------

_WARM_SNIPPET = """
import json, sys
from repro import jitkernels
assert jitkernels.available(), jitkernels.disabled_reason()
kern = jitkernels.kernels()
kern.warmup()
hits = sum(
    sum(kern.__dict__[name].stats.cache_hits.values())
    for name in ("hetero_recurrence", "expected_work_rows", "episodes_gather")
)
print(json.dumps({"cache_hits": int(hits)}))
"""


@needs_numba
def test_kernel_cache_warm_start(tmp_path):
    """The second process must load kernels from disk, not recompile.

    Both processes share one ``NUMBA_CACHE_DIR``; the first pays the
    compile, the second must report nonzero dispatcher cache hits — the
    property that keeps the sharded serving workers from recompiling per
    process.
    """
    import json as _json
    import os

    env = dict(os.environ)
    env["NUMBA_CACHE_DIR"] = str(tmp_path / "numba-cache")
    env.pop(jitkernels.DISABLE_ENV, None)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(repro.__file__).rsplit("/repro/", 1)[0],
                      env.get("PYTHONPATH", "")])
    )
    outs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _WARM_SNIPPET],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        outs.append(_json.loads(proc.stdout.strip().splitlines()[-1]))
    assert outs[1]["cache_hits"] > 0, outs
