"""Theorem 5.2 decrement laws and the Section 5 corollaries."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    geometric_decreasing_optimal_schedule,
    uniform_optimal_schedule,
)
from repro.core.life_functions import (
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.optimizer import optimize_schedule
from repro.core.schedule import Schedule
from repro.core.structure import (
    period_decrements,
    satisfies_concave_decrements,
    satisfies_convex_decrements,
    verify_structure,
)
from repro.core.t0_bounds import max_periods_bound


class TestDecrementLaws:
    def test_uniform_attains_equality(self):
        """p_{1,L} is both concave and convex: t_{i+1} = t_i - c exactly,
        showing Theorem 5.2 is tight."""
        res = uniform_optimal_schedule(300.0, 2.0)
        decs = period_decrements(res.schedule)
        assert np.allclose(decs, 2.0)
        assert satisfies_concave_decrements(res.schedule, 2.0)
        assert satisfies_convex_decrements(res.schedule, 2.0)

    def test_concave_law_on_optimizer_output(self):
        """Numerically optimal schedules for concave p obey t_{i+1} <= t_i - c."""
        for p, c in [
            (PolynomialRisk(2, 80.0), 1.0),
            (GeometricIncreasingRisk(25.0), 1.0),
        ]:
            res = optimize_schedule(p, c)
            assert satisfies_concave_decrements(res.schedule, c, tol=1e-5)

    def test_convex_law_on_geomdec_optimum(self):
        res = geometric_decreasing_optimal_schedule(1.3, 0.8)
        assert satisfies_convex_decrements(res.schedule, 0.8)

    def test_corollary_51_strict_decrease(self):
        """Concave p: optimal period lengths strictly decrease."""
        res = optimize_schedule(PolynomialRisk(3, 60.0), 1.0)
        assert np.all(period_decrements(res.schedule) > 0)

    def test_single_period_trivially_satisfies(self):
        s = Schedule([5.0])
        assert satisfies_concave_decrements(s, 1.0)
        assert satisfies_convex_decrements(s, 1.0)


class TestCorollaries:
    def test_corollary_52_t0_over_c(self):
        """Concave optimal schedules have at most t_0/c periods."""
        for L, c in [(100.0, 1.0), (400.0, 4.0)]:
            res = uniform_optimal_schedule(L, c)
            assert res.num_periods <= res.t0 / c + 1e-9

    def test_corollary_53_bound_holds(self):
        for L, c in [(100.0, 2.0), (1000.0, 1.0), (50.0, 5.0)]:
            res = uniform_optimal_schedule(L, c)
            assert res.num_periods < max_periods_bound(L, c)

    def test_corollary_53_tightness(self):
        """The uniform-risk optimum sits at the floor version of (5.8).

        DEVIATION NOTE: the paper says the optimal period count is *given by*
        the floor formula; our E-maximizing construction (confirmed by the
        unrestricted NLP) lands one below it at these parameters.  The [3]
        remark likely refers to the span-exactly-L variant of the family.
        We assert the floor formula is within one of the true argmax.
        """
        for L, c in [(100.0, 2.0), (1000.0, 1.0), (300.0, 4.0)]:
            floor_bound = int(math.floor(math.sqrt(2 * L / c + 0.25) + 0.5))
            res = uniform_optimal_schedule(L, c)
            assert abs(res.num_periods - floor_bound) <= 1
            assert res.num_periods < max_periods_bound(L, c)  # strict Cor 5.3

    def test_eq_59_chain(self):
        """L >= m t_{m-1} + C(m,2) c for the uniform optimum."""
        L, c = 500.0, 2.0
        res = uniform_optimal_schedule(L, c)
        m = res.num_periods
        t_last = float(res.schedule.periods[-1])
        assert L >= m * t_last + m * (m - 1) / 2 * c - 1e-9


class TestReport:
    def test_full_report(self):
        res = uniform_optimal_schedule(200.0, 2.0)
        report = verify_structure(res.schedule, 2.0, lifespan=200.0)
        assert report.concave_law_holds
        assert report.convex_law_holds
        assert report.strictly_decreasing
        assert report.within_t0_over_c
        assert report.within_cor53_bound
        assert report.num_periods == res.num_periods
        assert report.min_decrement == pytest.approx(2.0)

    def test_single_period_report(self):
        report = verify_structure(Schedule([5.0]), 1.0)
        assert math.isnan(report.min_decrement)
        assert report.concave_law_holds and report.convex_law_holds

    def test_zero_overhead_report(self):
        report = verify_structure(Schedule([3.0, 2.0]), 0.0)
        assert report.within_t0_over_c
