"""The content-addressed schedule plan cache (fingerprints, LRU, disk tier)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import plancache
from repro.core.optimizer import _guideline_start_cache, _guideline_start
from repro.core.plancache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    PlanCache,
    default_plan_cache,
    plan_key,
    reset_default_plan_cache,
)
from repro.core.uniqueness import scan_t0_landscape
from repro.exceptions import PlanCacheError


class TestFingerprint:
    def test_closed_form_families_stable_and_distinct(self):
        fps = {
            repro.UniformRisk(200.0).fingerprint(),
            repro.UniformRisk(200.0 + 1e-9).fingerprint(),
            repro.PolynomialRisk(3, 200.0).fingerprint(),
            repro.GeometricDecreasingLifespan(1.2).fingerprint(),
            repro.GeometricIncreasingRisk(30.0).fingerprint(),
            repro.WeibullLife(k=1.5, scale=100.0).fingerprint(),
        }
        assert len(fps) == 6  # all distinct, including the 1e-9 L perturbation
        assert repro.UniformRisk(200.0).fingerprint() == \
            repro.UniformRisk(200.0).fingerprint()

    def test_fingerprint_encodes_exact_float(self):
        # float.hex round-trips exactly: no two distinct L collide.
        a = repro.UniformRisk(np.nextafter(200.0, 300.0)).fingerprint()
        b = repro.UniformRisk(200.0).fingerprint()
        assert a != b

    def test_composites_recurse(self):
        mix = repro.MixtureLife(
            [repro.UniformRisk(100.0), repro.UniformRisk(300.0)], [0.5, 0.5]
        )
        fp = mix.fingerprint()
        assert "MixtureLife" in fp
        assert repro.UniformRisk(100.0).fingerprint().split("|")[0] in fp
        scaled = repro.TimeScaledLife(repro.UniformRisk(100.0), 2.0)
        assert "TimeScaledLife" in scaled.fingerprint()

    def test_plan_key_distinguishes_all_inputs(self):
        fp = repro.UniformRisk(200.0).fingerprint()
        keys = {
            plan_key("opt", fp, 2.0),
            plan_key("opt", fp, 2.0 + 1e-12),
            plan_key("opt", fp, 2.0, grid=129),
            plan_key("opt", fp, 2.0, grid=257),
            plan_key("t0opt", fp, 2.0),
        }
        assert len(keys) == 5

    def test_plan_key_rejects_unencodable_extras(self):
        with pytest.raises(PlanCacheError):
            plan_key("opt", "fp", 1.0, bad=object())


class TestMemoryTier:
    def test_hit_returns_same_object(self):
        cache = PlanCache()
        p = repro.UniformRisk(120.0)
        a = repro.optimize_schedule(p, 3.0, cache=cache)
        b = repro.optimize_schedule(p, 3.0, cache=cache)
        assert a is b
        # Two misses on the cold call (the nested guideline-start t0 search
        # rides the same cache), at least one hit on the warm call.
        assert cache.stats.hits >= 1
        assert cache.stats.misses >= 1

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        for i in range(4):
            cache.get_or_compute(f"k{i}", lambda i=i: i)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert "k3" in cache and "k0" not in cache

    def test_uncacheable_key_bypasses(self):
        cache = PlanCache()
        assert cache.get_or_compute(None, lambda: 42) == 42
        assert cache.stats.uncacheable == 1
        assert len(cache) == 0

    def test_stats_accounting(self):
        stats = CacheStats()
        assert stats.lookups == 0 and stats.hit_rate == 0.0
        stats.hits, stats.disk_hits, stats.misses = 3, 1, 4
        assert stats.lookups == 8
        assert stats.hit_rate == pytest.approx(0.5)
        as_dict = stats.as_dict()
        assert as_dict["hits"] == 3 and "hit_rate" in as_dict


class TestCachedOptimizers:
    @settings(max_examples=10, deadline=None)
    @given(
        L=st.floats(min_value=50.0, max_value=500.0),
        c=st.floats(min_value=0.5, max_value=5.0),
    )
    def test_cache_hit_bit_identical_to_cold_run(self, L, c):
        p = repro.UniformRisk(L)
        cold = repro.optimize_schedule(p, c)
        cache = PlanCache()
        repro.optimize_schedule(p, c, cache=cache)  # miss: populates
        warm = repro.optimize_schedule(p, c, cache=cache)  # hit
        assert cache.stats.hits >= 1
        np.testing.assert_array_equal(cold.schedule.periods, warm.schedule.periods)
        assert cold.expected_work == warm.expected_work

    def test_t0opt_rides_cache(self):
        cache = PlanCache()
        p = repro.GeometricIncreasingRisk(30.0)
        cold = repro.optimize_t0_via_recurrence(p, 1.0)
        repro.optimize_t0_via_recurrence(p, 1.0, cache=cache)
        t0, outcome, ew = repro.optimize_t0_via_recurrence(p, 1.0, cache=cache)
        assert cache.stats.hits >= 1
        assert t0 == cold[0] and ew == cold[2]
        np.testing.assert_array_equal(outcome.schedule.periods,
                                      cold[1].schedule.periods)

    def test_landscape_rides_cache(self):
        cache = PlanCache()
        p = repro.UniformRisk(100.0)
        a = scan_t0_landscape(p, 2.0, n_points=65, cache=cache)
        b = scan_t0_landscape(p, 2.0, n_points=65, cache=cache)
        assert a is b
        cold = scan_t0_landscape(p, 2.0, n_points=65)
        np.testing.assert_array_equal(a.expected_work, cold.expected_work)

    def test_changed_fingerprint_misses(self):
        cache = PlanCache()
        repro.optimize_schedule(repro.UniformRisk(100.0), 2.0, cache=cache)
        repro.optimize_schedule(repro.UniformRisk(100.0 + 1e-9), 2.0, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses >= 2


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        p = repro.UniformRisk(150.0)
        first = PlanCache(cache_dir=tmp_path)
        cold = repro.optimize_schedule(p, 2.5, cache=first)
        second = PlanCache(cache_dir=tmp_path)
        warm = repro.optimize_schedule(p, 2.5, cache=second)
        assert second.stats.disk_hits == 1
        np.testing.assert_array_equal(cold.schedule.periods, warm.schedule.periods)
        assert cold.expected_work == warm.expected_work
        assert first.disk_entries() >= 1

    def test_t0opt_disk_round_trip(self, tmp_path):
        p = repro.GeometricDecreasingLifespan(1.3)
        cold = repro.optimize_t0_via_recurrence(p, 0.4, cache=PlanCache(cache_dir=tmp_path))
        warm = repro.optimize_t0_via_recurrence(p, 0.4, cache=PlanCache(cache_dir=tmp_path))
        assert warm[0] == cold[0] and warm[2] == cold[2]
        np.testing.assert_array_equal(warm[1].schedule.periods,
                                      cold[1].schedule.periods)
        assert warm[1].termination == cold[1].termination

    def test_truncated_file_falls_back_to_compute(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.get_or_compute("key", lambda: {"x": 1},
                             to_payload=lambda v: v, from_payload=lambda d: d)
        path = cache._entry_path("key")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = PlanCache(cache_dir=tmp_path)
        value = fresh.get_or_compute("key", lambda: {"x": 2},
                                     to_payload=lambda v: v, from_payload=lambda d: d)
        assert value == {"x": 2}  # recomputed, not half-parsed
        assert fresh.stats.corrupt_loads == 1
        assert fresh.stats.misses == 1

    def test_garbage_file_counts_corrupt(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.get_or_compute("key", lambda: {"x": 1},
                             to_payload=lambda v: v, from_payload=lambda d: d)
        cache._entry_path("key").write_bytes(b"\x00\xffnot json")
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.get_or_compute("key", lambda: {"x": 3},
                                    to_payload=lambda v: v,
                                    from_payload=lambda d: d) == {"x": 3}
        assert fresh.stats.corrupt_loads == 1

    def test_key_collision_guard(self, tmp_path):
        # An entry whose recorded key differs from the requested one is
        # treated as corrupt (content addressing is checked, not trusted).
        cache = PlanCache(cache_dir=tmp_path)
        cache.get_or_compute("key", lambda: {"x": 1},
                             to_payload=lambda v: v, from_payload=lambda d: d)
        path = cache._entry_path("key")
        entry = json.loads(path.read_text())
        entry["key"] = "other-key"
        path.write_text(json.dumps(entry))
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.get_or_compute("key", lambda: {"x": 9},
                                    to_payload=lambda v: v,
                                    from_payload=lambda d: d) == {"x": 9}

    def test_schema_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = PlanCache(cache_dir=tmp_path)
        cache.get_or_compute("key", lambda: {"x": 1},
                             to_payload=lambda v: v, from_payload=lambda d: d)
        monkeypatch.setattr(plancache, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        fresh = PlanCache(cache_dir=tmp_path)
        value = fresh.get_or_compute("key", lambda: {"x": 2},
                                     to_payload=lambda v: v, from_payload=lambda d: d)
        assert value == {"x": 2}  # old-version entries are invisible
        assert fresh.stats.disk_hits == 0

    def test_clear_disk(self, tmp_path):
        cache = PlanCache(cache_dir=tmp_path)
        cache.get_or_compute("key", lambda: 1,
                             to_payload=lambda v: {"v": v},
                             from_payload=lambda d: d["v"])
        assert cache.disk_entries() == 1
        cache.clear(memory=True, disk=True)
        assert cache.disk_entries() == 0
        assert len(cache) == 0


class TestDefaultCache:
    def test_singleton_and_reset(self, tmp_path):
        reset_default_plan_cache()
        try:
            a = default_plan_cache(tmp_path)
            b = default_plan_cache(tmp_path)
            assert a is b
            c = default_plan_cache(tmp_path / "other")
            assert c is not a
        finally:
            reset_default_plan_cache()


class TestGuidelineStartCache:
    def test_bounded_per_instance(self):
        p = repro.UniformRisk(77.0)
        _guideline_start_cache.pop(p, None)
        from repro.core.optimizer import _GUIDELINE_START_MAX_PER_LIFE

        for i in range(_GUIDELINE_START_MAX_PER_LIFE + 5):
            _guideline_start(p, 1.0 + 0.1 * i)
        assert len(_guideline_start_cache[p]) == _GUIDELINE_START_MAX_PER_LIFE

    def test_thread_safe_under_contention(self):
        p = repro.UniformRisk(88.0)
        _guideline_start_cache.pop(p, None)
        errors = []

        def worker(offset):
            try:
                for i in range(8):
                    _guideline_start(p, 1.0 + 0.05 * ((offset + i) % 4))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestPeek:
    def test_cold_peek_returns_none_without_counting_a_miss(self):
        cache = PlanCache(maxsize=4)
        assert cache.peek("absent") is None
        assert cache.stats.misses == 0
        assert cache.stats.hits == 0

    def test_warm_peek_hits_memory(self):
        cache = PlanCache(maxsize=4)
        cache.get_or_compute("key", lambda: 41)
        assert cache.peek("key") == 41
        assert cache.stats.hits == 1

    def test_peek_promotes_from_disk(self, tmp_path):
        warm = PlanCache(cache_dir=tmp_path)
        warm.get_or_compute("key", lambda: {"x": 7},
                            to_payload=lambda v: v, from_payload=lambda d: d)
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.peek("key", from_payload=lambda d: d) == {"x": 7}
        assert fresh.stats.disk_hits == 1
        # Promoted into memory: the next peek needs no disk read.
        assert "key" in fresh

    def test_peek_without_decoder_skips_disk(self, tmp_path):
        warm = PlanCache(cache_dir=tmp_path)
        warm.get_or_compute("key", lambda: {"x": 7},
                            to_payload=lambda v: v, from_payload=lambda d: d)
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.peek("key") is None

    def test_peek_uncacheable_key(self):
        cache = PlanCache(maxsize=4)
        assert cache.peek(None) is None
        assert cache.stats.uncacheable == 1

    def test_peek_corrupt_disk_entry(self, tmp_path):
        warm = PlanCache(cache_dir=tmp_path)
        warm.get_or_compute("key", lambda: {"x": 7},
                            to_payload=lambda v: v, from_payload=lambda d: d)
        warm._entry_path("key").write_bytes(b"garbage")
        fresh = PlanCache(cache_dir=tmp_path)
        assert fresh.peek("key", from_payload=lambda d: d) is None
        assert fresh.stats.corrupt_loads == 1


class TestUnwritableCacheDir:
    def test_degrades_to_memory_only_with_one_warning(self, tmp_path):
        # A *file* where the cache directory should be: mkdir fails cleanly.
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        reset_default_plan_cache()
        try:
            with pytest.warns(RuntimeWarning, match="memory-only"):
                cache = default_plan_cache(blocked)
            assert cache.cache_dir is None
            # Second call: no re-probe, no second warning, same degradation.
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                again = default_plan_cache(blocked)
            assert again.cache_dir is None
            # The cache still works, memory-only.
            assert again.get_or_compute("k", lambda: 5) == 5
            assert again.peek("k") == 5
        finally:
            reset_default_plan_cache()

    def test_reset_forgets_unwritable_verdicts(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        reset_default_plan_cache()
        try:
            with pytest.warns(RuntimeWarning):
                default_plan_cache(blocked)
            reset_default_plan_cache()
            blocked.unlink()  # the path becomes creatable
            cache = default_plan_cache(blocked)
            assert cache.cache_dir == blocked
        finally:
            reset_default_plan_cache()


class TestLatencyReservoir:
    def test_exact_percentiles_small_sample(self):
        from repro.core.plancache import LatencyReservoir

        res = LatencyReservoir(capacity=16)
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
            res.add(v)
        p = res.percentiles()
        # Nearest-rank on 10 samples: p50 -> 5th, p95 -> 10th, p99 -> 10th.
        assert p["p50"] == 5.0
        assert p["p95"] == 10.0
        assert p["p99"] == 10.0
        assert res.count == 10

    def test_empty_reservoir_is_nan(self):
        from repro.core.plancache import LatencyReservoir

        p = LatencyReservoir().percentiles()
        assert all(v != v for v in p.values())  # NaN

    def test_reservoir_bounds_memory_but_keeps_counting(self):
        from repro.core.plancache import LatencyReservoir

        res = LatencyReservoir(capacity=8, seed=3)
        for v in range(1000):
            res.add(float(v))
        assert res.count == 1000
        assert len(res._sample) == 8
        p = res.percentiles()
        assert 0.0 <= p["p50"] <= 999.0

    def test_deterministic_given_seed(self):
        from repro.core.plancache import LatencyReservoir

        a, b = LatencyReservoir(capacity=4, seed=9), LatencyReservoir(capacity=4, seed=9)
        for v in range(100):
            a.add(float(v))
            b.add(float(v))
        assert a.percentiles() == b.percentiles()

    def test_invalid_capacity(self):
        from repro.core.plancache import LatencyReservoir
        from repro.exceptions import PlanCacheError

        with pytest.raises(PlanCacheError):
            LatencyReservoir(capacity=0)

    def test_cache_stats_record_latency(self):
        cache = PlanCache()
        cache.get_or_compute("k", lambda: 1)
        cache.get_or_compute("k", lambda: 1)
        assert cache.stats.latency.count == 2
        assert "latency" in cache.stats.as_dict()
        assert cache.stats.as_dict()["latency"]["count"] == 2
