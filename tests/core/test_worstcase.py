"""Worst-case (adversarial) measures — the sequel's territory (footnote 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.core.worstcase import (
    competitive_ratio,
    guaranteed_work,
    optimize_competitive_schedule,
)
from repro.exceptions import InvalidScheduleError


class TestGuaranteedWork:
    def test_adversary_kills_first_eligible_boundary(self):
        s = Schedule([4.0, 3.0, 2.0])  # boundaries 4, 7, 9
        c = 1.0
        # Adversary constrained to R >= 5: kills period 1 at 7 => banked 3.
        assert guaranteed_work(s, c, 5.0) == pytest.approx(3.0)
        # R >= 7.5: kills period 2 at 9 => banked 3 + 2.
        assert guaranteed_work(s, c, 7.5) == pytest.approx(5.0)
        # R >= 10: beyond the schedule => everything banked.
        assert guaranteed_work(s, c, 10.0) == pytest.approx(6.0)

    def test_unconstrained_adversary_gets_zero(self):
        s = Schedule([4.0, 3.0])
        assert guaranteed_work(s, 1.0, 0.0) == 0.0

    def test_negative_min_rejected(self):
        with pytest.raises(InvalidScheduleError):
            guaranteed_work(Schedule([4.0]), 1.0, -1.0)


class TestCompetitiveRatio:
    def test_manual_small_case(self):
        s = Schedule([4.0, 4.0])  # boundaries 4, 8
        c = 1.0
        # Worst candidates: just before T1 = 8 -> 3/(8-1); at horizon 8 -> 6/7.
        ratio = competitive_ratio(s, c, min_episode=4.5, horizon=8.0)
        assert ratio == pytest.approx(3.0 / 7.0)

    def test_equal_chunks_formula(self):
        """Equal periods t: the worst ratio is (t-c)/(2t-c) (kill period 1)."""
        t, c = 6.0, 1.0
        s = Schedule([t] * 10)
        ratio = competitive_ratio(s, c, min_episode=t * 1.001, horizon=10 * t)
        assert ratio == pytest.approx((t - c) / (2 * t - c), rel=1e-6)

    def test_doubling_worse_than_tuned_equal(self):
        c = 1.0
        doubling = Schedule([4.0 * 2**k for k in range(6)])
        equal = Schedule([4.0] * 63)
        kwargs = dict(min_episode=4.2, horizon=250.0)
        assert competitive_ratio(equal, c, **kwargs) > competitive_ratio(
            doubling, c, **kwargs
        )

    def test_invalid_window(self):
        with pytest.raises(InvalidScheduleError):
            competitive_ratio(Schedule([4.0]), 1.0, min_episode=5.0, horizon=4.0)


class TestOptimizer:
    def test_finds_positive_ratio(self):
        res = optimize_competitive_schedule(1.0, horizon=200.0, min_episode=4.0)
        assert res.ratio > 0.3
        assert res.growth >= 1.0
        assert res.schedule.total_length >= 200.0 * 0.5

    def test_pins_first_period_at_min_episode(self):
        """With additive overhead, the optimum commits the whole guaranteed
        window to the first period (t0 = min_episode, q -> 1 region)."""
        res = optimize_competitive_schedule(1.0, horizon=200.0, min_episode=4.0)
        assert res.first_period == pytest.approx(4.0, rel=0.05)

    def test_ratio_improves_with_min_episode(self):
        r_small = optimize_competitive_schedule(1.0, 200.0, min_episode=3.0).ratio
        r_large = optimize_competitive_schedule(1.0, 200.0, min_episode=20.0).ratio
        assert r_large > r_small

    def test_invalid_min_episode(self):
        with pytest.raises(InvalidScheduleError):
            optimize_competitive_schedule(2.0, 100.0, min_episode=1.0)
