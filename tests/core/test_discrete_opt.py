"""Exact discrete DP optimum (Section 6's discrete-analogue question)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.discrete_opt import solve_discrete_optimal
from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.exceptions import InvalidScheduleError
from repro.simulation.discrete import discretize_schedule


class TestDP:
    def test_periods_match_task_counts(self):
        opt = solve_discrete_optimal(UniformRisk(60.0), c=2.0, tau=1.0)
        for period, k in zip(opt.schedule.periods, opt.task_counts):
            assert period == pytest.approx(2.0 + k * 1.0)
        assert all(k >= 1 for k in opt.task_counts)

    def test_expected_work_consistent(self):
        p = UniformRisk(60.0)
        opt = solve_discrete_optimal(p, c=2.0, tau=1.0)
        assert opt.expected_work == pytest.approx(
            opt.schedule.expected_work(p, 2.0), rel=1e-10
        )

    def test_dominates_quantized_guideline(self, concave_life):
        """The DP optimum is an upper bound over all whole-task schedules,
        in particular over the floor-quantized continuous guideline."""
        c, tau = 1.0, 0.5
        dp = solve_discrete_optimal(concave_life, c, tau)
        cont = guideline_schedule(concave_life, c).schedule
        quantized = discretize_schedule(cont, c, tau)
        assert dp.expected_work >= quantized.expected_work(concave_life, c) - 1e-9

    def test_below_continuous_optimum(self):
        """Quantization can only lose work relative to the continuous optimum."""
        from repro.core.optimizer import optimize_schedule

        p = UniformRisk(80.0)
        c = 2.0
        cont = optimize_schedule(p, c).expected_work
        dp = solve_discrete_optimal(p, c, tau=4.0).expected_work
        assert dp <= cont + 1e-9

    def test_converges_to_continuous_with_fine_tasks(self):
        from repro.core.optimizer import optimize_schedule

        p = UniformRisk(60.0)
        c = 2.0
        cont = optimize_schedule(p, c).expected_work
        coarse = solve_discrete_optimal(p, c, tau=8.0).expected_work
        fine = solve_discrete_optimal(p, c, tau=0.5).expected_work
        assert coarse <= fine <= cont + 1e-9
        assert (cont - fine) / cont < 0.01

    def test_uniform_integral_case_matches_decrement_structure(self):
        """With c and tau integral, the DP recovers the decrement-c shape."""
        opt = solve_discrete_optimal(UniformRisk(100.0), c=2.0, tau=1.0)
        decs = -np.diff(opt.schedule.periods)
        assert np.all(decs >= 1.0 - 1e-9)  # at least one task fewer each period

    def test_works_for_geominc(self):
        opt = solve_discrete_optimal(GeometricIncreasingRisk(24.0), c=1.0, tau=0.5)
        assert opt.expected_work > 0
        # First period dominates, like the continuous optimum.
        assert opt.schedule.periods[0] > 0.5 * opt.schedule.total_length

    def test_rejects_unbounded_lifespan(self):
        with pytest.raises(InvalidScheduleError):
            solve_discrete_optimal(GeometricDecreasingLifespan(1.3), 1.0, 1.0)

    def test_rejects_bad_quanta(self):
        with pytest.raises(InvalidScheduleError):
            solve_discrete_optimal(UniformRisk(10.0), 1.0, 0.0)
        with pytest.raises(InvalidScheduleError):
            solve_discrete_optimal(UniformRisk(10.0), -1.0, 1.0)

    def test_grid_guard(self):
        with pytest.raises(InvalidScheduleError):
            solve_discrete_optimal(UniformRisk(10_000.0), 1.0, 0.001, max_states=1000)

    def test_impossible_fit_raises(self):
        with pytest.raises(InvalidScheduleError):
            solve_discrete_optimal(UniformRisk(2.0), c=1.5, tau=1.0)
