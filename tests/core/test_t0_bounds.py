"""Theorem 3.2/3.3 brackets, Section 4 closed forms, Section 5 refinements."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    geometric_decreasing_optimal_period,
    uniform_optimal_schedule,
    uniform_t0_asymptotic,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    Shape,
    UniformRisk,
    WeibullLife,
)
from repro.core.t0_bounds import (
    geometric_decreasing_bracket,
    geometric_increasing_window,
    lower_bound_t0,
    max_periods_bound,
    polynomial_bracket,
    t0_bracket,
    t0_lower_bound_cor54,
    t0_lower_bound_cor55,
    theorem_32_rhs,
    uniform_bracket,
    upper_bound_t0,
)


class TestImplicitBounds:
    def test_uniform_closed_form_agreement(self):
        """For p = 1 - t/L, (3.7) becomes t >= sqrt(c^2/4 + c(L - t)) + c/2,
        solvable by hand; the generic solver must match."""
        L, c = 100.0, 1.0
        p = UniformRisk(L)
        lo = lower_bound_t0(p, c)
        # Fixed point: (t - c/2)^2 = c^2/4 + cL - ct  =>  t^2 = cL.
        assert lo == pytest.approx(math.sqrt(c * L), rel=1e-6)

    def test_lower_bound_below_upper(self, paper_life):
        c = 0.5
        if paper_life.shape is Shape.GENERAL:
            pytest.skip("Theorem 3.3 needs convex/concave")
        br = t0_bracket(paper_life, c)
        assert br.lo <= br.hi

    def test_bracket_contains_numeric_optimum_uniform(self):
        L, c = 400.0, 2.0
        br = t0_bracket(UniformRisk(L), c)
        exact = uniform_optimal_schedule(L, c)
        assert br.contains(exact.t0, rtol=1e-6)

    def test_bracket_contains_optimum_geomdec(self):
        a, c = 1.2, 1.0
        br = t0_bracket(GeometricDecreasingLifespan(a), c)
        t_star = geometric_decreasing_optimal_period(a, c)
        assert br.contains(t_star, rtol=1e-6)

    def test_bracket_factor_of_two_ish(self):
        """Paper: bounds 'bracket t_0 ... within a factor of 2' for many
        smooth life functions."""
        for p in (UniformRisk(300.0), PolynomialRisk(2, 300.0), PolynomialRisk(4, 300.0)):
            br = t0_bracket(p, 1.0)
            assert br.ratio < 2.6

    def test_theorem_32_rhs_infinite_at_flat_derivative(self):
        p = GeometricIncreasingRisk(40.0)
        # p'(t) == 0 beyond the lifespan -> vacuous bound.
        assert theorem_32_rhs(p, 1.0, 45.0) == math.inf

    def test_general_shape_rejected_for_upper(self):
        with pytest.raises(ValueError):
            upper_bound_t0(WeibullLife(k=2.0, scale=10.0), 1.0)

    def test_shape_override(self):
        # Weibull k>1 is GENERAL but numerically concave-ish near 0; passing
        # an explicit shape must produce a finite bound without raising.
        val = upper_bound_t0(WeibullLife(k=2.0, scale=10.0), 0.5, shape=Shape.CONCAVE)
        assert val > 0

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            lower_bound_t0(UniformRisk(10.0), -1.0)
        with pytest.raises(ValueError):
            upper_bound_t0(UniformRisk(10.0), -1.0)

    def test_zero_c_lower_bound_zero(self):
        assert lower_bound_t0(UniformRisk(10.0), 0.0) == 0.0


class TestSection4ClosedForms:
    def test_uniform_bracket_eq_44(self):
        L, c = 900.0, 4.0
        br = uniform_bracket(L, c)
        assert br.lo == pytest.approx(math.sqrt(c * L))
        assert br.hi == pytest.approx(2 * math.sqrt(c * L) + 1)

    def test_uniform_bracket_contains_sqrt_2cL(self):
        """(4.4) vs (4.5): sqrt(cL) <= sqrt(2cL) <= 2 sqrt(cL) + 1."""
        for L in (50.0, 500.0, 5000.0):
            for c in (0.5, 2.0, 10.0):
                br = uniform_bracket(L, c)
                assert br.contains(uniform_t0_asymptotic(L, c))

    def test_polynomial_bracket_scaling(self):
        d, L, c = 3, 1000.0, 2.0
        br = polynomial_bracket(d, L, c)
        base = (c / d) ** (1 / (d + 1)) * L ** (d / (d + 1))
        assert br.lo == pytest.approx(base)
        assert br.hi == pytest.approx(2 * base + 1)

    def test_polynomial_bracket_matches_implicit_solver(self):
        """The generic Theorem 3.2/3.3 solver should land near the Section 4
        simplifications (they drop low-order terms, so agreement is loose)."""
        d, L, c = 2, 500.0, 1.0
        p = PolynomialRisk(d, L)
        closed = polynomial_bracket(d, L, c)
        implicit = t0_bracket(p, c)
        assert implicit.lo == pytest.approx(closed.lo, rel=0.35)
        assert implicit.hi == pytest.approx(closed.hi, rel=0.35)

    def test_geometric_decreasing_bracket(self):
        a, c = 1.4, 0.8
        br = geometric_decreasing_bracket(a, c)
        ln_a = math.log(a)
        assert br.lo == pytest.approx(math.sqrt(c * c / 4 + c / ln_a) + c / 2)
        assert br.hi == pytest.approx(c + 1 / ln_a)

    def test_geometric_decreasing_upper_nearly_tight(self):
        """Paper: 'Note how close our guidelines' upper bound is to the
        optimal value.'  Tightness improves as c·ln a grows (measured: the
        relative gap falls from ~240% at c·ln a = 0.01 to ~16% at 0.7)."""
        for a in (1.1, 1.5, 2.0):
            for c in (0.1, 0.5, 1.0):
                br = geometric_decreasing_bracket(a, c)
                t_star = geometric_decreasing_optimal_period(a, c)
                assert br.contains(t_star)
        # Quantify the trend in the tight regime.
        for a, c in ((1.5, 1.0), (2.0, 0.5), (2.0, 1.0)):
            br = geometric_decreasing_bracket(a, c)
            t_star = geometric_decreasing_optimal_period(a, c)
            assert (br.hi - t_star) / t_star < 0.45

    def test_geometric_increasing_window(self):
        L, c = 64.0, 1.0
        win = geometric_increasing_window(L, c)
        # t0 = L - Theta(log L): the window straddles that scale.
        assert L - 4 * math.log2(L) < win.lo <= win.hi <= L
        # Window edges satisfy their defining equations.
        assert win.lo + 2 * math.log2(win.lo) == pytest.approx(L, rel=1e-9)
        assert win.hi / 2 + 2 * math.log2(win.hi) == pytest.approx(L, rel=1e-9) or win.hi == L

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            polynomial_bracket(0, 10.0, 1.0)
        with pytest.raises(ValueError):
            geometric_decreasing_bracket(1.0, 1.0)
        with pytest.raises(ValueError):
            geometric_increasing_window(0.5, 1.0)


class TestSection5Refinements:
    def test_max_periods_bound_formula(self):
        assert max_periods_bound(100.0, 2.0) == math.ceil(math.sqrt(100.0 + 0.25) + 0.5)

    def test_cor54(self):
        assert t0_lower_bound_cor54(100.0, 2.0, 5) == pytest.approx(100 / 5 + 4.0)
        with pytest.raises(ValueError):
            t0_lower_bound_cor54(100.0, 2.0, 0)

    def test_cor55(self):
        assert t0_lower_bound_cor55(100.0, 2.0) == pytest.approx(10.0 + 1.5)

    def test_cor55_holds_for_uniform_optimum(self):
        for L in (100.0, 1000.0):
            for c in (0.5, 2.0):
                exact = uniform_optimal_schedule(L, c)
                assert exact.t0 > t0_lower_bound_cor55(L, c)

    def test_cor54_holds_for_uniform_optimum(self):
        """Corollary 5.4's proof assumes the schedule spans exactly L; the
        true optimum leaves a sliver of the lifespan unused, so the bound
        holds only up to ~c/2 slack (measured; documented in EXPERIMENTS.md)."""
        L, c = 1000.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        bound = t0_lower_bound_cor54(L, c, exact.num_periods)
        assert exact.t0 >= bound - 0.5 * c - 1e-9

    def test_invalid_period_bound_args(self):
        with pytest.raises(ValueError):
            max_periods_bound(-1.0, 1.0)
        with pytest.raises(ValueError):
            max_periods_bound(10.0, 0.0)
