"""Proposition 2.1: the productive-schedule transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import GeometricIncreasingRisk, UniformRisk
from repro.core.productive import is_productive, make_productive
from repro.core.schedule import Schedule


class TestMakeProductive:
    def test_drops_unproductive_periods(self):
        s = Schedule([5.0, 0.5, 3.0, 0.2, 2.0])
        out = make_productive(s, 1.0)
        assert list(out) == [5.0, 3.0, 2.0]
        assert is_productive(out, 1.0)

    def test_never_decreases_expected_work(self):
        p = UniformRisk(50.0)
        c = 1.0
        s = Schedule([5.0, 0.5, 3.0, 0.9, 2.0])
        out = make_productive(s, c)
        assert out.expected_work(p, c) >= s.expected_work(p, c)

    def test_strictly_increases_when_later_work_exists(self):
        p = UniformRisk(50.0)
        c = 1.0
        s = Schedule([5.0, 0.5, 3.0])
        out = make_productive(s, c)
        assert out.expected_work(p, c) > s.expected_work(p, c)

    def test_already_productive_unchanged(self):
        s = Schedule([5.0, 3.0, 2.0])
        assert make_productive(s, 1.0) == s

    def test_all_unproductive_keeps_longest(self):
        s = Schedule([0.5, 0.9, 0.3])
        out = make_productive(s, 1.0)
        assert list(out) == [0.9]

    def test_gain_across_families(self, paper_life):
        c = 1.0
        s = Schedule([8.0, 0.5, 4.0, 0.5, 2.0])
        out = make_productive(s, c)
        assert out.expected_work(paper_life, c) >= s.expected_work(paper_life, c) - 1e-12

    def test_boundary_period_exactly_c(self):
        # t == c is unproductive (work t - c = 0): dropped.
        s = Schedule([5.0, 1.0, 3.0])
        out = make_productive(s, 1.0)
        assert list(out) == [5.0, 3.0]
