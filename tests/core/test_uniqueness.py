"""The uniqueness open question, explored numerically (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    MixtureLife,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.uniqueness import (
    count_expected_work_peaks,
    is_unique_optimum_numerically,
    scan_t0_landscape,
)


class TestLandscape:
    def test_scan_shapes(self):
        landscape = scan_t0_landscape(UniformRisk(100.0), 2.0, n_points=129)
        assert landscape.t0_values.size == 129
        assert landscape.expected_work.size == 129
        assert landscape.max > 0
        assert landscape.t0_values[0] < landscape.argmax < landscape.t0_values[-1]

    def test_argmax_matches_exact_uniform(self):
        from repro.core.exact import uniform_optimal_schedule

        landscape = scan_t0_landscape(UniformRisk(200.0), 2.0, n_points=1025)
        exact = uniform_optimal_schedule(200.0, 2.0)
        assert landscape.argmax == pytest.approx(exact.t0, rel=0.02)


class TestUniqueness:
    @pytest.mark.parametrize("factory,c", [
        (lambda: UniformRisk(100.0), 2.0),
        (lambda: PolynomialRisk(3, 100.0), 1.0),
        (lambda: GeometricDecreasingLifespan(1.3), 0.5),
        (lambda: GeometricIncreasingRisk(25.0), 1.0),
    ])
    def test_section4_families_unique(self, factory, c):
        """Paper: 'each of the life functions studied in [3] admits a unique
        optimal schedule' — the numeric landscape agrees."""
        assert is_unique_optimum_numerically(factory(), c, n_points=513)

    def test_single_peak_for_uniform(self):
        assert count_expected_work_peaks(UniformRisk(100.0), 2.0, n_points=257) == 1

    def test_mixture_is_multimodal(self):
        """A coffee-break/meeting mixture produces several local maxima —
        the structure that makes the uniqueness question nontrivial."""
        mix = MixtureLife(
            [GeometricIncreasingRisk(12.0), UniformRisk(120.0)], [0.7, 0.3]
        )
        assert count_expected_work_peaks(mix, 0.5, n_points=257) >= 2
        # Multimodal, but (numerically) still one *global* optimum here.
        assert is_unique_optimum_numerically(mix, 0.5, n_points=513, rel_tol=1e-6)
