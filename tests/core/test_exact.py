"""The reconstructed [3] optima: closed forms and cross-checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    bclr_step_geometric_increasing,
    geometric_decreasing_optimal_period,
    geometric_decreasing_optimal_schedule,
    geometric_decreasing_optimal_work,
    geometric_increasing_optimal_schedule,
    uniform_decrement_t0,
    uniform_optimal_num_periods,
    uniform_optimal_schedule,
    uniform_t0_asymptotic,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    UniformRisk,
)
from repro.core.recurrence import satisfies_recurrence


class TestUniformOptimal:
    def test_period_count_floor_formula(self):
        assert uniform_optimal_num_periods(100.0, 2.0) == int(
            math.floor(math.sqrt(100.0 + 0.25) + 0.5)
        )

    def test_decrement_structure(self):
        res = uniform_optimal_schedule(500.0, 2.0)
        decs = -np.diff(res.schedule.periods)
        assert np.allclose(decs, 2.0)

    def test_t0_near_sqrt_2cL(self):
        """Eq. (4.5): t0 = sqrt(2cL) + low-order terms."""
        for L in (1000.0, 10000.0):
            c = 1.0
            res = uniform_optimal_schedule(L, c)
            assert res.t0 == pytest.approx(uniform_t0_asymptotic(L, c), rel=0.06)

    def test_satisfies_guideline_recurrence(self):
        """(4.1) 'is identical to the optimal period-length recurrence for
        p_{1,L} discovered in [3]'."""
        res = uniform_optimal_schedule(300.0, 2.0)
        assert satisfies_recurrence(res.schedule, UniformRisk(300.0), 2.0)

    def test_beats_neighbor_period_counts(self):
        """The chosen m maximizes E over the decrement family."""
        L, c = 200.0, 3.0
        p = UniformRisk(L)
        res = uniform_optimal_schedule(L, c)
        for m in (res.num_periods - 1, res.num_periods + 1):
            if m < 1:
                continue
            t0 = uniform_decrement_t0(L, c, m)
            periods = t0 - c * np.arange(m)
            if np.any(periods <= 0):
                continue
            from repro.core.schedule import Schedule

            ew = Schedule(periods).expected_work(p, c)
            assert ew <= res.expected_work + 1e-9

    def test_spans_at_most_lifespan(self):
        res = uniform_optimal_schedule(100.0, 1.0)
        assert res.schedule.total_length <= 100.0 + 1e-9

    def test_matches_nlp_ground_truth(self):
        from repro.core.optimizer import optimize_schedule

        L, c = 150.0, 2.0
        res = uniform_optimal_schedule(L, c)
        nlp = optimize_schedule(UniformRisk(L), c)
        assert res.expected_work == pytest.approx(nlp.expected_work, rel=1e-6)

    def test_overhead_too_large(self):
        from repro.exceptions import ConvergenceError

        with pytest.raises(ConvergenceError):
            uniform_optimal_schedule(1.0, 10.0)


class TestGeometricDecreasingOptimal:
    def test_transcendental_equation(self):
        a, c = 1.4, 0.7
        t_star = geometric_decreasing_optimal_period(a, c)
        ln_a = math.log(a)
        assert t_star + a ** (-t_star) / ln_a == pytest.approx(c + 1 / ln_a, rel=1e-12)

    def test_interior_root(self):
        a, c = 1.2, 1.0
        t_star = geometric_decreasing_optimal_period(a, c)
        assert c < t_star < c + 1 / math.log(a)

    def test_zero_overhead_degenerates(self):
        assert geometric_decreasing_optimal_period(1.5, 0.0) == 0.0

    def test_closed_form_work_matches_schedule(self):
        a, c = 1.3, 0.5
        closed = geometric_decreasing_optimal_work(a, c)
        res = geometric_decreasing_optimal_schedule(a, c, tol=1e-14)
        p = GeometricDecreasingLifespan(a)
        assert res.schedule.expected_work(p, c) == pytest.approx(closed, rel=1e-10)

    def test_equal_periods(self):
        res = geometric_decreasing_optimal_schedule(1.25, 0.8)
        assert np.allclose(res.schedule.periods, res.t0, rtol=1e-9)

    def test_beats_perturbed_period_lengths(self):
        """t* maximizes the closed-form E over equal-period schedules."""
        a, c = 1.3, 0.6
        t_star = geometric_decreasing_optimal_period(a, c)

        def equal_period_work(t: float) -> float:
            q = a ** (-t)
            return (t - c) * q / (1 - q)

        e_star = equal_period_work(t_star)
        for t in (t_star * 0.8, t_star * 0.95, t_star * 1.05, t_star * 1.2):
            assert equal_period_work(t) <= e_star + 1e-12

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            geometric_decreasing_optimal_period(0.9, 1.0)
        with pytest.raises(ValueError):
            geometric_decreasing_optimal_period(1.5, -1.0)


class TestGeometricIncreasingOptimal:
    def test_bclr_step(self):
        assert bclr_step_geometric_increasing(10.0, 1.0) == pytest.approx(
            math.log2(11.0)
        )
        assert math.isnan(bclr_step_geometric_increasing(0.5, 3.0))

    def test_schedule_follows_bclr_recurrence(self):
        res = geometric_increasing_optimal_schedule(40.0, 1.0)
        periods = res.schedule.periods
        for k in range(len(periods) - 1):
            assert periods[k + 1] == pytest.approx(
                math.log2(periods[k] - 1.0 + 2.0), rel=1e-9
            )

    def test_near_nlp_ground_truth(self):
        """The [3]-family optimum should be within a hair of the unrestricted
        NLP optimum (the recurrence is [3]'s necessary condition)."""
        from repro.core.optimizer import optimize_schedule

        L, c = 30.0, 1.0
        res = geometric_increasing_optimal_schedule(L, c)
        nlp = optimize_schedule(GeometricIncreasingRisk(L), c)
        assert res.expected_work == pytest.approx(nlp.expected_work, rel=0.02)

    def test_t0_dominates_schedule(self):
        """t0 = L - Theta(log L): the first period takes nearly everything."""
        L = 128.0
        res = geometric_increasing_optimal_schedule(L, 1.0)
        assert res.t0 > L - 4 * math.log2(L)
        assert res.t0 < L

    def test_lifespan_not_exceeded(self):
        res = geometric_increasing_optimal_schedule(25.0, 0.5)
        assert res.schedule.total_length <= 25.0 + 1e-9

    def test_overhead_exceeding_lifespan(self):
        from repro.exceptions import ConvergenceError

        with pytest.raises(ConvergenceError):
            geometric_increasing_optimal_schedule(2.0, 5.0)
