"""Batched serving: serve_batch parity, coalescing, and the batching front door."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables_precompute import TableServer
from repro.core.plancache import PlanCache
from repro.core.serving import BatchingPlanServer, PlanServer, TierChaos
from repro.exceptions import PlanServingError

FAMILY_PARAMS = {
    "uniform": (60.0, 200.0),
    "poly": (80.0, 300.0),
    "geomdec": (1.1, 2.5),
    "geominc": (3.0, 30.0),
}


def _plans_equal(a, b) -> bool:
    return (
        a.t0 == b.t0
        and a.expected_work == b.expected_work
        and a.termination == b.termination
        and a.source == b.source
        and np.array_equal(a.schedule.periods, b.schedule.periods)
    )


@st.composite
def query_batches(draw):
    """Duplicate-free mixed-family query batches."""
    n = draw(st.integers(min_value=1, max_value=6))
    queries = []
    seen = set()
    for _ in range(n):
        fam = draw(st.sampled_from(sorted(FAMILY_PARAMS)))
        lo, hi = FAMILY_PARAMS[fam]
        v = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
        c = draw(st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
        key = (fam, c, v)
        if key in seen:
            continue
        seen.add(key)
        queries.append(key)
    return queries


class TestServeBatchParity:
    @settings(max_examples=15, deadline=None)
    @given(queries=query_batches())
    def test_batch_matches_scalar_loop(self, queries):
        """serve_batch == a loop of scalar serves, bit for bit."""
        fams = [q[0] for q in queries]
        cs = [q[1] for q in queries]
        vs = [q[2] for q in queries]
        batch = PlanServer().serve_batch(fams, cs, vs)
        scalar_server = PlanServer()
        scalar = [scalar_server.serve(f, c, v) for f, c, v in queries]
        assert len(batch) == len(scalar)
        for a, b in zip(batch, scalar):
            assert _plans_equal(a, b)

    @settings(max_examples=10, deadline=None)
    @given(
        queries=query_batches(),
        rate=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_batch_matches_scalar_loop_under_chaos(self, queries, rate, seed):
        """Per-tier chaos substreams keep batch and scalar draws aligned."""
        fams = [q[0] for q in queries]
        cs = [q[1] for q in queries]
        vs = [q[2] for q in queries]
        a_server = PlanServer(chaos=TierChaos({"optimizer": rate}, seed=seed))
        b_server = PlanServer(chaos=TierChaos({"optimizer": rate}, seed=seed))
        batch = a_server.serve_batch(fams, cs, vs)
        scalar = [b_server.serve(f, c, v) for f, c, v in queries]
        for x, y in zip(batch, scalar):
            assert _plans_equal(x, y)
        for tier in PlanServer.TIERS:
            assert a_server.tier_stats[tier].errors == b_server.tier_stats[tier].errors
            assert a_server.tier_stats[tier].hits == b_server.tier_stats[tier].hits

    def test_batch_matches_scalar_with_warm_tables(self, warmed_table_dir):
        """Mixed in-grid / off-grid / out-of-bounds through the table tier."""
        c_grid, param_grid = warmed_table_dir["grids"]["uniform"]
        queries = [
            ("uniform", float(c_grid[1]), float(param_grid[2])),  # on-grid
            ("uniform", 2.3, 199.0),                              # off-grid
            ("uniform", float(c_grid[-1]) * 4, float(param_grid[-1]) * 4),  # out of bounds
            ("uniform", 1.7, 333.3),
        ]

        def build():
            ts = TableServer(cache_dir=warmed_table_dir["dir"], cache=PlanCache())
            return PlanServer(table_server=ts, cache=ts.cache)

        batch = build().serve_batch(*map(list, zip(*queries)))
        scalar_server = build()
        scalar = [scalar_server.serve(f, c, v) for f, c, v in queries]
        for a, b in zip(batch, scalar):
            assert _plans_equal(a, b)
        assert batch[0].source == "table"
        assert batch[2].source in ("cache", "optimizer")

    def test_empty_batch(self):
        assert PlanServer().serve_batch([], [], []) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(PlanServingError):
            PlanServer().serve_batch(["uniform"], [0.1, 0.2], [60.0])

    def test_all_tiers_down_raises_aggregate(self):
        chaos = TierChaos(
            {"optimizer": 1.0, "guideline": 1.0, "cache": 1.0, "table": 1.0}, seed=0
        )
        server = PlanServer(chaos=chaos)
        with pytest.raises(PlanServingError, match="exhausted every serving tier"):
            server.serve_batch(["uniform", "uniform"], [0.1, 0.2], [60.0, 80.0])
        assert server.exhausted == 2


class TestServeBatchCoalescing:
    def test_duplicates_coalesce_to_identical_plans(self):
        fams = ["uniform", "poly", "uniform", "uniform"]
        cs = [0.1, 0.2, 0.1, 0.1]
        vs = [60.0, 80.0, 60.0, 60.0]
        server = PlanServer()
        plans = server.serve_batch(fams, cs, vs)
        assert server.coalesced == 2
        assert server.served == 4
        assert _plans_equal(plans[0], plans[2])
        assert _plans_equal(plans[0], plans[3])

    def test_duplicate_source_rewritten_to_cache_when_cached(self):
        # Scalar loop: the first serve warms the cache, duplicates hit it.
        # The coalesced batch mirrors that by relabeling duplicate lanes.
        server = PlanServer(cache=PlanCache())
        plans = server.serve_batch(
            ["uniform", "uniform"], [0.1, 0.1], [60.0, 60.0]
        )
        assert plans[0].source == "optimizer"
        assert plans[1].source == "cache"
        scalar_server = PlanServer(cache=PlanCache())
        scalar = [scalar_server.serve("uniform", 0.1, 60.0) for _ in range(2)]
        assert [p.source for p in scalar] == ["optimizer", "cache"]
        assert plans[1].t0 == scalar[1].t0
        assert np.array_equal(plans[1].schedule.periods, scalar[1].schedule.periods)

    def test_duplicate_of_failed_lane_shares_the_error(self):
        chaos = TierChaos(
            {"optimizer": 1.0, "guideline": 1.0, "cache": 1.0, "table": 1.0}, seed=1
        )
        server = PlanServer(chaos=chaos)
        with pytest.raises(PlanServingError):
            server.serve_batch(["uniform", "uniform"], [0.1, 0.1], [60.0, 60.0])
        assert server.exhausted == 2
        assert server.coalesced == 1


class TestBatchingPlanServer:
    def test_validates_max_batch(self):
        for bad in (0, -3, True, 1.5, "8"):
            with pytest.raises(ValueError, match="max_batch"):
                BatchingPlanServer(PlanServer(), max_batch=bad)

    def test_validates_max_delay(self):
        for bad in (-0.001, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="max_delay_ms"):
                BatchingPlanServer(PlanServer(), max_delay_ms=bad)

    def test_size_trigger_flushes_one_batch(self):
        server = PlanServer()
        with BatchingPlanServer(server, max_batch=2, max_delay_ms=60_000) as front:
            f1 = front.submit("uniform", 0.1, 60.0)
            f2 = front.submit("poly", 0.2, 80.0)
            a, b = f1.result(timeout=30), f2.result(timeout=30)
        assert a.schedule.num_periods >= 1 and b.schedule.num_periods >= 1
        assert front.batches == 1
        assert front.stats_dict()["queued"] == 0

    def test_deadline_flush_uses_monotonic_clock(self):
        server = PlanServer()
        with BatchingPlanServer(server, max_batch=1000, max_delay_ms=20.0) as front:
            start = time.monotonic()
            fut = front.submit("uniform", 0.1, 60.0)
            plan = fut.result(timeout=30)
            waited = time.monotonic() - start
        assert plan.source in ("optimizer", "guideline")
        # Served without reaching max_batch, i.e. the deadline fired.
        assert front.batches == 1
        assert waited >= 0.015

    def test_inflight_duplicates_coalesce(self):
        server = PlanServer()
        front = BatchingPlanServer(server, max_batch=1000, max_delay_ms=60_000)
        futs = [front.submit("uniform", 0.1, 60.0) for _ in range(5)]
        assert front.coalesced == 4
        assert front.flush() == 1  # one distinct flight
        plans = [f.result(timeout=30) for f in futs]
        assert all(_plans_equal(p, plans[0]) for p in plans)
        assert server.served == 1  # singleflight: one serve for five callers
        front.close()

    def test_per_future_errors(self):
        with BatchingPlanServer(PlanServer(), max_batch=2, max_delay_ms=5.0) as front:
            bad = front.submit("nosuchfamily", 0.1, 60.0)
            good = front.submit("uniform", 0.1, 60.0)
            assert good.result(timeout=30).schedule.num_periods >= 1
            with pytest.raises(Exception, match="nosuchfamily"):
                bad.result(timeout=30)

    def test_closed_front_rejects_submissions(self):
        front = BatchingPlanServer(PlanServer())
        front.close()
        with pytest.raises(PlanServingError, match="closed"):
            front.submit("uniform", 0.1, 60.0)

    def test_concurrent_submitters(self):
        server = PlanServer()
        front = BatchingPlanServer(server, max_batch=8, max_delay_ms=5.0)
        results = [None] * 16
        queries = [("uniform", 0.1 + 0.01 * (i % 4), 60.0) for i in range(16)]

        def worker(i):
            results[i] = front.submit(*queries[i]).result(timeout=30)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        front.close()
        assert all(r is not None for r in results)
        baseline = PlanServer()
        for i, (fam, c, v) in enumerate(queries):
            assert _plans_equal(results[i], baseline.serve(fam, c, v))
