"""Per-family checks: closed-form values, derivatives, inverses, sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    ParetoLife,
    PolynomialRisk,
    Shape,
    UniformRisk,
    WeibullLife,
)
from repro.exceptions import SupportError


class TestUniformRisk:
    def test_values(self):
        p = UniformRisk(100.0)
        assert p(0.0) == 1.0
        assert p(50.0) == pytest.approx(0.5)
        assert p(100.0) == pytest.approx(0.0)
        assert p(150.0) == 0.0  # beyond the lifespan

    def test_derivative_constant(self):
        p = UniformRisk(100.0)
        ts = np.linspace(0.0, 99.0, 7)
        assert np.allclose(p.derivative(ts), -0.01)

    def test_inverse_round_trip(self):
        p = UniformRisk(100.0)
        ys = np.linspace(0.0, 1.0, 11)
        assert np.allclose(p(p.inverse(ys)), ys)

    def test_shape_is_linear(self):
        assert UniformRisk(10.0).shape is Shape.LINEAR

    def test_negative_time_rejected(self):
        with pytest.raises(SupportError):
            UniformRisk(10.0)(-1.0)

    def test_invalid_lifespan(self):
        with pytest.raises(ValueError):
            UniformRisk(0.0)
        with pytest.raises(ValueError):
            UniformRisk(-5.0)


class TestPolynomialRisk:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_values(self, d):
        p = PolynomialRisk(d, 10.0)
        assert p(0.0) == 1.0
        assert p(10.0) == pytest.approx(0.0)
        assert p(5.0) == pytest.approx(1.0 - 0.5**d)

    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_derivative_matches_numeric(self, d):
        p = PolynomialRisk(d, 10.0)
        ts = np.linspace(0.5, 9.5, 13)
        h = 1e-6
        numeric = (np.asarray(p(ts + h)) - np.asarray(p(ts - h))) / (2 * h)
        assert np.allclose(p.derivative(ts), numeric, rtol=1e-5)

    def test_second_derivative_nonpositive(self):
        p = PolynomialRisk(3, 10.0)
        ts = np.linspace(0.1, 9.9, 11)
        assert np.all(np.asarray(p.second_derivative(ts)) <= 0)

    def test_shape_concave_for_d_ge_2(self):
        assert PolynomialRisk(2, 10.0).shape is Shape.CONCAVE
        assert PolynomialRisk(1, 10.0).shape is Shape.LINEAR

    def test_inverse_round_trip(self):
        p = PolynomialRisk(3, 10.0)
        ys = np.linspace(0.0, 1.0, 9)
        assert np.allclose(p(p.inverse(ys)), ys)

    def test_non_integer_degree_rejected(self):
        with pytest.raises(ValueError):
            PolynomialRisk(0, 10.0)
        with pytest.raises(ValueError):
            PolynomialRisk(1.5, 10.0)  # type: ignore[arg-type]


class TestGeometricDecreasing:
    def test_values(self):
        p = GeometricDecreasingLifespan(2.0)
        assert p(0.0) == 1.0
        assert p(1.0) == pytest.approx(0.5)
        assert p(3.0) == pytest.approx(0.125)

    def test_half_life(self):
        # a = 2: survival halves every unit — the paper's "half-life" story.
        p = GeometricDecreasingLifespan(2.0)
        ts = np.linspace(0.0, 20.0, 21)
        ratios = np.asarray(p(ts + 1.0)) / np.asarray(p(ts))
        assert np.allclose(ratios, 0.5)

    def test_memoryless_conditional(self):
        p = GeometricDecreasingLifespan(1.3)
        cond = p.conditional(7.0)
        ts = np.linspace(0.0, 30.0, 17)
        assert np.allclose(np.asarray(cond(ts)), np.asarray(p(ts)))

    def test_unbounded_lifespan(self):
        assert math.isinf(GeometricDecreasingLifespan(1.5).lifespan)

    def test_shape_convex(self):
        assert GeometricDecreasingLifespan(1.5).shape is Shape.CONVEX

    def test_inverse_round_trip(self):
        p = GeometricDecreasingLifespan(1.7)
        ys = np.array([1.0, 0.5, 0.1, 1e-6])
        assert np.allclose(p(p.inverse(ys)), ys)

    def test_inverse_of_zero_is_inf(self):
        assert GeometricDecreasingLifespan(2.0).inverse(0.0) == math.inf

    def test_a_must_exceed_one(self):
        with pytest.raises(ValueError):
            GeometricDecreasingLifespan(1.0)


class TestGeometricIncreasing:
    def test_values_match_paper_formula(self):
        L = 10.0
        p = GeometricIncreasingRisk(L)
        ts = np.linspace(0.0, L, 11)
        expected = (2**L - 2**ts) / (2**L - 1)
        assert np.allclose(np.asarray(p(ts)), expected, rtol=1e-12)

    def test_boundary_values(self):
        p = GeometricIncreasingRisk(25.0)
        assert p(0.0) == pytest.approx(1.0)
        assert p(25.0) == pytest.approx(0.0, abs=1e-12)

    def test_large_lifespan_stable(self):
        # Naive 2^L would overflow float64 near L ~ 1100.
        p = GeometricIncreasingRisk(900.0)
        assert p(0.0) == pytest.approx(1.0)
        assert 0.0 < p(899.0) < 1e-270 or p(899.0) >= 0.0
        assert p(450.0) == pytest.approx(1.0, abs=1e-9)

    def test_derivative_matches_numeric(self):
        p = GeometricIncreasingRisk(20.0)
        ts = np.linspace(1.0, 19.0, 9)
        h = 1e-7
        numeric = (np.asarray(p(ts + h)) - np.asarray(p(ts - h))) / (2 * h)
        assert np.allclose(p.derivative(ts), numeric, rtol=1e-4)

    def test_shape_concave(self):
        assert GeometricIncreasingRisk(10.0).shape is Shape.CONCAVE

    def test_inverse_round_trip(self):
        p = GeometricIncreasingRisk(15.0)
        ys = np.linspace(0.0, 1.0, 13)
        assert np.allclose(np.asarray(p(p.inverse(ys))), ys, atol=1e-9)

    def test_risk_doubles_per_step(self):
        # The defining story: 1 - p's increments double each unit near the end.
        p = GeometricIncreasingRisk(12.0)
        ts = np.arange(0, 12)
        dens = -np.asarray(p.derivative(ts.astype(float)))
        assert np.allclose(dens[1:] / dens[:-1], 2.0, rtol=1e-9)


class TestWeibull:
    def test_k1_matches_exponential(self):
        w = WeibullLife(k=1.0, scale=2.0)
        g = GeometricDecreasingLifespan(math.exp(0.5))
        ts = np.linspace(0.0, 10.0, 11)
        assert np.allclose(np.asarray(w(ts)), np.asarray(g(ts)), rtol=1e-12)

    def test_shape_classification(self):
        assert WeibullLife(k=0.7).shape is Shape.CONVEX
        assert WeibullLife(k=1.0).shape is Shape.CONVEX
        assert WeibullLife(k=2.0).shape is Shape.GENERAL

    def test_inverse_round_trip(self):
        w = WeibullLife(k=1.5, scale=3.0)
        ys = np.array([0.9, 0.5, 0.01])
        assert np.allclose(np.asarray(w(w.inverse(ys))), ys)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WeibullLife(k=0.0)
        with pytest.raises(ValueError):
            WeibullLife(k=1.0, scale=-1.0)


class TestPareto:
    def test_values(self):
        p = ParetoLife(d=2.0)
        assert p(0.0) == 1.0
        assert p(1.0) == pytest.approx(0.25)
        assert p(9.0) == pytest.approx(0.01)

    def test_heavy_tail_vs_exponential(self):
        p = ParetoLife(d=2.0)
        g = GeometricDecreasingLifespan(1.5)
        t = 100.0
        assert p(t) > float(g(t)) * 1e10

    def test_inverse_round_trip(self):
        p = ParetoLife(d=1.5)
        ys = np.array([1.0, 0.3, 1e-4])
        assert np.allclose(np.asarray(p(p.inverse(ys))), ys)


@pytest.mark.parametrize("factory", [
    lambda: UniformRisk(100.0),
    lambda: PolynomialRisk(3, 50.0),
    lambda: GeometricDecreasingLifespan(1.2),
    lambda: GeometricIncreasingRisk(25.0),
    lambda: WeibullLife(k=0.9, scale=10.0),
    lambda: ParetoLife(d=3.0),
])
def test_validate_passes_for_all_families(factory):
    factory().validate()


@pytest.mark.parametrize("factory", [
    lambda: UniformRisk(60.0),
    lambda: PolynomialRisk(2, 40.0),
    lambda: GeometricDecreasingLifespan(1.15),
    lambda: GeometricIncreasingRisk(18.0),
])
def test_sampling_matches_survival(factory, rng):
    """Inverse-transform samples reproduce p as an empirical survival curve."""
    p = factory()
    n = 60_000
    samples = p.sample_reclaim_times(rng, n)
    for q in (0.2, 0.5, 0.8):
        t = float(p.inverse(q))
        empirical = float(np.mean(samples > t))
        assert empirical == pytest.approx(q, abs=4.5 * math.sqrt(q * (1 - q) / n))
