"""Section 6's progressive (conditional-probability) scheduler."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import geometric_decreasing_optimal_period
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.progressive import ProgressiveScheduler, progressive_schedule


class TestMemoryless:
    def test_equal_periods_at_fixed_point(self):
        """Conditioning a memoryless p changes nothing, so every re-planned
        period equals the first — which is [3]'s optimum."""
        a, c = 1.3, 0.8
        sched = progressive_schedule(GeometricDecreasingLifespan(a), c, max_periods=6)
        t_star = geometric_decreasing_optimal_period(a, c)
        assert np.allclose(sched.periods, sched.periods[0], rtol=1e-4)
        assert sched.periods[0] == pytest.approx(t_star, rel=1e-3)


class TestUniform:
    def test_periods_track_remaining_window(self):
        """For uniform risk, the conditional is uniform on [0, L - s], so each
        progressive period ≈ the optimal t0 of the shrunken problem."""
        L, c = 400.0, 2.0
        scheduler = ProgressiveScheduler(UniformRisk(L), c)
        t_first = scheduler.next_period()
        assert t_first == pytest.approx(math.sqrt(2 * c * L), rel=0.08)
        scheduler.advance(t_first)
        t_second = scheduler.next_period()
        assert t_second == pytest.approx(math.sqrt(2 * c * (L - t_first)), rel=0.08)
        assert t_second < t_first

    def test_full_schedule_decreasing(self):
        sched = progressive_schedule(UniformRisk(300.0), 2.0)
        assert np.all(np.diff(sched.periods) < 0)
        assert sched.total_length <= 300.0 + 1e-6

    def test_near_optimal_expected_work(self):
        from repro.core.exact import uniform_optimal_schedule

        L, c = 300.0, 2.0
        p = UniformRisk(L)
        prog = progressive_schedule(p, c)
        exact = uniform_optimal_schedule(L, c)
        ratio = prog.expected_work(p, c) / exact.expected_work
        assert 0.9 < ratio <= 1.0 + 1e-9


class TestLifecycle:
    def test_stops_at_exhausted_window(self):
        scheduler = ProgressiveScheduler(UniformRisk(10.0), c=3.0)
        periods = list(scheduler.periods())
        assert sum(periods) <= 10.0
        assert scheduler.next_period() is None  # stays stopped

    def test_reset(self):
        scheduler = ProgressiveScheduler(UniformRisk(100.0), c=1.0)
        first = scheduler.next_period()
        scheduler.advance(first)
        scheduler.reset()
        assert scheduler.next_period() == pytest.approx(first, rel=1e-9)

    def test_advance_validates(self):
        scheduler = ProgressiveScheduler(UniformRisk(100.0), c=1.0)
        with pytest.raises(ValueError):
            scheduler.advance(0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveScheduler(UniformRisk(100.0), c=-1.0)

    def test_concave_family_terminates(self):
        sched = progressive_schedule(PolynomialRisk(2, 80.0), 1.0)
        assert sched.num_periods < 100
        assert sched.total_length <= 80.0 + 1e-6
