"""Property-based tests for the extension modules (distribution, worst case,
discrete DP)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.discrete_opt import solve_discrete_optimal
from repro.core.distribution import work_distribution
from repro.core.life_functions import PolynomialRisk, UniformRisk
from repro.core.schedule import Schedule
from repro.core.worstcase import competitive_ratio, guaranteed_work

periods_strategy = st.lists(
    st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    min_size=1,
    max_size=10,
)


@settings(max_examples=50, deadline=None)
@given(
    periods=periods_strategy,
    c=st.floats(min_value=0.0, max_value=3.0),
    L=st.floats(min_value=10.0, max_value=200.0),
)
def test_distribution_consistency(periods, c, L):
    """Distribution mean == eq. (2.1); probabilities form a distribution;
    atoms are monotone; quantiles are monotone in the level."""
    p = UniformRisk(L)
    s = Schedule(periods)
    dist = work_distribution(s, p, c)
    assert dist.mean == pytest.approx(s.expected_work(p, c), rel=1e-9, abs=1e-12)
    assert np.all(dist.probabilities >= 0)
    assert dist.probabilities.sum() == pytest.approx(1.0)
    assert np.all(np.diff(dist.atoms) >= -1e-12)
    qs = [dist.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
    assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))
    assert dist.variance >= -1e-12


@settings(max_examples=50, deadline=None)
@given(
    periods=periods_strategy,
    c=st.floats(min_value=0.1, max_value=2.0),
    min_episode=st.floats(min_value=0.0, max_value=50.0),
)
def test_guaranteed_work_monotone_in_min_episode(periods, c, min_episode):
    """A more constrained adversary can never reduce the guarantee."""
    s = Schedule(periods)
    g1 = guaranteed_work(s, c, min_episode)
    g2 = guaranteed_work(s, c, min_episode + 5.0)
    assert g2 >= g1 - 1e-12
    assert 0.0 <= g1 <= float(np.sum(s.work_per_period(c))) + 1e-12


@settings(max_examples=40, deadline=None)
@given(
    periods=periods_strategy,
    c=st.floats(min_value=0.1, max_value=2.0),
)
def test_competitive_ratio_bounds(periods, c):
    """0 <= ratio <= 1 whenever the window is valid (the clairvoyant is an
    upper bound by construction)."""
    s = Schedule(periods)
    min_episode = float(s.boundaries[0]) * 1.01 + 1e-6
    horizon = s.total_length + 1.0
    assume(horizon > min_episode and min_episode > c)
    ratio = competitive_ratio(s, c, min_episode=min_episode, horizon=horizon)
    assert -1e-12 <= ratio <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    L=st.floats(min_value=20.0, max_value=120.0),
    # c on a coarse rational grid: the DP's common time grid is gcd(c, tau),
    # and an arbitrary float c would legitimately explode the state space.
    c=st.sampled_from([0.5, 0.75, 1.0, 1.5, 2.0, 3.0]),
    d=st.integers(min_value=1, max_value=3),
    tau_kind=st.sampled_from([0.5, 1.0, 2.0]),
)
def test_discrete_dp_sandwich(L, c, d, tau_kind):
    """quantized-guideline <= DP optimum <= continuous optimum (guideline E
    as a cheap continuous lower-bound witness)."""
    p = PolynomialRisk(d, L)
    tau = tau_kind
    assume(L > c + tau)
    from repro.core.guidelines import guideline_schedule
    from repro.simulation.discrete import discretize_schedule

    dp = solve_discrete_optimal(p, c, tau)
    cont = guideline_schedule(p, c, grid=33)
    try:
        quant = discretize_schedule(cont.schedule, c, tau).expected_work(p, c)
    except Exception:
        quant = 0.0
    assert quant <= dp.expected_work + 1e-9
    # The continuous guideline E dominates the DP optimum (it could always
    # emulate whole-task periods).
    assert dp.expected_work <= cont.expected_work + 1e-6
    # DP schedules are feasible: whole tasks, inside the lifespan.
    assert dp.schedule.total_length <= L + 1e-9
    for period, k in zip(dp.schedule.periods, dp.task_counts):
        assert period == pytest.approx(c + k * tau, abs=1e-9)
