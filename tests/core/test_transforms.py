"""Mixtures, time scaling, and shape detection."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    MixtureLife,
    PolynomialRisk,
    Shape,
    TimeScaledLife,
    UniformRisk,
    WeibullLife,
    detect_shape,
    is_concave,
    is_convex,
)


class TestMixture:
    def test_values_are_weighted_sums(self):
        mix = MixtureLife([UniformRisk(10.0), UniformRisk(20.0)], [0.3, 0.7])
        ts = np.linspace(0.0, 20.0, 9)
        expected = 0.3 * np.asarray(UniformRisk(10.0)(ts)) + 0.7 * np.asarray(
            UniformRisk(20.0)(ts)
        )
        assert np.allclose(np.asarray(mix(ts)), expected)

    def test_lifespan_is_max(self):
        mix = MixtureLife([UniformRisk(10.0), UniformRisk(20.0)], [0.5, 0.5])
        assert mix.lifespan == 20.0

    def test_unbounded_component_wins(self):
        mix = MixtureLife(
            [UniformRisk(10.0), GeometricDecreasingLifespan(1.5)], [0.5, 0.5]
        )
        assert math.isinf(mix.lifespan)

    def test_shape_propagation(self):
        concave = MixtureLife([PolynomialRisk(2, 10.0), UniformRisk(5.0)], [0.5, 0.5])
        assert concave.shape is Shape.CONCAVE
        convex = MixtureLife(
            [GeometricDecreasingLifespan(1.5), GeometricDecreasingLifespan(2.0)],
            [0.5, 0.5],
        )
        assert convex.shape is Shape.CONVEX
        linear = MixtureLife([UniformRisk(10.0), UniformRisk(20.0)], [0.5, 0.5])
        assert linear.shape is Shape.LINEAR
        mixed = MixtureLife(
            [PolynomialRisk(2, 10.0), GeometricDecreasingLifespan(1.5)], [0.5, 0.5]
        )
        assert mixed.shape is Shape.GENERAL

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MixtureLife([UniformRisk(10.0)], [0.9])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MixtureLife([UniformRisk(10.0), UniformRisk(5.0)], [1.5, -0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MixtureLife([], [])

    def test_validates_as_life_function(self):
        MixtureLife([UniformRisk(10.0), PolynomialRisk(2, 30.0)], [0.4, 0.6]).validate()


class TestTimeScaled:
    def test_stretch(self):
        base = UniformRisk(10.0)
        scaled = TimeScaledLife(base, 3.0)
        assert scaled.lifespan == pytest.approx(30.0)
        assert scaled(15.0) == pytest.approx(float(base(5.0)))

    def test_derivative_chain_rule(self):
        base = PolynomialRisk(2, 10.0)
        scaled = TimeScaledLife(base, 2.0)
        t = 6.0
        assert scaled.derivative(t) == pytest.approx(float(base.derivative(3.0)) / 2.0)

    def test_shape_preserved(self):
        assert TimeScaledLife(PolynomialRisk(2, 10.0), 5.0).shape is Shape.CONCAVE

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            TimeScaledLife(UniformRisk(10.0), 0.0)


class TestDetectShape:
    def test_linear(self):
        assert detect_shape(UniformRisk(10.0)) is Shape.LINEAR

    def test_concave(self):
        assert detect_shape(PolynomialRisk(3, 10.0)) is Shape.CONCAVE
        assert detect_shape(GeometricIncreasingRisk(15.0)) is Shape.CONCAVE

    def test_convex(self):
        assert detect_shape(GeometricDecreasingLifespan(1.4)) is Shape.CONVEX

    def test_general(self):
        assert detect_shape(WeibullLife(k=2.5, scale=10.0)) is Shape.GENERAL

    def test_is_concave_consults_declaration(self):
        assert is_concave(PolynomialRisk(2, 10.0))
        assert not is_concave(GeometricDecreasingLifespan(1.4))

    def test_is_convex_probes_general(self):
        # Weibull k<1 declared CONVEX; k>1 GENERAL so probed numerically.
        assert is_convex(WeibullLife(k=0.8, scale=5.0))
        assert not is_convex(WeibullLife(k=2.5, scale=5.0))
