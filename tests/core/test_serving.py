"""The resilient plan-serving chain: breakers, tier fallthrough, chaos."""

from __future__ import annotations

import pytest

from repro.core.life_functions import UniformRisk
from repro.core.plancache import PlanCache
from repro.core.serving import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    PlanServer,
    ServedPlan,
    TierChaos,
    TierStats,
)
from repro.exceptions import FaultInjectionError, PlanServingError


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)

    def test_state_machine(self):
        clock = _Clock()
        b = CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=clock)
        assert b.state == BREAKER_CLOSED
        b.record_failure()
        assert b.state == BREAKER_CLOSED and b.consecutive_failures == 1
        b.record_failure()
        assert b.state == BREAKER_OPEN and b.opens == 1
        assert not b.allow()
        assert b.rejections == 1
        # Cooldown elapses: half-open, probes flow.
        clock.now = 10.0
        assert b.state == BREAKER_HALF_OPEN
        assert b.allow()
        # Probe failure re-opens immediately (no threshold wait).
        b.record_failure()
        assert b.state == BREAKER_OPEN and b.opens == 2
        clock.now = 20.0
        assert b.state == BREAKER_HALF_OPEN
        b.record_success()
        assert b.state == BREAKER_CLOSED
        assert b.consecutive_failures == 0

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == BREAKER_CLOSED  # never hit 3 consecutive

    def test_as_dict(self):
        b = CircuitBreaker(failure_threshold=1)
        b.record_failure()
        d = b.as_dict()
        assert d["state"] == BREAKER_OPEN
        assert d["opens"] == 1 and d["consecutive_failures"] == 1


class TestTierStatsAndChaos:
    def test_tier_stats_extends_cache_stats(self):
        stats = TierStats(hits=2, misses=1, errors=3, rejected=4)
        d = stats.as_dict()
        assert d["hits"] == 2 and d["misses"] == 1
        assert d["errors"] == 3 and d["rejected"] == 4
        assert "error_seconds" in d

    def test_chaos_validation(self):
        with pytest.raises(ValueError):
            TierChaos({"cache": 1.5})
        with pytest.raises(ValueError):
            TierChaos({"cache": -0.1})

    def test_chaos_deterministic_and_counted(self):
        a = TierChaos({"optimizer": 0.5}, seed=3)
        b = TierChaos({"optimizer": 0.5}, seed=3)

        def draw(chaos):
            fired = []
            for _ in range(50):
                try:
                    chaos.maybe_fail("optimizer")
                except FaultInjectionError:
                    fired.append(True)
                else:
                    fired.append(False)
            return fired

        fates_a, fates_b = draw(a), draw(b)
        assert fates_a == fates_b
        assert a.injected["optimizer"] == sum(fates_a) > 0
        # Unlisted / zero-rate tiers never fire and never draw.
        a.maybe_fail("table")
        assert "table" not in a.injected


class TestPlanServer:
    FAMILY, C, PARAM = "uniform", 1.0, 30.0

    def _server(self, **kw):
        kw.setdefault("cache", PlanCache(maxsize=16))
        return PlanServer(clock=_Clock(), **kw)

    def test_optimizer_serves_cold_then_cache_warm(self):
        server = self._server()
        first = server.serve(self.FAMILY, self.C, self.PARAM)
        assert first.source == "optimizer"
        assert not first.degraded
        second = server.serve(self.FAMILY, self.C, self.PARAM)
        assert second.source == "cache"
        assert second.t0 == first.t0
        assert second.schedule.periods.tolist() == first.schedule.periods.tolist()
        # Table/cache tiers registered their healthy misses on the first query.
        assert server.tier_stats["table"].misses == 2
        assert server.tier_stats["cache"].misses == 1
        assert server.tier_stats["cache"].hits == 1
        assert server.served == 2 and server.exhausted == 0

    def test_chaos_pushes_to_guideline(self):
        chaos = TierChaos({"cache": 1.0, "optimizer": 1.0}, seed=0)
        server = self._server(chaos=chaos)
        plan = server.serve(self.FAMILY, self.C, self.PARAM)
        assert plan.source == "guideline"
        assert plan.degraded
        assert plan.expected_work > 0.0
        assert self.C < plan.t0 < self.PARAM
        assert server.tier_stats["optimizer"].errors == 1

    def test_breakers_open_under_persistent_faults(self):
        chaos = TierChaos({"optimizer": 1.0}, seed=1)
        server = self._server(breaker_threshold=2, cache=None)
        server.chaos = chaos
        for _ in range(4):
            plan = server.serve(self.FAMILY, self.C, self.PARAM)
            assert plan.source == "guideline"
        breaker = server.breakers["optimizer"]
        assert breaker.state == BREAKER_OPEN
        assert server.tier_stats["optimizer"].errors == 2
        assert server.tier_stats["optimizer"].rejected == 2
        # Guideline kept every query alive.
        assert server.served == 4 and server.exhausted == 0

    def test_half_open_probe_recovers(self):
        clock = _Clock()
        server = PlanServer(
            cache=None, breaker_threshold=1, breaker_cooldown=5.0, clock=clock
        )
        server.chaos = TierChaos({"optimizer": 1.0}, seed=2)
        server.serve(self.FAMILY, self.C, self.PARAM)
        assert server.breakers["optimizer"].state == BREAKER_OPEN
        # Cooldown elapses and the fault clears: the probe re-closes the tier.
        clock.now = 5.0
        server.chaos = None
        plan = server.serve(self.FAMILY, self.C, self.PARAM)
        assert plan.source == "optimizer"
        assert server.breakers["optimizer"].state == BREAKER_CLOSED

    def test_total_outage_raises_plan_serving_error(self):
        chaos = TierChaos(
            {"table": 1.0, "cache": 1.0, "optimizer": 1.0, "guideline": 1.0},
            seed=4,
        )
        server = self._server(chaos=chaos)
        with pytest.raises(PlanServingError):
            server.serve(self.FAMILY, self.C, self.PARAM)
        assert server.exhausted == 1 and server.served == 0

    def test_guideline_miss_when_no_productive_period(self):
        # c >= lifespan: even the closed form cannot make a productive period.
        server = self._server()
        with pytest.raises(PlanServingError):
            server.serve("uniform", 50.0, 30.0)

    def test_unknown_family_rejected(self):
        server = self._server()
        with pytest.raises(Exception):
            server.serve("no-such-family", 1.0, 30.0)

    def test_stats_dict_shape(self):
        server = self._server()
        server.serve(self.FAMILY, self.C, self.PARAM)
        d = server.stats_dict()
        assert set(d["tiers"]) == set(PlanServer.TIERS)
        assert set(d["breakers"]) == set(PlanServer.TIERS)
        assert d["served"] == 1

    def test_reset_breakers(self):
        server = self._server(breaker_threshold=1, cache=None)
        server.chaos = TierChaos({"optimizer": 1.0}, seed=5)
        server.serve(self.FAMILY, self.C, self.PARAM)
        assert server.breakers["optimizer"].state == BREAKER_OPEN
        server.reset_breakers()
        assert all(
            b.state == BREAKER_CLOSED for b in server.breakers.values()
        )


class TestGuidelineTier:
    @pytest.mark.parametrize(
        "family,param", [("uniform", 30.0), ("poly", 30.0),
                         ("geomdec", 1.1), ("geominc", 0.9)]
    )
    def test_closed_form_serves_every_family(self, family, param):
        chaos = TierChaos({"cache": 1.0, "optimizer": 1.0}, seed=6)
        server = PlanServer(cache=PlanCache(maxsize=4), chaos=chaos,
                            clock=_Clock())
        plan = server.serve(family, 0.5, param)
        assert plan.source == "guideline"
        assert plan.schedule.num_periods >= 1
        assert plan.expected_work >= 0.0

    def test_guideline_close_to_optimal_for_uniform(self):
        """The degraded answer should retain most of the optimizer's work."""
        cache = PlanCache(maxsize=4)
        server = PlanServer(cache=cache, clock=_Clock())
        best = server.serve("uniform", 1.0, 30.0)
        degraded_server = PlanServer(
            cache=PlanCache(maxsize=4),
            chaos=TierChaos({"cache": 1.0, "optimizer": 1.0}, seed=7),
            clock=_Clock(),
        )
        degraded = degraded_server.serve("uniform", 1.0, 30.0)
        p = UniformRisk(30.0)
        assert degraded.schedule.expected_work(p, 1.0) >= (
            0.5 * best.schedule.expected_work(p, 1.0)
        )


class TestServedPlan:
    def test_degraded_flag(self):
        from repro.core.schedule import Schedule

        plan = ServedPlan(
            family="uniform", c=1.0, param_value=30.0, t0=5.0,
            schedule=Schedule([5.0]), expected_work=1.0, source="guideline",
        )
        assert plan.degraded
        assert not ServedPlan(
            family="uniform", c=1.0, param_value=30.0, t0=5.0,
            schedule=Schedule([5.0]), expected_work=1.0, source="table",
        ).degraded
