"""Exact banked-work distributions and risk-averse scheduling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.distribution import (
    WorkDistribution,
    optimize_risk_averse,
    work_distribution,
)
from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError


class TestWorkDistribution:
    def test_hand_computed_case(self):
        p = UniformRisk(10.0)
        s = Schedule([4.0, 3.0])  # boundaries 4, 7
        dist = work_distribution(s, p, 1.0)
        assert np.allclose(dist.atoms, [0.0, 3.0, 5.0])
        # P[0 complete] = 1 - p(4) = 0.4; P[1] = p(4) - p(7) = 0.3; P[2] = 0.3.
        assert np.allclose(dist.probabilities, [0.4, 0.3, 0.3])

    def test_mean_matches_expected_work(self, paper_life):
        c = 0.5
        s = guideline_schedule(paper_life, c, grid=33).schedule
        dist = work_distribution(s, paper_life, c)
        assert dist.mean == pytest.approx(s.expected_work(paper_life, c), rel=1e-10)

    def test_variance_matches_monte_carlo(self, rng):
        from repro.simulation import simulate_episodes

        p = UniformRisk(50.0)
        s = Schedule([12.0, 9.0, 6.0])
        c = 1.0
        dist = work_distribution(s, p, c)
        batch = simulate_episodes(s, p, c, 200_000, rng)
        assert dist.mean == pytest.approx(float(batch.work.mean()), abs=0.1)
        assert dist.std == pytest.approx(float(batch.work.std()), abs=0.1)

    def test_quantiles_and_tail(self):
        p = UniformRisk(10.0)
        dist = work_distribution(Schedule([4.0, 3.0]), p, 1.0)
        assert dist.quantile(0.0) == 0.0
        assert dist.quantile(0.5) == 3.0
        assert dist.quantile(1.0) == 5.0
        assert dist.prob_at_least(3.0) == pytest.approx(0.6)
        assert dist.prob_at_least(5.1) == 0.0

    def test_cvar(self):
        p = UniformRisk(10.0)
        dist = work_distribution(Schedule([4.0, 3.0]), p, 1.0)
        # Worst 40% of outcomes are exactly the zero atom.
        assert dist.cvar_lower(0.4) == pytest.approx(0.0)
        # Worst 70%: 0.4 mass at 0, 0.3 mass at 3 -> 0.9/0.7.
        assert dist.cvar_lower(0.7) == pytest.approx(0.9 / 0.7)
        assert dist.cvar_lower(1.0) == pytest.approx(dist.mean)

    def test_validation(self):
        with pytest.raises(ValueError):
            work_distribution(Schedule([4.0]), UniformRisk(10.0), 1.0).quantile(1.5)
        with pytest.raises(InvalidScheduleError):
            work_distribution(Schedule([4.0]), UniformRisk(10.0), -1.0)
        with pytest.raises(InvalidScheduleError):
            WorkDistribution(np.array([0.0, 1.0]), np.array([0.6, 0.6]))


class TestRiskAverse:
    def test_zero_aversion_matches_guideline(self):
        p = UniformRisk(200.0)
        c = 2.0
        schedule, dist = optimize_risk_averse(p, c, risk_aversion=0.0, grid=201)
        base = guideline_schedule(p, c).expected_work
        assert dist.mean == pytest.approx(base, rel=1e-3)

    def test_aversion_trades_mean_for_std(self):
        p = UniformRisk(200.0)
        c = 2.0
        _, neutral = optimize_risk_averse(p, c, risk_aversion=0.0, grid=101)
        _, averse = optimize_risk_averse(p, c, risk_aversion=2.0, grid=101)
        assert averse.std <= neutral.std + 1e-9
        assert averse.mean <= neutral.mean + 1e-9
        # And the risk-adjusted objective actually improved.
        assert averse.mean - 2.0 * averse.std >= neutral.mean - 2.0 * neutral.std - 1e-9

    def test_quantile_objective(self):
        p = UniformRisk(200.0)
        c = 2.0
        _, neutral = optimize_risk_averse(p, c, risk_aversion=0.0, grid=101)
        _, q_opt = optimize_risk_averse(p, c, quantile=0.25, grid=101)
        assert q_opt.quantile(0.25) >= neutral.quantile(0.25) - 1e-9

    def test_memoryless_case_runs(self):
        p = GeometricDecreasingLifespan(1.3)
        schedule, dist = optimize_risk_averse(p, 0.5, risk_aversion=1.0, grid=61)
        assert dist.mean > 0
        assert schedule.num_periods >= 1

    def test_negative_aversion_rejected(self):
        with pytest.raises(ValueError):
            optimize_risk_averse(UniformRisk(100.0), 1.0, risk_aversion=-1.0)
