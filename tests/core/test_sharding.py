"""Shard routing and the framed wire protocol (single-process properties).

The sharded tier's bit-parity argument rests on the routing function being
a *pure, stable* function of the query's content address: deterministic
within a process, identical across processes, immune to ``PYTHONHASHSEED``,
and balanced enough that no shard becomes a hot spot.  These tests pin each
of those properties, plus the framing layer's corruption detection — a bad
frame must surface as :class:`ShardProtocolError`, never as a garbled
unpickle.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables_precompute import TABLE_FAMILIES, default_grids
from repro.core.sharding import (
    FRAME_MAGIC,
    ShardConfig,
    decode_frame,
    encode_frame,
    query_fingerprint,
    shard_of,
    shard_of_query,
    split_batch,
)
from repro.exceptions import ShardingError, ShardProtocolError


def canonical_fingerprints(per_family: int = 16) -> list[str]:
    """64 distinct fingerprints: ``per_family`` interior θ per family."""
    fps = []
    for fam in sorted(TABLE_FAMILIES):
        _, v_grid = default_grids(fam)
        values = np.geomspace(v_grid[0] * 1.01, v_grid[-1] * 0.99, per_family)
        fps.extend(query_fingerprint(fam, float(v)) for v in values)
    assert len(set(fps)) == len(fps)
    return fps


class TestShardRouting:
    def test_in_range_and_deterministic(self):
        for fp in canonical_fingerprints(4):
            for n in (1, 2, 3, 8, 13):
                s = shard_of(fp, n)
                assert 0 <= s < n
                assert s == shard_of(fp, n)

    def test_rejects_bad_shard_count(self):
        for bad in (0, -1):
            with pytest.raises(ShardingError, match="n_shards"):
                shard_of("x", bad)

    @settings(max_examples=50, deadline=None)
    @given(fp=st.text(min_size=1, max_size=64), n=st.integers(1, 64))
    def test_any_fingerprint_routes(self, fp, n):
        s = shard_of(fp, n)
        assert 0 <= s < n
        assert s == shard_of(fp, n)

    def test_uniform_within_2x_across_64_fingerprints(self):
        """The acceptance balance property: max load <= 2x ideal, no empty shard."""
        fps = canonical_fingerprints(16)
        assert len(fps) == 64
        for n in (2, 4, 8):
            loads = Counter(shard_of(fp, n) for fp in fps)
            ideal = len(fps) / n
            assert len(loads) == n, f"empty shard at N={n}: {dict(loads)}"
            assert max(loads.values()) <= 2 * ideal, (
                f"hot shard at N={n}: {dict(loads)}"
            )

    def test_routing_ignores_overhead(self):
        """Shard = f(fingerprint) only: all c values of one query colocate."""
        for c in (0.05, 0.1, 1.0, 3.7):
            assert shard_of_query("uniform", 60.0, 8) == shard_of_query(
                "uniform", 60.0, 8
            )
        fp = query_fingerprint("uniform", 60.0)
        assert shard_of_query("uniform", 60.0, 8) == shard_of(fp, 8)

    def test_invalid_queries_route_deterministically(self):
        s1 = shard_of_query("nosuchfamily", 60.0, 4)
        s2 = shard_of_query("nosuchfamily", 60.0, 4)
        assert s1 == s2
        assert query_fingerprint("nosuchfamily", 60.0).startswith("invalid:")

    def test_stable_across_processes_and_hash_seeds(self):
        """fingerprint → shard must not move under PYTHONHASHSEED variation.

        Runs the routing in fresh interpreters with adversarial hash seeds
        and compares the full 64-fingerprint assignment against this
        process's.  A routing function leaning on the builtin ``hash()``
        fails this immediately.
        """
        fps = canonical_fingerprints(16)
        local = {fp: [shard_of(fp, n) for n in (2, 4, 8)] for fp in fps}
        prog = (
            "import json, sys\n"
            "from repro.core.sharding import shard_of\n"
            "fps = json.load(sys.stdin)\n"
            "print(json.dumps({fp: [shard_of(fp, n) for n in (2, 4, 8)]"
            " for fp in fps}))\n"
        )
        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (str(_src_dir()), env.get("PYTHONPATH")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", prog],
                input=json.dumps(fps),
                capture_output=True,
                text=True,
                env=env,
                timeout=120,
                check=True,
            )
            assert json.loads(out.stdout) == local, f"PYTHONHASHSEED={hashseed}"

    def test_split_batch_preserves_order_and_partitions(self):
        fams = ["uniform", "poly", "uniform", "geomdec", "geominc", "poly"]
        vs = [60.0, 80.0, 65.0, 1.3, 5.0, 90.0]
        lanes = split_batch(fams, vs, 4)
        flat = sorted(i for sub in lanes for i in sub)
        assert flat == list(range(len(fams)))
        for sub in lanes:
            assert sub == sorted(sub)  # input order preserved within a shard
        for shard, sub in enumerate(lanes):
            for i in sub:
                assert shard_of_query(fams[i], vs[i], 4) == shard

    def test_split_batch_length_mismatch(self):
        with pytest.raises(ShardingError, match="equally long"):
            split_batch(["uniform"], [60.0, 70.0], 2)


def _src_dir() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestFraming:
    @settings(max_examples=50, deadline=None)
    @given(
        payload=st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.floats(allow_nan=False)
            | st.text(max_size=20),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=8), inner, max_size=4),
            max_leaves=20,
        )
    )
    def test_round_trip(self, payload):
        assert decode_frame(encode_frame(payload)) == payload

    def test_header_shape(self):
        frame = encode_frame({"op": "ping"})
        assert frame[:4] == FRAME_MAGIC

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame({"op": "ping"}))
        frame[:4] = b"XXXX"
        with pytest.raises(ShardProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame({"op": "ping"}))
        frame[4] = 99
        with pytest.raises(ShardProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_truncated_body_rejected(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ShardProtocolError, match="length"):
            decode_frame(frame[:-3])

    def test_corrupt_body_rejected(self):
        frame = bytearray(encode_frame({"op": "ping", "id": 7}))
        frame[-1] ^= 0xFF
        with pytest.raises(ShardProtocolError, match="checksum"):
            decode_frame(bytes(frame))

    def test_short_garbage_rejected(self):
        with pytest.raises(ShardProtocolError, match="header"):
            decode_frame(b"\x01\x02")


class TestShardConfig:
    def test_picklable_round_trip(self):
        import pickle

        cfg = ShardConfig(
            shard=3, n_shards=8, table_dir="/tmp/t",
            chaos_rates={"optimizer": 0.5}, chaos_seed=7,
        )
        assert pickle.loads(pickle.dumps(cfg)) == cfg
