"""Greedy schedules (Section 6): optimal for geomdec, suboptimal for uniform."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    geometric_decreasing_optimal_period,
    geometric_decreasing_optimal_work,
    uniform_optimal_schedule,
)
from repro.core.greedy import greedy_next_period, greedy_schedule
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    UniformRisk,
)
from repro.exceptions import InvalidScheduleError


class TestGreedyStep:
    def test_uniform_closed_form(self):
        """For p = 1 - t/L from elapsed s: argmax (t-c)(1-(s+t)/L) is
        t = (L - s + c)/2."""
        L, c, s = 100.0, 2.0, 20.0
        t = greedy_next_period(UniformRisk(L), c, s)
        assert t == pytest.approx((L - s + c) / 2, rel=1e-6)

    def test_memoryless_step_independent_of_start(self):
        p = GeometricDecreasingLifespan(1.3)
        t0 = greedy_next_period(p, 1.0, 0.0)
        t5 = greedy_next_period(p, 1.0, 5.0)
        assert t0 == pytest.approx(t5, rel=1e-6)

    def test_exhausted_window_returns_none(self):
        assert greedy_next_period(UniformRisk(10.0), 2.0, 9.0) is None


class TestGreedySchedules:
    def test_greedy_geomdec_equal_periods_at_myopic_point(self):
        """Myopic greedy on the memoryless family picks equal periods at
        t = c + 1/ln a (the maximizer of (t-c) a^{-t}).

        DEVIATION NOTE: Section 6 claims greedy 'yields the optimal schedule
        for the geometrically decreasing lifespan scenario', but under the
        literal myopic recipe the greedy period c + 1/ln a differs from the
        true optimal period t* (which solves a^{-t} + t ln a = 1 + c ln a and
        maximizes the steady-state rate, not the single-period payoff).  The
        measured efficiency is ~85-90%, not 100% — recorded in EXPERIMENTS.md
        (experiment E6-GREEDY).
        """
        a, c = 1.3, 0.8
        p = GeometricDecreasingLifespan(a)
        s = greedy_schedule(p, c)
        myopic = c + 1.0 / math.log(a)
        assert np.allclose(s.periods, myopic, rtol=1e-5)
        t_star = geometric_decreasing_optimal_period(a, c)
        assert not math.isclose(myopic, t_star, rel_tol=0.05)
        ratio = s.expected_work(p, c) / geometric_decreasing_optimal_work(a, c)
        assert 0.8 < ratio < 1.0

    def test_greedy_suboptimal_for_uniform(self):
        """Section 6: greedy 'does not [yield the optimum] for the
        uniform-risk scenario'."""
        L, c = 400.0, 2.0
        p = UniformRisk(L)
        greedy = greedy_schedule(p, c)
        exact = uniform_optimal_schedule(L, c)
        assert greedy.expected_work(p, c) < exact.expected_work * (1 - 1e-4)

    def test_greedy_still_decent_for_uniform(self):
        L, c = 400.0, 2.0
        p = UniformRisk(L)
        ratio = greedy_schedule(p, c).expected_work(p, c) / uniform_optimal_schedule(
            L, c
        ).expected_work
        assert ratio > 0.7  # myopia costs ~25%, not catastrophically

    def test_uniform_greedy_periods_halve(self):
        """Each greedy uniform period takes about half the remaining window."""
        L, c = 1000.0, 1.0
        s = greedy_schedule(UniformRisk(L), c)
        remaining = L
        for t in s.periods[:5]:
            assert t == pytest.approx((remaining + c) / 2, rel=1e-3)
            remaining -= t

    def test_geominc_runs(self):
        p = GeometricIncreasingRisk(25.0)
        s = greedy_schedule(p, 0.5)
        assert s.num_periods >= 1
        assert s.expected_work(p, 0.5) > 0

    def test_impossible_overhead_raises(self):
        with pytest.raises(InvalidScheduleError):
            greedy_schedule(UniformRisk(1.0), 2.0)

    def test_max_periods_respected(self):
        s = greedy_schedule(GeometricDecreasingLifespan(1.2), 0.5, max_periods=7)
        assert s.num_periods <= 7
