"""The numeric ground-truth optimizer and its Theorem 3.1 gradient."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    geometric_decreasing_optimal_work,
    uniform_optimal_schedule,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.optimizer import (
    expected_work_gradient,
    optimize_fixed_m,
    optimize_schedule,
    optimize_t0_via_recurrence,
)


class TestGradient:
    def test_matches_finite_differences(self):
        p = PolynomialRisk(2, 50.0)
        c = 1.0
        periods = np.array([12.0, 9.0, 6.0, 4.0])
        grad = expected_work_gradient(periods, p, c)

        def e(x):
            b = np.cumsum(x)
            return float(np.dot(x - c, np.asarray(p(b))))

        h = 1e-7
        for j in range(len(periods)):
            bump = periods.copy()
            bump[j] += h
            dip = periods.copy()
            dip[j] -= h
            numeric = (e(bump) - e(dip)) / (2 * h)
            assert grad[j] == pytest.approx(numeric, rel=1e-5, abs=1e-8)

    def test_zero_gradient_is_theorem_31(self):
        """At the exact uniform optimum, ∂E/∂t_j = 0 — i.e. system (3.1)."""
        L, c = 200.0, 2.0
        res = uniform_optimal_schedule(L, c)
        grad = expected_work_gradient(res.schedule.periods, UniformRisk(L), c)
        assert np.max(np.abs(grad)) < 1e-8


class TestFixedM:
    def test_single_period_uniform(self):
        """m=1: maximize (t-c)(1-t/L); optimum t = (L+c)/2."""
        L, c = 100.0, 4.0
        res = optimize_fixed_m(UniformRisk(L), c, 1)
        assert res.t0 == pytest.approx((L + c) / 2, rel=1e-6)
        assert res.expected_work == pytest.approx((L - c) ** 2 / (4 * L), rel=1e-9)

    def test_recovers_uniform_optimum(self):
        L, c = 150.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        res = optimize_fixed_m(UniformRisk(L), c, exact.num_periods)
        # SLSQP from a generic start converges to ~1e-4 relative; the sweep's
        # ramp multi-start recovers the exact value (see TestSweep).
        assert res.expected_work == pytest.approx(exact.expected_work, rel=1e-3)

    def test_m_too_large_strips_pinned_periods(self):
        L, c = 50.0, 2.0
        res = optimize_fixed_m(UniformRisk(L), c, 40)
        # Excess periods pin to c (zero work) and are stripped.
        assert res.schedule.num_periods < 40
        assert np.all(res.schedule.periods > c)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            optimize_fixed_m(UniformRisk(10.0), 1.0, 0)

    def test_bad_t_init_length(self):
        with pytest.raises(ValueError):
            optimize_fixed_m(UniformRisk(10.0), 1.0, 2, t_init=[5.0])


class TestSweep:
    def test_uniform_ground_truth(self):
        L, c = 300.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        res = optimize_schedule(UniformRisk(L), c)
        assert res.expected_work == pytest.approx(exact.expected_work, rel=1e-7)

    def test_geomdec_ground_truth(self):
        a, c = 1.3, 1.0
        closed = geometric_decreasing_optimal_work(a, c)
        res = optimize_schedule(GeometricDecreasingLifespan(a), c)
        # Truncated NLP should approach the infinite-schedule closed form.
        assert res.expected_work == pytest.approx(closed, rel=1e-3)
        assert res.expected_work <= closed + 1e-9

    def test_geominc_structure(self):
        res = optimize_schedule(GeometricIncreasingRisk(30.0), 1.0)
        # Concave: strictly decreasing periods (Corollary 5.1).
        assert np.all(np.diff(res.schedule.periods) < 0)


class TestT0Recurrence:
    def test_uniform_matches_exact(self):
        L, c = 400.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        t0, outcome, ew = optimize_t0_via_recurrence(UniformRisk(L), c)
        assert ew == pytest.approx(exact.expected_work, rel=1e-9)
        assert t0 == pytest.approx(exact.t0, rel=1e-4)

    def test_geomdec_finds_fixed_point(self):
        from repro.core.exact import geometric_decreasing_optimal_period

        a, c = 1.2, 0.5
        t0, outcome, ew = optimize_t0_via_recurrence(GeometricDecreasingLifespan(a), c)
        t_star = geometric_decreasing_optimal_period(a, c)
        assert t0 == pytest.approx(t_star, rel=1e-3)
        closed = geometric_decreasing_optimal_work(a, c)
        assert ew == pytest.approx(closed, rel=1e-4)

    def test_custom_bracket(self):
        from repro.types import Bracket

        L, c = 100.0, 1.0
        t0, _, ew = optimize_t0_via_recurrence(
            UniformRisk(L), c, bracket=Bracket(5.0, 30.0)
        )
        assert 5.0 / 1.5 <= t0 <= 30.0 * 1.5
        assert ew > 0
