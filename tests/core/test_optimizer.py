"""The numeric ground-truth optimizer and its Theorem 3.1 gradient."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.exact import (
    geometric_decreasing_optimal_work,
    uniform_optimal_schedule,
)
from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.life_functions import Shape
from repro.core.optimizer import (
    _candidate_period_counts,
    expected_work_gradient,
    optimize_fixed_m,
    optimize_schedule,
    optimize_t0_via_recurrence,
)
from repro.exceptions import InvalidScheduleError


class _GeneralUniform(UniformRisk):
    """Uniform risk that *declares* GENERAL shape, forcing the L/c probe."""

    @property
    def shape(self) -> Shape:
        return Shape.GENERAL


class TestGradient:
    def test_matches_finite_differences(self):
        p = PolynomialRisk(2, 50.0)
        c = 1.0
        periods = np.array([12.0, 9.0, 6.0, 4.0])
        grad = expected_work_gradient(periods, p, c)

        def e(x):
            b = np.cumsum(x)
            return float(np.dot(x - c, np.asarray(p(b))))

        h = 1e-7
        for j in range(len(periods)):
            bump = periods.copy()
            bump[j] += h
            dip = periods.copy()
            dip[j] -= h
            numeric = (e(bump) - e(dip)) / (2 * h)
            assert grad[j] == pytest.approx(numeric, rel=1e-5, abs=1e-8)

    def test_zero_gradient_is_theorem_31(self):
        """At the exact uniform optimum, ∂E/∂t_j = 0 — i.e. system (3.1)."""
        L, c = 200.0, 2.0
        res = uniform_optimal_schedule(L, c)
        grad = expected_work_gradient(res.schedule.periods, UniformRisk(L), c)
        assert np.max(np.abs(grad)) < 1e-8


class TestFixedM:
    def test_single_period_uniform(self):
        """m=1: maximize (t-c)(1-t/L); optimum t = (L+c)/2."""
        L, c = 100.0, 4.0
        res = optimize_fixed_m(UniformRisk(L), c, 1)
        assert res.t0 == pytest.approx((L + c) / 2, rel=1e-6)
        assert res.expected_work == pytest.approx((L - c) ** 2 / (4 * L), rel=1e-9)

    def test_recovers_uniform_optimum(self):
        L, c = 150.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        res = optimize_fixed_m(UniformRisk(L), c, exact.num_periods)
        # SLSQP from a generic start converges to ~1e-4 relative; the sweep's
        # ramp multi-start recovers the exact value (see TestSweep).
        assert res.expected_work == pytest.approx(exact.expected_work, rel=1e-3)

    def test_m_too_large_strips_pinned_periods(self):
        L, c = 50.0, 2.0
        res = optimize_fixed_m(UniformRisk(L), c, 40)
        # Excess periods pin to c (zero work) and are stripped.
        assert res.schedule.num_periods < 40
        assert np.all(res.schedule.periods > c)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            optimize_fixed_m(UniformRisk(10.0), 1.0, 0)

    def test_bad_t_init_length(self):
        with pytest.raises(ValueError):
            optimize_fixed_m(UniformRisk(10.0), 1.0, 2, t_init=[5.0])


class TestSweep:
    def test_uniform_ground_truth(self):
        L, c = 300.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        res = optimize_schedule(UniformRisk(L), c)
        assert res.expected_work == pytest.approx(exact.expected_work, rel=1e-7)

    def test_geomdec_ground_truth(self):
        a, c = 1.3, 1.0
        closed = geometric_decreasing_optimal_work(a, c)
        res = optimize_schedule(GeometricDecreasingLifespan(a), c)
        # Truncated NLP should approach the infinite-schedule closed form.
        assert res.expected_work == pytest.approx(closed, rel=1e-3)
        assert res.expected_work <= closed + 1e-9

    def test_geominc_structure(self):
        res = optimize_schedule(GeometricIncreasingRisk(30.0), 1.0)
        # Concave: strictly decreasing periods (Corollary 5.1).
        assert np.all(np.diff(res.schedule.periods) < 0)


class TestT0Recurrence:
    def test_uniform_matches_exact(self):
        L, c = 400.0, 2.0
        exact = uniform_optimal_schedule(L, c)
        t0, outcome, ew = optimize_t0_via_recurrence(UniformRisk(L), c)
        assert ew == pytest.approx(exact.expected_work, rel=1e-9)
        assert t0 == pytest.approx(exact.t0, rel=1e-4)

    def test_geomdec_finds_fixed_point(self):
        from repro.core.exact import geometric_decreasing_optimal_period

        a, c = 1.2, 0.5
        t0, outcome, ew = optimize_t0_via_recurrence(GeometricDecreasingLifespan(a), c)
        t_star = geometric_decreasing_optimal_period(a, c)
        assert t0 == pytest.approx(t_star, rel=1e-3)
        closed = geometric_decreasing_optimal_work(a, c)
        assert ew == pytest.approx(closed, rel=1e-4)

    def test_custom_bracket(self):
        from repro.types import Bracket

        L, c = 100.0, 1.0
        t0, _, ew = optimize_t0_via_recurrence(
            UniformRisk(L), c, bracket=Bracket(5.0, 30.0)
        )
        assert 5.0 / 1.5 <= t0 <= 30.0 * 1.5
        assert ew > 0

    @pytest.mark.parametrize(
        "p,c",
        [
            (UniformRisk(400.0), 2.0),
            (PolynomialRisk(3, 300.0), 2.0),
            (GeometricDecreasingLifespan(1.2), 0.5),
            (GeometricIncreasingRisk(30.0), 1.0),
        ],
        ids=["uniform", "poly3", "geomdec", "geominc"],
    )
    def test_engines_agree(self, p, c):
        """Batch and scalar grid sweeps pick the same t0 and schedule."""
        tb, ob, eb = optimize_t0_via_recurrence(p, c, engine="batch")
        ts_, os_, es = optimize_t0_via_recurrence(p, c, engine="scalar")
        assert tb == pytest.approx(ts_, rel=1e-12, abs=1e-12)
        assert eb == pytest.approx(es, rel=1e-12)
        assert ob.schedule.num_periods == os_.schedule.num_periods
        assert ob.termination is os_.termination
        np.testing.assert_allclose(ob.schedule.periods, os_.schedule.periods,
                                   rtol=1e-12, atol=1e-12)

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            optimize_t0_via_recurrence(UniformRisk(100.0), 1.0, engine="warp")

    def test_winner_not_recomputed(self, monkeypatch):
        """The returned t0's schedule comes from the cache, not a re-walk."""
        import repro.core.optimizer as opt

        calls: list[float] = []
        original = opt.generate_schedule

        def counting(p, c, t0, **kw):
            calls.append(t0)
            return original(p, c, t0, **kw)

        monkeypatch.setattr(opt, "generate_schedule", counting)
        t0, outcome, ew = optimize_t0_via_recurrence(UniformRisk(200.0), 2.0)
        # Every scalar walk during refinement evaluated a distinct t0: the
        # final (t0, outcome, ew) came from the cache, never a repeat call.
        assert len(calls) == len(set(calls))
        assert ew == pytest.approx(outcome.schedule.expected_work(UniformRisk(200.0), 2.0))

    def test_no_valid_schedule_raises_invalid(self, monkeypatch):
        """A grid with no valid lane raises InvalidScheduleError, not assert."""
        import repro.core.optimizer as opt

        def explode(p, c, t0, **kw):
            raise InvalidScheduleError("forced failure")

        monkeypatch.setattr(opt, "generate_schedule", explode)
        with pytest.raises(InvalidScheduleError):
            optimize_t0_via_recurrence(UniformRisk(100.0), 1.0, engine="scalar")


class TestCandidatePeriodCounts:
    def test_small_lifespan_overhead_ratio_still_sweeps(self):
        """L barely above c must still yield a non-degenerate count sweep."""
        counts = _candidate_period_counts(_GeneralUniform(3.0), 2.0, None)
        assert counts == [1, 2]

    def test_counts_sorted_unique_and_reach_m_max(self):
        counts = _candidate_period_counts(_GeneralUniform(100.0), 2.0, None)
        assert counts == sorted(set(counts))
        assert counts[-1] == 50  # L/c
        assert counts[0] == 1

    def test_explicit_m_max_respected(self):
        counts = _candidate_period_counts(UniformRisk(100.0), 2.0, 7)
        assert counts == [1, 2, 3, 4, 5, 6, 7]

    def test_geometric_probe_dedupes(self):
        counts = _candidate_period_counts(_GeneralUniform(512.0), 2.0, None)
        assert len(counts) == len(set(counts))
        assert all(1 <= m <= 256 for m in counts)
