"""The shared value types and the exception hierarchy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import exceptions as exc
from repro.types import Bracket, positive_subtraction


class TestBracket:
    def test_basic_properties(self):
        br = Bracket(2.0, 6.0)
        assert br.width == 4.0
        assert br.mid == 4.0
        assert br.ratio == 3.0

    def test_degenerate_point(self):
        br = Bracket(5.0, 5.0)
        assert br.width == 0.0
        assert br.contains(5.0)

    def test_contains_with_slack(self):
        br = Bracket(1.0, 2.0)
        assert br.contains(1.0)
        assert br.contains(2.0 + 1e-12)
        assert not br.contains(2.5)
        assert not br.contains(0.5)

    def test_clamp(self):
        br = Bracket(1.0, 2.0)
        assert br.clamp(0.0) == 1.0
        assert br.clamp(1.5) == 1.5
        assert br.clamp(9.0) == 2.0

    def test_zero_lower_ratio_infinite(self):
        assert math.isinf(Bracket(0.0, 1.0).ratio)

    def test_invalid_brackets(self):
        with pytest.raises(ValueError):
            Bracket(2.0, 1.0)
        with pytest.raises(ValueError):
            Bracket(float("nan"), 1.0)
        with pytest.raises(ValueError):
            Bracket(0.0, float("inf"))


class TestPositiveSubtraction:
    def test_scalars_stay_scalar(self):
        out = positive_subtraction(5.0, 2.0)
        assert isinstance(out, float) and out == 3.0
        assert positive_subtraction(1.0, 5.0) == 0.0

    def test_arrays(self):
        out = positive_subtraction(np.array([1.0, 5.0]), np.array([2.0, 2.0]))
        assert np.allclose(out, [0.0, 3.0])

    def test_mixed(self):
        out = positive_subtraction(np.array([1.0, 5.0]), 2.0)
        assert np.allclose(out, [0.0, 3.0])


class TestExceptionHierarchy:
    def test_all_derive_from_base(self):
        for name in (
            "InvalidScheduleError", "InvalidLifeFunctionError", "SupportError",
            "RecurrenceTerminated", "NoOptimalScheduleError", "ConvergenceError",
            "BracketError", "SimulationError", "WorkloadError", "TraceError",
            "FittingError",
        ):
            cls = getattr(exc, name)
            assert issubclass(cls, exc.CycleStealingError), name

    def test_bracket_is_convergence_error(self):
        # Callers catching ConvergenceError also see bracketing failures.
        assert issubclass(exc.BracketError, exc.ConvergenceError)

    def test_catchable_as_base(self):
        with pytest.raises(exc.CycleStealingError):
            raise exc.TraceError("boom")
