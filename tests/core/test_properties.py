"""Property-based tests (hypothesis) on the core invariants.

Each property pins one of the paper's structural claims over randomized
instances: the Proposition 2.1 transform never loses expected work, the
recurrence engine's output always satisfies system (3.6), Theorem 5.1 local
optimality, the decrement laws on generated schedules, bound ordering, and
the episode accounting identities.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.core.perturbation import perturbation_margins
from repro.core.productive import make_productive
from repro.core.recurrence import generate_schedule, satisfies_recurrence
from repro.core.schedule import Schedule
from repro.core.structure import (
    satisfies_concave_decrements,
    satisfies_convex_decrements,
)
from repro.core.t0_bounds import max_periods_bound
from repro.simulation.episode import realized_work

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

periods_strategy = st.lists(
    st.floats(min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)

overhead_strategy = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


@st.composite
def life_functions(draw):
    kind = draw(st.sampled_from(["uniform", "poly", "geomdec", "geominc"]))
    if kind == "uniform":
        return UniformRisk(draw(st.floats(min_value=5.0, max_value=500.0)))
    if kind == "poly":
        return PolynomialRisk(
            draw(st.integers(min_value=1, max_value=5)),
            draw(st.floats(min_value=5.0, max_value=500.0)),
        )
    if kind == "geomdec":
        return GeometricDecreasingLifespan(draw(st.floats(min_value=1.01, max_value=3.0)))
    return GeometricIncreasingRisk(draw(st.floats(min_value=5.0, max_value=100.0)))


@st.composite
def concave_life_functions(draw):
    kind = draw(st.sampled_from(["uniform", "poly", "geominc"]))
    if kind == "uniform":
        return UniformRisk(draw(st.floats(min_value=10.0, max_value=300.0)))
    if kind == "poly":
        return PolynomialRisk(
            draw(st.integers(min_value=2, max_value=5)),
            draw(st.floats(min_value=10.0, max_value=300.0)),
        )
    return GeometricIncreasingRisk(draw(st.floats(min_value=8.0, max_value=60.0)))


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy, p=life_functions())
def test_productive_transform_never_loses_work(periods, c, p):
    s = Schedule(periods)
    out = make_productive(s, c)
    assert out.expected_work(p, c) >= s.expected_work(p, c) - 1e-12
    if out.num_periods > 1:
        assert np.all(out.periods > c)


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy, p=life_functions())
def test_expected_work_nonnegative_and_bounded(periods, c, p):
    """0 <= E(S; p) <= total productive work."""
    s = Schedule(periods)
    ew = s.expected_work(p, c)
    assert ew >= 0.0
    assert ew <= float(np.sum(s.work_per_period(c))) + 1e-12


@settings(max_examples=60, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy, p=life_functions())
def test_expected_work_is_expectation_of_realized(periods, c, p, ):
    """E(S; p) equals the exact expectation of realized work under p,
    computed by integrating over the per-period survival probabilities."""
    s = Schedule(periods)
    survival = np.asarray(p(s.boundaries), dtype=float)
    manual = float(np.dot(s.work_per_period(c), survival))
    assert s.expected_work(p, c) == pytest.approx(manual, rel=1e-12, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    p=life_functions(),
    c=st.floats(min_value=0.05, max_value=2.0),
    frac=st.floats(min_value=0.05, max_value=0.8),
)
def test_generated_schedules_satisfy_recurrence(p, c, frac):
    horizon = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-6))
    t0 = c + frac * (horizon - c)
    assume(t0 > c * 1.01)
    out = generate_schedule(p, c, t0)
    if out.schedule.num_periods >= 2:
        assert satisfies_recurrence(out.schedule, p, c, atol=1e-6)
    assert np.all(out.schedule.periods > c)


@settings(max_examples=30, deadline=None)
@given(
    p=concave_life_functions(),
    c=st.floats(min_value=0.1, max_value=2.0),
    frac=st.floats(min_value=0.1, max_value=0.6),
)
def test_theorem_51_local_optimality_concave(p, c, frac):
    """Any recurrence-satisfying schedule for concave p beats its
    perturbations (Theorem 5.1) — regardless of whether t0 is optimal."""
    t0 = c + frac * (p.lifespan - c)
    assume(t0 > c * 1.05)
    out = generate_schedule(p, c, t0)
    assume(out.schedule.num_periods >= 2)
    report = perturbation_margins(out.schedule, p, c)
    assert report.max_gain <= 1e-9 * max(1.0, out.schedule.expected_work(p, c))


@settings(max_examples=30, deadline=None)
@given(
    p=concave_life_functions(),
    c=st.floats(min_value=0.1, max_value=2.0),
    frac=st.floats(min_value=0.1, max_value=0.6),
)
def test_concave_decrement_law_on_generated(p, c, frac):
    """Theorem 5.2 for concave p: recurrence-generated periods decrease by
    at least c per step (up to the dropped final period)."""
    t0 = c + frac * (p.lifespan - c)
    assume(t0 > c * 1.05)
    out = generate_schedule(p, c, t0)
    assume(out.schedule.num_periods >= 2)
    assert satisfies_concave_decrements(out.schedule, c, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(
    a=st.floats(min_value=1.05, max_value=2.5),
    c=st.floats(min_value=0.05, max_value=1.5),
    frac=st.floats(min_value=0.2, max_value=0.95),
)
def test_convex_decrement_law_on_generated(a, c, frac):
    """Theorem 5.2 for convex p: decrements at most c."""
    p = GeometricDecreasingLifespan(a)
    limit = c + 1.0 / math.log(a)
    t0 = c + frac * (limit - c)
    assume(t0 > c * 1.05)
    out = generate_schedule(p, c, t0, max_periods=200)
    assume(out.schedule.num_periods >= 2)
    assert satisfies_convex_decrements(out.schedule, c, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(
    p=concave_life_functions(),
    c=st.floats(min_value=0.1, max_value=2.0),
    frac=st.floats(min_value=0.1, max_value=0.9),
)
def test_corollary_52_53_period_counts(p, c, frac):
    """Generated schedules respect the concave period-count bounds."""
    t0 = c + frac * (p.lifespan - c)
    assume(t0 > c * 1.05)
    out = generate_schedule(p, c, t0)
    m = out.schedule.num_periods
    assert m <= t0 / c + 1 + 1e-9
    assert m < max_periods_bound(p.lifespan, c) + 1


@settings(max_examples=40, deadline=None)
@given(
    periods=periods_strategy,
    c=overhead_strategy,
    reclaim=st.floats(min_value=0.0, max_value=200.0),
)
def test_realized_work_monotone_in_reclaim(periods, c, reclaim):
    """Later reclaims never bank less work."""
    s = Schedule(periods)
    w1 = s.realized_work(reclaim, c)
    w2 = s.realized_work(reclaim + 1.0, c)
    assert w2 >= w1
    assert w1 >= 0.0


@settings(max_examples=40, deadline=None)
@given(periods=periods_strategy, c=overhead_strategy)
def test_realized_work_batch_matches_scalar(periods, c):
    s = Schedule(periods)
    rs = np.linspace(0.0, s.total_length * 1.5 + 1.0, 23)
    batch = realized_work(s, rs, c)
    for r, w in zip(rs, batch):
        assert w == pytest.approx(s.realized_work(float(r), c))


@settings(max_examples=30, deadline=None)
@given(p=life_functions(), q=st.floats(min_value=0.001, max_value=0.999))
def test_inverse_round_trip_property(p, q):
    t = float(p.inverse(q))
    assert float(p(t)) == pytest.approx(q, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    p=life_functions(),
    s=st.floats(min_value=0.1, max_value=20.0),
    t=st.floats(min_value=0.0, max_value=20.0),
)
def test_conditional_consistency(p, s, t):
    """p(s+t) = p(s) * p_s(t) — the chain rule of survival."""
    assume(float(p(s)) > 1e-9)
    assume(s + t <= p.lifespan or math.isinf(p.lifespan))
    cond = p.conditional(s)
    assert float(p(s + t)) == pytest.approx(float(p(s)) * float(cond(t)), rel=1e-9, abs=1e-12)
