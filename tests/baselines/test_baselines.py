"""Baseline schedules and online policies."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.policies import (
    AllInOnePolicy,
    DoublingPolicy,
    EpisodeInfo,
    FixedChunkPolicy,
    GuidelinePolicy,
    OmniscientPolicy,
    Policy,
    ProgressivePolicy,
    RandomizedDoublingPolicy,
    SchedulePolicy,
)
from repro.baselines.schedules import (
    all_in_one_schedule,
    doubling_schedule,
    fixed_chunk_schedule,
)
from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError


class TestBaselineSchedules:
    def test_fixed_chunk_covers_lifespan(self):
        p = UniformRisk(100.0)
        s = fixed_chunk_schedule(p, 1.0, 12.0)
        assert s.total_length == pytest.approx(100.0)
        assert np.allclose(s.periods[:-1], 12.0)

    def test_fixed_chunk_drops_unproductive_tail(self):
        p = UniformRisk(24.5)
        s = fixed_chunk_schedule(p, 1.0, 12.0)
        # remainder 0.5 < c: dropped.
        assert s.num_periods == 2

    def test_fixed_chunk_validation(self):
        with pytest.raises(InvalidScheduleError):
            fixed_chunk_schedule(UniformRisk(10.0), 2.0, 1.5)

    def test_doubling_growth(self):
        p = UniformRisk(100.0)
        s = doubling_schedule(p, 1.0, first=3.0)
        assert s.periods[1] == pytest.approx(6.0)
        assert s.periods[2] == pytest.approx(12.0)
        assert s.total_length <= 100.0 + 1e-9

    def test_doubling_validation(self):
        with pytest.raises(InvalidScheduleError):
            doubling_schedule(UniformRisk(10.0), 2.0, first=1.0)
        with pytest.raises(InvalidScheduleError):
            doubling_schedule(UniformRisk(10.0), 1.0, first=2.0, factor=1.0)

    def test_all_in_one_zero_expected_work_finite_lifespan(self):
        p = UniformRisk(50.0)
        s = all_in_one_schedule(p, 1.0)
        assert s.num_periods == 1
        assert s.expected_work(p, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_guideline_dominates_baselines(self):
        """The point of the paper: E(guideline) > E(any ad-hoc baseline)."""
        p = UniformRisk(200.0)
        c = 2.0
        guided = guideline_schedule(p, c).expected_work
        for baseline in (
            fixed_chunk_schedule(p, c, 5.0),
            fixed_chunk_schedule(p, c, 50.0),
            doubling_schedule(p, c, first=4.0),
            all_in_one_schedule(p, c),
        ):
            assert guided > baseline.expected_work(p, c)


class TestPolicies:
    def _info(self, c=1.0, life=None, reclaim=None):
        return EpisodeInfo(c=c, life=life, reclaim_time=reclaim)

    def test_protocol_conformance(self, rng):
        for policy in (
            SchedulePolicy(Schedule([3.0, 2.0])),
            GuidelinePolicy(),
            ProgressivePolicy(),
            FixedChunkPolicy(4.0),
            DoublingPolicy(2.0),
            AllInOnePolicy(10.0),
            RandomizedDoublingPolicy(2.0, rng),
            OmniscientPolicy(),
        ):
            assert isinstance(policy, Policy)

    def test_schedule_policy_sequence(self):
        policy = SchedulePolicy(Schedule([3.0, 2.0]))
        policy.start_episode(self._info())
        assert policy.next_period(0.0) == 3.0
        assert policy.next_period(3.0) == 2.0
        assert policy.next_period(5.0) is None
        policy.start_episode(self._info())
        assert policy.next_period(0.0) == 3.0  # reset

    def test_guideline_policy_needs_life(self):
        policy = GuidelinePolicy()
        policy.start_episode(self._info(life=None))
        assert policy.next_period(0.0) is None
        policy.start_episode(self._info(life=UniformRisk(100.0)))
        assert policy.next_period(0.0) > 1.0

    def test_fixed_chunk_honors_overhead(self):
        policy = FixedChunkPolicy(2.0)
        policy.start_episode(self._info(c=3.0))
        assert policy.next_period(0.0) is None

    def test_doubling_sequence_and_cap(self):
        policy = DoublingPolicy(2.0, factor=2.0, cap=7.0)
        policy.start_episode(self._info())
        assert policy.next_period(0.0) == 2.0
        assert policy.next_period(2.0) == 4.0
        assert policy.next_period(6.0) == 7.0
        assert policy.next_period(13.0) == 7.0

    def test_all_in_one_single_dispatch(self):
        policy = AllInOnePolicy(20.0)
        policy.start_episode(self._info())
        assert policy.next_period(0.0) == 20.0
        assert policy.next_period(20.0) is None

    def test_randomized_phase_varies(self, rng):
        policy = RandomizedDoublingPolicy(2.0, rng)
        firsts = set()
        for _ in range(8):
            policy.start_episode(self._info())
            firsts.add(round(policy.next_period(0.0), 6))
        assert len(firsts) > 4  # random phases differ
        assert all(2.0 <= f <= 4.0 for f in firsts)

    def test_omniscient_reads_reclaim(self):
        policy = OmniscientPolicy()
        policy.start_episode(self._info(c=1.0, reclaim=10.0))
        t = policy.next_period(0.0)
        assert t is not None and t < 10.0 and t > 9.99
        assert policy.next_period(t) is None

    def test_omniscient_declines_tiny_window(self):
        policy = OmniscientPolicy()
        policy.start_episode(self._info(c=1.0, reclaim=0.5))
        assert policy.next_period(0.0) is None

    def test_progressive_policy_uses_conditional(self):
        p = UniformRisk(100.0)
        policy = ProgressivePolicy()
        policy.start_episode(self._info(c=1.0, life=p))
        t1 = policy.next_period(0.0)
        t2 = policy.next_period(50.0)  # after surviving to 50
        assert t1 is not None and t2 is not None
        assert t2 < t1  # the remaining window shrank

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FixedChunkPolicy(0.0)
        with pytest.raises(ValueError):
            DoublingPolicy(1.0, factor=1.0)
        with pytest.raises(ValueError):
            AllInOnePolicy(-2.0)
        with pytest.raises(ValueError):
            RandomizedDoublingPolicy(0.0, rng)
