"""Markov-modulated owner traces."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exceptions import TraceError
from repro.traces.markov import MarkovOwnerModel, markov_trace
from repro.traces.synthetic import exponential_sampler, life_function_sampler


def _two_state_model(sticky: float = 0.9) -> MarkovOwnerModel:
    """State 0: short absences (uniform <= 2); state 1: long (uniform <= 40)."""
    return MarkovOwnerModel(
        transition=np.array([[sticky, 1 - sticky], [1 - sticky, sticky]]),
        present_samplers=[exponential_sampler(3.0), exponential_sampler(3.0)],
        absent_samplers=[
            life_function_sampler(repro.UniformRisk(2.0)),
            life_function_sampler(repro.UniformRisk(40.0)),
        ],
    )


class TestModel:
    def test_stationary_symmetric(self):
        model = _two_state_model()
        pi = model.stationary()
        assert np.allclose(pi, [0.5, 0.5])

    def test_stationary_asymmetric(self):
        model = MarkovOwnerModel(
            transition=np.array([[0.9, 0.1], [0.3, 0.7]]),
            present_samplers=[exponential_sampler(1.0)] * 2,
            absent_samplers=[exponential_sampler(1.0)] * 2,
        )
        pi = model.stationary()
        # Detailed balance: pi0 * 0.1 = pi1 * 0.3.
        assert pi[0] * 0.1 == pytest.approx(pi[1] * 0.3, rel=1e-9)

    def test_validation(self):
        with pytest.raises(TraceError):
            MarkovOwnerModel(
                transition=np.array([[0.5, 0.6], [0.5, 0.5]]),  # rows sum > 1
                present_samplers=[exponential_sampler(1.0)] * 2,
                absent_samplers=[exponential_sampler(1.0)] * 2,
            )
        with pytest.raises(TraceError):
            MarkovOwnerModel(
                transition=np.eye(2),
                present_samplers=[exponential_sampler(1.0)],  # wrong count
                absent_samplers=[exponential_sampler(1.0)] * 2,
            )


class TestTrace:
    def test_states_align_with_absences(self, rng):
        model = _two_state_model()
        trace, states = markov_trace(rng, 2000.0, model)
        assert states.size == trace.n_opportunities
        assert set(np.unique(states)) <= {0, 1}

    def test_state_conditional_durations(self, rng):
        model = _two_state_model()
        trace, states = markov_trace(rng, 20_000.0, model)
        short = trace.absences[states == 0]
        long = trace.absences[states == 1]
        assert short.max() <= 2.0 + 1e-9
        assert long.mean() > 5 * short.mean()

    def test_stickiness_correlates_consecutive_absences(self, rng):
        model = _two_state_model(sticky=0.95)
        trace, states = markov_trace(rng, 30_000.0, model)
        same = np.mean(states[1:] == states[:-1])
        assert same > 0.85  # sticky chain: consecutive absences share a state

    def test_marginal_matches_stationary_mixture(self, rng):
        """The long-run absence distribution is the stationary mixture — the
        bridge to MixtureLife and the paper's machinery."""
        model = _two_state_model()
        trace, _ = markov_trace(rng, 50_000.0, model)
        mix = repro.MixtureLife(
            [repro.UniformRisk(2.0), repro.UniformRisk(40.0)], [0.5, 0.5]
        )
        for t in (1.0, 5.0, 20.0):
            empirical = float(np.mean(trace.absences > t))
            assert empirical == pytest.approx(float(mix(t)), abs=0.03)

    def test_invalid_args(self, rng):
        model = _two_state_model()
        with pytest.raises(TraceError):
            markov_trace(rng, 0.0, model)
        with pytest.raises(TraceError):
            markov_trace(rng, 10.0, model, start_state=5)

    def test_schedulable_end_to_end(self, rng):
        """Fit a smooth p to Markov-modulated absences and schedule."""
        from repro.traces import kaplan_meier, smooth_survival

        model = _two_state_model()
        trace, _ = markov_trace(rng, 20_000.0, model)
        smoothed = smooth_survival(kaplan_meier(trace.absences, trace.censored_absences))
        res = repro.guideline_schedule(smoothed, c=0.3)
        assert res.expected_work > 0
