"""Kaplan-Meier and ECDF survival estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.traces.survival import SurvivalCurve, ecdf_survival, kaplan_meier


class TestECDF:
    def test_simple(self):
        curve = ecdf_survival(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(curve.times, [1, 2, 3, 4])
        assert np.allclose(curve.survival, [0.75, 0.5, 0.25, 0.0])

    def test_ties(self):
        curve = ecdf_survival(np.array([2.0, 2.0, 4.0]))
        assert np.allclose(curve.times, [2, 4])
        assert np.allclose(curve.survival, [1 / 3, 0.0])

    def test_evaluate_step_semantics(self):
        curve = ecdf_survival(np.array([1.0, 2.0]))
        assert curve.evaluate(0.5) == 1.0
        assert curve.evaluate(1.0) == 0.5  # P(D > 1) with one of two at 1
        assert curve.evaluate(1.5) == 0.5
        assert curve.evaluate(2.5) == 0.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(TraceError):
            ecdf_survival(np.array([]))
        with pytest.raises(TraceError):
            ecdf_survival(np.array([1.0, -1.0]))


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self, rng):
        data = rng.exponential(5.0, size=200)
        km = kaplan_meier(data)
        ec = ecdf_survival(data)
        assert np.allclose(km.times, ec.times)
        assert np.allclose(km.survival, ec.survival)

    def test_textbook_example(self):
        # Events at 1, 3; censored at 2.
        km = kaplan_meier(np.array([1.0, 3.0]), np.array([2.0]))
        # S(1) = 1 - 1/3 = 2/3; at t=3, at-risk = 1: S(3) = 2/3 * 0 = 0.
        assert np.allclose(km.times, [1.0, 3.0])
        assert np.allclose(km.survival, [2 / 3, 0.0])
        assert km.n_censored == 1

    def test_censoring_lifts_survival(self, rng):
        events = rng.exponential(5.0, size=300)
        censored = rng.exponential(5.0, size=150)
        km_cens = kaplan_meier(events, censored)
        km_plain = kaplan_meier(events)
        t = float(np.median(events))
        assert km_cens.evaluate(t) >= km_plain.evaluate(t) - 1e-12

    def test_consistency_against_truth(self, rng):
        """KM with random censoring converges to the true survival."""
        true_scale = 4.0
        n = 4000
        events = rng.exponential(true_scale, size=n)
        cens_times = rng.exponential(8.0, size=n)
        observed = np.minimum(events, cens_times)
        is_event = events <= cens_times
        km = kaplan_meier(observed[is_event], observed[~is_event])
        for t in (1.0, 3.0, 6.0):
            assert km.evaluate(t) == pytest.approx(np.exp(-t / true_scale), abs=0.05)

    def test_needs_events(self):
        with pytest.raises(TraceError):
            kaplan_meier(np.array([]), np.array([1.0]))


class TestSurvivalCurve:
    def test_validation(self):
        with pytest.raises(TraceError):
            SurvivalCurve(np.array([1.0, 2.0]), np.array([0.5]), 2, 0)
        with pytest.raises(TraceError):
            SurvivalCurve(np.array([2.0, 1.0]), np.array([0.5, 0.2]), 2, 0)
        with pytest.raises(TraceError):
            SurvivalCurve(np.array([1.0, 2.0]), np.array([0.2, 0.5]), 2, 0)

    def test_support_end(self):
        curve = ecdf_survival(np.array([1.0, 5.0]))
        assert curve.support_end == 5.0
