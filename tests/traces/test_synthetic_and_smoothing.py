"""Synthetic owner traces and survival-curve smoothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.recurrence import generate_schedule
from repro.exceptions import TraceError
from repro.traces.smoothing import SmoothedLifeFunction, smooth_survival
from repro.traces.survival import kaplan_meier
from repro.traces.synthetic import (
    diurnal_trace,
    exponential_sampler,
    generate_trace,
    life_function_sampler,
    lognormal_sampler,
)


class TestGenerateTrace:
    def test_basic_structure(self, rng):
        trace = generate_trace(
            rng, 5000.0, exponential_sampler(10.0), exponential_sampler(20.0)
        )
        assert trace.n_opportunities > 50
        assert trace.horizon == 5000.0
        assert 0.0 < trace.utilization < 1.0

    def test_life_function_sampler_distribution(self, rng):
        p = UniformRisk(8.0)
        trace = generate_trace(
            rng, 20_000.0, life_function_sampler(p), exponential_sampler(5.0)
        )
        # Absences should look uniform on [0, 8].
        assert trace.absences.max() <= 8.0 + 1e-9
        assert np.mean(trace.absences) == pytest.approx(4.0, abs=0.3)

    def test_censoring_recorded(self, rng):
        trace = generate_trace(
            rng, 50.0, exponential_sampler(200.0), exponential_sampler(1.0),
            start_present=False,
        )
        assert trace.censored_absences.size >= 1

    def test_invalid_horizon(self, rng):
        with pytest.raises(TraceError):
            generate_trace(rng, 0.0, exponential_sampler(1.0), exponential_sampler(1.0))

    def test_lognormal_sampler_validation(self):
        with pytest.raises(TraceError):
            lognormal_sampler(0.0, 1.0)
        with pytest.raises(TraceError):
            exponential_sampler(-1.0)


class TestDiurnalTrace:
    def test_nightly_absences_present(self, rng):
        trace = diurnal_trace(rng, 10, exponential_sampler(0.5))
        # At least some absences span (or include) the 14-hour night.
        assert np.sum(trace.absences >= 14.0) >= 5
        assert trace.n_opportunities >= 10

    def test_invalid_days(self, rng):
        with pytest.raises(TraceError):
            diurnal_trace(rng, 0, exponential_sampler(0.5))


class TestSmoothing:
    def _smoothed_from(self, p, rng, n=4000):
        data = p.sample_reclaim_times(rng, n)
        return smooth_survival(kaplan_meier(data))

    def test_is_valid_life_function(self, rng):
        sm = self._smoothed_from(UniformRisk(30.0), rng)
        sm.validate(tol=1e-6)

    def test_tracks_truth(self, rng):
        p = UniformRisk(30.0)
        sm = self._smoothed_from(p, rng)
        ts = np.linspace(0.5, 28.0, 25)
        assert np.max(np.abs(np.asarray(sm(ts)) - np.asarray(p(ts)))) < 0.06

    def test_derivative_negative_inside(self, rng):
        sm = self._smoothed_from(GeometricDecreasingLifespan(1.3), rng)
        ts = np.linspace(0.1, sm.lifespan * 0.9, 50)
        assert np.all(np.asarray(sm.derivative(ts)) < 0)

    def test_usable_by_recurrence(self, rng):
        sm = self._smoothed_from(UniformRisk(50.0), rng)
        out = generate_schedule(sm, 1.0, sm.lifespan * 0.25)
        assert out.schedule.num_periods >= 2

    def test_shape_detected_linearish(self, rng):
        sm = self._smoothed_from(UniformRisk(30.0), rng, n=20_000)
        # A uniform sample's smoothed survival should probe concave-or-convex
        # (near-linear); GENERAL is acceptable for noisy fits, but the shape
        # property must at least be computed without error.
        assert sm.shape is not None

    def test_knot_validation(self):
        with pytest.raises(TraceError):
            SmoothedLifeFunction(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        with pytest.raises(TraceError):
            SmoothedLifeFunction(
                np.array([0.0, 1.0, 2.0]), np.array([0.9, 0.5, 0.0])
            )
        with pytest.raises(TraceError):
            SmoothedLifeFunction(
                np.array([0.0, 1.0, 2.0]), np.array([1.0, 0.5, 0.1])
            )

    def test_too_few_knots_raises(self, rng):
        with pytest.raises(TraceError):
            smooth_survival(kaplan_meier(np.array([5.0, 5.0, 5.0])), n_knots=4)
