"""Parametric life-function fitting and model selection."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
)
from repro.exceptions import FittingError
from repro.traces.fitting import (
    fit_best,
    fit_geometric_decreasing,
    fit_geometric_increasing,
    fit_polynomial,
    fit_uniform,
    fit_weibull,
    ks_distance,
)


def _samples(p, rng, n=3000):
    return p.sample_reclaim_times(rng, n)


class TestIndividualFits:
    def test_uniform_recovers_lifespan(self, rng):
        data = _samples(UniformRisk(42.0), rng)
        fit = fit_uniform(data)
        assert fit.life.lifespan == pytest.approx(42.0, rel=0.02)

    def test_exponential_recovers_rate(self, rng):
        a_true = 1.25
        data = _samples(GeometricDecreasingLifespan(a_true), rng)
        fit = fit_geometric_decreasing(data)
        assert math.log(fit.life.a) == pytest.approx(math.log(a_true), rel=0.05)

    def test_polynomial_recovers_degree(self, rng):
        data = _samples(PolynomialRisk(3, 30.0), rng, n=6000)
        fit = fit_polynomial(data)
        assert fit.life.d == 3
        assert fit.life.lifespan == pytest.approx(30.0, rel=0.02)

    def test_geometric_increasing_recovers_lifespan(self, rng):
        data = _samples(GeometricIncreasingRisk(20.0), rng)
        fit = fit_geometric_increasing(data)
        assert fit.life.lifespan == pytest.approx(20.0, rel=0.02)

    def test_weibull_recovers_params(self, rng):
        from repro.core.life_functions import WeibullLife

        data = _samples(WeibullLife(k=1.6, scale=7.0), rng, n=6000)
        fit = fit_weibull(data)
        assert fit.life.k == pytest.approx(1.6, rel=0.08)
        assert fit.life.scale == pytest.approx(7.0, rel=0.05)

    def test_too_few_points(self):
        with pytest.raises(FittingError):
            fit_uniform(np.array([1.0]))

    def test_negative_durations(self):
        with pytest.raises(FittingError):
            fit_geometric_decreasing(np.array([1.0, -2.0, 3.0]))


class TestModelSelection:
    @pytest.mark.parametrize("truth,expected_family", [
        (lambda: GeometricDecreasingLifespan(1.3), "geometric_decreasing"),
        (lambda: UniformRisk(25.0), "uniform"),
        (lambda: GeometricIncreasingRisk(15.0), "geometric_increasing"),
    ])
    def test_selects_generating_family(self, rng, truth, expected_family):
        p = truth()
        data = _samples(p, rng, n=8000)
        best = fit_best(data, criterion="ks")
        # The generating family should fit at least as well as alternatives
        # (Weibull can mimic the exponential exactly, so accept it there).
        acceptable = {expected_family}
        if expected_family == "geometric_decreasing":
            acceptable.add("weibull")
        if expected_family == "uniform":
            acceptable.add("polynomial(d=1)")
        assert best.family in acceptable, f"chose {best.family}"

    def test_ks_distance_small_for_truth(self, rng):
        p = UniformRisk(30.0)
        data = _samples(p, rng, n=5000)
        assert ks_distance(p, data) < 0.03

    def test_ks_distance_large_for_wrong_model(self, rng):
        data = _samples(GeometricDecreasingLifespan(1.5), rng, n=5000)
        wrong = UniformRisk(100.0)
        assert ks_distance(wrong, data) > 0.2

    def test_loglik_criterion(self, rng):
        data = _samples(GeometricDecreasingLifespan(1.4), rng, n=4000)
        best = fit_best(data, criterion="loglik")
        assert best.family in ("geometric_decreasing", "weibull")

    def test_invalid_criterion(self, rng):
        with pytest.raises(ValueError):
            fit_best(np.array([1.0, 2.0, 3.0]), criterion="aic")
