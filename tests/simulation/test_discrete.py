"""Task-grid quantization of continuous schedules (experiment EV-DISC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import UniformRisk
from repro.core.schedule import Schedule
from repro.exceptions import InvalidScheduleError
from repro.simulation.discrete import (
    discretization_report,
    discretize_schedule,
)


class TestDiscretize:
    def test_floor_mode(self):
        s = Schedule([10.0, 7.5])
        out = discretize_schedule(s, c=1.0, task_duration=2.0, mode="floor")
        # 10 -> c + 4*2 = 9; 7.5 -> c + 3*2 = 7.
        assert list(out) == [9.0, 7.0]

    def test_round_and_ceil_modes(self):
        s = Schedule([10.0])
        assert list(discretize_schedule(s, 1.0, 2.0, mode="round"))[0] == pytest.approx(
            1.0 + 2.0 * round(9.0 / 2.0)
        )
        assert list(discretize_schedule(s, 1.0, 2.0, mode="ceil"))[0] == pytest.approx(
            1.0 + 2.0 * np.ceil(9.0 / 2.0 - 1e-12)
        )

    def test_exact_grid_is_identity(self):
        s = Schedule([1.0 + 6.0, 1.0 + 4.0])
        out = discretize_schedule(s, 1.0, 2.0, mode="floor")
        assert out.approx_equals(s)

    def test_small_periods_dropped(self):
        s = Schedule([10.0, 1.5])  # 1.5 - c = 0.5 < one task
        out = discretize_schedule(s, 1.0, 2.0)
        assert out.num_periods == 1

    def test_all_dropped_raises(self):
        with pytest.raises(InvalidScheduleError):
            discretize_schedule(Schedule([1.5]), 1.0, 2.0)

    def test_invalid_args(self):
        with pytest.raises(InvalidScheduleError):
            discretize_schedule(Schedule([5.0]), 1.0, 0.0)
        with pytest.raises(ValueError):
            discretize_schedule(Schedule([5.0]), 1.0, 1.0, mode="nearest")


class TestReport:
    def test_loss_shrinks_with_granularity(self):
        p = UniformRisk(300.0)
        c = 2.0
        res = guideline_schedule(p, c)
        losses = []
        for tau in (8.0, 2.0, 0.5, 0.125):
            rep = discretization_report(res.schedule, p, c, tau)
            losses.append(rep.relative_loss)
        assert all(x >= -1e-12 for x in losses)
        # Finer tasks => smaller loss, down to (near) zero.
        assert losses[-1] < 0.01
        assert losses[0] >= losses[-1]

    def test_floor_never_gains(self):
        p = UniformRisk(100.0)
        res = guideline_schedule(p, 1.0)
        rep = discretization_report(res.schedule, p, 1.0, 3.0, mode="floor")
        assert rep.discrete_work <= rep.continuous_work + 1e-12

    def test_zero_continuous_work_safe(self):
        p = UniformRisk(100.0)
        rep = discretization_report(Schedule([100.0]), p, 1.0, 2.0)
        assert rep.relative_loss == 0.0
