"""Episode semantics and vectorized realized-work accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import UniformRisk
from repro.core.schedule import Schedule
from repro.simulation.episode import (
    completed_periods,
    realized_work,
    simulate_episodes,
)


class TestCompletedPeriods:
    def test_counts(self):
        s = Schedule([4.0, 3.0, 2.0])  # boundaries 4, 7, 9
        r = np.array([0.5, 4.0, 4.1, 7.0, 9.5, 100.0])
        assert list(completed_periods(s, r)) == [0, 0, 1, 1, 3, 3]

    def test_reclaim_exactly_at_boundary_kills(self):
        """'Reclaimed by time T_k' — equality kills period k."""
        s = Schedule([4.0])
        assert completed_periods(s, 4.0)[0] == 0
        assert completed_periods(s, 4.0 + 1e-12)[0] == 1


class TestRealizedWork:
    def test_matches_schedule_method(self):
        s = Schedule([5.0, 4.0, 3.0, 2.0])
        c = 1.0
        rs = np.linspace(0.0, 20.0, 101)
        batch = realized_work(s, rs, c)
        for r, w in zip(rs, batch):
            assert w == pytest.approx(s.realized_work(float(r), c))

    def test_scalar_input(self):
        s = Schedule([5.0, 4.0])
        assert realized_work(s, 100.0, 1.0) == pytest.approx(7.0)

    def test_unproductive_period_banks_zero(self):
        s = Schedule([5.0, 0.5])
        assert realized_work(s, 100.0, 1.0) == pytest.approx(4.0)


class TestSimulateEpisodes:
    def test_batch_fields(self, rng):
        p = UniformRisk(50.0)
        s = Schedule([10.0, 8.0, 6.0])
        batch = simulate_episodes(s, p, 1.0, 500, rng)
        assert batch.n == 500
        assert batch.reclaim_times.shape == (500,)
        assert np.all(batch.work >= 0)
        assert np.all(batch.periods_completed <= 3)

    def test_mean_approaches_expected_work(self, rng):
        p = UniformRisk(50.0)
        s = Schedule([10.0, 8.0, 6.0])
        c = 1.0
        batch = simulate_episodes(s, p, c, 400_000, rng)
        analytic = s.expected_work(p, c)
        stderr = batch.work.std() / np.sqrt(batch.n)
        assert abs(batch.mean_work - analytic) < 4.5 * stderr

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            simulate_episodes(Schedule([1.0]), UniformRisk(10.0), 0.5, 0, rng)

    def test_work_values_consistent_with_reclaims(self, rng):
        p = UniformRisk(30.0)
        s = Schedule([10.0, 5.0])
        c = 2.0
        batch = simulate_episodes(s, p, c, 200, rng)
        for i in range(batch.n):
            assert batch.work[i] == pytest.approx(
                s.realized_work(float(batch.reclaim_times[i]), c)
            )
