"""Monte-Carlo estimation: unbiasedness, batching, policy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.simulation.monte_carlo import (
    MCEstimate,
    estimate_expected_work,
    estimate_policy_work,
)


class TestEstimate:
    def test_ci_contains_mean(self):
        est = MCEstimate(mean=10.0, stderr=0.5, n=100)
        lo, hi = est.ci95
        assert lo < 10.0 < hi
        assert hi - lo == pytest.approx(2 * 1.959963984540054 * 0.5)

    def test_consistency_check(self):
        est = MCEstimate(mean=10.0, stderr=0.5, n=100)
        assert est.consistent_with(10.9)
        assert not est.consistent_with(13.0)

    def test_zero_stderr_exact_match(self):
        est = MCEstimate(mean=5.0, stderr=0.0, n=10)
        assert est.consistent_with(5.0)
        assert not est.consistent_with(5.1)

    def test_ci_confidence_quantiles(self):
        """ci(confidence) uses the right two-sided normal quantiles."""
        est = MCEstimate(mean=10.0, stderr=1.0, n=100)
        lo90, hi90 = est.ci(0.90)
        assert hi90 - lo90 == pytest.approx(2 * 1.6448536269514722, rel=1e-9)
        lo99, hi99 = est.ci(0.99)
        assert hi99 - lo99 == pytest.approx(2 * 2.5758293035489004, rel=1e-9)
        # Default coverage is 0.95 and matches the ci95 shorthand.
        assert est.ci() == est.ci95 == est.ci(0.95)
        # Intervals nest: wider coverage, wider interval.
        assert lo99 < lo90 < 10.0 < hi90 < hi99

    def test_ci_invalid_confidence(self):
        est = MCEstimate(mean=10.0, stderr=1.0, n=100)
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                est.ci(bad)


class TestExpectedWorkValidation:
    def test_matches_analytic(self, paper_life, rng):
        c = 0.5
        res = guideline_schedule(paper_life, c, grid=33)
        est = estimate_expected_work(res.schedule, paper_life, c, n=150_000, rng=rng)
        assert est.consistent_with(res.expected_work), (
            f"MC {est.mean} ± {est.stderr} vs analytic {res.expected_work}"
        )

    def test_batching_equivalent(self):
        p = UniformRisk(40.0)
        s = Schedule([10.0, 7.0])
        a = estimate_expected_work(s, p, 1.0, n=50_000, rng=np.random.default_rng(7))
        b = estimate_expected_work(
            s, p, 1.0, n=50_000, rng=np.random.default_rng(7), batch_size=1_000
        )
        assert a.mean == pytest.approx(b.mean)
        assert a.stderr == pytest.approx(b.stderr)

    def test_default_rng_deterministic(self):
        p = UniformRisk(40.0)
        s = Schedule([10.0, 7.0])
        a = estimate_expected_work(s, p, 1.0, n=10_000)
        b = estimate_expected_work(s, p, 1.0, n=10_000)
        assert a.mean == b.mean

    def test_unknown_engine_rejected(self):
        p = UniformRisk(40.0)
        s = Schedule([10.0, 7.0])
        with pytest.raises(ValueError, match="unknown engine"):
            estimate_expected_work(s, p, 1.0, n=100, engine="quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            estimate_policy_work(lambda e: 2.0, p, 1.0, n=10, engine="quantum")


class TestPolicyWork:
    def test_fixed_policy_matches_schedule(self, rng):
        p = UniformRisk(60.0)
        c = 1.0
        s = Schedule([12.0, 10.0, 8.0])

        periods = list(s)

        def policy(elapsed: float):
            # Replay the schedule by elapsed time.
            total = 0.0
            for t in periods:
                if elapsed < total + t - 1e-9:
                    return t if abs(elapsed - total) < 1e-9 else None
                total += t
            return None

        est = estimate_policy_work(policy, p, c, n=30_000, rng=rng)
        analytic = s.expected_work(p, c)
        assert est.consistent_with(analytic, z=5.0)

    def test_stop_iteration_supported(self, rng):
        p = GeometricDecreasingLifespan(1.5)

        calls = {"n": 0}

        def policy(elapsed: float):
            calls["n"] += 1
            if elapsed > 5.0:
                raise StopIteration
            return 2.0

        est = estimate_policy_work(policy, p, 0.5, n=500, rng=rng)
        assert est.mean >= 0.0
        assert calls["n"] > 0
