"""Monte-Carlo estimation: unbiasedness, batching, policy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guidelines import guideline_schedule
from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.simulation.monte_carlo import (
    MCEstimate,
    estimate_expected_work,
    estimate_policy_work,
)


class TestEstimate:
    def test_ci_contains_mean(self):
        est = MCEstimate(mean=10.0, stderr=0.5, n=100)
        lo, hi = est.ci95
        assert lo < 10.0 < hi
        assert hi - lo == pytest.approx(2 * 1.959963984540054 * 0.5)

    def test_consistency_check(self):
        est = MCEstimate(mean=10.0, stderr=0.5, n=100)
        assert est.consistent_with(10.9)
        assert not est.consistent_with(13.0)

    def test_zero_stderr_exact_match(self):
        est = MCEstimate(mean=5.0, stderr=0.0, n=10)
        assert est.consistent_with(5.0)
        assert not est.consistent_with(5.1)


class TestExpectedWorkValidation:
    def test_matches_analytic(self, paper_life, rng):
        c = 0.5
        res = guideline_schedule(paper_life, c, grid=33)
        est = estimate_expected_work(res.schedule, paper_life, c, n=150_000, rng=rng)
        assert est.consistent_with(res.expected_work), (
            f"MC {est.mean} ± {est.stderr} vs analytic {res.expected_work}"
        )

    def test_batching_equivalent(self):
        p = UniformRisk(40.0)
        s = Schedule([10.0, 7.0])
        a = estimate_expected_work(s, p, 1.0, n=50_000, rng=np.random.default_rng(7))
        b = estimate_expected_work(
            s, p, 1.0, n=50_000, rng=np.random.default_rng(7), batch_size=1_000
        )
        assert a.mean == pytest.approx(b.mean)
        assert a.stderr == pytest.approx(b.stderr)

    def test_default_rng_deterministic(self):
        p = UniformRisk(40.0)
        s = Schedule([10.0, 7.0])
        a = estimate_expected_work(s, p, 1.0, n=10_000)
        b = estimate_expected_work(s, p, 1.0, n=10_000)
        assert a.mean == b.mean


class TestPolicyWork:
    def test_fixed_policy_matches_schedule(self, rng):
        p = UniformRisk(60.0)
        c = 1.0
        s = Schedule([12.0, 10.0, 8.0])

        periods = list(s)

        def policy(elapsed: float):
            # Replay the schedule by elapsed time.
            total = 0.0
            for t in periods:
                if elapsed < total + t - 1e-9:
                    return t if abs(elapsed - total) < 1e-9 else None
                total += t
            return None

        est = estimate_policy_work(policy, p, c, n=30_000, rng=rng)
        analytic = s.expected_work(p, c)
        assert est.consistent_with(analytic, z=5.0)

    def test_stop_iteration_supported(self, rng):
        p = GeometricDecreasingLifespan(1.5)

        calls = {"n": 0}

        def policy(elapsed: float):
            calls["n"] += 1
            if elapsed > 5.0:
                raise StopIteration
            return 2.0

        est = estimate_policy_work(policy, p, 0.5, n=500, rng=rng)
        assert est.mean >= 0.0
        assert calls["n"] > 0
