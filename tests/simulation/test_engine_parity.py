"""Engine-parity matrix: scalar vs vectorized means across families x workloads.

Unlike the bit-exact differential tests (shared seed), this matrix gives each
engine its *own* independent seed and asserts the two Monte-Carlo means agree
within 4 combined standard errors — the check that stays meaningful even if a
future engine (GPU, multiprocess, ...) stops sharing the RNG stream.

One representative cell runs in the tier-1 suite; the full matrix — the
paper's four §4 families (uniform = exponential-order risk is covered by the
Weibull k=1 instance) crossed with three schedules and two policies — is
marked ``slow`` and runs in the nightly job (``pytest -m slow``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from repro.core.schedule import Schedule
from repro.simulation.monte_carlo import estimate_expected_work, estimate_policy_work
from repro.simulation.testing import reference_schedule, statistical_parity

#: family label -> life-function instance (the matrix's rows).
MATRIX_FAMILIES = {
    "exponential": WeibullLife(k=1.0, scale=25.0),
    "uniform": UniformRisk(100.0),
    "poly-decay": PolynomialRisk(3, 80.0),
    "geomdec": GeometricDecreasingLifespan(1.2),
    "geominc": GeometricIncreasingRisk(30.0),
}

#: schedule label -> builder(p, c) (the matrix's schedule columns).
MATRIX_SCHEDULES = {
    "reference": lambda p, c: reference_schedule(p, c),
    "equal-8": lambda p, c: Schedule([float(p.inverse(0.5)) / 4.0] * 8),
    "single": lambda p, c: Schedule([float(p.inverse(0.25))]),
}

#: policy label -> builder(p, c) returning an elapsed-deterministic policy.
MATRIX_POLICIES = {
    "fixed-chunk": lambda p, c: (
        lambda elapsed, step=max(float(p.inverse(0.5)) / 6.0, 3.0 * c): step
    ),
    "linear-growth": lambda p, c: (
        lambda elapsed, base=max(float(p.inverse(0.5)) / 8.0, 3.0 * c): base
        + 0.25 * elapsed
    ),
}


def _assert_schedule_cell(family: str, sched: str, n: int) -> None:
    p = MATRIX_FAMILIES[family]
    c = 0.5
    schedule = MATRIX_SCHEDULES[sched](p, c)
    z_engines, z_analytic = statistical_parity(
        schedule, p, c, n=n, seed_scalar=101, seed_vectorized=202
    )
    assert z_engines < 4.0, (
        f"{family} x {sched}: engine means differ by {z_engines:.2f} SE"
    )
    assert z_analytic < 4.0, (
        f"{family} x {sched}: vectorized mean off eq.(2.1) by {z_analytic:.2f} SE"
    )


def _assert_policy_cell(family: str, pol: str, n: int) -> None:
    p = MATRIX_FAMILIES[family]
    c = 0.5
    a = estimate_policy_work(
        MATRIX_POLICIES[pol](p, c), p, c, n=n,
        rng=np.random.default_rng(303), max_periods=5_000, engine="scalar",
    )
    b = estimate_policy_work(
        MATRIX_POLICIES[pol](p, c), p, c, n=n,
        rng=np.random.default_rng(404), max_periods=5_000, engine="vectorized",
    )
    se = math.hypot(a.stderr, b.stderr)
    z = abs(a.mean - b.mean) / max(se, 1e-15)
    assert z < 4.0, f"{family} x {pol}: policy engine means differ by {z:.2f} SE"


def test_parity_representative_cell():
    """The one matrix cell that always runs in CI (tier-1)."""
    _assert_schedule_cell("uniform", "reference", n=20_000)
    _assert_policy_cell("uniform", "fixed-chunk", n=5_000)


@pytest.mark.slow
@pytest.mark.parametrize("sched", sorted(MATRIX_SCHEDULES))
@pytest.mark.parametrize("family", sorted(MATRIX_FAMILIES))
def test_parity_matrix_schedules(family, sched):
    _assert_schedule_cell(family, sched, n=60_000)


@pytest.mark.slow
@pytest.mark.parametrize("pol", sorted(MATRIX_POLICIES))
@pytest.mark.parametrize("family", sorted(MATRIX_FAMILIES))
def test_parity_matrix_policies(family, pol):
    _assert_policy_cell(family, pol, n=20_000)
