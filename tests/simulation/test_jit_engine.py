"""The ``engine="jit"`` Monte-Carlo path: dispatch, fallback, and bit-parity.

The jit episode engine's contract is stronger than "statistically close": the
compiled search+gather replicates ``searchsorted(..., side='left')`` comparison
for comparison, so for the *same reclaim draws* it must produce bit-identical
``work``/``periods_completed`` to the vectorized engine — with or without
numba (without, it falls back to the vectorized path outright).  Every test
here therefore asserts exact equality and runs in both configurations; only
the kernel-level check is numba-gated (in ``tests/core/test_jitkernels.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import jitkernels
from repro.simulation import estimate_expected_work, estimate_policy_work
from repro.simulation.episode import ENGINES
from repro.simulation.vectorized import (
    simulate_episodes_jit,
    simulate_episodes_vectorized,
    simulate_policy_episodes_jit,
    simulate_policy_episodes_vectorized,
)

N = 5_000


def _families():
    return [
        (repro.UniformRisk(200.0), 2.0),
        (repro.PolynomialRisk(3, 300.0), 2.0),
        (repro.GeometricDecreasingLifespan(1.2), 0.5),
        (repro.GeometricIncreasingRisk(30.0), 1.0),
    ]


def test_jit_is_a_registered_engine():
    assert "jit" in ENGINES
    assert ENGINES.index("vectorized") < ENGINES.index("jit")  # default first


@pytest.mark.parametrize("idx", range(4))
def test_episode_batch_matches_vectorized(idx):
    p, c = _families()[idx]
    schedule = repro.guideline_schedule(p, c).schedule
    a = simulate_episodes_vectorized(p=p, c=c, schedule=schedule, n=N,
                                     rng=np.random.default_rng(7))
    b = simulate_episodes_jit(p=p, c=c, schedule=schedule, n=N,
                              rng=np.random.default_rng(7))
    np.testing.assert_array_equal(a.reclaim_times, b.reclaim_times)
    np.testing.assert_array_equal(a.work, b.work)
    np.testing.assert_array_equal(a.periods_completed, b.periods_completed)


def test_shared_reclaim_times_skip_sampling():
    p, c = repro.UniformRisk(150.0), 1.5
    schedule = repro.guideline_schedule(p, c).schedule
    reclaim = np.random.default_rng(0).uniform(0.0, 150.0, 300)
    a = simulate_episodes_vectorized(schedule, p, c, reclaim.size,
                                     reclaim_times=reclaim)
    b = simulate_episodes_jit(schedule, p, c, reclaim.size,
                              reclaim_times=reclaim)
    np.testing.assert_array_equal(a.work, b.work)
    np.testing.assert_array_equal(a.periods_completed, b.periods_completed)


def test_estimate_expected_work_jit_engine():
    p, c = repro.UniformRisk(200.0), 2.0
    schedule = repro.guideline_schedule(p, c).schedule
    a = estimate_expected_work(schedule, p, c, n=N,
                               rng=np.random.default_rng(3), engine="vectorized")
    b = estimate_expected_work(schedule, p, c, n=N,
                               rng=np.random.default_rng(3), engine="jit")
    assert (a.mean, a.stderr, a.n) == (b.mean, b.stderr, b.n)


def test_policy_episodes_jit_matches_vectorized():
    p, c = repro.GeometricIncreasingRisk(40.0), 1.0

    def policy(elapsed):
        return 8.0 - 0.5 * elapsed  # declines to None via non-positive

    a = simulate_policy_episodes_vectorized(policy, p, c, N,
                                            rng=np.random.default_rng(5))
    b = simulate_policy_episodes_jit(policy, p, c, N,
                                     rng=np.random.default_rng(5))
    np.testing.assert_array_equal(a.reclaim_times, b.reclaim_times)
    np.testing.assert_array_equal(a.work, b.work)
    np.testing.assert_array_equal(a.periods_completed, b.periods_completed)


def test_policy_that_declines_immediately():
    p, c = repro.UniformRisk(100.0), 1.0
    b = simulate_policy_episodes_jit(lambda elapsed: None, p, c, 50,
                                     rng=np.random.default_rng(1))
    assert b.n == 50
    np.testing.assert_array_equal(b.work, np.zeros(50))
    np.testing.assert_array_equal(b.periods_completed, np.zeros(50, dtype=np.intp))


def test_estimate_policy_work_jit_engine():
    p, c = repro.UniformRisk(120.0), 1.0
    sched = repro.guideline_schedule(p, c).schedule
    periods = sched.periods
    bounds = np.cumsum(periods) + c * np.arange(1, periods.size + 1)

    def policy(elapsed):
        k = np.searchsorted(bounds, elapsed, side="right")
        return float(periods[k]) if k < periods.size else None

    a = estimate_policy_work(policy, p, c, n=2_000,
                             rng=np.random.default_rng(9), engine="vectorized")
    b = estimate_policy_work(policy, p, c, n=2_000,
                             rng=np.random.default_rng(9), engine="jit")
    assert (a.mean, a.stderr, a.n) == (b.mean, b.stderr, b.n)


def test_unknown_engine_rejected():
    p, c = repro.UniformRisk(100.0), 1.0
    schedule = repro.guideline_schedule(p, c).schedule
    with pytest.raises(ValueError, match="engine"):
        estimate_expected_work(schedule, p, c, n=10, engine="cuda")
    with pytest.raises(ValueError, match="engine"):
        estimate_policy_work(lambda e: None, p, c, n=10, engine="cuda")


def test_jit_engine_works_when_probe_forced_off(monkeypatch):
    # The engine name stays usable even when the kernels are unavailable:
    # callers selecting "jit" must never have to probe first.
    saved = jitkernels._probe_result
    monkeypatch.setattr(jitkernels, "_probe_result", (False, "forced off"))
    try:
        p, c = repro.PolynomialRisk(2, 180.0), 1.0
        schedule = repro.guideline_schedule(p, c).schedule
        a = estimate_expected_work(schedule, p, c, n=1_000,
                                   rng=np.random.default_rng(2), engine="vectorized")
        b = estimate_expected_work(schedule, p, c, n=1_000,
                                   rng=np.random.default_rng(2), engine="jit")
        assert (a.mean, a.stderr) == (b.mean, b.stderr)
    finally:
        jitkernels._probe_result = saved
