"""Differential testing: the vectorized engine vs the scalar §2.1 oracle.

Every life-function family the library exports is swept through both engines
twice — once with a *shared* seed (bit-exact parity is required: same RNG
stream, same episode outcomes) and once with *independent* seeds (the two
sample means must agree statistically, and with the analytic eq. (2.1)).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.simulation.scalar import simulate_episodes_scalar
from repro.simulation.testing import (
    DeterministicLife,
    assert_exact_parity,
    canonical_families,
    differential_policy_check,
    differential_schedule_check,
    reference_schedule,
    statistical_parity,
)
from repro.simulation.vectorized import (
    simulate_episodes_vectorized,
    unroll_policy,
)

FAMILIES = canonical_families()


@pytest.fixture(params=sorted(FAMILIES))
def family(request):
    """Every exported life-function family, one at a time."""
    return request.param, FAMILIES[request.param]


class TestExactParity:
    def test_schedule_engines_bit_identical(self, family):
        name, p = family
        c = 0.4
        schedule = reference_schedule(p, c)
        report = differential_schedule_check(
            schedule, p, c, n=4_000, seed=20260806, label=name
        )
        assert_exact_parity(report)
        assert report.max_abs_diff == 0.0

    def test_policy_engines_bit_identical(self, family):
        name, p = family
        c = 0.4
        median = float(p.inverse(0.5))

        def doubling(elapsed: float):
            # Elapsed-deterministic doubling policy scaled to the family.
            step = max(median / 8.0, 2.0 * c)
            k = 0
            total = 0.0
            while total < elapsed - 1e-12:
                total += step * 2.0**k
                k += 1
            t = step * 2.0**k
            return t if t < 64.0 * median else None

        report = differential_policy_check(
            doubling, p, c, n=2_000, seed=7, label=f"{name}-doubling"
        )
        assert_exact_parity(report)

    def test_single_period_schedule(self, family):
        name, p = family
        schedule = Schedule([float(p.inverse(0.5))])
        report = differential_schedule_check(schedule, p, 0.1, n=2_000, seed=3)
        assert_exact_parity(report)

    def test_overhead_exceeding_some_periods(self, family):
        """Periods with t <= c bank zero work in both engines alike."""
        name, p = family
        median = float(p.inverse(0.5))
        c = median / 4.0
        schedule = Schedule([median / 2.0, c / 2.0, median / 2.0, c, median / 3.0])
        report = differential_schedule_check(schedule, p, c, n=2_000, seed=11)
        assert_exact_parity(report)


class TestStatisticalParity:
    def test_independent_seeds_agree(self, family):
        """Within 4 combined SE of each other and of the analytic E (eq. 2.1)."""
        name, p = family
        c = 0.4
        schedule = reference_schedule(p, c)
        z_engines, z_analytic = statistical_parity(schedule, p, c, n=30_000)
        assert z_engines < 4.0, f"{name}: engine means differ by {z_engines:.2f} SE"
        assert z_analytic < 4.0, f"{name}: vectorized mean off eq.(2.1) by {z_analytic:.2f} SE"


class TestDraconianTieBreak:
    """A reclaim at exactly T_k kills period k — in both engines."""

    def test_reclaim_exactly_at_boundary(self):
        schedule = Schedule([10.0, 10.0, 10.0])
        p = FAMILIES["uniform"]
        # Force reclaim times exactly on every boundary (and just off them).
        reclaims = np.array([10.0, 20.0, 30.0, 10.0 + 1e-9, 29.999999999])
        scalar = simulate_episodes_scalar(
            schedule, p, 2.0, len(reclaims), reclaim_times=reclaims
        )
        vector = simulate_episodes_vectorized(
            schedule, p, 2.0, len(reclaims), reclaim_times=reclaims
        )
        np.testing.assert_array_equal(scalar.work, vector.work)
        np.testing.assert_array_equal(
            scalar.periods_completed, vector.periods_completed
        )
        # Reclaim at T_0 = 10 banks nothing; just past T_0 banks one period.
        assert scalar.work[0] == 0.0 and scalar.periods_completed[0] == 0
        assert scalar.work[3] == 8.0 and scalar.periods_completed[3] == 1
        # Reclaim at T_2 = 30 kills the last period: only two periods bank.
        assert scalar.work[2] == 16.0 and scalar.periods_completed[2] == 2

    def test_deterministic_life_zero_variance(self):
        """The degenerate step family is a zero-variance exact oracle."""
        p = DeterministicLife(25.0)
        schedule = Schedule([10.0, 10.0, 10.0])
        report = differential_schedule_check(schedule, p, 1.0, n=500, seed=0)
        assert_exact_parity(report)
        # All episodes reclaim at 25: periods 0 and 1 bank (T < 25), 2 dies.
        assert report.mean_scalar == pytest.approx(18.0)


class TestUnrollPolicy:
    def test_unroll_matches_episode_view(self):
        chunks = [5.0, 4.0, 3.0, 2.0]

        def policy(elapsed: float):
            total = 0.0
            for i, t in enumerate(chunks):
                if abs(elapsed - total) < 1e-9:
                    return t
                total += t
            return None

        periods = unroll_policy(policy, horizon=100.0)
        np.testing.assert_allclose(periods, chunks)

    def test_unroll_respects_horizon(self):
        periods = unroll_policy(lambda e: 1.0, horizon=10.0)
        assert periods.size == 10  # periods starting at 0..9; start 10 >= horizon

    def test_unroll_respects_max_periods(self):
        periods = unroll_policy(lambda e: 1.0, horizon=1e9, max_periods=50)
        assert periods.size == 50

    def test_unroll_stop_iteration(self):
        def policy(elapsed: float):
            if elapsed > 5.0:
                raise StopIteration
            return 2.0

        periods = unroll_policy(policy, horizon=100.0)
        np.testing.assert_allclose(periods, [2.0, 2.0, 2.0])
