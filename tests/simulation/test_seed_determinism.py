"""Seed-determinism regression: every public sampler/simulator is a pure
function of its generator state.

The RNG-consumption contract (documented on each function) is load-bearing:
the differential harness, the EV-MC reproduction tables, and cross-engine
result equality all assume that an identical ``numpy.random.Generator`` seed
yields identical outputs — per episode, not just in distribution.  These
tests pin that contract for ``simulate_episodes`` (both engines),
``estimate_expected_work``, ``estimate_policy_work``, the farm-level
allocation estimators, and ``run_farm``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.life_functions import GeometricDecreasingLifespan, UniformRisk
from repro.core.schedule import Schedule
from repro.now.allocation import StationProfile, estimate_episode_value
from repro.now.farm import run_farm
from repro.now.network import Network, Workstation
from repro.now.owner import OwnerProcess
from repro.simulation import (
    estimate_expected_work,
    estimate_policy_work,
    simulate_episodes,
)
from repro.workloads.generators import uniform_tasks
from repro.workloads.tasks import TaskPool

SEED = 20260806


def _gen() -> np.random.Generator:
    return np.random.default_rng(SEED)


class TestEpisodeDeterminism:
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_same_seed_same_episodes(self, engine):
        p = UniformRisk(80.0)
        s = Schedule([15.0, 12.0, 9.0, 6.0])
        a = simulate_episodes(s, p, 1.0, 5_000, _gen(), engine=engine)
        b = simulate_episodes(s, p, 1.0, 5_000, _gen(), engine=engine)
        np.testing.assert_array_equal(a.reclaim_times, b.reclaim_times)
        np.testing.assert_array_equal(a.work, b.work)
        np.testing.assert_array_equal(a.periods_completed, b.periods_completed)

    def test_engines_share_one_stream(self):
        """Same seed => the engines see the *same* reclaim times (the RNG
        contract: exactly one sample_reclaim_times(rng, n) call per batch)."""
        p = UniformRisk(80.0)
        s = Schedule([15.0, 12.0, 9.0])
        a = simulate_episodes(s, p, 1.0, 3_000, _gen(), engine="vectorized")
        b = simulate_episodes(s, p, 1.0, 3_000, _gen(), engine="scalar")
        np.testing.assert_array_equal(a.reclaim_times, b.reclaim_times)
        np.testing.assert_array_equal(a.work, b.work)


class TestEstimatorDeterminism:
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_expected_work(self, engine):
        p = GeometricDecreasingLifespan(1.3)
        s = Schedule([4.0, 3.0, 2.0])
        a = estimate_expected_work(s, p, 0.5, n=20_000, rng=_gen(), engine=engine)
        b = estimate_expected_work(s, p, 0.5, n=20_000, rng=_gen(), engine=engine)
        assert (a.mean, a.stderr, a.n) == (b.mean, b.stderr, b.n)

    def test_expected_work_engine_equality(self):
        """Switching engine never changes the estimate (same seed)."""
        p = GeometricDecreasingLifespan(1.3)
        s = Schedule([4.0, 3.0, 2.0])
        a = estimate_expected_work(s, p, 0.5, n=20_000, rng=_gen(), engine="vectorized")
        b = estimate_expected_work(s, p, 0.5, n=20_000, rng=_gen(), engine="scalar")
        assert (a.mean, a.stderr) == (b.mean, b.stderr)

    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_policy_work(self, engine):
        p = UniformRisk(60.0)
        policy = lambda elapsed: 5.0 if elapsed < 50.0 else None
        a = estimate_policy_work(policy, p, 1.0, n=4_000, rng=_gen(), engine=engine)
        b = estimate_policy_work(policy, p, 1.0, n=4_000, rng=_gen(), engine=engine)
        assert (a.mean, a.stderr, a.n) == (b.mean, b.stderr, b.n)

    def test_policy_work_engine_equality(self):
        p = UniformRisk(60.0)
        policy = lambda elapsed: 5.0 if elapsed < 50.0 else None
        a = estimate_policy_work(policy, p, 1.0, n=4_000, rng=_gen(), engine="scalar")
        b = estimate_policy_work(policy, p, 1.0, n=4_000, rng=_gen(), engine="vectorized")
        assert (a.mean, a.stderr) == (b.mean, b.stderr)

    def test_station_estimator(self):
        profile = StationProfile(ws_id=0, life=UniformRisk(120.0), mean_present=30.0)
        a = estimate_episode_value(profile, 2.0, n=20_000, rng=_gen())
        b = estimate_episode_value(profile, 2.0, n=20_000, rng=_gen())
        assert (a.mean, a.stderr) == (b.mean, b.stderr)
        c_ = estimate_episode_value(profile, 2.0, n=20_000, rng=_gen(), engine="scalar")
        assert (a.mean, a.stderr) == (c_.mean, c_.stderr)


class TestFarmDeterminism:
    def _run(self):
        p = GeometricDecreasingLifespan(1.2)
        stations = [
            Workstation(i, OwnerProcess.from_life_function(p, present_mean=10.0))
            for i in range(3)
        ]
        net = Network(stations, c=1.0)
        pool = TaskPool.from_durations(uniform_tasks(300, 0.5))
        from repro.baselines.policies import FixedChunkPolicy

        return run_farm(net, pool, lambda ws: FixedChunkPolicy(4.0), 400.0, _gen())

    def test_same_seed_same_farm_run(self):
        a = self._run()
        b = self._run()
        assert a.tasks_completed == b.tasks_completed
        assert a.events_processed == b.events_processed
        assert a.completion_time == b.completion_time or (
            np.isnan(a.completion_time) and np.isnan(b.completion_time)
        )
        for ws_id, stats in a.stats.items():
            other = b.stats[ws_id]
            assert stats.episodes == other.episodes
            assert stats.periods_committed == other.periods_committed
            assert stats.periods_killed == other.periods_killed
            assert stats.work_done == other.work_done
            assert stats.work_lost == other.work_lost
            assert stats.overhead_paid == other.overhead_paid
