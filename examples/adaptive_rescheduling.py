#!/usr/bin/env python3
"""Progressive (conditional-probability) scheduling — Section 6's suggestion.

System (3.6) is "progressive": t_{k+1} is needed only after period k ends.
So instead of committing to a whole schedule up front, re-plan after every
survived period using the life function conditioned on survival so far.

This example contrasts the two modes on a *mixture* risk profile — the owner
is either on a short coffee break (70%) or in a long meeting (30%) — where
conditioning genuinely changes the picture: once you've survived past any
plausible coffee break, you know you're in the meeting case and can afford
much larger bundles.

Run:  python examples/adaptive_rescheduling.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import print_table
from repro.core.progressive import ProgressiveScheduler, progressive_schedule
from repro.simulation import estimate_expected_work


def main() -> None:
    # 70% coffee break (risk doubles each minute, <= 12 min);
    # 30% meeting (uniform return over 120 min).
    p = repro.MixtureLife(
        [repro.GeometricIncreasingRisk(12.0), repro.UniformRisk(120.0)],
        [0.7, 0.3],
    )
    c = 0.5
    print(f"mixture life function: shape = {p.shape.value} "
          f"(GENERAL -> only the shape-free guidelines apply)")

    # A-priori schedule: plan once against the absolute probabilities.
    apriori = repro.guideline_schedule(p, c)
    print(f"\na-priori schedule ({apriori.schedule.num_periods} periods):")
    print(" ", np.round(apriori.schedule.periods, 2).tolist())

    # Progressive: re-plan with conditional probabilities after each survival.
    prog = progressive_schedule(p, c)
    print(f"\nprogressive schedule ({prog.num_periods} periods):")
    print(" ", np.round(prog.periods, 2).tolist())
    print("  note the jump once survival implies 'meeting, not coffee': the")
    print("  conditional risk drops, so the re-planner ships bigger bundles.")

    rows = [
        ["a-priori guideline", apriori.expected_work],
        ["progressive re-planning", prog.expected_work(p, c)],
        ["ground-truth optimal", repro.optimize_schedule(p, c).expected_work],
    ]
    print_table(
        ["strategy", "expected work (min)"],
        rows,
        title="Mixture risk: plan-once vs conditional re-planning",
    )

    # Watch the conditional hazard the progressive scheduler reacts to.
    scheduler = ProgressiveScheduler(p, c)
    elapsed = 0.0
    print("\nstep-by-step progressive decisions:")
    for k in range(6):
        t = scheduler.next_period()
        if t is None:
            break
        survival = float(p(elapsed))
        print(f"  after {elapsed:6.2f} min (P[still away] = {survival:.3f}): "
              f"ship a {t:.2f}-min bundle")
        scheduler.advance(t)
        elapsed += t

    # Monte-Carlo confirmation that the analytic comparison holds.
    mc = estimate_expected_work(prog, p, c, n=100_000,
                                rng=np.random.default_rng(1))
    print(f"\nMC check of progressive schedule: {mc.mean:.2f} "
          f"± {1.96 * mc.stderr:.2f} vs analytic {prog.expected_work(p, c):.2f}")


if __name__ == "__main__":
    main()
