#!/usr/bin/env python3
"""Trace-driven task farming over a NOW (the full Section 1 story).

A master workstation steals cycles from four colleagues' machines to run a
parameter sweep of 40,000 independent simulations (0.25 h each).  Owner
behaviour is *not* known analytically: we record a training trace of each
owner's absences, estimate the survival curve, fit a smooth life function,
and hand it to the paper's guideline scheduler.  Then we race the policies
on identical owner randomness.

Run:  python examples/overnight_farm.py            (takes ~a minute)
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import print_table
from repro.baselines import (
    DoublingPolicy,
    FixedChunkPolicy,
    GuidelinePolicy,
    OmniscientPolicy,
    ProgressivePolicy,
)
from repro.now import Network, OwnerProcess, Workstation, run_farm
from repro.traces import fit_best, kaplan_meier, smooth_survival
from repro.workloads import TaskPool, uniform_tasks

N_WS = 4
C = 0.2          # hours of setup per bundle (slow campus network!)
HORIZON = 250.0  # hours of farming
TASK_H = 0.25    # one simulation = 15 minutes


def main() -> None:
    rng = np.random.default_rng(2026)

    # Ground truth (hidden from the scheduler): owner absences have a
    # half-life of ~4h -> a = 2^(1/4) per hour.
    p_true = repro.GeometricDecreasingLifespan(2.0 ** (1.0 / 4.0))

    # ------------------------------------------------------------------
    # Phase 1: record a training trace and fit a smooth life function.
    # ------------------------------------------------------------------
    training_absences = p_true.sample_reclaim_times(rng, 2000)
    fit = fit_best(training_absences)
    print(f"fitted family: {fit.family} (KS distance {fit.ks:.3f})")
    km = kaplan_meier(training_absences)
    smoothed = smooth_survival(km)
    print(f"nonparametric smooth alternative: lifespan {smoothed.lifespan:.1f} h, "
          f"shape {smoothed.shape.value}")

    # ------------------------------------------------------------------
    # Phase 2: race the policies on identical owner randomness.
    # ------------------------------------------------------------------
    def race(policy_factory, life_estimate):
        stations = [
            Workstation(i, OwnerProcess.from_life_function(p_true, present_mean=3.0))
            for i in range(N_WS)
        ]
        net = Network(stations, c=C)
        pool = TaskPool.from_durations(uniform_tasks(40_000, TASK_H))
        estimates = (
            {i: life_estimate for i in range(N_WS)} if life_estimate else None
        )
        return run_farm(net, pool, policy_factory, HORIZON,
                        np.random.default_rng(777), life_estimates=estimates)

    contenders = [
        ("guideline (fitted p)", lambda ws: GuidelinePolicy(), fit.life),
        ("guideline (smoothed p)", lambda ws: GuidelinePolicy(), smoothed),
        ("progressive (fitted p)", lambda ws: ProgressivePolicy(), fit.life),
        ("fixed 1h chunks", lambda ws: FixedChunkPolicy(1.0), None),
        ("fixed 6h chunks", lambda ws: FixedChunkPolicy(6.0), None),
        ("doubling from 0.5h", lambda ws: DoublingPolicy(0.5), None),
        ("omniscient bound", lambda ws: OmniscientPolicy(), None),
    ]
    rows = []
    for name, factory, estimate in contenders:
        r = race(factory, estimate)
        rows.append([
            name,
            r.tasks_completed,
            r.total_work_done,
            r.total_work_lost,
            r.total_overhead,
            sum(s.periods_killed for s in r.stats.values()),
        ])
    print_table(
        ["policy", "sims done", "work (h)", "lost (h)", "overhead (h)", "kills"],
        rows,
        title=f"Overnight farm: {N_WS} workstations, c = {C} h, {HORIZON:.0f} h horizon",
    )
    best_honest = max(r[2] for r in rows[:-1])
    omni = rows[-1][2]
    print(f"\nbest honest policy achieves {best_honest / omni:.0%} of the "
          f"clairvoyant bound")


if __name__ == "__main__":
    main()
