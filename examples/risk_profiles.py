#!/usr/bin/env python3
"""Beyond expectation: work distributions, risk aversion, and the adversary.

The paper maximizes *expected* work and defers worst-case measures to a
sequel (footnote 1).  This example walks the whole spectrum for one episode:

1. the exact distribution of banked work under the mean-optimal schedule
   (it has a scary zero atom!);
2. risk-averse schedules (max E - λ·Std) that shrink that atom;
3. the fully adversarial view: competitive ratios against a clairvoyant.

Run:  python examples/risk_profiles.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import print_table
from repro.core.distribution import optimize_risk_averse, work_distribution
from repro.core.worstcase import competitive_ratio, optimize_competitive_schedule


def main() -> None:
    p = repro.UniformRisk(300.0)   # owner back within 300 min, uniform risk
    c = 2.0

    # ------------------------------------------------------------------
    # 1. The mean-optimal schedule's work distribution.
    # ------------------------------------------------------------------
    mean_opt = repro.guideline_schedule(p, c).schedule
    dist = work_distribution(mean_opt, p, c)
    print(f"mean-optimal schedule: m = {mean_opt.num_periods}, "
          f"E = {dist.mean:.1f}, Std = {dist.std:.1f}")
    print(f"  P[bank nothing]   = {dist.probabilities[0]:.3f}")
    print(f"  10% quantile      = {dist.quantile(0.10):.1f}")
    print(f"  median            = {dist.quantile(0.50):.1f}")

    # ------------------------------------------------------------------
    # 2. Trading mean for certainty.
    # ------------------------------------------------------------------
    rows = []
    for lam in (0.0, 1.0, 2.0, 4.0):
        schedule, d = optimize_risk_averse(p, c, risk_aversion=lam, grid=151)
        rows.append([
            lam, float(schedule.periods[0]), schedule.num_periods,
            d.mean, d.std, d.probabilities[0], d.quantile(0.10),
        ])
    print_table(
        ["lambda", "t0", "m", "mean", "std", "P[zero]", "q10"],
        rows,
        title="Risk aversion: smaller first periods -> fatter low quantiles",
    )

    # ------------------------------------------------------------------
    # 3. The adversary: no distribution at all.
    # ------------------------------------------------------------------
    min_episode, horizon = 10.0, 300.0
    ratio_mean_opt = competitive_ratio(
        mean_opt, c, min_episode=min_episode, horizon=horizon
    )
    worst = optimize_competitive_schedule(c, horizon, min_episode=min_episode)
    print(f"\nadversarial reclaim in [{min_episode:.0f}, {horizon:.0f}]:")
    print(f"  mean-optimal schedule guarantees "
          f"{ratio_mean_opt:.2f} of clairvoyant work")
    print(f"  worst-case-optimized schedule guarantees {worst.ratio:.2f} "
          f"(t0 = {worst.first_period:.2f}, growth = {worst.growth:.2f})")
    print(f"  ...but its expected work under the uniform p is "
          f"{worst.schedule.expected_work(p, c):.1f} vs {dist.mean:.1f}")
    print("\nthe three regimes price the same tension differently: "
          "overhead vs loss risk")


if __name__ == "__main__":
    main()
