#!/usr/bin/env python3
"""Scheduling saves in a fault-prone computation (Section 1 Remark / ref. [7]).

The paper notes its cycle-stealing model "admits an abstract formulation that
is formally similar" to scheduling checkpoints: a save costs c; a failure
destroys all work since the last save; the failure survival function plays
the life function's role.

Scenario: a 300-hour climate simulation on a flaky cluster whose failures
have a ~30 h half-life.  Saving a checkpoint costs 0.4 h.  How far apart
should the checkpoints be?

Run:  python examples/checkpointing.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.tables import print_table
from repro.core.schedule import Schedule
from repro.now import save_schedule, simulate_fault_prone_job


def main() -> None:
    half_life_h = 30.0
    p_failure = repro.GeometricDecreasingLifespan(2.0 ** (1.0 / half_life_h))
    c_save = 0.4
    total_work = 300.0

    # The paper's guidelines pick the save intervals.
    guided = save_schedule(p_failure, c_save)
    print(f"guideline save interval: {guided.periods[0]:.2f} h "
          f"(memoryless failures -> equal intervals)")
    t_star = repro.geometric_decreasing_optimal_period(
        2.0 ** (1.0 / half_life_h), c_save
    )
    print(f"exact optimal interval ([3] transcendental): {t_star:.2f} h")

    # Race interval choices over many simulated runs.
    def mean_completion(schedule: Schedule, n: int = 300) -> tuple[float, float]:
        rng = np.random.default_rng(42)
        times = [
            simulate_fault_prone_job(
                p_failure, c_save, total_work, schedule=schedule, rng=rng
            ).completion_time
            for _ in range(n)
        ]
        return float(np.mean(times)), float(np.std(times) / np.sqrt(n))

    rows = []
    for name, interval in [
        ("every 0.6 h (paranoid)", 0.6),
        ("every 2 h", 2.0),
        (f"guideline ({guided.periods[0]:.2f} h)", None),
        ("every 15 h", 15.0),
        ("every 60 h (reckless)", 60.0),
    ]:
        if interval is None:
            schedule = guided
        else:
            schedule = Schedule([interval] * int(np.ceil(4 * total_work / (interval - c_save) + 10)))
        mean, err = mean_completion(schedule)
        rows.append([name, mean, err, mean / total_work])
    print_table(
        ["save policy", "mean completion (h)", "stderr", "slowdown vs ideal"],
        rows,
        title=f"Checkpointing a {total_work:.0f} h job (failure half-life "
              f"{half_life_h:.0f} h, save cost {c_save} h)",
    )
    guided_mean = rows[2][1]
    assert guided_mean == min(r[1] for r in rows), "guideline should win"
    print("\nthe guideline interval finishes first — the cycle-stealing "
          "mathematics transfers to checkpointing unchanged")


if __name__ == "__main__":
    main()
