#!/usr/bin/env python3
"""Quickstart: schedule one cycle-stealing episode with the paper's guidelines.

Scenario: workstation B's owner is out for (at most) 8 hours = 480 minutes,
equally likely to return at any moment (the *uniform risk* scenario).  Each
work bundle we ship costs c = 3 minutes of communication setup, and whatever
is running when the owner returns is killed.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    lifespan_min = 480.0  # the owner is back within 8 hours
    c = 3.0               # minutes of send+return overhead per bundle

    p = repro.UniformRisk(lifespan_min)

    # --- Step 1: bracket the optimal initial period (Theorems 3.2/3.3).
    bracket = repro.t0_bracket(p, c)
    print(f"t0 bracket: [{bracket.lo:.1f}, {bracket.hi:.1f}] minutes "
          f"(ratio {bracket.ratio:.2f} — the paper's factor-of-2 promise)")

    # --- Step 2+3: pick t0 in the bracket and roll out the Corollary 3.1
    # recurrence.  guideline_schedule() does both.
    result = repro.guideline_schedule(p, c)
    schedule = result.schedule
    print(f"\nguideline schedule: {schedule.num_periods} periods, "
          f"t0 = {result.t0:.1f} min")
    print("periods (min):", np.round(schedule.periods, 1).tolist())
    print(f"expected work: {result.expected_work:.1f} task-minutes "
          f"out of {lifespan_min:.0f} available")

    # --- Sanity: for uniform risk the guideline recurrence IS the optimal
    # one from Bhatt-Chung-Leighton-Rosenberg [3]; compare.
    exact = repro.uniform_optimal_schedule(lifespan_min, c)
    print(f"\nexact optimum ([3]): m = {exact.num_periods}, "
          f"t0 = {exact.t0:.1f} ≈ sqrt(2cL) = "
          f"{repro.uniform_t0_asymptotic(lifespan_min, c):.1f}")
    print(f"E(guideline)/E(optimal) = "
          f"{result.expected_work / exact.expected_work:.6f}")

    # --- Validate the model: simulate 100,000 draconian episodes.
    from repro.simulation import estimate_expected_work

    est = estimate_expected_work(schedule, p, c, n=100_000,
                                 rng=np.random.default_rng(0))
    lo, hi = est.ci95
    print(f"\nMonte-Carlo check: {est.mean:.1f} task-minutes "
          f"(95% CI [{lo:.1f}, {hi:.1f}]) vs analytic {result.expected_work:.1f}")

    # --- What would naive chunking have earned?
    from repro.baselines import fixed_chunk_schedule

    for chunk in (10.0, 60.0, 240.0):
        e = fixed_chunk_schedule(p, c, chunk).expected_work(p, c)
        print(f"fixed {chunk:5.0f}-minute chunks: {e:6.1f} task-minutes "
              f"({e / result.expected_work:.0%} of guideline)")


if __name__ == "__main__":
    main()
