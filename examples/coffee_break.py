#!/usr/bin/env python3
"""The coffee-break scenario (Section 4.3): geometrically increasing risk.

A colleague steps out for a coffee break of at most L minutes; the risk of
their return doubles every minute.  How should a data-parallel ray tracer
bundle its tiles onto the borrowed machine?

The life function is p(t) = (2^L - 2^t)/(2^L - 1).  Its optimal schedule is
dramatic: commit almost the whole window in the FIRST bundle (t0 = L - Θ(log L)),
then a quick flurry of logarithmically shrinking bundles.

Run:  python examples/coffee_break.py
"""

from __future__ import annotations

import math

import numpy as np

import repro
from repro.analysis.tables import print_table


def main() -> None:
    c = 0.5  # half a minute of setup per bundle

    rows = []
    for L in (8.0, 16.0, 32.0, 64.0):
        p = repro.GeometricIncreasingRisk(L)
        guided = repro.guideline_schedule(p, c)
        bclr = repro.geometric_increasing_optimal_schedule(L, c)
        rows.append([
            L,
            guided.t0,
            L - 2 * math.log2(L),  # the t0 = L - Θ(log L) scale
            guided.schedule.num_periods,
            guided.expected_work,
            bclr.expected_work,
            guided.expected_work / max(bclr.expected_work, 1e-12),
        ])
    print_table(
        ["L (min)", "t0 guideline", "L - 2 log2 L", "m", "E guideline",
         "E [3]-family", "ratio"],
        rows,
        title="Coffee break: commit big early — t0 = L - Θ(log L)",
    )

    # Inspect one schedule in detail.
    L = 32.0
    p = repro.GeometricIncreasingRisk(L)
    guided = repro.guideline_schedule(p, c)
    print(f"\nL = {L:.0f} min, c = {c} min -> periods (min):")
    print(" ", np.round(guided.schedule.periods, 2).tolist())
    print("  guideline recurrence (eq. 4.7): t_{k+1} = log2((t_k - c) ln 2 + 1)")
    print("  [3]'s optimal recurrence:       t_{k+1} = log2(t_k - c + 2)")

    # The two recurrences differ per period but agree on achievable work
    # once each optimizes its own t0 — the guideline's promise.
    t = float(guided.schedule.periods[0])
    print(f"\nfrom t0 = {t:.2f}: guideline next = "
          f"{math.log2((t - c) * math.log(2) + 1):.3f}, "
          f"[3] next = {math.log2(t - c + 2):.3f}")

    # How much does bundling *matter* here?  Compare against one-shot and
    # fine-grained strategies.
    from repro.baselines import all_in_one_schedule, fixed_chunk_schedule

    one_shot = all_in_one_schedule(p, c).expected_work(p, c)
    fine = fixed_chunk_schedule(p, c, 2.0).expected_work(p, c)
    print(f"\nexpected work: guideline {guided.expected_work:.2f} | "
          f"2-min chunks {fine:.2f} | single bundle {one_shot:.2f}")


if __name__ == "__main__":
    main()
