"""JIT-compiled hot kernels (numba) with a transparent NumPy fallback.

The batch engines are NumPy-vectorized Python: every recurrence step of
:func:`repro.core.batch_recurrence.generate_schedules_batch` and
:func:`repro.core.hetero_recurrence.generate_schedules_hetero` pays Python
dispatch, boolean-mask compaction, and a handful of temporary arrays per
vector operation.  This package ports the remaining hot paths to
``numba.njit(cache=True)`` kernels:

* :func:`kernels` ``.hetero_recurrence`` — the full Corollary 3.1 system
  (3.6) loop over mixed ``(c, θ, t0)`` lanes for the Section 4 closed-form
  families, lane-local and allocation-free per step;
* :func:`kernels` ``.expected_work_rows`` — eq. (2.1) scoring over a
  NaN-padded period block, accumulated in the scalar engine's
  left-to-right order;
* :func:`kernels` ``.episodes_gather`` — the vectorized episode simulator's
  inner pass (``searchsorted`` + cumulative-work gather) as one fused loop.

Capability probe and fallback contract
--------------------------------------
numba is an **optional** dependency (the ``jit`` extra).  Nothing in this
package hard-fails without it: :func:`available` reports whether the kernels
can be used, and every ``engine="jit"`` selection in the library degrades
transparently to the bit-equivalent NumPy path when numba is missing,
too old, broken, or disabled via the ``REPRO_DISABLE_JIT`` environment
variable.  Only :func:`require` (used by the CLI's explicit ``--engine jit``)
raises :class:`~repro.exceptions.JITUnavailableError`.

On-disk kernel cache
--------------------
The probe points ``NUMBA_CACHE_DIR`` at ``<plan-cache dir>/numba`` (unless
the variable is already set) *before* importing numba, so every process —
including the sharded serving workers — shares one on-disk kernel cache and
only the first process ever pays the compile.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import ModuleType
from typing import Optional

from ..exceptions import JITUnavailableError

__all__ = [
    "DISABLE_ENV",
    "MIN_NUMBA_VERSION",
    "available",
    "disabled_reason",
    "refresh",
    "require",
    "resolve_engine",
    "kernels",
    "numba_cache_dir",
    "family_code",
    "life_family_of",
    "FAM_POLY",
    "FAM_GEOMDEC",
    "FAM_GEOMINC",
]

#: Environment variable that force-disables the JIT kernels (any value other
#: than empty / "0").  Checked on every probe refresh, so tests and operators
#: can flip it without reinstalling.
DISABLE_ENV = "REPRO_DISABLE_JIT"

#: Oldest numba the kernels are exercised against (matches the ``jit`` extra).
MIN_NUMBA_VERSION = (0, 59)

#: Integer family codes shared with the compiled kernels.  ``uniform`` is the
#: ``d = 1`` special case of ``poly``, exactly as in the hetero engine.
FAM_POLY = 0
FAM_GEOMDEC = 1
FAM_GEOMINC = 2

_FAMILY_CODES = {
    "uniform": FAM_POLY,
    "poly": FAM_POLY,
    "geomdec": FAM_GEOMDEC,
    "geominc": FAM_GEOMINC,
}

#: Probe result memo: ``None`` = not probed yet, else ``(ok, reason)``.
_probe_result: Optional[tuple[bool, str]] = None
_kernels_module: Optional[ModuleType] = None


def numba_cache_dir() -> Path:
    """Where the on-disk kernel cache lives: ``<plan-cache dir>/numba``.

    Riding the plan-cache directory keeps all repro persistence under one
    root and lets the sharded workers (which inherit the environment) reuse
    the parent's compiled kernels instead of recompiling per process.
    """
    from ..core.plancache import default_cache_dir  # deferred: avoids a cycle

    return default_cache_dir() / "numba"


def _configure_cache_env() -> None:
    """Point ``NUMBA_CACHE_DIR`` at the plan-cache dir before numba imports.

    numba reads the variable lazily per compilation, but setting it before
    the first import is the only ordering that is guaranteed across numba
    versions.  An explicit pre-existing value always wins, and an unwritable
    directory is left to numba's own fallback (per-source ``__pycache__``).
    """
    if os.environ.get("NUMBA_CACHE_DIR"):
        return
    try:
        cache_dir = numba_cache_dir()
        cache_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return
    os.environ["NUMBA_CACHE_DIR"] = str(cache_dir)


def _run_probe() -> tuple[bool, str]:
    raw = os.environ.get(DISABLE_ENV, "")
    if raw.strip() not in ("", "0"):
        return False, f"JIT kernels disabled by {DISABLE_ENV}={raw!r}"
    _configure_cache_env()
    try:
        import numba
    except Exception as exc:  # ImportError, or a broken install raising worse
        return False, (
            f"numba is not importable ({exc!r}); install the optional extra: "
            f"pip install 'repro[jit]'"
        )
    try:
        parts = tuple(int(x) for x in str(numba.__version__).split(".")[:2])
    except ValueError:
        parts = MIN_NUMBA_VERSION  # unparseable dev version: assume new enough
    if parts < MIN_NUMBA_VERSION:
        wanted = ".".join(str(v) for v in MIN_NUMBA_VERSION)
        return False, (
            f"numba {numba.__version__} is older than the supported "
            f">= {wanted}; upgrade via pip install 'repro[jit]'"
        )
    global _kernels_module
    try:
        from . import kernels as kernels_module
    except Exception as exc:  # pragma: no cover - needs a broken numba
        return False, f"JIT kernel definitions failed to import: {exc!r}"
    _kernels_module = kernels_module
    return True, ""


def _probe() -> tuple[bool, str]:
    global _probe_result
    if _probe_result is None:
        _probe_result = _run_probe()
    return _probe_result


def available() -> bool:
    """Whether the numba kernels can serve ``engine="jit"`` requests."""
    return _probe()[0]


def disabled_reason() -> str:
    """Why the JIT kernels are unavailable (empty string when available)."""
    return _probe()[1]


def refresh() -> None:
    """Drop the memoized probe so the next call re-examines the environment.

    Lets tests (and long-lived processes) flip ``REPRO_DISABLE_JIT`` without
    restarting; an already-imported numba stays imported, only the
    library-level gate re-evaluates.
    """
    global _probe_result
    _probe_result = None


def require(context: str = "jit engine") -> None:
    """Raise :class:`JITUnavailableError` unless the kernels are available.

    For call sites where the user *named* the jit engine and a silent
    fallback would misreport what ran (the CLI ``--engine jit`` flags).
    """
    ok, reason = _probe()
    if not ok:
        raise JITUnavailableError(f"{context} requires numba: {reason}")


def resolve_engine(engine: str, fallback: str) -> str:
    """Map ``"jit"`` to ``fallback`` when the kernels are unavailable.

    Every other engine name passes through untouched; validation of the name
    itself stays with the caller.
    """
    if engine == "jit" and not available():
        return fallback
    return engine


def kernels() -> ModuleType:
    """The compiled-kernel module; raises if the probe failed.

    Call :func:`available` first on paths that must not raise.
    """
    ok, reason = _probe()
    if not ok:
        raise JITUnavailableError(f"JIT kernels are unavailable: {reason}")
    assert _kernels_module is not None
    return _kernels_module


def family_code(family: str) -> int:
    """The kernel-level integer code for a Section 4 table family."""
    try:
        return _FAMILY_CODES[family]
    except KeyError:
        raise JITUnavailableError(
            f"family {family!r} has no JIT kernel; expected one of "
            f"{sorted(_FAMILY_CODES)}"
        ) from None


def life_family_of(p: object) -> Optional[tuple[int, int, float]]:
    """Map a life function onto ``(family_code, d, θ)``; ``None`` if unmapped.

    Only the Section 4 closed-form families have kernels: polynomial risk
    (``θ = L``, including uniform as ``d = 1``), geometric-decreasing
    lifespan (``θ = a``), and geometric-increasing risk (``θ = L``).
    Everything else — Weibull, Pareto, fitted/transformed functions — runs
    the NumPy engines.
    """
    from ..core.life_functions import (  # deferred: core imports this package
        GeometricDecreasingLifespan,
        GeometricIncreasingRisk,
        PolynomialRisk,
        UniformRisk,
    )

    if type(p) is GeometricDecreasingLifespan:
        return FAM_GEOMDEC, 1, p.a
    if type(p) is GeometricIncreasingRisk:
        return FAM_GEOMINC, 1, p.lifespan
    if type(p) in (PolynomialRisk, UniformRisk):
        # Exact types only: a subclass may override evaluation semantics.
        return FAM_POLY, p.d, p.lifespan
    return None
