"""The ``numba.njit(cache=True)`` kernel definitions.

Import this module only through :func:`repro.jitkernels.kernels` — importing
it directly raises ``ImportError`` when numba is absent.  All kernels are
``cache=True`` so compiled machine code persists under ``NUMBA_CACHE_DIR``
(pointed at ``<plan-cache dir>/numba`` by the package probe) and later
processes — including sharded serving workers — load it instead of
recompiling.

Numerical contract with the NumPy engines
-----------------------------------------
Each kernel replays the corresponding NumPy engine *operation for
operation in the same order*, so results are bit-identical wherever the
per-element math is: the uniform / ``d = 1`` polynomial family (pure
``+ - * /`` arithmetic) matches exactly.  The only tolerated divergence is
ULP-scale rounding where numba lowers a transcendental to the scalar libm
call while NumPy uses its own (possibly SIMD) ufunc kernel; the exhaustive
list of such sites is:

* ``pow`` — polynomial survival ``(t/L)**d`` and step ``ratio**(1/d)``
  (``d >= 2`` only);
* ``exp`` / ``log`` — geometric-decreasing survival and step;
* ``exp`` / ``expm1`` / ``log2`` — geometric-increasing survival and step.

The differential suite (``tests/core/test_jitkernels.py``) pins this down:
bit-identical for uniform/poly-d1, ``<= 4`` ULP per emitted period at the
listed sites otherwise, with identical period counts and termination codes.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

#: Termination codes, identical to ``_TERMINATION_BY_CODE`` in both batch
#: engines: (TARGET_NONPOSITIVE, UNPRODUCTIVE, LIFESPAN_EXHAUSTED,
#: TAIL_NEGLIGIBLE, MAX_PERIODS).
TERM_TARGET_NONPOSITIVE = 0
TERM_UNPRODUCTIVE = 1
TERM_LIFESPAN_EXHAUSTED = 2
TERM_TAIL_NEGLIGIBLE = 3
TERM_MAX_PERIODS = 4

#: Family codes, mirroring :mod:`repro.jitkernels`.
FAM_POLY = 0
FAM_GEOMDEC = 1
FAM_GEOMINC = 2

_LN2 = math.log(2.0)


@njit(cache=True, inline="always")
def _survival(fam, d, df, theta, ln_a, denom, t):
    """Lane-wise ``p(t; θ)`` with the engines' ``[0, 1]`` clamping.

    ``ln_a`` (geomdec) and ``denom`` (geominc) are lane constants hoisted by
    the caller.  ``d = 1`` avoids ``pow`` entirely so the uniform family
    stays bit-identical to NumPy's exponent-1 fast path.
    """
    if fam == FAM_POLY:
        if d == 1:
            v = 1.0 - t / theta
        else:
            v = 1.0 - (t / theta) ** df
    elif fam == FAM_GEOMDEC:
        v = math.exp(-ln_a * t)
    else:  # FAM_GEOMINC
        v = -math.expm1((t - theta) * _LN2) / denom
    if v < 0.0:
        return 0.0
    if v > 1.0:
        return 1.0
    return v


@njit(cache=True)
def hetero_recurrence(fam, d, cs, params, t0s, max_periods, tail_tol):
    """System (3.6) over mixed ``(c, θ, t0)`` lanes, one scalar loop per lane.

    The NumPy engines advance all lanes per step because vector ops are their
    only fast primitive; compiled code wants the transpose — each lane runs
    its whole recurrence in registers, no compaction, no temporaries.  Lanes
    are independent, and every per-step operation (step formula, termination
    tests in priority order, left-to-right E accumulation) replays the NumPy
    engines' order exactly, so results agree up to the module-documented
    ULP sites.

    Returns ``(periods, num_periods, term_codes, expected_work)`` with
    ``periods`` NaN-padded to the longest lane, matching
    :func:`repro.core.hetero_recurrence.generate_schedules_hetero`.
    """
    n = t0s.shape[0]
    df = float(d)
    inv_d = 1.0 / df
    sqrt_tail = math.sqrt(tail_tol)

    term = np.full(n, TERM_MAX_PERIODS, dtype=np.int8)
    num_periods = np.empty(n, dtype=np.int64)
    e_full = np.zeros(n, dtype=np.float64)

    cap = 32
    periods = np.full((n, cap), np.nan)
    max_m = 1

    for i in range(n):
        c = cs[i]
        theta = params[i]
        t0 = t0s[i]

        # Hoisted lane constants (lifespan, family transforms).
        if fam == FAM_GEOMDEC:
            life = np.inf
            ln_a = math.log(theta)
            denom = 1.0
        elif fam == FAM_GEOMINC:
            life = theta
            ln_a = 0.0
            denom = -math.expm1(-theta * _LN2)
        else:
            life = theta
            ln_a = 0.0
            denom = 1.0
        finite_life = math.isfinite(life)

        # A t0 spanning the whole lifespan collapses to one clamped period
        # (the engines' shared pre-loop rule); its banked E stays 0.
        first = t0
        alive = True
        if finite_life and t0 >= life:
            first = min(t0, life)
            term[i] = TERM_LIFESPAN_EXHAUSTED
            alive = False
        periods[i, 0] = first
        m = 1

        tp = first
        b = first
        e = 0.0
        if alive:
            ph = _survival(fam, d, df, theta, ln_a, denom, b)
            w = tp - c
            if w < 0.0:
                w = 0.0
            e = w * ph
            edge = life - 1e-15 * life
            for _ in range(max_periods - 1):
                if finite_life and b >= edge:
                    term[i] = TERM_LIFESPAN_EXHAUSTED
                    break

                # Closed-form Section 4 recurrence step; ``has = False``
                # encodes the NumPy engines' NaN ("target non-positive").
                has = True
                t_next = 0.0
                if fam == FAM_POLY:
                    if d == 1:
                        t_next = tp - c  # eq. (4.1)
                    else:
                        ratio = 1.0 + df * (tp - c) / b
                        if ratio > 0.0:
                            t_next = (ratio ** inv_d - 1.0) * b
                        else:
                            has = False
                elif fam == FAM_GEOMDEC:
                    arg = 1.0 + (c - tp) * ln_a
                    if arg > 0.0:
                        t_next = -math.log(arg) / ln_a
                    else:
                        has = False
                else:  # FAM_GEOMINC
                    arg = (tp - c) * _LN2 + 1.0
                    if arg > 0.0:
                        t_next = math.log2(arg)
                    else:
                        has = False

                # Termination tests in the engines' priority order.
                if not has:
                    term[i] = TERM_TARGET_NONPOSITIVE
                    break
                if t_next <= c:
                    term[i] = TERM_UNPRODUCTIVE
                    break
                if finite_life and b + t_next > life:
                    term[i] = TERM_LIFESPAN_EXHAUSTED
                    break

                if m == cap:
                    cap *= 2
                    grown = np.full((n, cap), np.nan)
                    grown[:, : periods.shape[1]] = periods
                    periods = grown
                periods[i, m] = t_next
                m += 1

                b = b + t_next
                tp = t_next
                ph = _survival(fam, d, df, theta, ln_a, denom, b)
                contribution = (t_next - c) * ph
                e = e + contribution
                floor = e if e > 1.0 else 1.0
                if contribution < tail_tol * floor and ph < sqrt_tail:
                    term[i] = TERM_TAIL_NEGLIGIBLE
                    break

        num_periods[i] = m
        e_full[i] = e + 0.0  # normalize IEEE -0.0, as the engines do
        if m > max_m:
            max_m = m

    return periods[:, :max_m], num_periods, term, e_full


@njit(cache=True)
def expected_work_rows(periods, fam, d, cs, params):
    """Row-wise eq. (2.1) over a NaN-padded period block, scalar-engine order.

    Accumulates each lane's boundary and work sum strictly left to right —
    the order the scalar engine and the hetero engine use — unlike NumPy's
    pairwise row reduction, so values may differ from
    :func:`repro.core.batch_recurrence.batch_expected_work` by
    summation-order float noise (the two NumPy engines already differ the
    same way).  NaN padding is trailing by construction, so the row stops at
    the first NaN.
    """
    n, width = periods.shape
    df = float(d)
    out = np.zeros(n, dtype=np.float64)
    for i in range(n):
        c = cs[i]
        theta = params[i]
        if fam == FAM_GEOMDEC:
            ln_a = math.log(theta)
            denom = 1.0
        elif fam == FAM_GEOMINC:
            ln_a = 0.0
            denom = -math.expm1(-theta * _LN2)
        else:
            ln_a = 0.0
            denom = 1.0
        b = 0.0
        e = 0.0
        for j in range(width):
            t = periods[i, j]
            if math.isnan(t):
                break
            b += t
            ph = _survival(fam, d, df, theta, ln_a, denom, b)
            w = t - c
            if w < 0.0:
                w = 0.0
            e += w * ph
        out[i] = e + 0.0
    return out


@njit(cache=True)
def episodes_gather(boundaries, cumulative, reclaim):
    """The vectorized episode simulator's inner pass as one fused loop.

    For each reclaim time: a ``side='left'`` binary search over the period
    boundaries (a reclaim *at* ``T_k`` kills period ``k`` — the draconian
    tie-break), then a gather from the cumulative-work table.  Pure integer
    search + float gather, so the result is bit-identical to
    ``np.searchsorted`` + fancy indexing; the win is fusing the two passes
    and skipping the intermediate index array's round-trip through Python.

    Returns ``(work, periods_completed)``.
    """
    n = reclaim.shape[0]
    m = boundaries.shape[0]
    work = np.empty(n, dtype=np.float64)
    ks = np.empty(n, dtype=np.intp)
    for i in range(n):
        r = reclaim[i]
        lo = 0
        hi = m
        while lo < hi:
            mid = (lo + hi) >> 1
            if boundaries[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        ks[i] = lo
        work[i] = cumulative[lo]
    return work, ks


@njit(cache=True)
def fleet_checkout_fixup(cum, base, used, limit, lo, hi, j):
    """The range-pool checkout cut fix-up: clamp + the two exact scan loops.

    ``j`` is any starting estimate (binary search or mean-duration hint);
    the loops converge to the unique cut satisfying the scalar admission
    test ``used + (cum[k] - base) <= limit``, so the result is independent
    of the seed and bit-identical to the Python loops in
    ``repro.now.fleet._RangePool.checkout``.
    """
    if j < lo:
        j = lo
    elif j > hi:
        j = hi
    while j < hi and used + (cum[j + 1] - base) <= limit:
        j += 1
    while j > lo and used + (cum[j] - base) > limit:
        j -= 1
    return j


@njit(cache=True)
def fleet_event_order(times, prios, seqs):
    """Stable ``(time, prio, seq)`` ordering of the fleet's static events.

    Three chained stable argsorts (least-significant key first) — exactly
    ``np.lexsort((seqs, prios, times))``, which is what the NumPy fallback
    uses.  Keys are unique per event, so the order is total and both
    engines agree bit-for-bit.
    """
    order = np.argsort(seqs, kind="mergesort")
    order = order[np.argsort(prios[order], kind="mergesort")]
    return order[np.argsort(times[order], kind="mergesort")]


def warmup() -> None:
    """Force-compile every kernel on tiny inputs (shared-cache warm pass).

    One call per distinct signature; afterwards the on-disk cache holds
    machine code any later process loads without compiling.
    """
    cs = np.array([0.5])
    for fam, theta in ((FAM_POLY, 100.0), (FAM_GEOMDEC, 1.2), (FAM_GEOMINC, 30.0)):
        res = hetero_recurrence(fam, 1, cs, np.array([theta]), np.array([5.0]),
                                64, 1e-12)
        expected_work_rows(res[0], fam, 1, cs, np.array([theta]))
    hetero_recurrence(FAM_POLY, 3, cs, np.array([100.0]), np.array([5.0]), 64, 1e-12)
    episodes_gather(np.array([1.0, 2.0]), np.array([0.0, 0.5, 1.0]),
                    np.array([0.7, 1.5, 9.0]))
    fleet_checkout_fixup(np.array([0.0, 0.5, 1.0, 1.5]), 0.0, 0.0, 1.0 + 1e-12,
                         0, 3, 1)
    fleet_event_order(np.array([1.0, 0.5]), np.array([2, 1], dtype=np.int64),
                      np.array([4, 1], dtype=np.int64))
