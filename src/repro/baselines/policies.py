"""Online period-sizing policies for the NOW simulator.

A *policy* decides, period by period, how much work to ship to a borrowed
workstation.  The protocol is deliberately minimal (two methods) so the
guideline scheduler, the paper's greedy recipe, and classic ad-hoc heuristics
all plug into the same discrete-event farm (:mod:`repro.now.farm`):

* :class:`SchedulePolicy` — replay a precomputed schedule (guideline, exact,
  greedy, or any baseline from :mod:`repro.baselines.schedules`);
* :class:`GuidelinePolicy` — recompute the guideline schedule per episode
  from the life-function estimate the master holds;
* :class:`ProgressivePolicy` — Section 6's conditional re-planning;
* :class:`FixedChunkPolicy`, :class:`DoublingPolicy`, :class:`AllInOnePolicy`
  — the practical defaults;
* :class:`RandomizedDoublingPolicy` — a simplified stand-in for [2]'s
  randomized commitment strategy (geometric sizes, random phase);
* :class:`OmniscientPolicy` — clairvoyant upper bound: it reads the episode's
  actual reclaim time and ships exactly one maximal period;
* :class:`DegradedModePolicy` — the resilient serving wrapper: consult an
  external planner (e.g. a :class:`~repro.core.serving.PlanServer`) per
  episode, and when it is unreachable fall back to the closed-form Theorem
  3.2 guideline bound on ``t_0``, behind an episode-count circuit breaker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable

import numpy as np

from ..core.guidelines import guideline_schedule
from ..core.life_functions import LifeFunction
from ..core.progressive import ProgressiveScheduler
from ..core.schedule import Schedule
from ..core.t0_bounds import lower_bound_t0
from ..exceptions import CycleStealingError

__all__ = [
    "EpisodeInfo",
    "Policy",
    "SchedulePolicy",
    "GuidelinePolicy",
    "ProgressivePolicy",
    "FixedChunkPolicy",
    "DoublingPolicy",
    "AllInOnePolicy",
    "RandomizedDoublingPolicy",
    "OmniscientPolicy",
    "DegradedModePolicy",
]


@dataclass(frozen=True)
class EpisodeInfo:
    """What a policy may know at the start of an episode.

    ``reclaim_time`` is the ground-truth owner return offset — populated by
    the simulator for *every* episode but read only by
    :class:`OmniscientPolicy` (it exists to compute clairvoyant upper
    bounds, not to leak into honest policies).
    """

    c: float
    #: The master's (possibly fitted) life-function estimate, if any.
    life: Optional[LifeFunction] = None
    #: Ground truth, for the omniscient bound only.
    reclaim_time: Optional[float] = None


@runtime_checkable
class Policy(Protocol):
    """Period-sizing protocol driven by the farm simulator."""

    def start_episode(self, info: EpisodeInfo) -> None:
        """Reset state for a fresh episode."""

    def next_period(self, elapsed: float) -> Optional[float]:
        """Planned length of the next period after surviving to ``elapsed``.

        ``None`` declines to dispatch further work this episode.
        """


class SchedulePolicy:
    """Replay a fixed schedule's periods in order."""

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self._index = 0

    def start_episode(self, info: EpisodeInfo) -> None:
        self._index = 0

    def next_period(self, elapsed: float) -> Optional[float]:
        if self._index >= self.schedule.num_periods:
            return None
        t = float(self.schedule[self._index])
        self._index += 1
        return t


class GuidelinePolicy:
    """Compute a guideline schedule at episode start, then replay it.

    Uses the estimate in :attr:`EpisodeInfo.life`; episodes without an
    estimate dispatch nothing (the honest choice — the guidelines need ``p``).
    """

    def __init__(self, t0_strategy: str = "optimize") -> None:
        self.t0_strategy = t0_strategy
        self._inner: Optional[SchedulePolicy] = None
        # Episodes with the same estimate reuse the schedule: the guideline
        # computation (bracket + t0 search) is deterministic in (life, c).
        self._cache: dict[tuple[int, float], Optional[Schedule]] = {}

    def start_episode(self, info: EpisodeInfo) -> None:
        self._inner = None
        if info.life is None:
            return
        key = (id(info.life), info.c)
        if key not in self._cache:
            try:
                result = guideline_schedule(
                    info.life, info.c, t0_strategy=self.t0_strategy, grid=65
                )
                self._cache[key] = result.schedule
            except CycleStealingError:
                self._cache[key] = None
        schedule = self._cache[key]
        if schedule is None:
            return
        self._inner = SchedulePolicy(schedule)
        self._inner.start_episode(info)

    def next_period(self, elapsed: float) -> Optional[float]:
        if self._inner is None:
            return None
        return self._inner.next_period(elapsed)


class ProgressivePolicy:
    """Section 6's conditional re-planning, one period at a time.

    Re-planning from scratch at every elapsed time is expensive (a full
    bracket + ``t_0`` search per period).  Because the conditional life
    function varies smoothly in the conditioning time, the policy quantizes
    ``elapsed`` to ~2.5% relative resolution and caches the planned period per
    quantized key — across episodes too, since the estimate is fixed.  The
    core :class:`~repro.core.progressive.ProgressiveScheduler` stays exact;
    this cache is a simulation-throughput device.
    """

    #: Keys per e-fold of elapsed time: resolution ~ exp(1/40) - 1 ≈ 2.5%.
    _LOG_RESOLUTION = 40.0

    def __init__(self, t0_strategy: str = "optimize", grid: int = 33) -> None:
        self.t0_strategy = t0_strategy
        self.grid = grid
        self._scheduler: Optional[ProgressiveScheduler] = None
        self._cache: dict[tuple[int, int, float], Optional[float]] = {}

    def start_episode(self, info: EpisodeInfo) -> None:
        if info.life is None:
            self._scheduler = None
            return
        self._life_id = id(info.life)
        self._scheduler = ProgressiveScheduler(
            info.life, info.c, t0_strategy=self.t0_strategy, grid=self.grid
        )

    def next_period(self, elapsed: float) -> Optional[float]:
        if self._scheduler is None:
            return None
        key = (
            self._life_id,
            int(math.log1p(max(elapsed, 0.0)) * self._LOG_RESOLUTION),
            self._scheduler.c,
        )
        if key in self._cache:
            return self._cache[key]
        # Sync the scheduler's clock with the caller's elapsed time (the
        # realized period can differ from the planned one after packing).
        self._scheduler.elapsed = float(elapsed)
        result = self._scheduler.next_period()
        self._scheduler._done = False  # caching must not latch termination
        self._cache[key] = result
        return result


class FixedChunkPolicy:
    """Constant period length — the ubiquitous practical default."""

    def __init__(self, chunk: float) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.chunk = float(chunk)

    def start_episode(self, info: EpisodeInfo) -> None:
        self._c = info.c

    def next_period(self, elapsed: float) -> Optional[float]:
        return self.chunk if self.chunk > self._c else None


class DoublingPolicy:
    """Geometrically growing periods: ``first, first*factor, ...`` (capped)."""

    def __init__(self, first: float, factor: float = 2.0, cap: float = math.inf) -> None:
        if first <= 0 or factor <= 1.0:
            raise ValueError(f"need first > 0 and factor > 1, got {first}, {factor}")
        self.first = float(first)
        self.factor = float(factor)
        self.cap = float(cap)
        self._next = self.first

    def start_episode(self, info: EpisodeInfo) -> None:
        self._next = self.first
        self._c = info.c

    def next_period(self, elapsed: float) -> Optional[float]:
        t = min(self._next, self.cap)
        self._next = min(self._next * self.factor, self.cap)
        return t if t > self._c else None


class AllInOnePolicy:
    """One huge period per episode (no intermediate returns)."""

    def __init__(self, length: float) -> None:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self.length = float(length)
        self._dispatched = False

    def start_episode(self, info: EpisodeInfo) -> None:
        self._dispatched = False
        self._c = info.c

    def next_period(self, elapsed: float) -> Optional[float]:
        if self._dispatched or self.length <= self._c:
            return None
        self._dispatched = True
        return self.length


class RandomizedDoublingPolicy:
    """Doubling with a random initial phase — a simplified [2]-style strategy.

    Awerbuch, Azar, Fiat and Leighton's strategy commits to geometrically
    increasing amounts with randomization to defeat adversarial reclaims;
    here the first period is ``base * factor^U`` with ``U ~ Uniform[0, 1)``,
    re-drawn each episode, then grows geometrically.
    """

    def __init__(
        self, base: float, rng: np.random.Generator, factor: float = 2.0
    ) -> None:
        if base <= 0 or factor <= 1.0:
            raise ValueError(f"need base > 0 and factor > 1, got {base}, {factor}")
        self.base = float(base)
        self.factor = float(factor)
        self.rng = rng
        self._next = self.base

    def start_episode(self, info: EpisodeInfo) -> None:
        self._c = info.c
        phase = float(self.rng.uniform(0.0, 1.0))
        self._next = self.base * self.factor**phase

    def next_period(self, elapsed: float) -> Optional[float]:
        t = self._next
        self._next *= self.factor
        return t if t > self._c else None


class DegradedModePolicy:
    """Serve an external planner's schedule; degrade gracefully when it fails.

    The production pattern: the master asks a remote planning service (the
    :class:`~repro.core.serving.PlanServer` fallback chain, a warm plan
    cache, or any callable mapping an :class:`EpisodeInfo` to a
    :class:`~repro.core.schedule.Schedule`) for each episode's schedule.
    When the planner raises — injected outage, corrupt table, network
    partition — the policy does **not** dispatch blind: it falls back to the
    closed-form guideline anchor, a single conservative period at Theorem
    3.2's lower bound on the optimal ``t_0`` (inequality 3.7).  That bound
    needs only one cheap fixed-point evaluation of the life estimate, is
    provably no longer than the optimal initial period, and therefore banks
    positive expected work whenever any schedule can.

    An episode-count circuit breaker keeps a dead planner from being hammered
    every episode: after ``max_planner_failures`` *consecutive* failures the
    breaker opens and the policy serves the fallback for
    ``cooldown_episodes`` episodes, then lets one probe call through
    (half-open); a success closes the breaker again.

    Counters (``planner_served``, ``planner_failures``, ``degraded_episodes``,
    ``undispatched_episodes``) expose the degradation mix for chaos reports.
    """

    def __init__(
        self,
        planner: Callable[[EpisodeInfo], Schedule],
        max_planner_failures: int = 3,
        cooldown_episodes: int = 8,
    ) -> None:
        if max_planner_failures < 1:
            raise ValueError(
                f"max_planner_failures must be >= 1, got {max_planner_failures}"
            )
        if cooldown_episodes < 1:
            raise ValueError(f"cooldown_episodes must be >= 1, got {cooldown_episodes}")
        self.planner = planner
        self.max_planner_failures = int(max_planner_failures)
        self.cooldown_episodes = int(cooldown_episodes)
        self._inner: Optional[SchedulePolicy] = None
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        # Theorem 3.2 bound per (life id, c): the estimate is fixed across
        # episodes, so the fixed-point solve runs once per estimate.
        self._t0_bound_cache: dict[tuple[int, float], Optional[float]] = {}
        self.planner_served = 0
        self.planner_failures = 0
        self.degraded_episodes = 0
        self.undispatched_episodes = 0

    @property
    def breaker_open(self) -> bool:
        """Whether the planner breaker is currently open (cooling down)."""
        return self._cooldown_remaining > 0

    def _fallback_t0(self, info: EpisodeInfo) -> Optional[float]:
        if info.life is None:
            return None
        key = (id(info.life), info.c)
        if key not in self._t0_bound_cache:
            try:
                t0 = lower_bound_t0(info.life, info.c)
            except CycleStealingError:
                t0 = None
            else:
                lifespan = info.life.lifespan
                if math.isfinite(lifespan):
                    t0 = min(t0, lifespan * (1.0 - 1e-12))
                if t0 <= info.c:
                    t0 = None
            self._t0_bound_cache[key] = t0
        return self._t0_bound_cache[key]

    def start_episode(self, info: EpisodeInfo) -> None:
        self._inner = None
        schedule: Optional[Schedule] = None
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1  # breaker open: skip the planner
        else:
            try:
                schedule = self.planner(info)
            except Exception:
                self.planner_failures += 1
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.max_planner_failures:
                    self._cooldown_remaining = self.cooldown_episodes
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0
        if schedule is not None:
            self.planner_served += 1
        else:
            t0 = self._fallback_t0(info)
            if t0 is None:
                self.undispatched_episodes += 1
                return
            self.degraded_episodes += 1
            schedule = Schedule([t0])
        self._inner = SchedulePolicy(schedule)
        self._inner.start_episode(info)

    def next_period(self, elapsed: float) -> Optional[float]:
        if self._inner is None:
            return None
        return self._inner.next_period(elapsed)


class OmniscientPolicy:
    """Clairvoyant upper bound: one period ending just before the reclaim.

    Banks ``R - c - margin`` work per episode — no honest policy can beat it.
    """

    def __init__(self, margin: float = 1e-9) -> None:
        self.margin = float(margin)
        self._period: Optional[float] = None

    def start_episode(self, info: EpisodeInfo) -> None:
        self._period = None
        if info.reclaim_time is None:
            return
        usable = info.reclaim_time * (1.0 - self.margin)
        if usable > info.c:
            self._period = usable

    def next_period(self, elapsed: float) -> Optional[float]:
        t = self._period
        self._period = None
        return t
