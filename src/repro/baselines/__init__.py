"""Baseline chunking strategies: analytic schedules and online policies."""

from .policies import (
    AllInOnePolicy,
    DoublingPolicy,
    EpisodeInfo,
    FixedChunkPolicy,
    GuidelinePolicy,
    OmniscientPolicy,
    Policy,
    ProgressivePolicy,
    RandomizedDoublingPolicy,
    SchedulePolicy,
)
from .schedules import all_in_one_schedule, doubling_schedule, fixed_chunk_schedule

__all__ = [
    "EpisodeInfo",
    "Policy",
    "SchedulePolicy",
    "GuidelinePolicy",
    "ProgressivePolicy",
    "FixedChunkPolicy",
    "DoublingPolicy",
    "AllInOnePolicy",
    "RandomizedDoublingPolicy",
    "OmniscientPolicy",
    "fixed_chunk_schedule",
    "doubling_schedule",
    "all_in_one_schedule",
]
