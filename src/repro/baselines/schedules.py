"""Baseline schedule constructors for analytic comparison.

These produce plain :class:`~repro.core.schedule.Schedule` objects whose
expected work can be evaluated with eq. (2.1), giving exact (not sampled)
baseline numbers for the benchmark tables:

* *fixed chunk* — equal periods, the ubiquitous practical default;
* *doubling ramp* — geometrically growing periods, the classic "start small,
  trust growth" heuristic (and the shape of [2]'s randomized strategy);
* *all-in-one* — a single period spanning the whole opportunity, i.e. no
  intermediate result returns at all.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..exceptions import InvalidScheduleError

__all__ = ["fixed_chunk_schedule", "doubling_schedule", "all_in_one_schedule"]


def _horizon(p: LifeFunction, quantile: float = 1e-9) -> float:
    return p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(quantile))


def fixed_chunk_schedule(
    p: LifeFunction, c: float, chunk: float, horizon: Optional[float] = None
) -> Schedule:
    """Equal periods of length ``chunk`` covering the opportunity.

    The final partial period is included only if productive (> c).
    """
    if chunk <= c:
        raise InvalidScheduleError(f"chunk {chunk} must exceed overhead {c}")
    end = horizon if horizon is not None else _horizon(p)
    n_full = int(end // chunk)
    periods = [chunk] * n_full
    remainder = end - n_full * chunk
    if remainder > c:
        periods.append(remainder)
    if not periods:
        periods = [chunk]
    return Schedule(periods)


def doubling_schedule(
    p: LifeFunction,
    c: float,
    first: float,
    factor: float = 2.0,
    horizon: Optional[float] = None,
    max_periods: int = 10_000,
) -> Schedule:
    """Periods ``first, first*factor, first*factor², ...`` up to the horizon."""
    if first <= c:
        raise InvalidScheduleError(f"first period {first} must exceed overhead {c}")
    if factor <= 1.0:
        raise InvalidScheduleError(f"growth factor must exceed 1, got {factor}")
    end = horizon if horizon is not None else _horizon(p)
    periods: list[float] = []
    t = first
    total = 0.0
    while total + t <= end and len(periods) < max_periods:
        periods.append(t)
        total += t
        t *= factor
    if not periods:
        periods = [min(first, end)]
    remainder = end - total
    if remainder > c:
        periods.append(remainder)
    return Schedule(periods)


def all_in_one_schedule(p: LifeFunction, c: float, horizon: Optional[float] = None) -> Schedule:
    """A single period spanning the whole opportunity.

    For a finite lifespan this banks work only if the owner *never* returns
    within it — expected work ``(L - c) * p(L) = 0`` — which is exactly why
    the paper's scheduling problem exists.  For unbounded support it spans a
    deep tail quantile.
    """
    end = horizon if horizon is not None else _horizon(p, quantile=1e-3)
    if end <= c:
        raise InvalidScheduleError(f"horizon {end} does not exceed overhead {c}")
    return Schedule([end])
