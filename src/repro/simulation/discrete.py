"""Discretization of continuous schedules onto task grids (Section 6).

The paper's guidelines are derived in a continuous framework ("we have had to
translate what is ideally a discrete problem into a continuous framework");
Section 6 asks whether the continuous guidelines "yield valuable discrete
analogues".  In the data-parallel setting of Section 1, work is quantized:
a period of length ``t`` can hold only whole tasks, so the usable period
lengths are ``c + k * tau`` for task duration ``tau`` (uniform tasks) or
``c + (sum of a task bundle)`` for variable durations.

This module rounds continuous schedules onto such grids and measures the
expected-work cost of rounding — experiment EV-DISC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..exceptions import InvalidScheduleError

__all__ = ["discretize_schedule", "DiscretizationReport", "discretization_report"]


def discretize_schedule(
    schedule: Schedule,
    c: float,
    task_duration: float,
    mode: str = "floor",
) -> Schedule:
    """Quantize each period to ``c + k * task_duration`` whole tasks.

    ``mode``:

    * ``"floor"`` — largest ``k`` with ``c + k*tau <= t_i`` (never lengthens a
      period; the conservative choice, since lengthening raises loss risk);
    * ``"round"`` — nearest ``k``;
    * ``"ceil"`` — smallest ``k`` with ``c + k*tau >= t_i``.

    Periods that round to zero tasks are dropped (they could bank no work).

    Raises
    ------
    InvalidScheduleError
        If every period rounds to zero tasks.
    """
    if task_duration <= 0:
        raise InvalidScheduleError(f"task duration must be positive, got {task_duration}")
    if mode not in ("floor", "round", "ceil"):
        raise ValueError(f"mode must be floor/round/ceil, got {mode!r}")
    raw = (schedule.periods - c) / task_duration
    if mode == "floor":
        counts = np.floor(raw + 1e-12)
    elif mode == "round":
        counts = np.round(raw)
    else:
        counts = np.ceil(raw - 1e-12)
    counts = counts.astype(np.int64)
    keep = counts >= 1
    if not np.any(keep):
        raise InvalidScheduleError(
            f"no period can hold a single task of duration {task_duration} "
            f"(largest period {schedule.periods.max()}, overhead {c})"
        )
    periods = c + counts[keep] * task_duration
    return Schedule(periods)


@dataclass(frozen=True)
class DiscretizationReport:
    """Expected-work comparison between a schedule and its quantized version."""

    continuous_work: float
    discrete_work: float
    task_duration: float
    periods_dropped: int

    @property
    def relative_loss(self) -> float:
        """``1 - E_discrete / E_continuous`` (0 when quantization is free)."""
        if self.continuous_work <= 0:
            return 0.0
        return 1.0 - self.discrete_work / self.continuous_work


def discretization_report(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    task_duration: float,
    mode: str = "floor",
) -> DiscretizationReport:
    """Quantize and compare expected work (experiment EV-DISC)."""
    discrete = discretize_schedule(schedule, c, task_duration, mode=mode)
    return DiscretizationReport(
        continuous_work=schedule.expected_work(p, c),
        discrete_work=discrete.expected_work(p, c),
        task_duration=task_duration,
        periods_dropped=schedule.num_periods - discrete.num_periods,
    )
