"""Monte-Carlo estimation of expected work, with confidence intervals.

Validates the analytic eq. (2.1) — experiment EV-MC — and evaluates policies
(progressive, baselines) whose expected work has no closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from .episode import simulate_episodes

__all__ = ["MCEstimate", "estimate_expected_work", "estimate_policy_work"]

#: Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MCEstimate:
    """A Monte-Carlo mean with its sampling uncertainty."""

    mean: float
    stderr: float
    n: int

    @property
    def ci95(self) -> tuple[float, float]:
        """Two-sided 95% normal confidence interval for the mean."""
        half = _Z95 * self.stderr
        return (self.mean - half, self.mean + half)

    def consistent_with(self, value: float, z: float = 4.0) -> bool:
        """Whether ``value`` lies within ``z`` standard errors of the mean.

        ``z = 4`` keeps the false-failure rate of a validation suite with
        hundreds of checks comfortably below one in ten thousand per check.
        """
        if self.stderr == 0.0:
            return math.isclose(self.mean, value, rel_tol=1e-12, abs_tol=1e-12)
        return abs(self.mean - value) <= z * self.stderr


def estimate_expected_work(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 1_000_000,
) -> MCEstimate:
    """Estimate ``E(S; p)`` by simulating ``n`` independent episodes.

    Batched so arbitrarily large ``n`` runs in bounded memory; the estimator
    is the plain sample mean (unbiased), with the usual ``s/sqrt(n)`` error.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    total = 0.0
    total_sq = 0.0
    done = 0
    while done < n:
        take = min(batch_size, n - done)
        batch = simulate_episodes(schedule, p, c, take, rng)
        total += float(batch.work.sum())
        total_sq += float(np.dot(batch.work, batch.work))
        done += take
    mean = total / n
    var = max(0.0, total_sq / n - mean * mean)
    stderr = math.sqrt(var / n)
    return MCEstimate(mean=mean, stderr=stderr, n=n)


def estimate_policy_work(
    policy: Callable[[float], float],
    p: LifeFunction,
    c: float,
    n: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    max_periods: int = 100_000,
) -> MCEstimate:
    """Estimate expected work of an *online* policy (one episode at a time).

    ``policy(elapsed)`` returns the next period length proposed after
    surviving to ``elapsed`` (or a non-positive value / raises ``StopIteration``
    to stop).  Unlike :func:`estimate_expected_work` this cannot be batched —
    the policy may adapt to elapsed time — so it is intended for moderate
    ``n``.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    reclaim = p.sample_reclaim_times(rng, n)
    works = np.zeros(n)
    for j in range(n):
        r = float(reclaim[j])
        elapsed = 0.0
        banked = 0.0
        for _ in range(max_periods):
            try:
                t = policy(elapsed)
            except StopIteration:
                break
            if t is None or t <= 0:
                break
            elapsed += t
            if elapsed < r:
                banked += max(0.0, t - c)
            else:
                break
        works[j] = banked
    mean = float(works.mean())
    stderr = float(works.std(ddof=1) / math.sqrt(n)) if n > 1 else 0.0
    return MCEstimate(mean=mean, stderr=stderr, n=n)
