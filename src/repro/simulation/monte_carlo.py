"""Monte-Carlo estimation of expected work, with confidence intervals.

Validates the analytic eq. (2.1) — experiment EV-MC — and evaluates policies
(progressive, baselines) whose expected work has no closed form.

Both estimators accept an ``engine`` argument selecting the batch simulation
backend: ``"vectorized"`` (NumPy batch engine, the fast default for
schedules), ``"jit"`` (the vectorized engine with its search+gather pass
compiled by :mod:`repro.jitkernels`, degrading to NumPy without numba), or
``"scalar"`` (the per-episode reference loop).  Under the
shared seed contract — one ``p.sample_reclaim_times(rng, batch)`` call per
batch, episodes in draw order — the engines produce *identical* episode
outcomes for an identical generator state, so switching engines never
changes an estimate, only its wall-clock cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from .episode import ENGINES, simulate_episodes

__all__ = ["MCEstimate", "estimate_expected_work", "estimate_policy_work"]

#: Two-sided 95% normal quantile.
_Z95 = 1.959963984540054


def _z_quantile(confidence: float) -> float:
    """Two-sided normal quantile for a given coverage probability."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 * (1.0 + confidence))


@dataclass(frozen=True)
class MCEstimate:
    """A Monte-Carlo mean with its sampling uncertainty."""

    mean: float
    stderr: float
    n: int

    def ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided normal confidence interval at the given coverage.

        ``confidence`` is the coverage probability (default 0.95); e.g.
        ``ci(0.99)`` widens the half-width from 1.96 to 2.58 standard errors.
        """
        half = _z_quantile(confidence) * self.stderr
        return (self.mean - half, self.mean + half)

    @property
    def ci95(self) -> tuple[float, float]:
        """Two-sided 95% normal confidence interval for the mean."""
        return self.ci(0.95)

    def consistent_with(self, value: float, z: float = 4.0) -> bool:
        """Whether ``value`` lies within ``z`` standard errors of the mean.

        ``z = 4`` keeps the false-failure rate of a validation suite with
        hundreds of checks comfortably below one in ten thousand per check.
        """
        if self.stderr == 0.0:
            return math.isclose(self.mean, value, rel_tol=1e-12, abs_tol=1e-12)
        return abs(self.mean - value) <= z * self.stderr


def estimate_expected_work(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 1_000_000,
    engine: str = "vectorized",
) -> MCEstimate:
    """Estimate ``E(S; p)`` by simulating ``n`` independent episodes.

    Batched so arbitrarily large ``n`` runs in bounded memory; the estimator
    is the plain sample mean (unbiased), with the usual ``s/sqrt(n)`` error.

    RNG contract: ``ceil(n / batch_size)`` calls of
    ``p.sample_reclaim_times(rng, batch)``, in order — independent of the
    engine, so the estimate is a function of ``(seed, n, batch_size)`` only.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    total = 0.0
    total_sq = 0.0
    done = 0
    while done < n:
        take = min(batch_size, n - done)
        batch = simulate_episodes(schedule, p, c, take, rng, engine=engine)
        total += float(batch.work.sum())
        total_sq += float(np.dot(batch.work, batch.work))
        done += take
    mean = total / n
    var = max(0.0, total_sq / n - mean * mean)
    stderr = math.sqrt(var / n)
    return MCEstimate(mean=mean, stderr=stderr, n=n)


def estimate_policy_work(
    policy: Callable[[float], float],
    p: LifeFunction,
    c: float,
    n: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    max_periods: int = 100_000,
    engine: str = "scalar",
) -> MCEstimate:
    """Estimate expected work of an *online* policy.

    ``policy(elapsed)`` returns the next period length proposed after
    surviving to ``elapsed`` (or ``None`` / a non-positive value / raising
    ``StopIteration`` to stop).  The estimator replays one callable across
    all ``n`` episodes, so the policy must be a deterministic function of
    ``elapsed`` for the estimate to mean anything.

    The default ``"scalar"`` engine simulates episodes one at a time and
    tolerates policies with benign statefulness (e.g. call counters).  The
    ``"vectorized"`` engine unrolls the policy *once* (out to the latest
    sampled reclaim time) and scores all episodes in NumPy — pick it for
    large ``n`` with elapsed-deterministic policies; it matches the scalar
    engine bit-for-bit for such policies.  ``"jit"`` is the vectorized
    engine with a compiled search+gather pass (NumPy fallback without
    numba), with the same determinism requirement.

    RNG contract: one ``p.sample_reclaim_times(rng, n)`` call, episodes in
    draw order — identical for every engine.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if engine == "scalar":
        from .scalar import simulate_policy_episodes_scalar as impl
    elif engine == "vectorized":
        from .vectorized import simulate_policy_episodes_vectorized as impl
    elif engine == "jit":
        from .vectorized import simulate_policy_episodes_jit as impl
    else:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    batch = impl(policy, p, c, n, rng, max_periods=max_periods)
    works = batch.work
    mean = float(works.mean())
    stderr = float(works.std(ddof=1) / math.sqrt(n)) if n > 1 else 0.0
    return MCEstimate(mean=mean, stderr=stderr, n=n)
