"""Vectorized batch engine: N episodes in O(periods) NumPy steps.

The scalar reference engine (:mod:`repro.simulation.scalar`) walks every
episode period by period — ``O(N * m)`` Python iterations.  This engine
simulates the same batch with a fixed number of array operations:

1. draw all ``N`` reclaim times in one inverse-transform call;
2. locate each episode's first killed period with a single ``searchsorted``
   against the period boundaries ``T_0 < T_1 < ...`` (``side='left'`` encodes
   the draconian tie-break — a reclaim *at* ``T_k`` kills period ``k``);
3. read each episode's banked work off the cumulative-sum mask
   ``cumsum(t_i ⊖ c)`` in one gather.

Because ``numpy.cumsum`` accumulates left-to-right exactly like the scalar
engine's running Python sum, the two engines agree *bit-for-bit*, not just
statistically — the property the differential harness
(:mod:`repro.simulation.testing`) pins down.

RNG-consumption contract (shared with the scalar engine)
--------------------------------------------------------
A batch of ``n`` episodes consumes the generator via exactly one
``p.sample_reclaim_times(rng, n)`` call (one uniform per episode, in episode
order); passing ``reclaim_times`` consumes nothing.  Identical generator
state therefore yields identical episode outcomes from either engine.

Online policies vectorize too: a policy that is a deterministic function of
elapsed time replays the *same* period sequence in every episode until the
reclaim cuts it short, so one unrolling of the policy (out to the latest
sampled reclaim) turns policy evaluation into the schedule case.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..exceptions import SimulationError
from ..types import FloatArray
from .episode import EpisodeBatch

__all__ = [
    "simulate_episodes_vectorized",
    "simulate_episodes_jit",
    "simulate_policy_episodes_vectorized",
    "simulate_policy_episodes_jit",
    "unroll_policy",
]


def simulate_episodes_vectorized(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """Simulate ``n`` episodes of ``schedule`` in O(m + n log m) array ops.

    Exactly matches :func:`repro.simulation.scalar.simulate_episodes_scalar`
    under the shared seed contract (same generator state, or the same
    ``reclaim_times`` array, gives bit-identical outcomes).
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")
    # Period i survives iff T_i < R strictly; 'left' counts boundaries < R.
    k = np.searchsorted(schedule.boundaries, reclaim, side="left")
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    return EpisodeBatch(reclaim_times=reclaim, work=cumulative[k], periods_completed=k)


def _gather_jit(
    boundaries: FloatArray, cumulative: FloatArray, reclaim: FloatArray
) -> Optional[EpisodeBatch]:
    """Run the compiled search+gather pass, or ``None`` when numba is unusable.

    The kernel's binary search replicates ``searchsorted(..., side='left')``
    comparison for comparison, so the outcome is bit-identical to the NumPy
    pass — engine choice never changes an estimate, only its wall clock.
    """
    from .. import jitkernels

    if not jitkernels.available():
        return None
    work, k = jitkernels.kernels().episodes_gather(
        np.ascontiguousarray(boundaries, dtype=np.float64),
        np.ascontiguousarray(cumulative, dtype=np.float64),
        np.ascontiguousarray(reclaim, dtype=np.float64),
    )
    return EpisodeBatch(reclaim_times=reclaim, work=work, periods_completed=k)


def simulate_episodes_jit(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """:func:`simulate_episodes_vectorized` with the compiled inner pass.

    Same RNG contract (one ``p.sample_reclaim_times`` call when sampling) and
    bit-identical outcomes; falls back to the NumPy pass transparently when
    the :mod:`repro.jitkernels` probe fails.
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    batch = _gather_jit(schedule.boundaries, cumulative, reclaim)
    if batch is not None:
        return batch
    return simulate_episodes_vectorized(schedule, p, c, n, reclaim_times=reclaim)


def unroll_policy(
    policy: Callable[[float], Optional[float]],
    horizon: float,
    max_periods: int = 100_000,
) -> FloatArray:
    """Materialize an elapsed-deterministic policy as a period array.

    Calls ``policy(elapsed)`` with the running elapsed time, exactly as an
    uninterrupted episode would, until the policy declines (``None``,
    non-positive, or ``StopIteration``), ``elapsed`` reaches ``horizon``, or
    ``max_periods`` periods have been emitted.  Periods starting at or past
    ``horizon`` cannot bank work for any episode reclaimed by ``horizon``, so
    stopping there loses nothing.

    The unrolling is valid only for policies whose proposal depends *solely*
    on ``elapsed`` (the contract :func:`estimate_policy_work` already
    assumes when it replays one callable across episodes); policies with
    per-episode randomness or hidden mutable state must use the scalar
    engine.
    """
    if horizon < 0 or not np.isfinite(horizon):
        raise SimulationError(f"horizon must be finite and nonnegative, got {horizon}")
    periods: list[float] = []
    elapsed = 0.0
    while elapsed < horizon and len(periods) < max_periods:
        try:
            t = policy(elapsed)
        except StopIteration:
            break
        if t is None or t <= 0:
            break
        periods.append(float(t))
        elapsed += float(t)
    return np.asarray(periods, dtype=float)


def simulate_policy_episodes_vectorized(
    policy: Callable[[float], Optional[float]],
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    max_periods: int = 100_000,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """Batch-simulate an elapsed-deterministic policy.

    Unrolls the policy once (out to the latest sampled reclaim time), then
    scores all ``n`` episodes against the unrolled period sequence with the
    same searchsorted/cumulative-sum step as the schedule engine.  Matches
    :func:`repro.simulation.scalar.simulate_policy_episodes_scalar`
    bit-for-bit for policies that are pure functions of elapsed time.
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")

    periods = unroll_policy(policy, float(reclaim.max()), max_periods=max_periods)
    if periods.size == 0:
        zeros = np.zeros(n)
        return EpisodeBatch(
            reclaim_times=reclaim,
            work=zeros,
            periods_completed=np.zeros(n, dtype=np.intp),
        )
    boundaries = np.cumsum(periods)
    k = np.searchsorted(boundaries, reclaim, side="left")
    cumulative = np.concatenate(([0.0], np.cumsum(np.maximum(0.0, periods - c))))
    return EpisodeBatch(reclaim_times=reclaim, work=cumulative[k], periods_completed=k)


def simulate_policy_episodes_jit(
    policy: Callable[[float], Optional[float]],
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    max_periods: int = 100_000,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """:func:`simulate_policy_episodes_vectorized` with the compiled gather.

    The policy unrolling stays in Python (it calls back into user code); only
    the per-episode search+gather runs compiled.  Bit-identical to the NumPy
    engine, with the same transparent fallback as
    :func:`simulate_episodes_jit`.
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")

    periods = unroll_policy(policy, float(reclaim.max()), max_periods=max_periods)
    if periods.size == 0:
        return EpisodeBatch(
            reclaim_times=reclaim,
            work=np.zeros(n),
            periods_completed=np.zeros(n, dtype=np.intp),
        )
    boundaries = np.cumsum(periods)
    cumulative = np.concatenate(([0.0], np.cumsum(np.maximum(0.0, periods - c))))
    batch = _gather_jit(boundaries, cumulative, reclaim)
    if batch is not None:
        return batch
    k = np.searchsorted(boundaries, reclaim, side="left")
    return EpisodeBatch(reclaim_times=reclaim, work=cumulative[k], periods_completed=k)
