"""Differential-testing harness for the batch simulation engines.

The vectorized engine earns its keep only if it is *provably* the same
simulator as the scalar §2.1 reference.  This module packages the two checks
the test-suite (and any future engine) runs against every life-function
family:

* **exact parity** — under the shared seed contract both engines consume the
  generator identically, so per-episode reclaim times, banked works, and
  completed-period counts must match bit-for-bit
  (:func:`differential_schedule_check`, :func:`differential_policy_check`);
* **statistical parity** — with *independent* seeds the engines are two
  independent Monte-Carlo estimators of the same expectation, so their means
  must agree within a few combined standard errors, and each must agree with
  the analytic eq. (2.1) where it applies
  (:func:`statistical_parity`).

It also provides :func:`canonical_families` — one representative instance of
every life-function family the library exports — plus
:class:`DeterministicLife`, a degenerate step life function (reclaim at
exactly ``L`` with probability 1) that makes eq. (2.1) an *exact* finite sum
and therefore anchors property-based tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    GompertzLife,
    LifeFunction,
    LogLogisticLife,
    MixtureLife,
    ParetoLife,
    PolynomialRisk,
    Shape,
    TimeScaledLife,
    UniformRisk,
    WeibullLife,
)
from ..core.schedule import Schedule
from ..types import ArrayLike, FloatArray
from .episode import EpisodeBatch
from .scalar import simulate_episodes_scalar, simulate_policy_episodes_scalar
from .vectorized import (
    simulate_episodes_vectorized,
    simulate_policy_episodes_vectorized,
)

__all__ = [
    "DeterministicLife",
    "DifferentialReport",
    "canonical_families",
    "reference_schedule",
    "differential_schedule_check",
    "differential_policy_check",
    "statistical_parity",
    "assert_exact_parity",
]


class DeterministicLife(LifeFunction):
    """Degenerate life function: the owner reclaims at exactly ``L``.

    ``p(t) = 1`` for ``t < L`` and ``0`` from ``L`` on — the step function
    that makes eq. (2.1) the exact finite sum ``sum_{T_i < L} (t_i ⊖ c)``.
    Not differentiable (shape GENERAL, derivative 0 off the step), so it is
    a *testing* device, not a schedulable family: Monte-Carlo against it has
    zero variance, which pins estimator plumbing without statistical slack.
    """

    def __init__(self, lifespan: float) -> None:
        super().__init__()
        if lifespan <= 0 or not math.isfinite(lifespan):
            raise ValueError(f"lifespan must be positive and finite, got {lifespan}")
        self._lifespan = float(lifespan)

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.where(t < self._lifespan, 1.0, 0.0)

    def _derivative(self, t: FloatArray) -> FloatArray:
        return np.zeros_like(t)

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        out = np.where(arr >= 1.0, 0.0, self._lifespan)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return self._lifespan

    @property
    def shape(self) -> Shape:
        return Shape.GENERAL


def canonical_families() -> dict[str, LifeFunction]:
    """One representative instance of every exported life-function family.

    Covers the four Section 4 families, the extra analytic families, the
    composition transforms (mixture, time-scaling, conditioning), and the
    degenerate step function — the matrix the differential tests sweep.
    """
    return {
        "uniform": UniformRisk(100.0),
        "poly2": PolynomialRisk(2, 100.0),
        "poly3": PolynomialRisk(3, 80.0),
        "geomdec": GeometricDecreasingLifespan(1.2),
        "geominc": GeometricIncreasingRisk(30.0),
        "exponential": WeibullLife(k=1.0, scale=25.0),
        "weibull_convex": WeibullLife(k=0.8, scale=20.0),
        "weibull_general": WeibullLife(k=1.8, scale=20.0),
        "pareto": ParetoLife(d=2.0),
        "gompertz": GompertzLife(b=0.02, eta=0.15),
        "loglogistic": LogLogisticLife(alpha=15.0, beta=2.5),
        "mixture": MixtureLife([UniformRisk(50.0), UniformRisk(150.0)], [0.5, 0.5]),
        "timescaled": TimeScaledLife(UniformRisk(100.0), 0.5),
        "conditional": UniformRisk(120.0).conditional(30.0),
        "deterministic": DeterministicLife(40.0),
    }


def reference_schedule(p: LifeFunction, c: float, m: int = 8) -> Schedule:
    """A deterministic mildly-decreasing ``m``-period schedule scaled to ``p``.

    Sized off the median reclaim time so every family — including the
    GENERAL-shape ones the guideline scheduler rejects — gets a schedule
    whose survival probabilities span (0, 1), exercising both banked and
    killed periods.  Pure function of ``(p, c, m)``: no RNG consumed.
    """
    median = float(p.inverse(0.5))
    first = max(2.0 * median / m, 2.0 * c + 1e-9)
    periods = [first * (0.85**i) for i in range(m)]
    return Schedule(periods)


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one scalar-vs-vectorized cross-validation."""

    #: Human-readable case label (family / schedule / policy).
    label: str
    n: int
    #: Bit-exact agreement of per-episode works, reclaim times, and counts.
    exact: bool
    #: Largest absolute per-episode work discrepancy (0.0 when exact).
    max_abs_diff: float
    mean_scalar: float
    mean_vectorized: float

    def __str__(self) -> str:  # pragma: no cover - diagnostic formatting
        verdict = "EXACT" if self.exact else f"DIVERGED (max |Δ| = {self.max_abs_diff:.3g})"
        return (
            f"{self.label}: {verdict} over n={self.n}; "
            f"scalar mean {self.mean_scalar:.6g}, "
            f"vectorized mean {self.mean_vectorized:.6g}"
        )


def _compare(label: str, a: EpisodeBatch, b: EpisodeBatch) -> DifferentialReport:
    exact = (
        np.array_equal(a.reclaim_times, b.reclaim_times)
        and np.array_equal(a.work, b.work)
        and np.array_equal(a.periods_completed, b.periods_completed)
    )
    return DifferentialReport(
        label=label,
        n=a.n,
        exact=exact,
        max_abs_diff=float(np.max(np.abs(a.work - b.work))),
        mean_scalar=a.mean_work,
        mean_vectorized=b.mean_work,
    )


def differential_schedule_check(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int = 2_000,
    seed: int = 0,
    label: str = "schedule",
) -> DifferentialReport:
    """Run both engines on the same seed and compare episode-by-episode.

    The shared seed contract (one ``sample_reclaim_times`` call per batch)
    means the engines see identical reclaim times; any discrepancy is an
    accounting bug in one of them.
    """
    scalar = simulate_episodes_scalar(schedule, p, c, n, np.random.default_rng(seed))
    vector = simulate_episodes_vectorized(schedule, p, c, n, np.random.default_rng(seed))
    return _compare(label, scalar, vector)


def differential_policy_check(
    policy: Callable[[float], Optional[float]],
    p: LifeFunction,
    c: float,
    n: int = 2_000,
    seed: int = 0,
    max_periods: int = 10_000,
    label: str = "policy",
) -> DifferentialReport:
    """Scalar-vs-vectorized cross-validation for an elapsed-deterministic policy."""
    scalar = simulate_policy_episodes_scalar(
        policy, p, c, n, np.random.default_rng(seed), max_periods=max_periods
    )
    vector = simulate_policy_episodes_vectorized(
        policy, p, c, n, np.random.default_rng(seed), max_periods=max_periods
    )
    return _compare(label, scalar, vector)


def assert_exact_parity(report: DifferentialReport) -> None:
    """Fail loudly if a differential check found any per-episode discrepancy."""
    assert report.exact, (
        f"engines diverged on {report.label}: max per-episode |Δwork| = "
        f"{report.max_abs_diff:.6g} over n={report.n} "
        f"(scalar mean {report.mean_scalar:.9g}, "
        f"vectorized mean {report.mean_vectorized:.9g})"
    )


def statistical_parity(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int = 20_000,
    seed_scalar: int = 1,
    seed_vectorized: int = 2,
) -> tuple[float, float]:
    """Independent-seed engine agreement: ``(z_engines, z_analytic)``.

    Runs each engine with its *own* seed so the two sample means are
    independent estimators of ``E(S; p)``; returns the two-sample z-statistic
    between them and the z-statistic of the vectorized mean against the
    analytic eq. (2.1).  Both should be small (|z| ≲ 4) for a correct engine
    pair; the caller chooses the threshold.
    """
    a = simulate_episodes_scalar(schedule, p, c, n, np.random.default_rng(seed_scalar))
    b = simulate_episodes_vectorized(
        schedule, p, c, n, np.random.default_rng(seed_vectorized)
    )
    se_a = float(a.work.std(ddof=1)) / math.sqrt(n)
    se_b = float(b.work.std(ddof=1)) / math.sqrt(n)
    analytic = schedule.expected_work(p, c)
    scale = max(1.0, abs(analytic))
    z_engines = _z_or_exact(a.mean_work - b.mean_work, math.hypot(se_a, se_b), scale)
    z_analytic = _z_or_exact(b.mean_work - analytic, se_b, scale)
    return z_engines, z_analytic


def _z_or_exact(delta: float, se: float, scale: float) -> float:
    """|z| statistic, degrading to an exactness check when the variance is ~0.

    Degenerate cases — e.g. :class:`DeterministicLife`, whose sample standard
    deviation is pure float-summation noise — have no real sampling error;
    there the means must agree to relative rounding precision, reported as
    z = 0 (else inf).
    """
    if se > 1e-12 * scale:
        return abs(delta) / se
    return 0.0 if abs(delta) <= 1e-9 * scale else math.inf
