"""Single-episode semantics of the cycle-stealing model (Section 2.1).

An *episode* is one interval of borrowed time on workstation B.  The owner
returns at a random reclaim time ``R`` with survival ``P(R > t) = p(t)``.
Running schedule ``S = t_0, t_1, ...`` against the episode banks

    work(S, R) = sum_i (t_i ⊖ c) * 1[R > T_i]

— period ``i``'s work survives only if B is still free at the period's end
``T_i``; the interrupted period (and everything after) is lost, which is
exactly the accounting behind eq. (2.1): ``E[work(S, R)] = E(S; p)``.

Batch simulation is delegated to one of two interchangeable engines (see
:func:`simulate_episodes`): the default ``"vectorized"`` engine
(:mod:`repro.simulation.vectorized`) runs a batch in O(periods) NumPy steps,
while the ``"scalar"`` engine (:mod:`repro.simulation.scalar`) is the
loop-per-episode reference transcription of §2.1 used as the differential-
testing oracle.  Both obey the same RNG-consumption contract — one
``p.sample_reclaim_times(rng, n)`` call per batch — so identical generator
state gives bit-identical episode outcomes from either engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..types import ArrayLike, FloatArray

__all__ = [
    "realized_work",
    "completed_periods",
    "simulate_episodes",
    "EpisodeBatch",
    "ENGINES",
]

#: The interchangeable batch-simulation engines, in preference order.
#: ``"jit"`` is the vectorized engine with its search+gather pass compiled by
#: :mod:`repro.jitkernels`; it degrades transparently to ``"vectorized"``
#: when numba is unavailable, and all three are bit-identical under the
#: shared RNG contract.
ENGINES = ("vectorized", "jit", "scalar")


def completed_periods(schedule: Schedule, reclaim_times: ArrayLike) -> np.ndarray:
    """Number of fully-survived periods for each reclaim time (vectorized).

    Period ``i`` completes iff ``T_i < R``; ``searchsorted(boundaries, R,
    'left')`` counts exactly the boundaries strictly below ``R``.
    """
    r = np.atleast_1d(np.asarray(reclaim_times, dtype=float))
    return np.searchsorted(schedule.boundaries, r, side="left")


def realized_work(schedule: Schedule, reclaim_times: ArrayLike, c: float) -> FloatArray:
    """Banked work for each reclaim time in a batch (vectorized).

    Matches :meth:`repro.core.schedule.Schedule.realized_work` elementwise
    (tested), but runs in ``O(m + n log m)`` for ``n`` episodes.
    """
    k = completed_periods(schedule, reclaim_times)
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    out = cumulative[k]
    return float(out[0]) if np.ndim(reclaim_times) == 0 else out


@dataclass(frozen=True)
class EpisodeBatch:
    """Outcome of simulating a batch of independent episodes."""

    #: Sampled reclaim times, shape ``(n,)``.
    reclaim_times: FloatArray
    #: Banked work per episode, shape ``(n,)``.
    work: FloatArray
    #: Completed (survived) periods per episode, shape ``(n,)``.
    periods_completed: np.ndarray

    @property
    def n(self) -> int:
        return int(self.work.size)

    @property
    def mean_work(self) -> float:
        return float(self.work.mean())


def simulate_episodes(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int,
    rng: np.random.Generator,
    engine: str = "vectorized",
) -> EpisodeBatch:
    """Sample ``n`` episodes of the given life function and run the schedule.

    Reclaim times are drawn by inverse transform (``R = p^{-1}(U)``), so the
    sampled distribution matches ``p`` exactly wherever the family provides a
    closed-form inverse (all Section 4 families do).

    RNG contract: exactly one ``p.sample_reclaim_times(rng, n)`` call per
    invocation, regardless of ``engine`` — the per-episode outcomes are
    bit-identical across engines for the same generator state.

    Parameters
    ----------
    engine:
        ``"vectorized"`` (default, O(periods) NumPy steps), ``"jit"`` (the
        vectorized engine with a compiled search+gather pass, falling back
        to NumPy when numba is unavailable), or ``"scalar"`` (the
        per-episode reference loop; orders of magnitude slower).
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if engine == "vectorized":
        from .vectorized import simulate_episodes_vectorized

        return simulate_episodes_vectorized(schedule, p, c, n, rng)
    if engine == "jit":
        from .vectorized import simulate_episodes_jit

        return simulate_episodes_jit(schedule, p, c, n, rng)
    if engine == "scalar":
        from .scalar import simulate_episodes_scalar

        return simulate_episodes_scalar(schedule, p, c, n, rng)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
