"""Episode-level simulation: Monte-Carlo validation of the model semantics.

Exports batched episode simulation (Section 2.1 accounting) behind two
interchangeable engines — the NumPy batch engine
(:mod:`repro.simulation.vectorized`) and the per-episode reference loop
(:mod:`repro.simulation.scalar`) — plus Monte-Carlo expected-work estimation
with confidence intervals, the differential-testing harness that keeps the
engines honest (:mod:`repro.simulation.testing`), and the discrete task-grid
quantization analysis of Section 6's open question.
"""

from .discrete import DiscretizationReport, discretization_report, discretize_schedule
from .episode import (
    ENGINES,
    EpisodeBatch,
    completed_periods,
    realized_work,
    simulate_episodes,
)
from .monte_carlo import MCEstimate, estimate_expected_work, estimate_policy_work
from .scalar import simulate_episodes_scalar, simulate_policy_episodes_scalar
from .vectorized import (
    simulate_episodes_vectorized,
    simulate_policy_episodes_vectorized,
    unroll_policy,
)

__all__ = [
    "ENGINES",
    "EpisodeBatch",
    "completed_periods",
    "realized_work",
    "simulate_episodes",
    "simulate_episodes_scalar",
    "simulate_episodes_vectorized",
    "simulate_policy_episodes_scalar",
    "simulate_policy_episodes_vectorized",
    "unroll_policy",
    "MCEstimate",
    "estimate_expected_work",
    "estimate_policy_work",
    "DiscretizationReport",
    "discretization_report",
    "discretize_schedule",
]
