"""Episode-level simulation: Monte-Carlo validation of the model semantics.

Exports batched episode simulation (Section 2.1 accounting), Monte-Carlo
expected-work estimation with confidence intervals, and the discrete
task-grid quantization analysis of Section 6's open question.
"""

from .discrete import DiscretizationReport, discretization_report, discretize_schedule
from .episode import EpisodeBatch, completed_periods, realized_work, simulate_episodes
from .monte_carlo import MCEstimate, estimate_expected_work, estimate_policy_work

__all__ = [
    "EpisodeBatch",
    "completed_periods",
    "realized_work",
    "simulate_episodes",
    "MCEstimate",
    "estimate_expected_work",
    "estimate_policy_work",
    "DiscretizationReport",
    "discretization_report",
    "discretize_schedule",
]
