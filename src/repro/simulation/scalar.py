"""Scalar reference engine: a literal, per-episode transcription of §2.1.

This module is the *oracle* side of the differential-testing harness.  Every
episode is simulated with explicit Python loops that mirror the paper's prose
one clause at a time — period ``i`` runs for ``t_i``, banks ``t_i ⊖ c`` iff
the workstation survives strictly past its end (``T_i < R``; a reclaim *at*
``T_i`` kills the period, the draconian tie-break), and the first killed
period ends the episode.  It is deliberately slow and deliberately obvious:
the vectorized engine (:mod:`repro.simulation.vectorized`) must reproduce its
outcomes bit-for-bit under the shared seed contract.

RNG-consumption contract (shared with the vectorized engine)
------------------------------------------------------------
A batch of ``n`` episodes consumes the generator via exactly one call
``p.sample_reclaim_times(rng, n)`` (one uniform draw per episode, in episode
order).  Passing ``reclaim_times`` explicitly consumes nothing.  Because both
engines obey this contract, an identical ``numpy.random.Generator`` state
yields identical per-episode reclaim times — and therefore identical works —
from either engine.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..types import FloatArray
from .episode import EpisodeBatch

__all__ = ["simulate_episodes_scalar", "simulate_policy_episodes_scalar"]


def simulate_episodes_scalar(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """Simulate ``n`` episodes of ``schedule`` with explicit per-episode loops.

    Semantically identical to
    :func:`repro.simulation.vectorized.simulate_episodes_vectorized` (tested
    exactly, episode by episode); use that engine for anything
    performance-sensitive.
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")

    period_list = [float(t) for t in schedule.periods]
    work_each = [max(0.0, t - c) for t in period_list]

    works = np.empty(n, dtype=float)
    completed = np.empty(n, dtype=np.intp)
    for j in range(n):
        r = float(reclaim[j])
        elapsed = 0.0
        banked = 0.0
        k = 0
        for t, w in zip(period_list, work_each):
            elapsed += t  # T_k = tau_k + t_k
            if elapsed < r:  # survives only strictly before the reclaim
                banked += w
                k += 1
            else:  # reclaimed by T_k: period k (and the episode) is lost
                break
        works[j] = banked
        completed[j] = k
    return EpisodeBatch(reclaim_times=reclaim, work=works, periods_completed=completed)


def simulate_policy_episodes_scalar(
    policy: Callable[[float], Optional[float]],
    p: LifeFunction,
    c: float,
    n: int,
    rng: Optional[np.random.Generator] = None,
    max_periods: int = 100_000,
    reclaim_times: Optional[FloatArray] = None,
) -> EpisodeBatch:
    """Simulate ``n`` episodes of an online policy, one episode at a time.

    ``policy(elapsed)`` returns the next period length proposed after
    surviving to ``elapsed``; ``None``, a non-positive value, or raising
    ``StopIteration`` ends the episode's dispatching.  Each episode makes at
    most ``max_periods`` policy calls.

    RNG contract: one ``p.sample_reclaim_times(rng, n)`` call for the whole
    batch, episodes in draw order (identical to the vectorized engine).
    """
    if n < 1:
        raise ValueError(f"need at least one episode, got n={n}")
    if reclaim_times is None:
        if rng is None:
            raise ValueError("provide either rng or reclaim_times")
        reclaim_times = p.sample_reclaim_times(rng, n)
    reclaim = np.asarray(reclaim_times, dtype=float)
    if reclaim.size != n:
        raise ValueError(f"reclaim_times has {reclaim.size} entries, expected {n}")

    works = np.empty(n, dtype=float)
    completed = np.empty(n, dtype=np.intp)
    for j in range(n):
        r = float(reclaim[j])
        elapsed = 0.0
        banked = 0.0
        k = 0
        for _ in range(max_periods):
            try:
                t = policy(elapsed)
            except StopIteration:
                break
            if t is None or t <= 0:
                break
            elapsed += t
            if elapsed < r:
                banked += max(0.0, t - c)
                k += 1
            else:
                break
        works[j] = banked
        completed[j] = k
    return EpisodeBatch(reclaim_times=reclaim, work=works, periods_completed=completed)
