"""JSON (de)serialization of schedules and guideline results.

A scheduling library's outputs get stored, shipped to dispatchers, and
compared across runs; this module provides a stable, versioned JSON format
for :class:`~repro.core.schedule.Schedule` and
:class:`~repro.core.guidelines.GuidelineResult`, with exact float round-trip
(`repr`-precision decimals).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from .core.guidelines import GuidelineResult
from .core.optimizer import OptimizationResult
from .core.recurrence import RecurrenceOutcome, Termination
from .core.schedule import Schedule
from .core.uniqueness import T0Landscape
from .exceptions import CycleStealingError
from .types import Bracket

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "guideline_result_to_dict",
    "guideline_result_from_dict",
    "recurrence_outcome_to_dict",
    "recurrence_outcome_from_dict",
    "optimization_result_to_dict",
    "optimization_result_from_dict",
    "t0_search_to_dict",
    "t0_search_from_dict",
    "t0_landscape_to_dict",
    "t0_landscape_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-ready representation of a schedule."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "schedule",
        "periods": [float(t) for t in schedule.periods],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a schedule; raises on unknown format versions."""
    _check(data, "schedule")
    return Schedule(data["periods"])


def guideline_result_to_dict(result: GuidelineResult) -> dict[str, Any]:
    """A JSON-ready representation of a guideline result (full provenance)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "guideline_result",
        "periods": [float(t) for t in result.schedule.periods],
        "expected_work": result.expected_work,
        "t0": result.t0,
        "bracket": [result.bracket.lo, result.bracket.hi],
        "termination": result.termination.value,
        "t0_strategy": result.t0_strategy,
    }


def guideline_result_from_dict(data: dict[str, Any]) -> GuidelineResult:
    """Rebuild a guideline result."""
    _check(data, "guideline_result")
    return GuidelineResult(
        schedule=Schedule(data["periods"]),
        expected_work=float(data["expected_work"]),
        t0=float(data["t0"]),
        bracket=Bracket(float(data["bracket"][0]), float(data["bracket"][1])),
        termination=Termination(data["termination"]),
        t0_strategy=str(data["t0_strategy"]),
    )


def recurrence_outcome_to_dict(outcome: RecurrenceOutcome) -> dict[str, Any]:
    """A JSON-ready representation of a recurrence outcome."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "recurrence_outcome",
        "periods": [float(t) for t in outcome.schedule.periods],
        "termination": outcome.termination.value,
        "targets": [float(t) for t in outcome.targets],
    }


def recurrence_outcome_from_dict(data: dict[str, Any]) -> RecurrenceOutcome:
    """Rebuild a recurrence outcome."""
    _check(data, "recurrence_outcome")
    return RecurrenceOutcome(
        schedule=Schedule(data["periods"]),
        termination=Termination(data["termination"]),
        targets=np.asarray(data["targets"], dtype=float),
    )


def optimization_result_to_dict(result: OptimizationResult) -> dict[str, Any]:
    """A JSON-ready representation of a numeric optimization result."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "optimization_result",
        "periods": [float(t) for t in result.schedule.periods],
        "expected_work": result.expected_work,
        "method": result.method,
        "converged": result.converged,
    }


def optimization_result_from_dict(data: dict[str, Any]) -> OptimizationResult:
    """Rebuild an optimization result."""
    _check(data, "optimization_result")
    return OptimizationResult(
        schedule=Schedule(data["periods"]),
        expected_work=float(data["expected_work"]),
        method=str(data["method"]),
        converged=bool(data["converged"]),
    )


def t0_search_to_dict(
    t0: float, outcome: RecurrenceOutcome, expected_work: float
) -> dict[str, Any]:
    """A JSON-ready representation of an ``optimize_t0_via_recurrence`` result."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "t0_search",
        "t0": float(t0),
        "expected_work": float(expected_work),
        "outcome": recurrence_outcome_to_dict(outcome),
    }


def t0_search_from_dict(data: dict[str, Any]) -> tuple[float, RecurrenceOutcome, float]:
    """Rebuild a ``(t0, outcome, expected work)`` search result."""
    _check(data, "t0_search")
    return (
        float(data["t0"]),
        recurrence_outcome_from_dict(data["outcome"]),
        float(data["expected_work"]),
    )


def t0_landscape_to_dict(landscape: T0Landscape) -> dict[str, Any]:
    """A JSON-ready representation of a sampled t0 landscape."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "t0_landscape",
        "t0_values": [float(t) for t in landscape.t0_values],
        "expected_work": [float(e) for e in landscape.expected_work],
    }


def t0_landscape_from_dict(data: dict[str, Any]) -> T0Landscape:
    """Rebuild a t0 landscape."""
    _check(data, "t0_landscape")
    return T0Landscape(
        t0_values=np.asarray(data["t0_values"], dtype=float),
        expected_work=np.asarray(data["expected_work"], dtype=float),
    )


def _check(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise CycleStealingError(
            f"expected serialized kind {kind!r}, got {data.get('kind')!r}"
        )
    if data.get("format") != _FORMAT_VERSION:
        raise CycleStealingError(
            f"unsupported format version {data.get('format')!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )


def dumps(obj: Schedule | GuidelineResult, indent: int | None = None) -> str:
    """Serialize a schedule or guideline result to a JSON string."""
    if isinstance(obj, Schedule):
        return json.dumps(schedule_to_dict(obj), indent=indent)
    if isinstance(obj, GuidelineResult):
        return json.dumps(guideline_result_to_dict(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Schedule | GuidelineResult:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "schedule":
        return schedule_from_dict(data)
    if kind == "guideline_result":
        return guideline_result_from_dict(data)
    raise CycleStealingError(f"unknown serialized kind {kind!r}")
