"""JSON (de)serialization of schedules and guideline results.

A scheduling library's outputs get stored, shipped to dispatchers, and
compared across runs; this module provides a stable, versioned JSON format
for :class:`~repro.core.schedule.Schedule` and
:class:`~repro.core.guidelines.GuidelineResult`, with exact float round-trip
(`repr`-precision decimals).
"""

from __future__ import annotations

import json
from typing import Any

from .core.guidelines import GuidelineResult
from .core.recurrence import Termination
from .core.schedule import Schedule
from .exceptions import CycleStealingError
from .types import Bracket

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "guideline_result_to_dict",
    "guideline_result_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-ready representation of a schedule."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "schedule",
        "periods": [float(t) for t in schedule.periods],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a schedule; raises on unknown format versions."""
    _check(data, "schedule")
    return Schedule(data["periods"])


def guideline_result_to_dict(result: GuidelineResult) -> dict[str, Any]:
    """A JSON-ready representation of a guideline result (full provenance)."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "guideline_result",
        "periods": [float(t) for t in result.schedule.periods],
        "expected_work": result.expected_work,
        "t0": result.t0,
        "bracket": [result.bracket.lo, result.bracket.hi],
        "termination": result.termination.value,
        "t0_strategy": result.t0_strategy,
    }


def guideline_result_from_dict(data: dict[str, Any]) -> GuidelineResult:
    """Rebuild a guideline result."""
    _check(data, "guideline_result")
    return GuidelineResult(
        schedule=Schedule(data["periods"]),
        expected_work=float(data["expected_work"]),
        t0=float(data["t0"]),
        bracket=Bracket(float(data["bracket"][0]), float(data["bracket"][1])),
        termination=Termination(data["termination"]),
        t0_strategy=str(data["t0_strategy"]),
    )


def _check(data: dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise CycleStealingError(
            f"expected serialized kind {kind!r}, got {data.get('kind')!r}"
        )
    if data.get("format") != _FORMAT_VERSION:
        raise CycleStealingError(
            f"unsupported format version {data.get('format')!r} "
            f"(this library reads version {_FORMAT_VERSION})"
        )


def dumps(obj: Schedule | GuidelineResult, indent: int | None = None) -> str:
    """Serialize a schedule or guideline result to a JSON string."""
    if isinstance(obj, Schedule):
        return json.dumps(schedule_to_dict(obj), indent=indent)
    if isinstance(obj, GuidelineResult):
        return json.dumps(guideline_result_to_dict(obj), indent=indent)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> Schedule | GuidelineResult:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "schedule":
        return schedule_from_dict(data)
    if kind == "guideline_result":
        return guideline_result_from_dict(data)
    raise CycleStealingError(f"unknown serialized kind {kind!r}")
