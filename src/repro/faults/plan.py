"""Seeded, composable fault plans for the NOW farm (the chaos harness).

The paper's draconian model admits exactly one adversity: the owner returns
and kills the in-flight period.  Real networks of workstations add more —
machines crash and restart, dispatch messages are lost or arrive late, the
per-period overhead ``c`` jitters with network load, results come back
corrupted, and the life function the master fitted last week drifts under its
feet.  A :class:`FaultPlan` composes any subset of these as declarative,
frozen injector specs; :meth:`FaultPlan.start` instantiates a
:class:`FaultRuntime` that the farm simulator consults at its hook points.

Reproducibility contract
------------------------
* The runtime draws from its **own** seeded generators (one independent
  stream per fault class), never from the farm's owner-process generator:
  enabling or disabling an injector cannot perturb the owner timeline, and a
  run is bit-reproducible from ``(seed, plan, workload)``.
* Every injected occurrence is recorded in a structured
  :class:`~repro.faults.log.FaultLog`, whose
  :meth:`~repro.faults.log.FaultLog.digest` certifies determinism.
* A plan with no injectors is *null*: the instrumented farm run is
  bit-identical to an uninstrumented one (differentially tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..exceptions import FaultPlanError
from .log import FaultLog

__all__ = [
    "CrashFault",
    "MessageLossFault",
    "MessageDelayFault",
    "OverheadJitterFault",
    "ResultCorruptionFault",
    "LifeDriftFault",
    "Injector",
    "DispatchFate",
    "FaultPlan",
    "FaultRuntime",
]


# ----------------------------------------------------------------------
# Injector specifications (declarative, frozen)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Workstations crash (Poisson, mean time between failures ``mtbf``) and
    restart ``restart_time`` later.  A crash kills the in-flight period — the
    work is lost exactly as under an owner reclaim — and the workstation
    accepts no dispatches until it restarts."""

    mtbf: float
    restart_time: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise FaultPlanError(f"crash mtbf must be positive, got {self.mtbf}")
        if self.restart_time < 0:
            raise FaultPlanError(
                f"restart_time must be nonnegative, got {self.restart_time}"
            )


@dataclass(frozen=True)
class MessageLossFault:
    """Each dispatch message is lost with probability ``prob``.  The bundle
    never reaches the workstation; the master only notices via its
    per-dispatch timeout (see :class:`repro.now.farm.RetryPolicy`)."""

    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(f"loss prob must lie in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class MessageDelayFault:
    """With probability ``prob`` a dispatch is delayed by an exponential
    extra latency of mean ``delay_mean`` before the period can start."""

    prob: float
    delay_mean: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(f"delay prob must lie in [0, 1], got {self.prob}")
        if self.delay_mean <= 0:
            raise FaultPlanError(
                f"delay_mean must be positive, got {self.delay_mean}"
            )


@dataclass(frozen=True)
class OverheadJitterFault:
    """Per-period overhead jitter ``c ~ D``: each dispatch pays
    ``c * exp(sigma * Z)`` with ``Z ~ N(0, 1)`` (lognormal multiplicative
    noise, median ``c``, mean ``c * exp(sigma^2 / 2)``)."""

    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise FaultPlanError(f"jitter sigma must be nonnegative, got {self.sigma}")


@dataclass(frozen=True)
class ResultCorruptionFault:
    """A completed period's results are corrupted with probability ``prob``:
    the bundle's tasks return to the pool and the period's work is wasted."""

    prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(f"corruption prob must lie in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class LifeDriftFault:
    """Mid-run life-function drift: from time ``at_fraction * horizon`` on,
    true absence durations are scaled by ``scale`` while the master keeps
    scheduling with its stale estimate (the misestimation scenario of
    :mod:`repro.analysis.robustness`, injected live)."""

    at_fraction: float = 0.5
    scale: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise FaultPlanError(
                f"at_fraction must lie in [0, 1], got {self.at_fraction}"
            )
        if self.scale <= 0:
            raise FaultPlanError(f"drift scale must be positive, got {self.scale}")


Injector = Union[
    CrashFault,
    MessageLossFault,
    MessageDelayFault,
    OverheadJitterFault,
    ResultCorruptionFault,
    LifeDriftFault,
]

_INJECTOR_TYPES = (
    CrashFault,
    MessageLossFault,
    MessageDelayFault,
    OverheadJitterFault,
    ResultCorruptionFault,
    LifeDriftFault,
)

#: Independent RNG sub-stream per fault class (spawn keys off the plan seed),
#: so enabling one injector never perturbs another's draws.
_STREAMS = {
    "crash": 0,
    "dispatch": 1,
    "commit": 2,
    "retry": 3,
}


@dataclass(frozen=True)
class DispatchFate:
    """What the fault layer decided about one dispatch message."""

    lost: bool = False
    delay: float = 0.0
    c_effective: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.lost and self.delay == 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, composable set of fault injectors.

    ``FaultPlan(seed=7, injectors=(MessageLossFault(0.3),))`` is a complete,
    serializable description of the adversity to inject; pass it to
    :func:`repro.now.farm.run_farm` via ``faults=``.  At most one injector
    per fault class is allowed (compose severities by constructing a new
    plan, not by stacking duplicates).
    """

    seed: int = 0
    injectors: tuple[Injector, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "injectors", tuple(self.injectors))
        kinds = [type(inj) for inj in self.injectors]
        for inj in self.injectors:
            if not isinstance(inj, _INJECTOR_TYPES):
                raise FaultPlanError(
                    f"unknown injector {inj!r}; expected one of "
                    f"{[t.__name__ for t in _INJECTOR_TYPES]}"
                )
        if len(set(kinds)) != len(kinds):
            raise FaultPlanError("at most one injector per fault class")

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not self.injectors

    def get(self, injector_type: type) -> Optional[Injector]:
        """The plan's injector of one class, or ``None``."""
        for inj in self.injectors:
            if isinstance(inj, injector_type):
                return inj
        return None

    def describe(self) -> dict:
        """JSON-ready description (class names and parameters)."""
        return {
            "seed": self.seed,
            "injectors": [
                {"kind": type(inj).__name__, **inj.__dict__}
                for inj in self.injectors
            ],
        }

    def start(self, ws_ids: Iterable[int], horizon: float) -> "FaultRuntime":
        """Instantiate the runtime for one farm run (fresh RNG streams, fresh log)."""
        return FaultRuntime(self, sorted(int(w) for w in ws_ids), float(horizon))


class FaultRuntime:
    """One farm run's live fault state: seeded streams, schedules, and log.

    Built by :meth:`FaultPlan.start`; consumed by
    :func:`repro.now.farm.run_farm` at its hook points.  All randomness comes
    from per-fault-class sub-streams of the plan seed, so the injected
    timeline for one fault class is invariant under toggling the others.
    """

    def __init__(self, plan: FaultPlan, ws_ids: Sequence[int], horizon: float) -> None:
        if horizon <= 0:
            raise FaultPlanError(f"horizon must be positive, got {horizon}")
        self.plan = plan
        self.horizon = horizon
        self.log = FaultLog()
        self._rngs = {
            name: np.random.default_rng([int(plan.seed), stream])
            for name, stream in _STREAMS.items()
        }
        self._crash = plan.get(CrashFault)
        self._loss = plan.get(MessageLossFault)
        self._delay = plan.get(MessageDelayFault)
        self._jitter = plan.get(OverheadJitterFault)
        self._corrupt = plan.get(ResultCorruptionFault)
        self._drift = plan.get(LifeDriftFault)
        self._drift_at = (
            self._drift.at_fraction * horizon if self._drift is not None else math.inf
        )
        self._drift_logged: set[int] = set()
        self._crash_schedule = {
            ws: self._generate_crashes(ws) for ws in ws_ids
        }

    # ------------------------------------------------------------------
    # Crash schedule (pre-generated, deterministic per (seed, ws_id))
    # ------------------------------------------------------------------

    def _generate_crashes(self, ws_id: int) -> list[tuple[float, float]]:
        """Poisson crash times over the horizon, as (crash, restart) pairs.

        Crashes landing inside a previous outage are dropped (a machine that
        is down cannot crash again), so outages never overlap.
        """
        if self._crash is None:
            return []
        rng = self._rngs["crash"]
        pairs: list[tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self._crash.mtbf))
            if t >= self.horizon:
                return pairs
            if pairs and t < pairs[-1][1]:
                continue  # still down from the previous crash
            pairs.append((t, t + self._crash.restart_time))

    def crash_schedule(self, ws_id: int) -> list[tuple[float, float]]:
        """The (crash time, restart time) outages planned for one workstation."""
        return list(self._crash_schedule.get(ws_id, []))

    def crash_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All planned outages flattened across workstations, as arrays.

        Returns ``(ws_ids, crash_times, restart_times)`` in sorted-host,
        chronological-per-host order — the order the farm seeds its event
        heap in, so a fleet engine can bulk-push the whole churn timeline
        without per-host Python loops.
        """
        ws_ids: list[int] = []
        crashes: list[float] = []
        restarts: list[float] = []
        for ws in sorted(self._crash_schedule):
            for crash_at, restart_at in self._crash_schedule[ws]:
                ws_ids.append(ws)
                crashes.append(crash_at)
                restarts.append(restart_at)
        return (
            np.asarray(ws_ids, dtype=np.int64),
            np.asarray(crashes, dtype=float),
            np.asarray(restarts, dtype=float),
        )

    def outage_time(self, ws_id: int, horizon: Optional[float] = None) -> float:
        """Total planned downtime for one workstation within the horizon."""
        end = self.horizon if horizon is None else float(horizon)
        total = 0.0
        for crash_at, restart_at in self._crash_schedule.get(ws_id, []):
            total += max(0.0, min(restart_at, end) - crash_at)
        return total

    # ------------------------------------------------------------------
    # Hook points (called by the farm in event order)
    # ------------------------------------------------------------------

    def dispatch_fate(self, ws_id: int, now: float, c: float) -> DispatchFate:
        """Decide loss / delay / effective overhead for one dispatch message."""
        rng = self._rngs["dispatch"]
        if self._loss is not None and self._loss.prob > 0.0:
            if float(rng.random()) < self._loss.prob:
                self.log.record(now, "message_loss", ws_id)
                return DispatchFate(lost=True, c_effective=c)
        delay = 0.0
        if self._delay is not None and self._delay.prob > 0.0:
            if float(rng.random()) < self._delay.prob:
                delay = float(rng.exponential(self._delay.delay_mean))
                self.log.record(now, "message_delay", ws_id, {"delay": delay})
        c_eff = c
        if self._jitter is not None and self._jitter.sigma > 0.0:
            factor = math.exp(self._jitter.sigma * float(rng.standard_normal()))
            c_eff = c * factor
            self.log.record(now, "overhead_jitter", ws_id, {"factor": factor})
        return DispatchFate(lost=False, delay=delay, c_effective=c_eff)

    def commit_corrupted(self, ws_id: int, now: float) -> bool:
        """Whether a completing period's results are corrupted."""
        if self._corrupt is None or self._corrupt.prob <= 0.0:
            return False
        if float(self._rngs["commit"].random()) < self._corrupt.prob:
            self.log.record(now, "result_corruption", ws_id)
            return True
        return False

    def absence_scale(self, ws_id: int, now: float) -> float:
        """Multiplier on the true absence duration drawn at episode start."""
        if self._drift is None or now < self._drift_at:
            return 1.0
        if ws_id not in self._drift_logged:
            self._drift_logged.add(ws_id)
            self.log.record(now, "life_drift", ws_id, {"scale": self._drift.scale})
        return self._drift.scale

    def drift_params(self) -> tuple[float, float]:
        """``(threshold time, scale)`` of the planned life drift.

        ``(inf, 1.0)`` when no drift fault is planned.  Lets bulk timeline
        planners (the fleet's batched core) bake the scaling into precomputed
        absence draws instead of calling :meth:`absence_scale` per value; the
        per-episode call is still required for its drift-log side effect.
        """
        if self._drift is None:
            return math.inf, 1.0
        return self._drift_at, self._drift.scale

    def retry_jitter(self) -> float:
        """A ``U[0, 1)`` draw for retry-backoff jitter (own stream)."""
        return float(self._rngs["retry"].random())

    def record_retry(self, ws_id: int, now: float, attempt: int, delay: float) -> None:
        """Log one scheduled dispatch retry (resilience, not adversity —
        recorded so chaos reports can audit the backoff behaviour)."""
        self.log.record(
            now, "retry", ws_id, {"attempt": float(attempt), "delay": delay}
        )
