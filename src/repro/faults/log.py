"""Structured fault logs: every injected event, bit-reproducibly.

A chaos run is only useful if it can be replayed and audited.  The
:class:`FaultLog` records each injected event — crashes, lost and delayed
dispatch messages, overhead jitter draws, corrupted results, life-function
drift — as an immutable :class:`FaultEvent` in injection order.  Because the
fault runtime draws from its own seeded generator (never the farm's), the log
is a pure function of ``(seed, plan, workload)``: two runs with the same
inputs produce byte-identical logs, which :meth:`FaultLog.digest` certifies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

__all__ = ["FaultEvent", "FaultLog"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence.

    ``kind`` names the fault class (``"crash"``, ``"restart"``,
    ``"message_loss"``, ``"message_delay"``, ``"overhead_jitter"``,
    ``"result_corruption"``, ``"life_drift"``, ``"retry"``); ``detail``
    carries kind-specific scalars (delay, factor, attempt number, ...).
    """

    time: float
    kind: str
    ws_id: int
    detail: tuple[tuple[str, float], ...] = ()

    @classmethod
    def make(
        cls, time: float, kind: str, ws_id: int,
        detail: Optional[Mapping[str, float]] = None,
    ) -> "FaultEvent":
        """Build an event with the detail mapping canonicalized (sorted)."""
        items = tuple(sorted((str(k), float(v)) for k, v in (detail or {}).items()))
        return cls(time=float(time), kind=str(kind), ws_id=int(ws_id), detail=items)

    def as_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "ws_id": self.ws_id,
            "detail": dict(self.detail),
        }


@dataclass
class FaultLog:
    """An append-only record of injected fault events, in injection order."""

    events: list[FaultEvent] = field(default_factory=list)

    def record(
        self, time: float, kind: str, ws_id: int,
        detail: Optional[Mapping[str, float]] = None,
    ) -> FaultEvent:
        """Append one event and return it."""
        event = FaultEvent.make(time, kind, ws_id, detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> list[FaultEvent]:
        """All events of one fault class, in injection order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event count per fault class."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready list of event dicts (stable field order)."""
        return [e.as_dict() for e in self.events]

    def digest(self) -> str:
        """SHA-256 over the canonical serialization — the determinism witness.

        Floats are rendered via ``float.hex`` so the digest is exact, not
        repr-rounded; two logs share a digest iff they are bit-identical.
        """
        h = hashlib.sha256()
        for e in self.events:
            h.update(
                json.dumps(
                    [e.time.hex(), e.kind, e.ws_id,
                     [[k, v.hex()] for k, v in e.detail]],
                    separators=(",", ":"),
                ).encode()
            )
        return h.hexdigest()
