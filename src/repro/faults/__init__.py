"""Fault injection for the NOW farm: seeded chaos, structured logs.

The package turns the fault-free reproduction into a system whose
expected-work claims can be stress-tested under injected adversity:

* :class:`FaultPlan` — a seeded, composable, declarative set of injectors
  (crash/restart, dispatch message loss and delay, per-period overhead
  jitter, result corruption, mid-run life-function drift);
* :class:`FaultRuntime` — the per-run live state the farm consults, with
  independent RNG streams per fault class;
* :class:`FaultLog` / :class:`FaultEvent` — the structured, digest-certified
  record of every injected occurrence.

Runs stay bit-reproducible from ``(seed, plan, workload)``, and a plan with
no injectors leaves the farm bit-identical to an uninstrumented run.
"""

from .log import FaultEvent, FaultLog
from .plan import (
    CrashFault,
    DispatchFate,
    FaultPlan,
    FaultRuntime,
    Injector,
    LifeDriftFault,
    MessageDelayFault,
    MessageLossFault,
    OverheadJitterFault,
    ResultCorruptionFault,
)

__all__ = [
    "FaultEvent",
    "FaultLog",
    "CrashFault",
    "MessageLossFault",
    "MessageDelayFault",
    "OverheadJitterFault",
    "ResultCorruptionFault",
    "LifeDriftFault",
    "Injector",
    "DispatchFate",
    "FaultPlan",
    "FaultRuntime",
]
