"""Synthetic owner-usage traces.

The paper assumes the instantaneous reclaim probability is known, "garnered
possibly from trace data that exposes B's owner's computer usage patterns"
(Section 1).  Real traces are proprietary; this module generates synthetic
ones whose *absence-duration* distributions are exactly the paper's life
functions (or mixtures thereof), so the full pipeline — trace → survival
estimate → smooth fit → guideline schedule — can be exercised end to end
(experiment EV-TRACE).

A trace is an alternating sequence of *present* and *absent* intervals.  Each
absent interval is one cycle-stealing opportunity; its duration is the
episode's reclaim time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..exceptions import TraceError
from ..types import FloatArray

__all__ = [
    "OwnerTrace",
    "DurationSampler",
    "life_function_sampler",
    "exponential_sampler",
    "lognormal_sampler",
    "generate_trace",
    "diurnal_trace",
]

#: A sampler draws ``size`` i.i.d. durations given a generator.
DurationSampler = Callable[[np.random.Generator, int], FloatArray]


@dataclass(frozen=True)
class OwnerTrace:
    """An owner's recorded presence/absence history.

    ``absences`` holds completed absence durations; ``censored_absences``
    holds absences still in progress when recording stopped (right-censored
    observations for the Kaplan-Meier estimator).
    """

    absences: FloatArray
    presences: FloatArray
    censored_absences: FloatArray
    horizon: float

    def __post_init__(self) -> None:
        for name in ("absences", "presences", "censored_absences"):
            arr = getattr(self, name)
            if arr.size and np.any(arr <= 0):
                raise TraceError(f"{name} must contain positive durations")

    @property
    def n_opportunities(self) -> int:
        """Completed cycle-stealing opportunities observed."""
        return int(self.absences.size)

    @property
    def utilization(self) -> float:
        """Fraction of the horizon during which the owner was present."""
        if self.horizon <= 0:
            return 0.0
        return float(self.presences.sum() / self.horizon)


def life_function_sampler(p: LifeFunction) -> DurationSampler:
    """Durations distributed per life function ``p`` (``P(D > t) = p(t)``)."""

    def sample(rng: np.random.Generator, size: int) -> FloatArray:
        return p.sample_reclaim_times(rng, size)

    return sample


def exponential_sampler(mean: float) -> DurationSampler:
    """Memoryless durations with the given mean."""
    if mean <= 0:
        raise TraceError(f"mean must be positive, got {mean}")

    def sample(rng: np.random.Generator, size: int) -> FloatArray:
        return rng.exponential(mean, size=size)

    return sample


def lognormal_sampler(median: float, sigma: float) -> DurationSampler:
    """Right-skewed durations (heavy upper tail)."""
    if median <= 0 or sigma < 0:
        raise TraceError(f"need median > 0, sigma >= 0; got {median}, {sigma}")

    def sample(rng: np.random.Generator, size: int) -> FloatArray:
        return median * np.exp(rng.normal(0.0, sigma, size=size))

    return sample


def generate_trace(
    rng: np.random.Generator,
    horizon: float,
    absent_sampler: DurationSampler,
    present_sampler: DurationSampler,
    start_present: bool = True,
) -> OwnerTrace:
    """Simulate an alternating-renewal owner over ``[0, horizon]``.

    The final interval, if absent and cut off by the horizon, is recorded as a
    censored absence.
    """
    if horizon <= 0:
        raise TraceError(f"horizon must be positive, got {horizon}")
    absences: list[float] = []
    presences: list[float] = []
    censored: list[float] = []
    t = 0.0
    present = start_present
    # Draw in blocks to amortize sampler overhead.
    block = 256
    pres_buf: list[float] = []
    abs_buf: list[float] = []
    while t < horizon:
        if present:
            if not pres_buf:
                pres_buf = list(present_sampler(rng, block))
            d = float(pres_buf.pop())
            if d <= 0:
                raise TraceError("present sampler produced a non-positive duration")
            presences.append(min(d, horizon - t))
            t += d
        else:
            if not abs_buf:
                abs_buf = list(absent_sampler(rng, block))
            d = float(abs_buf.pop())
            if d <= 0:
                raise TraceError("absent sampler produced a non-positive duration")
            if t + d <= horizon:
                absences.append(d)
            else:
                censored.append(horizon - t)
            t += d
        present = not present
    return OwnerTrace(
        absences=np.asarray(absences, dtype=float),
        presences=np.asarray(presences, dtype=float),
        censored_absences=np.asarray(censored, dtype=float),
        horizon=horizon,
    )


def diurnal_trace(
    rng: np.random.Generator,
    n_days: int,
    day_absent: DurationSampler,
    night_length_hours: float = 14.0,
    work_hours: float = 10.0,
    day_present_mean_hours: float = 0.75,
) -> OwnerTrace:
    """A day/night owner pattern (hours as the time unit).

    During each working day the owner alternates presence (exponential mean
    ``day_present_mean_hours``) with absences drawn from ``day_absent``
    (meetings, breaks).  Each night contributes one long absence of
    ``night_length_hours`` — the overnight cycle-stealing bonanza the NOW
    literature motivates.
    """
    if n_days < 1:
        raise TraceError(f"need at least one day, got {n_days}")
    absences: list[float] = []
    presences: list[float] = []
    t = 0.0
    for _ in range(n_days):
        day_end = t + work_hours
        present = True
        while t < day_end:
            if present:
                d = float(rng.exponential(day_present_mean_hours))
                presences.append(min(d, day_end - t))
            else:
                d = float(day_absent(rng, 1)[0])
                if t + d <= day_end:
                    absences.append(d)
                else:
                    # The absence runs into the night: extend it.
                    d = (day_end - t) + night_length_hours
                    absences.append(d)
                    t = day_end
                    break
            t += d
            present = not present
        else:
            absences.append(night_length_hours)
        t = day_end + night_length_hours
    return OwnerTrace(
        absences=np.asarray(absences, dtype=float),
        presences=np.asarray(presences, dtype=float),
        censored_absences=np.asarray([], dtype=float),
        horizon=t,
    )
