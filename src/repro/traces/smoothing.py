"""Smooth (differentiable) life functions from empirical survival curves.

The paper's guidelines need a differentiable ``p``; an empirical survival
curve is a step function.  "One would likely encapsulate even trace data by
some well-behaved curve" (Section 1) — here a monotone PCHIP interpolant
through quantile-thinned survival points, which is :math:`C^1`, preserves
monotonicity (no spurious oscillation), and supplies the derivative the
Corollary 3.1 recurrence requires.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import PchipInterpolator

from ..core.life_functions import LifeFunction, Shape
from ..core.life_functions.shape import detect_shape
from ..exceptions import TraceError
from ..types import FloatArray
from .survival import SurvivalCurve

__all__ = ["SmoothedLifeFunction", "smooth_survival"]


class SmoothedLifeFunction(LifeFunction):
    """A ``C^1`` monotone interpolant through survival points.

    Construct via :func:`smooth_survival`.  The support is finite — the last
    knot pins ``p`` to 0 — so the finite-lifespan results (Section 5) apply
    whenever the detected shape is concave.
    """

    def __init__(self, knot_times: FloatArray, knot_survival: FloatArray) -> None:
        super().__init__()
        times = np.asarray(knot_times, dtype=float)
        surv = np.asarray(knot_survival, dtype=float)
        if times.size < 3:
            raise TraceError(f"need at least 3 knots, got {times.size}")
        if times[0] != 0.0 or abs(surv[0] - 1.0) > 1e-12:
            raise TraceError("first knot must be (0, 1)")
        if abs(surv[-1]) > 1e-12:
            raise TraceError("last knot must pin survival to 0")
        if np.any(np.diff(times) <= 0) or np.any(np.diff(surv) >= 0):
            raise TraceError("knots must strictly decrease in survival over increasing time")
        self._interp = PchipInterpolator(times, surv, extrapolate=False)
        self._deriv = self._interp.derivative()
        self._lifespan = float(times[-1])
        self.knot_times = times
        self.knot_survival = surv
        self._detected_shape: Shape | None = None

    def _evaluate(self, t: FloatArray) -> FloatArray:
        out = self._interp(np.minimum(t, self._lifespan))
        return np.nan_to_num(np.asarray(out, dtype=float), nan=0.0)

    def _derivative(self, t: FloatArray) -> FloatArray:
        out = self._deriv(np.minimum(t, self._lifespan))
        return np.nan_to_num(np.asarray(out, dtype=float), nan=0.0)

    @property
    def lifespan(self) -> float:
        return self._lifespan

    @property
    def shape(self) -> Shape:
        """Shape detected numerically on first access (cached)."""
        if self._detected_shape is None:
            # Bypass the declared-shape shortcut in detect's callers by
            # probing directly; tolerance is loose because PCHIP derivatives
            # wiggle at knots.
            self._detected_shape = detect_shape(self, n_points=257, tol=1e-6)
        return self._detected_shape


def smooth_survival(
    curve: SurvivalCurve,
    n_knots: int = 24,
    tail_extension: float = 1.02,
) -> SmoothedLifeFunction:
    """Thin a survival curve to quantile knots and fit the smooth interpolant.

    Parameters
    ----------
    curve:
        An empirical survival estimate (Kaplan-Meier or ECDF).
    n_knots:
        Number of interior knots, spread evenly in *survival* space so flat
        tails do not waste resolution.
    tail_extension:
        The support is extended to ``tail_extension * support_end`` with the
        final knot at survival 0 — a smooth landing for curves that stop
        above 0 (heavy censoring).
    """
    if n_knots < 2:
        raise TraceError(f"need at least 2 interior knots, got {n_knots}")
    if tail_extension < 1.0:
        raise TraceError(f"tail_extension must be >= 1, got {tail_extension}")
    # Target survival levels, descending from just below 1 toward 0.
    levels = np.linspace(1.0, 0.0, n_knots + 2)[1:-1]
    padded_times = np.concatenate(([0.0], curve.times))
    padded_surv = np.concatenate(([1.0], curve.survival))
    # For each level, the first time survival drops to or below it.
    knot_t: list[float] = [0.0]
    knot_s: list[float] = [1.0]
    for level in levels:
        idx = int(np.searchsorted(-padded_surv, -level, side="left"))
        if idx >= padded_times.size:
            break
        t = float(padded_times[idx])
        s = float(padded_surv[idx])
        if t > knot_t[-1] and s < knot_s[-1]:
            knot_t.append(t)
            knot_s.append(s)
    end = max(curve.support_end * tail_extension, knot_t[-1] * tail_extension)
    if end <= knot_t[-1]:
        end = knot_t[-1] * (1.0 + 1e-9) + 1e-12
    knot_t.append(end)
    knot_s.append(0.0)
    if len(knot_t) < 3:
        raise TraceError(
            "survival curve too coarse to smooth (fewer than 3 usable knots); "
            "provide more observations"
        )
    return SmoothedLifeFunction(np.asarray(knot_t), np.asarray(knot_s))
