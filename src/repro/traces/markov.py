"""Markov-modulated owner behaviour.

Real owners are not renewal processes: a professor in "teaching week" mode
produces short absences for days, then a "conference" state produces week-long
ones.  This module models the owner as a discrete-state Markov chain —  one
transition per presence/absence cycle — with state-specific presence and
absence duration samplers.

The induced *marginal* absence distribution is the stationary mixture of the
per-state distributions, so the paper's machinery applies with a
:class:`~repro.core.life_functions.MixtureLife`; but consecutive absences are
*correlated*, which is exactly what the progressive (conditional) scheduler
can exploit and the plain guideline cannot.  Experiment material for the
"approximate knowledge" story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import TraceError
from ..types import FloatArray
from .synthetic import DurationSampler, OwnerTrace

__all__ = ["MarkovOwnerModel", "markov_trace"]


@dataclass(frozen=True)
class MarkovOwnerModel:
    """A state-modulated owner.

    ``transition[i, j]`` is the probability of moving from state ``i`` to
    ``j`` at the end of each presence/absence cycle; samplers are indexed by
    state.
    """

    transition: FloatArray
    present_samplers: Sequence[DurationSampler]
    absent_samplers: Sequence[DurationSampler]

    def __post_init__(self) -> None:
        t = np.asarray(self.transition, dtype=float)
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise TraceError(f"transition must be square, got shape {t.shape}")
        n = t.shape[0]
        if len(self.present_samplers) != n or len(self.absent_samplers) != n:
            raise TraceError("need one present and one absent sampler per state")
        if np.any(t < 0) or not np.allclose(t.sum(axis=1), 1.0, atol=1e-9):
            raise TraceError("transition rows must be nonnegative and sum to 1")

    @property
    def n_states(self) -> int:
        return int(np.asarray(self.transition).shape[0])

    def stationary(self) -> FloatArray:
        """Stationary distribution of the cycle-level chain (left eigenvector)."""
        t = np.asarray(self.transition, dtype=float)
        values, vectors = np.linalg.eig(t.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()


def markov_trace(
    rng: np.random.Generator,
    horizon: float,
    model: MarkovOwnerModel,
    start_state: int = 0,
    start_present: bool = True,
) -> tuple[OwnerTrace, np.ndarray]:
    """Simulate a Markov-modulated owner over ``[0, horizon]``.

    Returns the trace plus the state active during each *completed* absence
    (aligned with ``trace.absences``) — ground truth for evaluating
    state-aware schedulers.
    """
    if horizon <= 0:
        raise TraceError(f"horizon must be positive, got {horizon}")
    if not 0 <= start_state < model.n_states:
        raise TraceError(f"start_state {start_state} out of range")
    transition = np.asarray(model.transition, dtype=float)
    absences: list[float] = []
    presences: list[float] = []
    censored: list[float] = []
    states: list[int] = []
    t = 0.0
    state = start_state
    present = start_present
    while t < horizon:
        if present:
            d = float(model.present_samplers[state](rng, 1)[0])
            if d <= 0:
                raise TraceError("present sampler produced a non-positive duration")
            presences.append(min(d, horizon - t))
            t += d
            present = False
        else:
            d = float(model.absent_samplers[state](rng, 1)[0])
            if d <= 0:
                raise TraceError("absent sampler produced a non-positive duration")
            if t + d <= horizon:
                absences.append(d)
                states.append(state)
            else:
                censored.append(horizon - t)
            t += d
            present = True
            state = int(rng.choice(model.n_states, p=transition[state]))
    trace = OwnerTrace(
        absences=np.asarray(absences, dtype=float),
        presences=np.asarray(presences, dtype=float),
        censored_absences=np.asarray(censored, dtype=float),
        horizon=horizon,
    )
    return trace, np.asarray(states, dtype=int)
