"""Fitting analytic life-function families to absence-duration data.

The paper: guideline results "extend easily to situations wherein this
knowledge is approximate, garnered possibly from trace data", and even trace
data would be encapsulated "by some well-behaved curve".  This module fits
each Section 4 family by maximum likelihood (with closed forms wherever the
family allows) and selects among candidates by Kolmogorov-Smirnov distance to
the empirical survival curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from ..exceptions import FittingError
from ..types import FloatArray
from .survival import ecdf_survival

__all__ = [
    "FitResult",
    "fit_uniform",
    "fit_polynomial",
    "fit_geometric_decreasing",
    "fit_geometric_increasing",
    "fit_weibull",
    "ks_distance",
    "fit_best",
]


@dataclass(frozen=True)
class FitResult:
    """A fitted life function plus goodness-of-fit diagnostics."""

    life: LifeFunction
    family: str
    log_likelihood: float
    ks: float

    def __repr__(self) -> str:
        return (
            f"FitResult({self.family}, loglik={self.log_likelihood:.4g}, "
            f"ks={self.ks:.4g}, life={self.life!r})"
        )


def _check(durations: FloatArray) -> FloatArray:
    arr = np.asarray(durations, dtype=float)
    if arr.size < 2:
        raise FittingError(f"need at least 2 durations to fit, got {arr.size}")
    if np.any(arr <= 0):
        raise FittingError("durations must be positive")
    return arr


def ks_distance(p: LifeFunction, durations: FloatArray) -> float:
    """Sup-distance between the fitted survival and the empirical one."""
    arr = _check(durations)
    curve = ecdf_survival(arr)
    fitted = np.asarray(p(np.minimum(curve.times, p.lifespan)), dtype=float)
    # Compare on both sides of each step (the ECDF jumps there).
    upper = np.concatenate(([1.0], curve.survival[:-1]))
    return float(
        max(np.max(np.abs(fitted - curve.survival)), np.max(np.abs(fitted - upper)))
    )


def _result(p: LifeFunction, family: str, loglik: float, durations: FloatArray) -> FitResult:
    return FitResult(life=p, family=family, log_likelihood=loglik, ks=ks_distance(p, durations))


def fit_uniform(durations: FloatArray, inflate: bool = True) -> FitResult:
    """Fit ``UniformRisk``: density ``1/L`` on ``[0, L]``.

    The raw MLE is ``L = max(durations)``, which puts the largest observation
    on the boundary (fitted survival 0 there).  ``inflate`` applies the
    standard ``(n+1)/n`` correction for a less biased lifespan.
    """
    arr = _check(durations)
    n = arr.size
    lifespan = float(arr.max()) * ((n + 1) / n if inflate else 1.0)
    loglik = -n * math.log(lifespan)
    return _result(UniformRisk(lifespan), "uniform", loglik, arr)


def fit_polynomial(
    durations: FloatArray, d_max: int = 8, inflate: bool = True
) -> FitResult:
    """Fit ``PolynomialRisk`` with integer degree chosen by likelihood.

    Density ``d t^{d-1} / L^d`` on ``[0, L]``; for each ``d`` the lifespan MLE
    is the sample maximum, and the profile log-likelihood
    ``n log d + (d-1) sum log t - n d log L`` ranks the degrees.
    """
    arr = _check(durations)
    n = arr.size
    lifespan = float(arr.max()) * ((n + 1) / n if inflate else 1.0)
    sum_log = float(np.sum(np.log(arr)))
    best_d, best_ll = 1, -math.inf
    for d in range(1, d_max + 1):
        ll = n * math.log(d) + (d - 1) * sum_log - n * d * math.log(lifespan)
        if ll > best_ll:
            best_d, best_ll = d, ll
    return _result(PolynomialRisk(best_d, lifespan), f"polynomial(d={best_d})", best_ll, arr)


def fit_geometric_decreasing(durations: FloatArray) -> FitResult:
    """Fit ``a^{-t}`` — exponential with rate ``ln a``; MLE rate = 1/mean."""
    arr = _check(durations)
    rate = 1.0 / float(arr.mean())
    a = math.exp(rate)
    loglik = arr.size * math.log(rate) - rate * float(arr.sum())
    return _result(GeometricDecreasingLifespan(a), "geometric_decreasing", loglik, arr)


def fit_geometric_increasing(durations: FloatArray, inflate: bool = True) -> FitResult:
    """Fit the coffee-break family ``(2^L - 2^t)/(2^L - 1)``.

    Density ``2^t ln 2 / (2^L - 1)`` on ``[0, L]`` is decreasing in ``L``, so
    the MLE lifespan is the sample maximum (optionally inflated).
    """
    arr = _check(durations)
    n = arr.size
    lifespan = float(arr.max()) * ((n + 1) / n if inflate else 1.0)
    ln2 = math.log(2.0)
    loglik = ln2 * float(arr.sum()) + n * math.log(ln2) - n * math.log(2**lifespan - 1.0)
    return _result(GeometricIncreasingRisk(lifespan), "geometric_increasing", loglik, arr)


def fit_weibull(durations: FloatArray) -> FitResult:
    """Fit ``exp(-(t/scale)^k)`` by MLE (scipy, location pinned to 0)."""
    from scipy import stats

    arr = _check(durations)
    k, _loc, scale = stats.weibull_min.fit(arr, floc=0.0)
    if k <= 0 or scale <= 0:
        raise FittingError(f"Weibull MLE failed: k={k}, scale={scale}")
    loglik = float(np.sum(stats.weibull_min.logpdf(arr, k, loc=0.0, scale=scale)))
    return _result(WeibullLife(k=float(k), scale=float(scale)), "weibull", loglik, arr)


#: Default candidate fitters for model selection.
_DEFAULT_FITTERS: Sequence[Callable[[FloatArray], FitResult]] = (
    fit_uniform,
    fit_polynomial,
    fit_geometric_decreasing,
    fit_geometric_increasing,
    fit_weibull,
)


def fit_best(
    durations: FloatArray,
    fitters: Optional[Sequence[Callable[[FloatArray], FitResult]]] = None,
    criterion: str = "ks",
) -> FitResult:
    """Fit every candidate family and return the best.

    ``criterion``: ``"ks"`` (smallest Kolmogorov-Smirnov distance — the
    default, robust across families with different parameter counts) or
    ``"loglik"`` (largest log-likelihood).
    """
    if criterion not in ("ks", "loglik"):
        raise ValueError(f"criterion must be 'ks' or 'loglik', got {criterion!r}")
    arr = _check(durations)
    results: list[FitResult] = []
    for fitter in fitters if fitters is not None else _DEFAULT_FITTERS:
        try:
            results.append(fitter(arr))
        except FittingError:
            continue
    if not results:
        raise FittingError("every candidate family failed to fit")
    if criterion == "ks":
        return min(results, key=lambda r: r.ks)
    return max(results, key=lambda r: r.log_likelihood)
