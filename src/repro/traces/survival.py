"""Empirical survival estimation from absence durations.

The bridge from trace data to the paper's life functions: estimate
``p(t) = P(absence > t)`` from observed (possibly right-censored) absence
durations.  The Kaplan-Meier product-limit estimator handles censoring —
absences still in progress when recording stopped contribute partial
information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import TraceError
from ..types import FloatArray

__all__ = ["SurvivalCurve", "kaplan_meier", "ecdf_survival"]


@dataclass(frozen=True)
class SurvivalCurve:
    """A right-continuous step estimate of a survival function.

    ``times`` are the (sorted, unique) event times; ``survival[i]`` is the
    estimated ``P(D > times[i])``.  ``survival`` starts below 1 (the curve
    implicitly equals 1 on ``[0, times[0])``).
    """

    times: FloatArray
    survival: FloatArray
    n_observations: int
    n_censored: int

    def __post_init__(self) -> None:
        if self.times.size != self.survival.size:
            raise TraceError("times and survival must have equal length")
        if self.times.size and (
            np.any(np.diff(self.times) <= 0)
            or np.any(np.diff(self.survival) > 1e-12)
        ):
            raise TraceError("times must increase and survival must not")

    def evaluate(self, t: FloatArray) -> FloatArray:
        """Step-function evaluation ``P(D > t)`` (vectorized).

        Right-continuous: at an event time the step has already happened
        (``P(D > t)`` counts only durations strictly greater than ``t``).
        """
        arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times, arr, side="right")
        padded = np.concatenate(([1.0], self.survival))
        out = padded[idx]
        return float(out) if np.ndim(t) == 0 else out

    @property
    def support_end(self) -> float:
        """The largest observed time (where the estimate stops)."""
        return float(self.times[-1]) if self.times.size else 0.0


def kaplan_meier(
    durations: FloatArray, censored: Optional[FloatArray] = None
) -> SurvivalCurve:
    """Kaplan-Meier product-limit estimator of the absence survival function.

    Parameters
    ----------
    durations:
        Completed absence durations (events).
    censored:
        Right-censored durations (absences whose end was not observed).

    Notes
    -----
    With no censoring this reduces exactly to the empirical survival function
    (tested against :func:`ecdf_survival`).
    """
    events = np.asarray(durations, dtype=float)
    cens = np.asarray(censored, dtype=float) if censored is not None else np.array([])
    if events.size == 0:
        raise TraceError("Kaplan-Meier needs at least one completed duration")
    if np.any(events <= 0) or (cens.size and np.any(cens <= 0)):
        raise TraceError("durations must be positive")

    all_times = np.concatenate([events, cens])
    is_event = np.concatenate([np.ones(events.size, bool), np.zeros(cens.size, bool)])
    order = np.argsort(all_times, kind="stable")
    all_times = all_times[order]
    is_event = is_event[order]

    unique_times, first_idx = np.unique(all_times, return_index=True)
    n = all_times.size
    # at_risk[j]: subjects with duration >= unique_times[j]
    at_risk = n - first_idx
    deaths = np.zeros(unique_times.size)
    np.add.at(deaths, np.searchsorted(unique_times, all_times[is_event]), 1.0)

    with np.errstate(invalid="ignore"):
        factors = 1.0 - deaths / at_risk
    survival = np.cumprod(factors)

    event_mask = deaths > 0
    return SurvivalCurve(
        times=unique_times[event_mask],
        survival=np.minimum.accumulate(survival[event_mask]),
        n_observations=int(n),
        n_censored=int(cens.size),
    )


def ecdf_survival(durations: FloatArray) -> SurvivalCurve:
    """Plain empirical survival ``1 - ECDF`` (no censoring)."""
    events = np.asarray(durations, dtype=float)
    if events.size == 0:
        raise TraceError("empirical survival needs at least one duration")
    if np.any(events <= 0):
        raise TraceError("durations must be positive")
    unique_times, counts = np.unique(events, return_counts=True)
    remaining = events.size - np.cumsum(counts)
    return SurvivalCurve(
        times=unique_times,
        survival=remaining / events.size,
        n_observations=int(events.size),
        n_censored=0,
    )
