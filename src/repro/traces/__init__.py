"""Owner-usage traces: synthesis, survival estimation, fitting, smoothing.

The trace → life-function pipeline the paper sketches in Section 1:
record absence durations, estimate their survival function, and encapsulate
it in a smooth curve the guidelines can consume.
"""

from .fitting import (
    FitResult,
    fit_best,
    fit_geometric_decreasing,
    fit_geometric_increasing,
    fit_polynomial,
    fit_uniform,
    fit_weibull,
    ks_distance,
)
from .markov import MarkovOwnerModel, markov_trace
from .smoothing import SmoothedLifeFunction, smooth_survival
from .survival import SurvivalCurve, ecdf_survival, kaplan_meier
from .synthetic import (
    DurationSampler,
    OwnerTrace,
    diurnal_trace,
    exponential_sampler,
    generate_trace,
    life_function_sampler,
    lognormal_sampler,
)

__all__ = [
    "OwnerTrace",
    "DurationSampler",
    "generate_trace",
    "diurnal_trace",
    "life_function_sampler",
    "exponential_sampler",
    "lognormal_sampler",
    "SurvivalCurve",
    "kaplan_meier",
    "ecdf_survival",
    "FitResult",
    "fit_best",
    "fit_uniform",
    "fit_polynomial",
    "fit_geometric_decreasing",
    "fit_geometric_increasing",
    "fit_weibull",
    "ks_distance",
    "SmoothedLifeFunction",
    "smooth_survival",
    "MarkovOwnerModel",
    "markov_trace",
]
