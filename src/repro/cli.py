"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``schedule``
    Compute a guideline schedule for a named life-function family and print
    the bracket, periods, and expected work.
``compare``
    Compare guideline / greedy / progressive / exact-optimal expected work
    for one family instance.
``fit``
    Read absence durations (one float per line, ``-`` for stdin), fit every
    family, and print the best schedule for a given overhead.
``mc``
    Monte-Carlo validation of eq. (2.1): simulate episodes of the guideline
    schedule on a chosen engine (``--engine vectorized|jit|scalar``) and
    compare the sample mean against the analytic expected work.
``t0opt``
    Optimize ``t_0`` over the Corollary 3.1 recurrence family on a chosen
    search engine (``--engine batch|jit|scalar``) and grid resolution,
    printing the chosen ``t_0``, period count, and expected work.
``plancache``
    Manage the schedule plan cache and precomputed guideline tables:
    ``warm`` sweeps the per-family ``(c, parameter)`` grids and persists
    ``t0*``/``E*`` tables, ``query`` serves a schedule from the tables
    (optimizer fallback outside bounds), ``stats`` reports cache contents,
    ``clear`` empties the disk tier.
``servebench``
    Load-generator benchmark for the serving stack: a Zipf-skewed query
    stream served scalar, batched (``serve_batch``), and open-loop through
    the micro-batching front door, reporting throughput, p50/p95/p99
    latency, the batch speedup, and a bit-identical parity check
    (``--quick`` for the ~2 s tier-1 smoke, ``--out BENCH_serving.json``
    for the nightly artifact).  ``--workers N`` switches to the sharded
    multi-worker tier: a scaling curve over 1..N shard processes, each
    count bit-parity gated against the single-process server
    (``--out BENCH_shard.json``; ``--min-scaling`` opts into the
    throughput gate on multi-core hosts).  ``--engine jit`` benchmarks the
    compiled :mod:`repro.jitkernels` serving engines (single-process only;
    errors when numba is unavailable).

``--engine jit`` anywhere requires the optional numba extra
(``pip install 'repro[jit]'``); naming it without usable numba is an error
on the CLI, while library callers degrade transparently to NumPy.
``chaos``
    Run the fault-matrix sweep (every fault class x a rate grid x seeds)
    through the resilient farm + serving stack, print the goodput
    degradation summary, and optionally write the ``BENCH_chaos.json``
    artifact via ``--out``.
``fleet``
    Multi-host fleet simulation on the vectorized event core: plan
    guideline schedules for every host in one batched call, then advance
    all hosts through one event loop under a dispatch policy
    (``sharing`` / ``stealing`` / ``stealing-latency``; default all
    three), printing makespan, goodput, steal rate, events/sec, and the
    mean-field makespan error per policy.  ``--core`` picks the event
    core (``batched`` calendar queue, default, or the ``heap`` oracle)
    and ``--bucket-width`` tunes the batched core's bucket span.
    ``--quick`` is the tier-1 smoke: the n = 1 bit-parity gate against
    ``run_farm`` for both cores plus the batched-vs-heap cross-core gate
    (hard failures) and a small 16-host policy table.  ``--profile``
    wraps the run in cProfile and prints the top hotspots.  ``--out``
    writes the JSON record.

``compare`` and ``t0opt`` accept ``--cache-dir`` to ride the plan cache:
repeated invocations for the same family instance are answered from disk.

Examples
--------
::

    python -m repro schedule --family uniform --lifespan 480 --c 3
    python -m repro schedule --family geomdec --a 1.1 --c 0.5 --t0-strategy mid
    python -m repro compare --family geominc --lifespan 30 --c 1
    python -m repro fit durations.txt --c 2.0
    python -m repro mc --family uniform --lifespan 480 --c 3 --n 200000
    python -m repro t0opt --family uniform --lifespan 480 --c 3 --grid 257
    python -m repro plancache warm --family uniform --grid-points 9
    python -m repro plancache query --family uniform --c 2.4 --value 333
    python -m repro plancache stats
    python -m repro servebench --quick
    python -m repro servebench --out BENCH_serving.json --min-speedup 10
    python -m repro servebench --workers 2 --quick
    python -m repro servebench --workers 8 --out BENCH_shard.json
    python -m repro chaos --quick
    python -m repro chaos --out BENCH_chaos.json --rates 0 0.45 0.9
    python -m repro fleet --quick
    python -m repro fleet --hosts 1000 --policy stealing --seed 7
    python -m repro fleet --hosts 100000 --core heap --policy sharing
    python -m repro fleet --hosts 1000 --profile --profile-top 15
    python -m repro fleet --hosts 100 --hetero --out fleet.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from . import core
from .analysis.tables import format_table
from .analysis.tables_precompute import TABLE_FAMILIES

__all__ = ["main", "build_parser", "make_life_function"]


def make_life_function(args: argparse.Namespace) -> core.LifeFunction:
    """Construct the life function a CLI invocation names."""
    family = args.family
    if family == "uniform":
        return core.UniformRisk(_require(args, "lifespan"))
    if family == "poly":
        return core.PolynomialRisk(int(_require(args, "d")), _require(args, "lifespan"))
    if family == "geomdec":
        return core.GeometricDecreasingLifespan(_require(args, "a"))
    if family == "geominc":
        return core.GeometricIncreasingRisk(_require(args, "lifespan"))
    if family == "weibull":
        return core.WeibullLife(k=_require(args, "k"), scale=_require(args, "scale"))
    raise SystemExit(f"unknown family: {family}")


def _require(args: argparse.Namespace, name: str) -> float:
    value = getattr(args, name, None)
    if value is None:
        raise SystemExit(f"--{name.replace('_', '-')} is required for --family {args.family}")
    return float(value)


def _add_family_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", required=True,
                        choices=["uniform", "poly", "geomdec", "geominc", "weibull"])
    parser.add_argument("--lifespan", "--L", dest="lifespan", type=float,
                        help="potential lifespan L (uniform/poly/geominc)")
    parser.add_argument("--d", type=int, help="polynomial degree (poly)")
    parser.add_argument("--a", type=float, help="risk factor a > 1 (geomdec)")
    parser.add_argument("--k", type=float, help="Weibull shape")
    parser.add_argument("--scale", type=float, help="Weibull scale")
    parser.add_argument("--c", type=float, required=True,
                        help="communication overhead per period")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cycle-stealing scheduling guidelines (Rosenberg, 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sched = sub.add_parser("schedule", help="compute a guideline schedule")
    _add_family_args(p_sched)
    p_sched.add_argument("--t0", type=float, default=None,
                         help="explicit initial period (skips the search)")
    p_sched.add_argument("--t0-strategy", default="optimize",
                         choices=["optimize", "lower", "mid", "upper"])

    p_cmp = sub.add_parser("compare", help="guideline vs greedy vs optimal")
    _add_family_args(p_cmp)
    p_cmp.add_argument("--cache-dir", default=None,
                       help="plan-cache directory; repeat runs hit the cache")

    p_fit = sub.add_parser("fit", help="fit a life function to durations and schedule")
    p_fit.add_argument("path", help="file of absence durations, one per line ('-' = stdin)")
    p_fit.add_argument("--c", type=float, required=True)

    p_mc = sub.add_parser("mc", help="Monte-Carlo validation of eq. (2.1)")
    _add_family_args(p_mc)
    p_mc.add_argument("--n", type=int, default=100_000,
                      help="number of simulated episodes (default 100000)")
    p_mc.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    p_mc.add_argument("--engine", default="vectorized",
                      choices=["vectorized", "jit", "scalar"],
                      help="batch simulation engine (default vectorized; "
                           "jit needs the numba extra)")
    p_mc.add_argument("--confidence", type=float, default=0.95,
                      help="CI coverage probability (default 0.95)")

    p_t0 = sub.add_parser("t0opt", help="optimize t0 over the recurrence family")
    _add_family_args(p_t0)
    p_t0.add_argument("--engine", default="batch",
                      choices=["batch", "jit", "scalar"],
                      help="recurrence search engine (default batch; "
                           "jit needs the numba extra)")
    p_t0.add_argument("--grid", type=int, default=129,
                      help="t0 grid resolution over the bracket (default 129)")
    p_t0.add_argument("--widen", type=float, default=1.5,
                      help="bracket widening factor (default 1.5)")
    p_t0.add_argument("--cache-dir", default=None,
                      help="plan-cache directory; repeat runs hit the cache")

    p_pc = sub.add_parser("plancache",
                          help="manage the plan cache and precomputed tables")
    pc_sub = p_pc.add_subparsers(dest="action", required=True)

    pc_warm = pc_sub.add_parser("warm", help="precompute per-family guideline tables")
    pc_warm.add_argument("--family", action="append", default=None,
                         choices=sorted(TABLE_FAMILIES),
                         help="family to warm (repeatable; default: all)")
    pc_warm.add_argument("--cache-dir", default=None,
                         help="cache directory (default: $REPRO_CACHE_DIR or XDG)")
    pc_warm.add_argument("--grid-points", type=int, default=17,
                         help="points per table axis (default 17)")
    pc_warm.add_argument("--search-grid", type=int, default=129,
                         help="t0 search resolution per grid point (default 129)")
    pc_warm.add_argument("--n-jobs", type=int, default=None,
                         help="process-pool workers for the sweep (default serial)")

    pc_query = pc_sub.add_parser("query", help="serve a schedule from the tables")
    pc_query.add_argument("--family", required=True, choices=sorted(TABLE_FAMILIES))
    pc_query.add_argument("--c", type=float, required=True,
                          help="communication overhead per period")
    pc_query.add_argument("--value", type=float, required=True,
                          help="family parameter (L for uniform/poly/geominc, a for geomdec)")
    pc_query.add_argument("--cache-dir", default=None)
    pc_query.add_argument("--no-polish", action="store_true",
                          help="skip the 1-D polish of the interpolated t0")

    pc_stats = pc_sub.add_parser("stats", help="report cache and table contents")
    pc_stats.add_argument("--cache-dir", default=None)

    pc_clear = pc_sub.add_parser("clear", help="empty the disk cache tier")
    pc_clear.add_argument("--cache-dir", default=None)
    pc_clear.add_argument("--tables", action="store_true",
                          help="also delete the precomputed tables")

    p_sb = sub.add_parser(
        "servebench",
        help="load-generator benchmark: scalar vs batched plan serving")
    p_sb.add_argument("--queries", type=int, default=1024,
                      help="stream length (default 1024)")
    p_sb.add_argument("--batch-size", type=int, default=256,
                      help="serve_batch chunk size (default 256)")
    p_sb.add_argument("--distinct", type=int, default=64,
                      help="distinct query pool size (default 64)")
    p_sb.add_argument("--skew", type=float, default=1.1,
                      help="Zipf popularity exponent (default 1.1)")
    p_sb.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    p_sb.add_argument("--grid-points", type=int, default=9,
                      help="warmed table resolution per axis (default 9)")
    p_sb.add_argument("--search-grid", type=int, default=129,
                      help="t0 search resolution while warming (default 129)")
    p_sb.add_argument("--quick", action="store_true",
                      help="~2s smoke config: one family, tiny table, short stream")
    p_sb.add_argument("--out", default=None,
                      help="write the JSON record here (e.g. BENCH_serving.json)")
    p_sb.add_argument("--min-speedup", type=float, default=None,
                      help="fail (exit 1) if batch speedup falls below this")
    p_sb.add_argument("--workers", type=int, default=None, metavar="N",
                      help="sharded mode: scaling curve over 1..N worker "
                           "processes (powers of two), bit-parity gated "
                           "against the single-process server")
    p_sb.add_argument("--min-scaling", type=float, default=None,
                      help="with --workers: fail (exit 1) if best aggregate "
                           "throughput over the workers=1 run falls below "
                           "this (opt-in: flat on single-core hosts)")
    p_sb.add_argument("--mp-method", default=None,
                      choices=("fork", "spawn", "forkserver"),
                      help="multiprocessing start method (default: platform)")
    p_sb.add_argument("--engine", default="numpy", choices=("numpy", "jit"),
                      help="serving recurrence engine (default numpy; jit "
                           "needs the numba extra and is single-process "
                           "only — not combinable with --workers)")

    p_chaos = sub.add_parser(
        "chaos", help="fault-matrix sweep: goodput under injected faults")
    p_chaos.add_argument("--out", default=None,
                         help="write the JSON report here (e.g. BENCH_chaos.json)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="short horizon, one seed (the tier-1 smoke config)")
    p_chaos.add_argument("--classes", nargs="+", default=None,
                         help="fault classes to sweep (default: all)")
    p_chaos.add_argument("--rates", nargs="+", type=float,
                         default=[0.0, 0.45, 0.9],
                         help="increasing fault rates in [0, 1] (default: 0 0.45 0.9)")
    p_chaos.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2],
                         help="cell seeds to average over (default: 0 1 2)")

    p_fleet = sub.add_parser(
        "fleet",
        help="multi-host fleet simulation: share/steal dispatch at scale")
    p_fleet.add_argument("--hosts", type=int, default=100,
                         help="number of hosts (default 100)")
    p_fleet.add_argument("--policy", default="all",
                         choices=("all",) + tuple(
                             ("sharing", "stealing", "stealing-latency")),
                         help="dispatch policy (default: all three)")
    p_fleet.add_argument("--family", default="uniform",
                         choices=["uniform", "poly", "geomdec", "geominc"],
                         help="owner life-function family (default uniform)")
    p_fleet.add_argument("--hetero", action="store_true",
                         help="heterogeneous hosts: log-uniform draws of "
                              "(c, parameter, speed, presence) per host")
    p_fleet.add_argument("--work-per-host", type=float, default=None,
                         help="task time per host (default 128, or 32 in "
                              "hetero mode)")
    p_fleet.add_argument("--task-duration", type=float, default=0.03125,
                         help="uniform task duration (default 0.03125; keep "
                              "dyadic for exact parity)")
    p_fleet.add_argument("--horizon", type=float, default=None,
                         help="simulation horizon (default: 4x the "
                              "mean-field makespan)")
    p_fleet.add_argument("--steal-fraction", type=float, default=0.5,
                         help="fraction of the victim pool a steal takes "
                              "(default 0.5)")
    p_fleet.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    p_fleet.add_argument("--grid", type=int, default=9,
                         help="t0 grid lanes per host while planning (default 9)")
    p_fleet.add_argument("--engine", default="numpy", choices=("numpy", "jit"),
                         help="schedule-planning recurrence engine (default "
                              "numpy; jit needs the numba extra)")
    p_fleet.add_argument("--core", default="batched",
                         choices=("batched", "heap"),
                         help="event core: bucketed calendar queue (default) "
                              "or the scalar binary-heap oracle")
    p_fleet.add_argument("--bucket-width", type=float, default=None,
                         help="calendar-queue bucket width in simulated time "
                              "(batched core only; default: auto)")
    p_fleet.add_argument("--quick", action="store_true",
                         help="tier-1 smoke: n=1 parity gate vs run_farm for "
                              "both cores + the batched-vs-heap cross-core "
                              "gate + a 16-host policy table (~2s)")
    p_fleet.add_argument("--profile", action="store_true",
                         help="run under cProfile and print the top hotspots "
                              "by cumulative time")
    p_fleet.add_argument("--profile-top", type=int, default=20,
                         help="rows in the --profile hotspot table "
                              "(default 20)")
    p_fleet.add_argument("--out", default=None,
                         help="write the JSON record here")
    return parser


def _cmd_schedule(args: argparse.Namespace) -> int:
    p = make_life_function(args)
    result = core.guideline_schedule(
        p, args.c, t0=args.t0, t0_strategy=args.t0_strategy
    )
    print(f"life function : {p!r}")
    print(f"t0 bracket    : [{result.bracket.lo:.4g}, {result.bracket.hi:.4g}]")
    print(f"t0 chosen     : {result.t0:.6g}  (strategy: {result.t0_strategy})")
    print(f"periods ({result.schedule.num_periods}):")
    print("  " + ", ".join(f"{t:.4g}" for t in result.schedule.periods))
    print(f"expected work : {result.expected_work:.6g}")
    print(f"termination   : {result.termination.value}")
    return 0


def _make_cache(args: argparse.Namespace) -> Optional[core.PlanCache]:
    """A disk-backed plan cache when ``--cache-dir`` was given."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    return core.default_plan_cache(cache_dir)


def _cmd_compare(args: argparse.Namespace) -> int:
    p = make_life_function(args)
    c = args.c
    cache = _make_cache(args)
    rows = []
    guided = core.guideline_schedule(p, c, cache=cache)
    rows.append(["guideline", guided.schedule.num_periods, guided.expected_work])
    greedy = core.greedy_schedule(p, c)
    rows.append(["greedy", greedy.num_periods, greedy.expected_work(p, c)])
    prog = core.progressive_schedule(p, c)
    rows.append(["progressive", prog.num_periods, prog.expected_work(p, c)])
    optimal = core.optimize_schedule(p, c, cache=cache)
    rows.append(["optimal (NLP)", optimal.num_periods, optimal.expected_work])
    print(format_table(["strategy", "periods", "expected work"], rows,
                       title=f"{p!r}, c = {c}"))
    if cache is not None:
        s = cache.stats
        print(f"plan cache    : {s.hits} memory + {s.disk_hits} disk hits, "
              f"{s.misses} misses")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .traces import fit_best

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path) as fh:
            text = fh.read()
    durations = np.array([float(tok) for tok in text.split()], dtype=float)
    if durations.size < 2:
        raise SystemExit("need at least 2 durations")
    fit = fit_best(durations)
    print(f"fitted: {fit.family}  (KS distance {fit.ks:.4f}, "
          f"loglik {fit.log_likelihood:.4g})")
    result = core.guideline_schedule(fit.life, args.c)
    print(f"schedule ({result.schedule.num_periods} periods): "
          + ", ".join(f"{t:.4g}" for t in result.schedule.periods))
    print(f"expected work: {result.expected_work:.6g}")
    return 0


def _check_jit_engine(engine: str) -> None:
    """Fail fast when the user *names* the jit engine without usable numba.

    The library's ``engine="jit"`` degrades silently to NumPy, which is
    right for programmatic callers but would misreport what the CLI actually
    benchmarked — so an explicit ``--engine jit`` errors instead.
    """
    if engine != "jit":
        return
    from . import jitkernels
    from .exceptions import JITUnavailableError

    try:
        jitkernels.require("--engine jit")
    except JITUnavailableError as exc:
        raise SystemExit(str(exc)) from None


def _cmd_mc(args: argparse.Namespace) -> int:
    from .simulation import estimate_expected_work

    _check_jit_engine(args.engine)
    if not 0.0 < args.confidence < 1.0:
        raise SystemExit(f"--confidence must lie in (0, 1), got {args.confidence}")
    p = make_life_function(args)
    result = core.guideline_schedule(p, args.c)
    rng = np.random.default_rng(args.seed)
    est = estimate_expected_work(
        result.schedule, p, args.c, n=args.n, rng=rng, engine=args.engine
    )
    z = abs(est.mean - result.expected_work) / max(est.stderr, 1e-15)
    lo, hi = est.ci(args.confidence)
    print(f"life function : {p!r}")
    print(f"engine        : {args.engine}  (n = {args.n:,}, seed = {args.seed})")
    print(f"analytic E    : {result.expected_work:.6g}")
    print(f"MC mean       : {est.mean:.6g} ± {est.stderr:.3g}")
    print(f"{100 * args.confidence:.0f}% CI        : [{lo:.6g}, {hi:.6g}]")
    print(f"|z|           : {z:.3f}")
    print(f"consistent    : {est.consistent_with(result.expected_work)}")
    return 0 if est.consistent_with(result.expected_work, z=4.5) else 1


def _cmd_t0opt(args: argparse.Namespace) -> int:
    _check_jit_engine(args.engine)
    if args.grid < 2:
        raise SystemExit(f"--grid must be >= 2, got {args.grid}")
    p = make_life_function(args)
    t0, outcome, ew = core.optimize_t0_via_recurrence(
        p, args.c, grid=args.grid, widen=args.widen, engine=args.engine,
        cache=_make_cache(args),
    )
    print(f"life function : {p!r}")
    print(f"engine        : {args.engine}  (grid = {args.grid}, widen = {args.widen})")
    print(f"t0 chosen     : {t0:.6g}")
    print(f"periods       : {outcome.schedule.num_periods}")
    print(f"termination   : {outcome.termination.value}")
    print(f"expected work : {ew:.6g}")
    return 0


def _cmd_plancache(args: argparse.Namespace) -> int:
    import shutil
    import time

    from .analysis.tables_precompute import (
        TableServer,
        default_grids,
        load_table,
        table_path,
    )

    cache_dir = args.cache_dir or str(core.default_cache_dir())

    if args.action == "warm":
        families = args.family or sorted(TABLE_FAMILIES)
        if args.grid_points < 2:
            raise SystemExit(f"--grid-points must be >= 2, got {args.grid_points}")
        grids = {
            fam: tuple(np.geomspace(g[0], g[-1], args.grid_points)
                       for g in default_grids(fam))
            for fam in families
        }
        server = TableServer(cache_dir=cache_dir)
        start = time.perf_counter()
        built = server.warm(families=families, n_jobs=args.n_jobs,
                            search_grid=args.search_grid, grids=grids)
        elapsed = time.perf_counter() - start
        for fam, table in built.items():
            n_c, n_p = table.shape
            print(f"warmed {fam:8s}: {n_c}x{n_p} grid "
                  f"(c in [{table.c_grid[0]:.3g}, {table.c_grid[-1]:.3g}], "
                  f"{table.param_name} in "
                  f"[{table.param_grid[0]:.3g}, {table.param_grid[-1]:.3g}]) "
                  f"-> {table_path(cache_dir, fam)}")
        print(f"{len(built)} table(s) in {elapsed:.2f}s, cache dir {cache_dir}")
        return 0

    if args.action == "query":
        server = TableServer(cache_dir=cache_dir,
                             cache=core.default_plan_cache(cache_dir))
        answer = server.query(args.family, args.c, args.value,
                              polish=not args.no_polish)
        print(f"family        : {args.family} "
              f"({TABLE_FAMILIES[args.family][0]} = {args.value}, c = {args.c})")
        print(f"source        : {answer.source}")
        print(f"t0            : {answer.t0:.6g}")
        print(f"periods       : {answer.schedule.num_periods}")
        print(f"expected work : {answer.expected_work:.6g}")
        print(f"latency       : {server.counters['seconds'] * 1e3:.2f} ms")
        return 0

    if args.action == "stats":
        cache = core.PlanCache(cache_dir=cache_dir)
        print(f"cache dir     : {cache_dir}")
        print(f"schema        : v{core.CACHE_SCHEMA_VERSION}")
        print(f"disk entries  : {cache.disk_entries()}")
        lat = cache.stats.latency.percentiles()
        print(f"latency (this process): "
              f"p50 {lat['p50'] * 1e3:.3f} ms, p95 {lat['p95'] * 1e3:.3f} ms, "
              f"p99 {lat['p99'] * 1e3:.3f} ms "
              f"over {cache.stats.latency.count} sample(s)")
        for fam in sorted(TABLE_FAMILIES):
            path = table_path(cache_dir, fam)
            table = load_table(path)
            if table is None:
                status = "missing" if not path.exists() else "corrupt/incompatible"
                print(f"table {fam:8s}: {status}")
            else:
                n_c, n_p = table.shape
                print(f"table {fam:8s}: {n_c}x{n_p} grid at {path}")
        return 0

    if args.action == "clear":
        cache = core.PlanCache(cache_dir=cache_dir)
        n_entries = cache.disk_entries()
        cache.clear(memory=True, disk=True)
        print(f"cleared {n_entries} cache entr{'y' if n_entries == 1 else 'ies'} "
              f"under {cache_dir}")
        if args.tables:
            tables_root = table_path(cache_dir, "x").parent
            n_tables = len(list(tables_root.glob("*.npz"))) if tables_root.is_dir() else 0
            shutil.rmtree(tables_root, ignore_errors=True)
            print(f"cleared {n_tables} precomputed table(s)")
        return 0

    raise SystemExit(f"unknown plancache action {args.action}")  # pragma: no cover


def _cmd_servebench(args: argparse.Namespace) -> int:
    import json

    from .analysis.loadgen import run_servebench

    _check_jit_engine(args.engine)
    if args.workers is not None:
        if args.engine == "jit":
            raise SystemExit(
                "--engine jit is not supported with --workers; the sharded "
                "tier benchmarks the NumPy engines (drop --workers to "
                "benchmark the jit engine single-process)"
            )
        return _cmd_servebench_sharded(args)
    record = run_servebench(
        queries=args.queries,
        batch_size=args.batch_size,
        distinct=args.distinct,
        skew=args.skew,
        seed=args.seed,
        quick=args.quick,
        grid_points=args.grid_points,
        search_grid=args.search_grid,
        engine=args.engine,
    )
    cfg = record["config"]
    print(f"servebench    : {cfg['queries']} queries, batch {cfg['batch_size']}, "
          f"{cfg['distinct']} distinct (zipf skew {cfg['skew']:g}), "
          f"families {', '.join(cfg['families'])}")
    print(f"tables warmed : {record['warm_seconds']:.2f}s "
          f"({cfg['grid_points']}x{cfg['grid_points']} per family)")
    for mode in ("scalar", "batched", "open_loop"):
        if mode not in record:
            continue
        r = record[mode]
        print(f"{mode:13s}: {r['throughput_qps']:10.0f} q/s   "
              f"p50 {r['p50'] * 1e3:7.3f} ms  p95 {r['p95'] * 1e3:7.3f} ms  "
              f"p99 {r['p99'] * 1e3:7.3f} ms")
    print(f"batch speedup : {record['batch_speedup']:.1f}x  "
          f"(parity: {'ok' if record['parity_ok'] else 'FAILED'}, "
          f"{record['batched_stats']['coalesced']} duplicate(s) coalesced)")
    if args.out is not None:
        out = Path(args.out)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {out}")
    ok = record["parity_ok"] and record["batched"]["throughput_qps"] > 0
    if args.min_speedup is not None and record["batch_speedup"] < args.min_speedup:
        print(f"FAIL: batch speedup {record['batch_speedup']:.1f}x "
              f"< required {args.min_speedup:g}x")
        ok = False
    return 0 if ok else 1


def _cmd_servebench_sharded(args: argparse.Namespace) -> int:
    """The ``--workers N`` branch: sharded scaling curve + parity gate."""
    import json

    from .analysis.loadgen import run_shard_scaling

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    counts = [1]
    while counts[-1] * 2 <= args.workers:
        counts.append(counts[-1] * 2)
    if counts[-1] != args.workers:
        counts.append(args.workers)

    record = run_shard_scaling(
        queries=args.queries,
        batch_size=args.batch_size,
        distinct=args.distinct,
        skew=args.skew,
        seed=args.seed,
        quick=args.quick,
        grid_points=args.grid_points,
        search_grid=args.search_grid,
        workers=counts,
        mp_method=args.mp_method,
    )
    cfg = record["config"]
    print(f"shard scaling : {cfg['queries']} queries, batch {cfg['batch_size']}, "
          f"{cfg['distinct']} distinct (zipf skew {cfg['skew']:g}), "
          f"families {', '.join(cfg['families'])}, "
          f"{record['cpu_count']} cpu(s)")
    print(f"tables warmed : {record['warm_seconds']:.2f}s (shared mmap dir)")
    sp = record["single_process"]
    print(f"single-proc   : {sp['throughput_qps']:10.0f} q/s   "
          f"p50 {sp['p50'] * 1e3:7.3f} ms  p95 {sp['p95'] * 1e3:7.3f} ms  "
          f"p99 {sp['p99'] * 1e3:7.3f} ms")
    for entry in record["scaling"]:
        scale = record["scaling_vs_one"][str(entry["workers"])]
        print(f"workers={entry['workers']:<5d}: {entry['throughput_qps']:10.0f} q/s   "
              f"p50 {entry['p50'] * 1e3:7.3f} ms  p95 {entry['p95'] * 1e3:7.3f} ms  "
              f"p99 {entry['p99'] * 1e3:7.3f} ms  "
              f"x{scale:.2f}  (parity: {'ok' if entry['parity_ok'] else 'FAILED'})")
    print(f"best scaling  : {record['best_scaling']:.2f}x over workers=1  "
          f"(parity: {'ok' if record['parity_ok'] else 'FAILED'})")
    if args.out is not None:
        out = Path(args.out)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {out}")
    ok = record["parity_ok"]
    if args.min_scaling is not None and record["best_scaling"] < args.min_scaling:
        print(f"FAIL: best scaling {record['best_scaling']:.2f}x "
              f"< required {args.min_scaling:g}x")
        ok = False
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import time

    from .analysis.chaos import chaos_matrix, report_to_json

    start = time.perf_counter()
    report = chaos_matrix(
        classes=args.classes, rates=args.rates, seeds=args.seeds, quick=args.quick
    )
    elapsed = time.perf_counter() - start
    rows = [
        [fc, ", ".join(f"{g:.3f}" for g in s["mean_goodput"]),
         "yes" if s["monotone"] else "NO",
         "yes" if s["degrades"] else "NO"]
        for fc, s in report["summary"].items()
    ]
    rate_label = "goodput @ " + ", ".join(f"{r:g}" for r in report["rates"])
    print(format_table(["fault class", rate_label, "monotone", "degrades"], rows,
                       title=f"chaos matrix ({len(report['cells'])} cells, "
                             f"{elapsed:.1f}s)"))
    if args.out is not None:
        path = report_to_json(report, args.out)
        print(f"wrote {path}")
    healthy = all(
        s["monotone"] and s["degrades"] for s in report["summary"].values()
    )
    return 0 if healthy else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import time

    from .analysis.fleetbench import (
        auto_horizon,
        cross_core_check,
        fleet_workload,
        parity_check,
        run_policy_comparison,
    )
    from .now.fleet import FLEET_POLICIES, FleetSpec, plan_fleet_schedules

    _check_jit_engine(args.engine)
    if args.hosts < 1:
        raise SystemExit(f"--hosts must be >= 1, got {args.hosts}")
    policies = FLEET_POLICIES if args.policy == "all" else (args.policy,)

    if args.quick:
        ok = True
        for core in ("batched", "heap"):
            start = time.perf_counter()
            gate = parity_check(seed=args.seed + 7, family=args.family,
                                core=core)
            print(f"n=1 parity [{core:>7}]: "
                  f"{'ok' if gate['ok'] else 'FAILED'} "
                  f"({gate['checks']} checks, "
                  f"{time.perf_counter() - start:.1f}s)")
            for line in gate["mismatches"]:
                print(f"  MISMATCH {line}")
            ok = ok and gate["ok"]
        start = time.perf_counter()
        gate = cross_core_check(seed=args.seed + 7, family=args.family)
        print(f"cross-core parity  : {'ok' if gate['ok'] else 'FAILED'} "
              f"({gate['checks']} checks, {time.perf_counter() - start:.1f}s)")
        for line in gate["mismatches"]:
            print(f"  MISMATCH {line}")
        if not (ok and gate["ok"]):
            return 1
        n_hosts, work = 16, 8.0
    else:
        n_hosts = args.hosts
        work = args.work_per_host
        if work is None:
            work = 32.0 if args.hetero else 128.0

    if args.hetero:
        spec = FleetSpec.heterogeneous(n_hosts, family=args.family,
                                       seed=args.seed)
    else:
        spec = FleetSpec.homogeneous(n_hosts, family=args.family,
                                     seed=args.seed)
    durations = fleet_workload(n_hosts, work, args.task_duration)
    plan = plan_fleet_schedules(spec, grid=args.grid, engine=args.engine)
    horizon = args.horizon
    if horizon is None:
        horizon = auto_horizon(spec, plan, float(np.sum(durations)))
    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
    record = run_policy_comparison(
        spec, durations, horizon, policies=policies, plan=plan,
        grid=args.grid, engine=args.engine, steal_fraction=args.steal_fraction,
        core=args.core, bucket_width=args.bucket_width,
    )
    if args.profile:
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(max(1, args.profile_top))
        print(buf.getvalue().rstrip())

    rows = []
    for name, r in record["policies"].items():
        mf_err = r["mean_field"]["makespan_rel_error"]
        rows.append([
            name,
            "yes" if r["finished"] else "NO",
            f"{r['makespan']:.4g}",
            f"{r['goodput']:.4g}",
            f"{r['steal_rate']:.3f}",
            f"{r['events']:,}",
            f"{r['events_per_sec']:,.0f}",
            "-" if mf_err is None else f"{100 * mf_err:.1f}%",
        ])
    print(format_table(
        ["policy", "done", "makespan", "goodput", "steal rate", "events",
         "events/s", "mf err"],
        rows,
        title=f"fleet: {n_hosts} hosts, {record['tasks']:,} tasks, "
              f"{record['family']}{' hetero' if args.hetero else ''}, "
              f"horizon {horizon:.4g}, {args.core} core",
    ))
    if args.out is not None:
        out = Path(args.out)
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit status."""
    args = build_parser().parse_args(argv)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "fit":
        return _cmd_fit(args)
    if args.command == "mc":
        return _cmd_mc(args)
    if args.command == "t0opt":
        return _cmd_t0opt(args)
    if args.command == "plancache":
        return _cmd_plancache(args)
    if args.command == "servebench":
        return _cmd_servebench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    raise SystemExit(f"unknown command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
