"""repro — reproduction of Rosenberg (1998), *Guidelines for Data-Parallel
Cycle-Stealing in Networks of Workstations, I* (UMass CMPSCI TR 98-15 /
IPPS'98).

The library implements the paper's scheduling guidelines for the draconian
cycle-stealing model — where reclaimed workstations kill all work in progress
— together with every substrate needed to evaluate them: the analytic life
functions, exact optima from [3], a numeric ground-truth optimizer, a
Monte-Carlo episode simulator, a discrete-event network-of-workstations
substrate with trace-driven owner models, and baseline chunking policies.

Quickstart
----------
>>> import repro
>>> p = repro.UniformRisk(lifespan=1000.0)     # risk uniform over 1000 time units
>>> result = repro.guideline_schedule(p, c=4.0)
>>> result.schedule.num_periods > 1             # a finite, decreasing schedule
True

See ``examples/quickstart.py`` and the README for more.
"""

from .core import *  # noqa: F401,F403 - curated re-export (see core.__all__)
from .core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = list(_core_all) + ["__version__"]
