"""Exception hierarchy for the cycle-stealing reproduction library.

All library-raised errors derive from :class:`CycleStealingError` so callers can
catch the library's failures without swallowing programming errors.
"""

from __future__ import annotations


class CycleStealingError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidScheduleError(CycleStealingError):
    """A schedule violates a structural requirement (e.g. non-positive period)."""


class InvalidLifeFunctionError(CycleStealingError):
    """A life function violates the model requirements of Section 2.1.

    Life functions must satisfy ``p(0) == 1``, be non-increasing, and tend to 0
    (at the lifespan bound L when one exists, or in the limit otherwise).
    """


class SupportError(CycleStealingError):
    """A time value lies outside the life function's support ``[0, L]``."""


class RecurrenceTerminated(CycleStealingError):
    """The Corollary 3.1 recurrence cannot be continued from the current state.

    Raised internally when the recurrence target falls outside the range of the
    life function (the schedule must end); public generators catch this and
    finalize the schedule instead of propagating.
    """


class NoOptimalScheduleError(CycleStealingError):
    """The life function admits no optimal schedule (Corollary 3.2 test failed)."""


class ConvergenceError(CycleStealingError):
    """A numerical routine (root find, NLP, fixed point) failed to converge."""


class BracketError(ConvergenceError):
    """A root-bracketing search could not locate a sign change."""


class SimulationError(CycleStealingError):
    """The discrete-event or Monte-Carlo simulator reached an invalid state."""


class WorkloadError(CycleStealingError):
    """A data-parallel workload specification is invalid or exhausted."""


class TraceError(CycleStealingError):
    """An owner-usage trace is malformed or insufficient for estimation."""


class SweepError(CycleStealingError):
    """A parameter-sweep worker failed; the message names the offending params.

    :func:`repro.analysis.sweeps.run_sweep` wraps worker exceptions in this
    type so a failure deep inside a process pool still reports *which*
    parameter point broke.  The original exception is chained as
    ``__cause__`` and its repr is embedded in the message (process pools
    cannot always pickle arbitrary causes across the IPC boundary).
    """

    def __init__(self, message: str, params: dict | None = None) -> None:
        super().__init__(message)
        self.params = params or {}

    def __reduce__(self):  # keep picklability across ProcessPoolExecutor
        return (type(self), (self.args[0], self.params))


class PlanCacheError(CycleStealingError):
    """The schedule plan cache hit an unrecoverable state.

    Recoverable problems (corrupt disk entries, unwritable cache dirs) are
    absorbed and counted in :class:`repro.core.plancache.CacheStats`; this is
    raised only for caller errors such as invalid cache configuration.
    """


class FaultPlanError(CycleStealingError):
    """A fault-injection plan is malformed (bad probabilities, duplicates)."""


class FaultInjectionError(CycleStealingError):
    """An injected fault fired (chaos testing).

    Raised by the serving-stack chaos hooks to simulate a tier outage; the
    resilience machinery (circuit breakers, fallback chains, degraded-mode
    policies) is expected to absorb it.  ``tier`` names the injected site.
    """

    def __init__(self, tier: str, message: str | None = None) -> None:
        super().__init__(message or f"injected fault in tier {tier!r}")
        self.tier = tier


class PlanServingError(CycleStealingError):
    """Every tier of the plan-serving fallback chain failed for a query."""


class ShardingError(CycleStealingError):
    """The sharded multi-worker serving tier hit an unrecoverable state."""


class ShardProtocolError(ShardingError):
    """A framed shard message is malformed (bad magic, length, or checksum).

    Raised on the *receiving* side of the worker pipe protocol when a frame
    fails validation — a truncated payload, a checksum mismatch, or bytes
    that were never a frame.  The connection that produced it can no longer
    be trusted mid-stream, so the dispatcher treats the worker as dead.
    """


class ShardWorkerError(ShardingError):
    """A shard worker died, timed out, or answered out of protocol.

    The front door's crash handling catches this: the worker is restarted
    within its retry budget and the affected lanes fall back to the
    in-process serving chain, so one dead shard never fails a batch.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard

    def __reduce__(self):  # keep picklability across the worker boundary
        return (type(self), (self.args[0], self.shard))


class FittingError(CycleStealingError):
    """Life-function fitting from trace data failed."""


class JITUnavailableError(CycleStealingError):
    """A JIT-compiled kernel was explicitly requested but cannot be provided.

    Raised only by entry points where the caller *named* the ``jit`` engine
    and silent fallback would be surprising (the CLI ``--engine jit`` flags,
    :func:`repro.jitkernels.require`).  Library engine selection never raises
    this: ``engine="jit"`` degrades transparently to the NumPy path when
    numba is absent or disabled via ``REPRO_DISABLE_JIT``.
    """
