"""Shared typed aliases and small value types used across the library."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import numpy.typing as npt

#: Scalar time/probability type accepted by public APIs.
Scalar = Union[float, int, np.floating]

#: Array-or-scalar argument type for vectorized life-function evaluation.
ArrayLike = Union[Scalar, npt.NDArray[np.floating]]

#: Dense float array returned by vectorized routines.
FloatArray = npt.NDArray[np.float64]


@dataclass(frozen=True)
class Bracket:
    """A closed interval ``[lo, hi]`` bracketing an unknown quantity.

    Used for the Theorem 3.2/3.3 bounds on the optimal initial period length
    ``t_0``, and generally wherever a 1-D search space is reported.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.lo) and np.isfinite(self.hi)):
            raise ValueError(f"bracket endpoints must be finite: [{self.lo}, {self.hi}]")
        if self.lo > self.hi:
            raise ValueError(f"bracket is empty: lo={self.lo} > hi={self.hi}")

    @property
    def width(self) -> float:
        """Length ``hi - lo`` of the interval."""
        return self.hi - self.lo

    @property
    def mid(self) -> float:
        """Midpoint of the interval."""
        return 0.5 * (self.lo + self.hi)

    @property
    def ratio(self) -> float:
        """Ratio ``hi / lo`` — the paper reports factor-of-2 uncertainty."""
        return self.hi / self.lo if self.lo > 0 else float("inf")

    def contains(self, x: float, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Whether ``x`` lies in the interval, with floating-point slack."""
        slack = atol + rtol * max(abs(self.lo), abs(self.hi))
        return (self.lo - slack) <= x <= (self.hi + slack)

    def clamp(self, x: float) -> float:
        """Project ``x`` onto the interval."""
        return min(max(x, self.lo), self.hi)


def positive_subtraction(x: ArrayLike, y: ArrayLike) -> ArrayLike:
    """The paper's ``⊖`` operator: ``x ⊖ y = max(0, x - y)`` (Section 2.1).

    Vectorized; accepts scalars or arrays and preserves scalar-ness for scalar
    inputs.
    """
    result = np.maximum(0.0, np.asarray(x, dtype=float) - np.asarray(y, dtype=float))
    if np.isscalar(x) and np.isscalar(y):
        return float(result)
    return result
