"""The network-of-workstations substrate: owners, workstations, the
discrete-event task farm, and the checkpointing analogue of [7]."""

from .allocation import (
    StationProfile,
    episode_value,
    estimate_episode_value,
    estimate_steal_rate,
    select_stations,
    steal_rate,
)
from .checkpointing import CheckpointRun, save_schedule, simulate_fault_prone_job
from .farm import FarmResult, WorkstationStats, run_farm
from .network import Network, Workstation
from .owner import OwnerProcess

__all__ = [
    "OwnerProcess",
    "Workstation",
    "Network",
    "run_farm",
    "FarmResult",
    "WorkstationStats",
    "save_schedule",
    "simulate_fault_prone_job",
    "CheckpointRun",
    "StationProfile",
    "episode_value",
    "estimate_episode_value",
    "estimate_steal_rate",
    "steal_rate",
    "select_stations",
]
