"""The network-of-workstations substrate: owners, workstations, the
discrete-event task farm, and the checkpointing analogue of [7]."""

from .allocation import (
    StationProfile,
    episode_value,
    estimate_episode_value,
    estimate_steal_rate,
    select_stations,
    steal_rate,
)
from .checkpointing import CheckpointRun, save_schedule, simulate_fault_prone_job
from .farm import FarmResult, WorkstationStats, run_farm
from .fleet import (
    FLEET_POLICIES,
    FleetPlan,
    FleetResult,
    FleetSpec,
    host_network,
    host_rng,
    mean_field_fleet,
    plan_fleet_schedules,
    run_fleet,
)
from .network import Network, Workstation
from .owner import OwnerProcess

__all__ = [
    "OwnerProcess",
    "Workstation",
    "Network",
    "run_farm",
    "FarmResult",
    "WorkstationStats",
    "FLEET_POLICIES",
    "FleetSpec",
    "FleetPlan",
    "FleetResult",
    "plan_fleet_schedules",
    "run_fleet",
    "host_network",
    "host_rng",
    "mean_field_fleet",
    "save_schedule",
    "simulate_fault_prone_job",
    "CheckpointRun",
    "StationProfile",
    "episode_value",
    "estimate_episode_value",
    "estimate_steal_rate",
    "steal_rate",
    "select_stations",
]
