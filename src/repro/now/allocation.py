"""Allocating a cycle-stealing master across multiple workstations.

The paper schedules a *single* episode; a NOW master faces many borrowable
workstations at once, each with its own risk profile, and (realistically) a
budget on how many it can feed — each borrowed station costs the master
dispatch attention, and each period costs ``c`` of *master* time too.

This module provides the analytic layer for that decision:

* :func:`episode_value` — the expected work one episode on a station is worth
  (the paper's ``E(S*; p)`` with the guideline schedule);
* :func:`steal_rate` — long-run expected work per unit wall-clock from a
  station, combining episode value with the owner's presence/absence renewal
  cycle;
* :func:`select_stations` — choose the best ``k`` stations by rate (the
  master's bandwidth budget), a provably optimal selection because stations
  contribute independently and additively in this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.guidelines import guideline_schedule
from ..core.life_functions import LifeFunction
from ..exceptions import CycleStealingError, SimulationError
from ..simulation.monte_carlo import MCEstimate, estimate_expected_work

__all__ = [
    "StationProfile",
    "episode_value",
    "estimate_episode_value",
    "estimate_steal_rate",
    "steal_rate",
    "select_stations",
]


@dataclass(frozen=True)
class StationProfile:
    """What the master knows about one borrowable workstation."""

    ws_id: int
    #: Risk profile of that owner's absences.
    life: LifeFunction
    #: Mean presence (unavailable) interval between opportunities.
    mean_present: float
    #: Relative execution speed (task time divides by this).
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_present <= 0:
            raise SimulationError(
                f"station {self.ws_id}: mean_present must be positive"
            )
        if self.speed <= 0:
            raise SimulationError(f"station {self.ws_id}: speed must be positive")


def episode_value(profile: StationProfile, c: float) -> float:
    """Expected work (in task-time units) one episode on this station banks.

    Uses the guideline schedule; the station's ``speed`` scales the banked
    work (a period of wall-clock length ``t`` completes ``(t - c) * speed``
    task units).
    """
    try:
        result = guideline_schedule(profile.life, c, grid=65)
    except CycleStealingError:
        return 0.0
    return result.expected_work * profile.speed


def estimate_episode_value(
    profile: StationProfile,
    c: float,
    n: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vectorized",
) -> MCEstimate:
    """Monte-Carlo counterpart of :func:`episode_value`.

    Simulates ``n`` draconian episodes of the station's guideline schedule
    against its life function on the selected engine (``"vectorized"`` or
    ``"scalar"``; same seed contract and therefore identical results) and
    scales by the station's speed.  Stations the guideline scheduler rejects
    are worth exactly 0, with zero uncertainty.

    RNG contract: delegates to
    :func:`repro.simulation.estimate_expected_work` — one
    ``sample_reclaim_times`` call per internal batch.
    """
    try:
        result = guideline_schedule(profile.life, c, grid=65)
    except CycleStealingError:
        return MCEstimate(mean=0.0, stderr=0.0, n=n)
    est = estimate_expected_work(
        result.schedule, profile.life, c, n=n, rng=rng, engine=engine
    )
    return MCEstimate(
        mean=est.mean * profile.speed, stderr=est.stderr * profile.speed, n=est.n
    )


def estimate_steal_rate(
    profile: StationProfile,
    c: float,
    n: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vectorized",
) -> MCEstimate:
    """Monte-Carlo counterpart of :func:`steal_rate` (renewal-reward form).

    The presence/absence cycle length is analytic, so only the episode value
    carries sampling error; mean and stderr both divide by the cycle.
    """
    mean_absent = profile.life.expected_lifetime()
    cycle = profile.mean_present + mean_absent
    est = estimate_episode_value(profile, c, n=n, rng=rng, engine=engine)
    return MCEstimate(mean=est.mean / cycle, stderr=est.stderr / cycle, n=est.n)


def steal_rate(profile: StationProfile, c: float) -> float:
    """Long-run expected task-work per unit wall-clock from this station.

    The owner alternates presence (mean ``mean_present``) and absence (mean
    = the life function's expected lifetime); each absence is one episode
    worth :func:`episode_value`.  By renewal-reward, the rate is

        episode_value / (mean_present + mean_absent).
    """
    mean_absent = profile.life.expected_lifetime()
    cycle = profile.mean_present + mean_absent
    return episode_value(profile, c) / cycle


def select_stations(
    profiles: list[StationProfile], c: float, budget: int
) -> list[tuple[StationProfile, float]]:
    """The master's pick: the ``budget`` stations with the highest steal rate.

    Returns ``(profile, rate)`` pairs, best first.  Optimal for additive
    independent stations: total long-run work is the sum of selected rates,
    so the greedy top-``k`` maximizes it.
    """
    if budget < 1:
        raise SimulationError(f"budget must be at least 1, got {budget}")
    rated = [(prof, steal_rate(prof, c)) for prof in profiles]
    rated.sort(key=lambda pair: pair[1], reverse=True)
    return rated[:budget]
