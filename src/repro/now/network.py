"""Workstations and networks of workstations.

The model is "architecture-independent" in the sense of [9] (Section 2.1):
inter-workstation communication is characterized by the single overhead
parameter ``c`` — the combined cost of initiating the send-work and
return-results communications.  Task time already includes marginal data
transmission, so ``c`` is independent of data sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import SimulationError
from .owner import OwnerProcess

__all__ = ["Workstation", "Network"]


@dataclass
class Workstation:
    """One borrowable workstation.

    ``speed`` scales task execution (a task of duration ``d`` takes ``d /
    speed`` wall-clock here, and a period's work budget is ``(t - c) *
    speed`` of task time); the communication overhead is a property of the
    network, not the workstation.  Both the scalar farm
    (:func:`repro.now.farm.run_farm`) and the fleet engine
    (:func:`repro.now.fleet.run_fleet`) honor the same semantics, so a
    single-host network and a one-host fleet agree bit-for-bit.
    """

    ws_id: int
    owner: OwnerProcess
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not (math.isfinite(self.speed) and self.speed > 0):
            raise SimulationError(
                f"workstation {self.ws_id} needs a positive finite speed, "
                f"got {self.speed!r}"
            )


@dataclass
class Network:
    """A NOW: the borrowable workstations plus the communication overhead."""

    workstations: list[Workstation]
    #: Combined setup cost of supplying work and retrieving results (the
    #: paper's ``c``), charged once per period.
    c: float

    def __post_init__(self) -> None:
        if not self.workstations:
            raise SimulationError("a network needs at least one workstation")
        if self.c < 0:
            raise SimulationError(f"overhead c must be nonnegative, got {self.c}")
        ids = [w.ws_id for w in self.workstations]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"workstation ids must be unique, got {ids}")

    def __len__(self) -> int:
        return len(self.workstations)
