"""Discrete-event simulation of a data-parallel task farm over a NOW.

The master (workstation A) owns a :class:`~repro.workloads.TaskPool` and
steals cycles from every workstation in the network.  When an owner leaves,
the master starts an episode: it repeatedly asks the workstation's policy for
the next period length, packs a FIFO task bundle into it, and dispatches.
A period that completes before the owner returns commits its bundle; the
owner's return instantly kills the in-flight period — its tasks go back to
the pool and its work is lost (the draconian contract of Section 1).

Event ordering implements the paper's accounting exactly: a reclaim at the
same instant a period ends *kills* the period ("if B is reclaimed **by** time
T_k"), so owner events carry higher priority than period completions.

Fault injection and resilience
------------------------------
``run_farm(faults=...)`` threads a seeded
:class:`~repro.faults.FaultPlan` through the event loop: workstations crash
and restart (killing in-flight work like a reclaim), dispatch messages are
lost or delayed, the per-period overhead jitters, committed results corrupt,
and the owners' life functions drift mid-run.  Every injected occurrence is
recorded in the returned :attr:`FarmResult.fault_log`; because the fault
runtime draws from its own seeded streams, a run is bit-reproducible from
``(seed, plan, workload)``, and a *null* plan (no injectors) leaves the
simulation bit-identical to an uninstrumented run.

``retry=`` adds the resilient dispatch path: a lost dispatch is detected
after :attr:`RetryPolicy.timeout` and retried under bounded exponential
backoff with deterministic jitter, up to :attr:`RetryPolicy.max_retries`
attempts per episode.  Crashes tear the episode down (outstanding work is
lost, the workstation accepts nothing while down) and dispatch resumes on
restart if the owner is still absent.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from ..baselines.policies import EpisodeInfo, Policy
from ..core.life_functions import LifeFunction
from ..exceptions import SimulationError
from ..faults import FaultLog, FaultPlan, FaultRuntime
from ..workloads.packing import PackedPeriod, pack_period
from ..workloads.tasks import TaskPool
from .network import Network, Workstation

__all__ = ["WorkstationStats", "FarmResult", "RetryPolicy", "run_farm"]

# Event kinds, in tie-breaking priority order (lower wins at equal times).
# A crash at the same instant as any other event wins: the machine is gone
# before the master can commit, dispatch, or hand the owner back a seat.
_WS_CRASH = -1
_OWNER_RETURNS = 0
_OWNER_LEAVES = 1
_PERIOD_ENDS = 2
_WS_RESTART = 3
_RETRY_DISPATCH = 4


@dataclass(frozen=True)
class RetryPolicy:
    """Per-dispatch timeout + bounded exponential backoff with jittered retries.

    A lost dispatch is detected ``timeout`` after it was sent (the master's
    acknowledgement deadline); retry ``k`` then waits a further
    ``min(base_backoff * factor**k, max_backoff) * (1 - jitter * U)`` with
    ``U ~ U[0, 1)`` drawn from the fault runtime's dedicated stream, so the
    retry timeline is deterministic per ``(seed, plan)``.  At most
    ``max_retries`` retries are attempted per episode; after that the master
    idles until the next owner event.
    """

    timeout: float = 0.5
    base_backoff: float = 0.25
    factor: float = 2.0
    max_backoff: float = 4.0
    max_retries: int = 3
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise SimulationError(f"retry timeout must be nonnegative, got {self.timeout}")
        if self.base_backoff <= 0 or self.factor < 1.0:
            raise SimulationError(
                f"need base_backoff > 0 and factor >= 1, got "
                f"{self.base_backoff}, {self.factor}"
            )
        if self.max_backoff < self.base_backoff:
            raise SimulationError(
                f"max_backoff {self.max_backoff} below base_backoff {self.base_backoff}"
            )
        if self.max_retries < 0:
            raise SimulationError(f"max_retries must be nonnegative, got {self.max_retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError(f"jitter must lie in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, u: float = 0.0) -> float:
        """Wall-clock between a lost dispatch and retry number ``attempt``."""
        backoff = min(self.base_backoff * self.factor**attempt, self.max_backoff)
        return self.timeout + backoff * (1.0 - self.jitter * u)


@dataclass
class WorkstationStats:
    """Per-workstation accounting for one farm run."""

    ws_id: int
    episodes: int = 0
    periods_committed: int = 0
    periods_killed: int = 0
    tasks_completed: int = 0
    work_done: float = 0.0
    work_lost: float = 0.0
    overhead_paid: float = 0.0
    #: Absent time during which the master had nothing (or declined) to send.
    idle_absent_time: float = 0.0
    #: Injected-fault accounting (all zero without a fault plan).
    crashes: int = 0
    dispatches_lost: int = 0
    dispatches_delayed: int = 0
    delay_time: float = 0.0
    periods_corrupted: int = 0
    retries: int = 0


@dataclass(frozen=True)
class FarmResult:
    """Outcome of a farm run."""

    stats: dict[int, WorkstationStats]
    tasks_total: int
    tasks_completed: int
    #: Time the last task committed, or NaN if the workload never finished.
    completion_time: float
    horizon: float
    events_processed: int
    #: Structured record of injected faults (``None`` without a fault plan).
    fault_log: Optional[FaultLog] = None

    @property
    def finished(self) -> bool:
        return self.tasks_completed == self.tasks_total

    @property
    def total_work_done(self) -> float:
        return float(sum(s.work_done for s in self.stats.values()))

    @property
    def total_work_lost(self) -> float:
        return float(sum(s.work_lost for s in self.stats.values()))

    @property
    def total_overhead(self) -> float:
        return float(sum(s.overhead_paid for s in self.stats.values()))

    @property
    def total_crashes(self) -> int:
        return int(sum(s.crashes for s in self.stats.values()))

    @property
    def total_dispatches_lost(self) -> int:
        return int(sum(s.dispatches_lost for s in self.stats.values()))

    @property
    def total_periods_corrupted(self) -> int:
        return int(sum(s.periods_corrupted for s in self.stats.values()))

    @property
    def goodput(self) -> float:
        """Committed work per unit of horizon time, summed over workstations."""
        return self.total_work_done / self.horizon if self.horizon > 0 else 0.0


@dataclass
class _WsState:
    ws: Workstation
    policy: Policy
    stats: WorkstationStats
    absent: bool = False
    crashed: bool = False
    reclaim_at: float = math.inf
    episode_started_at: float = 0.0
    in_flight: Optional[PackedPeriod] = None
    period_epoch: int = 0  # invalidates stale period_end events
    episode_id: int = 0  # invalidates stale retry events
    retry_attempts: int = 0


def run_farm(
    network: Network,
    pool: TaskPool,
    policy_factory: Callable[[Workstation], Policy],
    horizon: float,
    rng: np.random.Generator,
    life_estimates: Optional[dict[int, LifeFunction]] = None,
    start_absent: bool = False,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
) -> FarmResult:
    """Simulate the farm until the horizon, or until the workload completes.

    Parameters
    ----------
    network:
        The workstations and the per-period overhead ``c``.
    pool:
        Shared task pool (mutated in place: completed tasks move to
        ``pool.completed``).
    policy_factory:
        Builds one policy instance per workstation (policies are stateful).
    horizon:
        Simulated wall-clock limit.
    rng:
        Source of owner presence/absence randomness.
    life_estimates:
        Per-workstation life functions handed to policies via
        :class:`EpisodeInfo`; defaults to each owner's ``true_life``.
    start_absent:
        Start every owner absent (an immediate opportunity) instead of
        present — convenient for single-episode experiments.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  Its runtime draws from
        its own seeded streams (never from ``rng``), records every injected
        event in :attr:`FarmResult.fault_log`, and — when the plan is null —
        leaves the run bit-identical to ``faults=None``.
    retry:
        Optional :class:`RetryPolicy` enabling the resilient dispatch path
        for lost messages (timeout + bounded, jittered exponential backoff).
    """
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    tasks_total = pool.pending_count
    c = network.c
    runtime: Optional[FaultRuntime] = None
    if faults is not None:
        runtime = faults.start((ws.ws_id for ws in network.workstations), horizon)

    counter = itertools.count()
    heap: list[tuple[float, int, int, int, int]] = []  # (time, prio, seq, ws_id, epoch)

    def push(time: float, prio: int, ws_id: int, epoch: int = 0) -> None:
        heapq.heappush(heap, (time, prio, next(counter), ws_id, epoch))

    states: dict[int, _WsState] = {}
    for ws in network.workstations:
        policy = policy_factory(ws)
        state = _WsState(ws=ws, policy=policy, stats=WorkstationStats(ws.ws_id))
        states[ws.ws_id] = state
        if start_absent:
            push(0.0, _OWNER_LEAVES, ws.ws_id)
        else:
            push(ws.owner.next_present(rng), _OWNER_LEAVES, ws.ws_id)
    if runtime is not None:
        # Crash outages are pre-generated per workstation from the plan's own
        # stream; both endpoints go on the heap up front (they never overlap).
        for ws_id in sorted(states):
            for crash_at, restart_at in runtime.crash_schedule(ws_id):
                push(crash_at, _WS_CRASH, ws_id)
                push(restart_at, _WS_RESTART, ws_id)

    completion_time = math.nan
    events = 0

    def idle_until_reclaim(state: _WsState, now: float) -> None:
        state.stats.idle_absent_time += max(0.0, min(state.reclaim_at, horizon) - now)

    def dispatch(state: _WsState, now: float) -> None:
        """Try to send the next period to an absent workstation."""
        if state.crashed:
            return  # outage, not idleness: nothing can be sent until restart
        if pool.exhausted:
            idle_until_reclaim(state, now)
            return
        elapsed = now - state.episode_started_at
        planned = state.policy.next_period(elapsed)
        if planned is not None and planned <= 0.0:
            raise SimulationError(
                f"policy {type(state.policy).__name__} returned a non-positive "
                f"period length {planned!r} for workstation {state.ws.ws_id} "
                f"at elapsed {elapsed}; return None to decline dispatching"
            )
        if planned is None or planned <= c:
            idle_until_reclaim(state, now)
            return
        budget = (planned - c) * state.ws.speed
        bundle = pack_period(pool, c + budget, c)
        if bundle.empty:
            idle_until_reclaim(state, now)
            return
        c_eff, extra_delay = c, 0.0
        if runtime is not None:
            fate = runtime.dispatch_fate(state.ws.ws_id, now, c)
            if fate.lost:
                # The bundle never left the master; its tasks go straight
                # back.  The resilient path schedules a timed-out retry.
                pool.restore(list(bundle.tasks))
                state.stats.dispatches_lost += 1
                if retry is not None and state.retry_attempts < retry.max_retries:
                    wait = retry.delay(state.retry_attempts, runtime.retry_jitter())
                    state.retry_attempts += 1
                    state.stats.retries += 1
                    runtime.record_retry(
                        state.ws.ws_id, now, state.retry_attempts, wait
                    )
                    push(now + wait, _RETRY_DISPATCH, state.ws.ws_id, state.episode_id)
                else:
                    idle_until_reclaim(state, now)
                return
            c_eff = fate.c_effective
            extra_delay = fate.delay
            if extra_delay > 0.0:
                state.stats.dispatches_delayed += 1
                state.stats.delay_time += extra_delay
            if c_eff != c:
                bundle = replace(bundle, overhead=c_eff)
        state.retry_attempts = 0
        wall = c_eff + extra_delay + bundle.work / state.ws.speed
        state.in_flight = bundle
        state.period_epoch += 1
        push(now + wall, _PERIOD_ENDS, state.ws.ws_id, state.period_epoch)

    def kill_in_flight(state: _WsState) -> None:
        bundle = state.in_flight
        if bundle is None:
            return
        pool.restore(list(bundle.tasks))
        state.stats.periods_killed += 1
        state.stats.work_lost += bundle.work
        state.stats.overhead_paid += bundle.overhead
        state.in_flight = None
        state.period_epoch += 1  # invalidate the pending period_end event

    def teardown() -> None:
        """Return tasks still in flight when the run ends (horizon cut)."""
        for state in states.values():
            bundle = state.in_flight
            if bundle is not None:
                pool.restore(list(bundle.tasks))
                state.in_flight = None
                state.period_epoch += 1

    while heap:
        time, prio, _seq, ws_id, epoch = heapq.heappop(heap)
        if time > horizon:
            break
        events += 1
        state = states[ws_id]

        if prio == _WS_CRASH:
            # Crash-aware episode teardown: the draconian loss of a reclaim,
            # plus an outage window during which nothing can be dispatched.
            kill_in_flight(state)
            state.crashed = True
            state.stats.crashes += 1
            assert runtime is not None
            runtime.log.record(time, "crash", ws_id)

        elif prio == _WS_RESTART:
            state.crashed = False
            assert runtime is not None
            runtime.log.record(time, "restart", ws_id)
            if state.absent and time < state.reclaim_at and state.in_flight is None:
                dispatch(state, time)  # resume the interrupted episode

        elif prio == _OWNER_LEAVES:
            absence = state.ws.owner.next_absent(rng)
            if runtime is not None:
                absence *= runtime.absence_scale(ws_id, time)
            state.absent = True
            state.reclaim_at = time + absence
            state.episode_started_at = time
            state.episode_id += 1
            state.retry_attempts = 0
            state.stats.episodes += 1
            life = None
            if life_estimates is not None:
                life = life_estimates.get(ws_id)
            elif state.ws.owner.true_life is not None:
                life = state.ws.owner.true_life
            state.policy.start_episode(
                EpisodeInfo(c=c, life=life, reclaim_time=absence)
            )
            push(state.reclaim_at, _OWNER_RETURNS, ws_id)
            dispatch(state, time)

        elif prio == _OWNER_RETURNS:
            kill_in_flight(state)
            state.absent = False
            state.reclaim_at = math.inf
            push(time + state.ws.owner.next_present(rng), _OWNER_LEAVES, ws_id)

        elif prio == _RETRY_DISPATCH:
            # Stale if the episode ended, the machine is down, or a later
            # dispatch already succeeded.
            if (
                epoch != state.episode_id
                or not state.absent
                or state.crashed
                or state.in_flight is not None
            ):
                continue
            dispatch(state, time)

        else:  # _PERIOD_ENDS
            if epoch != state.period_epoch or state.in_flight is None:
                continue  # stale event from a killed period
            bundle = state.in_flight
            state.in_flight = None
            if runtime is not None and runtime.commit_corrupted(ws_id, time):
                # Results came back unusable: the work is wasted and its
                # tasks return to the pool for re-dispatch.
                pool.restore(list(bundle.tasks))
                state.stats.periods_corrupted += 1
                state.stats.work_lost += bundle.work
                state.stats.overhead_paid += bundle.overhead
                dispatch(state, time)
                continue
            pool.commit(bundle.tasks)
            state.stats.periods_committed += 1
            state.stats.tasks_completed += len(bundle.tasks)
            state.stats.work_done += bundle.work
            state.stats.overhead_paid += bundle.overhead
            if pool.exhausted and math.isnan(completion_time):
                no_inflight = all(s.in_flight is None for s in states.values())
                if no_inflight:
                    completion_time = time
                    break
            dispatch(state, time)

    teardown()
    return FarmResult(
        stats={ws_id: s.stats for ws_id, s in states.items()},
        tasks_total=tasks_total,
        tasks_completed=sum(s.stats.tasks_completed for s in states.values()),
        completion_time=completion_time,
        horizon=horizon,
        events_processed=events,
        fault_log=None if runtime is None else runtime.log,
    )
