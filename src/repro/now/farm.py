"""Discrete-event simulation of a data-parallel task farm over a NOW.

The master (workstation A) owns a :class:`~repro.workloads.TaskPool` and
steals cycles from every workstation in the network.  When an owner leaves,
the master starts an episode: it repeatedly asks the workstation's policy for
the next period length, packs a FIFO task bundle into it, and dispatches.
A period that completes before the owner returns commits its bundle; the
owner's return instantly kills the in-flight period — its tasks go back to
the pool and its work is lost (the draconian contract of Section 1).

Event ordering implements the paper's accounting exactly: a reclaim at the
same instant a period ends *kills* the period ("if B is reclaimed **by** time
T_k"), so owner events carry higher priority than period completions.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..baselines.policies import EpisodeInfo, Policy
from ..core.life_functions import LifeFunction
from ..exceptions import SimulationError
from ..workloads.packing import PackedPeriod, pack_period
from ..workloads.tasks import TaskPool
from .network import Network, Workstation

__all__ = ["WorkstationStats", "FarmResult", "run_farm"]

# Event kinds, in tie-breaking priority order (lower wins at equal times).
_OWNER_RETURNS = 0
_OWNER_LEAVES = 1
_PERIOD_ENDS = 2


@dataclass
class WorkstationStats:
    """Per-workstation accounting for one farm run."""

    ws_id: int
    episodes: int = 0
    periods_committed: int = 0
    periods_killed: int = 0
    tasks_completed: int = 0
    work_done: float = 0.0
    work_lost: float = 0.0
    overhead_paid: float = 0.0
    #: Absent time during which the master had nothing (or declined) to send.
    idle_absent_time: float = 0.0


@dataclass(frozen=True)
class FarmResult:
    """Outcome of a farm run."""

    stats: dict[int, WorkstationStats]
    tasks_total: int
    tasks_completed: int
    #: Time the last task committed, or NaN if the workload never finished.
    completion_time: float
    horizon: float
    events_processed: int

    @property
    def finished(self) -> bool:
        return self.tasks_completed == self.tasks_total

    @property
    def total_work_done(self) -> float:
        return float(sum(s.work_done for s in self.stats.values()))

    @property
    def total_work_lost(self) -> float:
        return float(sum(s.work_lost for s in self.stats.values()))

    @property
    def total_overhead(self) -> float:
        return float(sum(s.overhead_paid for s in self.stats.values()))

    @property
    def goodput(self) -> float:
        """Committed work per unit of horizon time, summed over workstations."""
        return self.total_work_done / self.horizon if self.horizon > 0 else 0.0


@dataclass
class _WsState:
    ws: Workstation
    policy: Policy
    stats: WorkstationStats
    absent: bool = False
    reclaim_at: float = math.inf
    episode_started_at: float = 0.0
    in_flight: Optional[PackedPeriod] = None
    period_epoch: int = 0  # invalidates stale period_end events


def run_farm(
    network: Network,
    pool: TaskPool,
    policy_factory: Callable[[Workstation], Policy],
    horizon: float,
    rng: np.random.Generator,
    life_estimates: Optional[dict[int, LifeFunction]] = None,
    start_absent: bool = False,
) -> FarmResult:
    """Simulate the farm until the horizon, or until the workload completes.

    Parameters
    ----------
    network:
        The workstations and the per-period overhead ``c``.
    pool:
        Shared task pool (mutated in place: completed tasks move to
        ``pool.completed``).
    policy_factory:
        Builds one policy instance per workstation (policies are stateful).
    horizon:
        Simulated wall-clock limit.
    rng:
        Source of owner presence/absence randomness.
    life_estimates:
        Per-workstation life functions handed to policies via
        :class:`EpisodeInfo`; defaults to each owner's ``true_life``.
    start_absent:
        Start every owner absent (an immediate opportunity) instead of
        present — convenient for single-episode experiments.
    """
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    tasks_total = pool.pending_count
    c = network.c

    counter = itertools.count()
    heap: list[tuple[float, int, int, int, int]] = []  # (time, prio, seq, ws_id, epoch)

    def push(time: float, prio: int, ws_id: int, epoch: int = 0) -> None:
        heapq.heappush(heap, (time, prio, next(counter), ws_id, epoch))

    states: dict[int, _WsState] = {}
    for ws in network.workstations:
        policy = policy_factory(ws)
        state = _WsState(ws=ws, policy=policy, stats=WorkstationStats(ws.ws_id))
        states[ws.ws_id] = state
        if start_absent:
            push(0.0, _OWNER_LEAVES, ws.ws_id)
        else:
            push(ws.owner.next_present(rng), _OWNER_LEAVES, ws.ws_id)

    completion_time = math.nan
    events = 0

    def dispatch(state: _WsState, now: float) -> None:
        """Try to send the next period to an absent workstation."""
        if pool.exhausted:
            state.stats.idle_absent_time += max(0.0, min(state.reclaim_at, horizon) - now)
            return
        elapsed = now - state.episode_started_at
        planned = state.policy.next_period(elapsed)
        if planned is None or planned <= c:
            state.stats.idle_absent_time += max(0.0, min(state.reclaim_at, horizon) - now)
            return
        budget = (planned - c) * state.ws.speed
        bundle = pack_period(pool, c + budget, c)
        if bundle.empty:
            state.stats.idle_absent_time += max(0.0, min(state.reclaim_at, horizon) - now)
            return
        wall = c + bundle.work / state.ws.speed
        state.in_flight = bundle
        state.period_epoch += 1
        push(now + wall, _PERIOD_ENDS, state.ws.ws_id, state.period_epoch)

    def kill_in_flight(state: _WsState) -> None:
        bundle = state.in_flight
        if bundle is None:
            return
        pool.restore(list(bundle.tasks))
        state.stats.periods_killed += 1
        state.stats.work_lost += bundle.work
        state.stats.overhead_paid += bundle.overhead
        state.in_flight = None
        state.period_epoch += 1  # invalidate the pending period_end event

    def teardown() -> None:
        """Return tasks still in flight when the run ends (horizon cut)."""
        for state in states.values():
            bundle = state.in_flight
            if bundle is not None:
                pool.restore(list(bundle.tasks))
                state.in_flight = None
                state.period_epoch += 1

    while heap:
        time, prio, _seq, ws_id, epoch = heapq.heappop(heap)
        if time > horizon:
            break
        events += 1
        state = states[ws_id]

        if prio == _OWNER_LEAVES:
            absence = state.ws.owner.next_absent(rng)
            state.absent = True
            state.reclaim_at = time + absence
            state.episode_started_at = time
            state.stats.episodes += 1
            life = None
            if life_estimates is not None:
                life = life_estimates.get(ws_id)
            elif state.ws.owner.true_life is not None:
                life = state.ws.owner.true_life
            state.policy.start_episode(
                EpisodeInfo(c=c, life=life, reclaim_time=absence)
            )
            push(state.reclaim_at, _OWNER_RETURNS, ws_id)
            dispatch(state, time)

        elif prio == _OWNER_RETURNS:
            kill_in_flight(state)
            state.absent = False
            state.reclaim_at = math.inf
            push(time + state.ws.owner.next_present(rng), _OWNER_LEAVES, ws_id)

        else:  # _PERIOD_ENDS
            if epoch != state.period_epoch or state.in_flight is None:
                continue  # stale event from a killed period
            bundle = state.in_flight
            state.in_flight = None
            pool.commit(bundle.tasks)
            state.stats.periods_committed += 1
            state.stats.tasks_completed += len(bundle.tasks)
            state.stats.work_done += bundle.work
            state.stats.overhead_paid += bundle.overhead
            if pool.exhausted and math.isnan(completion_time):
                no_inflight = all(s.in_flight is None for s in states.values())
                if no_inflight:
                    completion_time = time
                    break
            dispatch(state, time)

    teardown()
    return FarmResult(
        stats={ws_id: s.stats for ws_id, s in states.items()},
        tasks_total=tasks_total,
        tasks_completed=sum(s.stats.tasks_completed for s in states.values()),
        completion_time=completion_time,
        horizon=horizon,
        events_processed=events,
    )
