"""The fault-tolerant checkpointing analogue (Section 1 Remark, ref. [7]).

The paper notes its model "has applications ... other than scheduling single
episodes of cycle-stealing.  One important example is scheduling saves in a
fault-prone computing system, as studied in [7]" (Coffman, Flatto, Krenin,
*Scheduling saves in fault-tolerant computations*).

The mapping: a *save* costs ``c`` (the period-bracketing overhead); a failure
(the owner's "return") destroys all work since the last save; the failure
survival function is the life function.  One cycle-stealing episode = one
inter-failure epoch, and the expected work banked per epoch is exactly
``E(S; p)`` — so the paper's guidelines choose save intervals.

:func:`simulate_fault_prone_job` runs the full renewal process: epochs repeat
(fresh failure clock each time) until a job of ``total_work`` units has been
banked, measuring wall-clock completion time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.guidelines import guideline_schedule
from ..core.life_functions import LifeFunction
from ..core.schedule import Schedule
from ..exceptions import SimulationError

__all__ = ["save_schedule", "CheckpointRun", "simulate_fault_prone_job"]


def save_schedule(p_failure: LifeFunction, c_save: float, **kwargs) -> Schedule:
    """Guideline save intervals for failure-survival ``p_failure``.

    Thin wrapper over :func:`repro.core.guidelines.guideline_schedule`; each
    returned period is the compute time between consecutive saves (the save
    cost ``c_save`` is inside the period, per the episode model).
    """
    return guideline_schedule(p_failure, c_save, **kwargs).schedule


@dataclass(frozen=True)
class CheckpointRun:
    """Outcome of one simulated fault-prone job execution."""

    completion_time: float
    failures: int
    saves_committed: int
    work_lost: float


def simulate_fault_prone_job(
    p_failure: LifeFunction,
    c_save: float,
    total_work: float,
    schedule: Optional[Schedule] = None,
    rng: Optional[np.random.Generator] = None,
    max_epochs: int = 1_000_000,
) -> CheckpointRun:
    """Run a job of ``total_work`` units to completion under random failures.

    Each inter-failure epoch replays the (save-interval) schedule from its
    start — the renewal assumption: after a failure and restart the failure
    clock resets, so the same schedule is optimal again.  Within an epoch,
    work banks at each save point; a failure loses the work since the last
    save and costs the time actually elapsed.

    Raises
    ------
    SimulationError
        If the schedule banks no work per epoch (the job can never finish)
        or ``max_epochs`` is exceeded.
    """
    if total_work <= 0:
        raise SimulationError(f"total_work must be positive, got {total_work}")
    if rng is None:
        rng = np.random.default_rng(0)
    if schedule is None:
        schedule = save_schedule(p_failure, c_save)

    work_per_period = schedule.work_per_period(c_save)
    if float(work_per_period.sum()) <= 0.0:
        raise SimulationError("schedule banks no work per epoch; job cannot finish")
    boundaries = schedule.boundaries

    clock = 0.0
    banked = 0.0
    failures = 0
    saves = 0
    lost = 0.0
    for _ in range(max_epochs):
        failure_at = float(p_failure.sample_reclaim_times(rng, 1)[0])
        epoch_elapsed = 0.0
        for i in range(schedule.num_periods):
            end = float(boundaries[i])
            if end >= failure_at:
                # Failure hits during (or exactly at the end of) period i.
                failures += 1
                # Everything since the last save is lost (including the
                # partially-paid save overhead of the interrupted period).
                lost += failure_at - epoch_elapsed
                clock += failure_at - epoch_elapsed
                break
            clock += end - epoch_elapsed
            epoch_elapsed = end
            banked += float(work_per_period[i])
            saves += 1
            if banked >= total_work:
                return CheckpointRun(
                    completion_time=clock,
                    failures=failures,
                    saves_committed=saves,
                    work_lost=lost,
                )
        else:
            # Schedule exhausted before the failure: idle until the failure
            # resets the epoch (a conservative policy that never improvises
            # beyond its schedule).
            clock += max(0.0, failure_at - epoch_elapsed)
            failures += 1
    raise SimulationError(f"job did not finish within {max_epochs} epochs")
