"""Owner presence processes for the NOW simulator.

Each workstation has an owner who alternates *present* (workstation
unavailable) and *absent* (a cycle-stealing opportunity) intervals.  The
draconian contract of Section 1: the instant the owner returns, all work in
progress is killed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.life_functions import LifeFunction
from ..traces.synthetic import DurationSampler, life_function_sampler

__all__ = ["OwnerProcess"]


@dataclass
class OwnerProcess:
    """An alternating-renewal owner: i.i.d. present and absent durations.

    ``true_life`` optionally records the life function the absence durations
    are drawn from; the farm hands it (or a fitted estimate) to policies as
    their risk model.
    """

    present_sampler: DurationSampler
    absent_sampler: DurationSampler
    true_life: Optional[LifeFunction] = None
    _present_buf: list = field(default_factory=list, repr=False)
    _absent_buf: list = field(default_factory=list, repr=False)

    @classmethod
    def from_life_function(
        cls,
        p: LifeFunction,
        present_mean: float,
        rng_block: int = 256,
    ) -> "OwnerProcess":
        """Owner whose absences follow life function ``p`` exactly,
        with exponential presence intervals of the given mean."""
        if present_mean <= 0:
            raise ValueError(f"present_mean must be positive, got {present_mean}")

        def present(rng: np.random.Generator, size: int):
            return rng.exponential(present_mean, size=size)

        return cls(
            present_sampler=present,
            absent_sampler=life_function_sampler(p),
            true_life=p,
        )

    def next_present(self, rng: np.random.Generator) -> float:
        """Draw the next presence duration (buffered for speed)."""
        if not self._present_buf:
            self._present_buf = list(self.present_sampler(rng, 256))
        return max(float(self._present_buf.pop()), 1e-12)

    def next_absent(self, rng: np.random.Generator) -> float:
        """Draw the next absence duration (one cycle-stealing opportunity)."""
        if not self._absent_buf:
            self._absent_buf = list(self.absent_sampler(rng, 256))
        return max(float(self._absent_buf.pop()), 1e-12)
