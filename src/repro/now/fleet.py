"""Fleet-scale farm engine: one shared event core for 100–100k hosts.

:func:`repro.now.farm.run_farm` simulates borrowed workstations faithfully
but pays O(tasks) of Python per period event — `Task` objects are popped,
re-summed, and re-appended one at a time, and every workstation carries its
own policy object.  That is fine for one host and hopeless for a fleet.
This module rebuilds the same simulation for *N* hosts around three ideas:

1. **Struct-of-arrays planning and accounting.**  A :class:`FleetSpec` holds
   the per-host life-function family parameters, overheads ``c``, relative
   speeds, and owner presence means as NumPy vectors.  Schedules for all
   hosts come from *one* lane-batched call into the heterogeneous recurrence
   engine (:func:`repro.core.hetero_recurrence.generate_schedules_hetero`,
   ``engine="jit"`` supported): a ``grid``-point ``t_0`` search window per
   host (closed-form Section 4 brackets, vectorized in
   :func:`repro.core.t0_bounds.family_bracket_batch`) is evaluated as
   ``N × grid`` lanes and argmax-reduced per host — not 10k optimizer
   invocations.  Results come back as SoA arrays (:class:`FleetResult`).

2. **Range-based task pools.**  The workload is one global durations array
   with a prefix-sum; a pool is a deque of ``(lo, hi)`` index ranges.
   Packing a period is a binary search into the prefix sum plus an exact
   fix-up loop that applies the scalar :meth:`TaskPool.checkout` admission
   test literally — O(log n) instead of O(bundle).  Kills restore ranges to
   the front, steals split ranges off the tail.

3. **Batched owner draws on per-host substreams.**  Each host draws its
   presence/absence durations from ``default_rng([seed, 0, host_key])`` in
   256-wide blocks consumed from the end — the exact
   :class:`~repro.now.owner.OwnerProcess` buffering discipline, so a run is
   bit-reproducible from ``(seed, n_hosts, policy)`` and an ``n = 1`` fleet
   is **bit-identical** to ``run_farm`` fed the same substream (dispatch
   log, stats, goodput, and fault digest — differentially tested).

4. **A calendar-queue batched event core** (``run_fleet(core="batched")``,
   the default).  Every owner leave/return is precomputed in bulk up front
   (:func:`_plan_owner_timelines` extends the ``FaultRuntime.crash_arrays``
   planning idea to owner draws: whole 256-wide blocks per host, the family
   inverse transform vectorized across hosts, one ``np.cumsum`` per chunk —
   the same left-to-right float additions the lazy scalar path performs).
   Together with the fault runtime's crash/restart arrays these static
   events are sorted once (``np.lexsort`` or the ``fleet_event_order`` JIT
   kernel) and partitioned into fixed-width time buckets; the drain loop
   walks one bucket's cohort at a time as a presorted list — no per-event
   ``heappush``/``heappop`` — and only period-end events born inside the
   current bucket pay a ``bisect.insort``.  Within a bucket events are
   processed in exact ``(time, prio, seq)`` order, so the core is
   bit-identical to the heap loop (``core="heap"``, retained as the
   differential oracle): stats, events processed, completion time, policy
   trace, committed task order, and fault digest all match across all
   three policies and every fault class — the cross-core gate in
   ``repro fleet --quick`` and the hypothesis suites enforce it.  Both
   cores share one int64 event sequence ``(idx << 32) | epoch`` (checked
   against overflow) so even exact time/priority ties order identically.

Dispatch policies
-----------------
* ``"sharing"`` — centralized: every host packs from one master-held pool.
* ``"stealing"`` — randomized work stealing: the workload is split evenly
  into per-host pools; a host whose pool drains picks one uniformly random
  victim (stream ``default_rng([seed, 1, host_key])``) and steals the back
  half of its pending ranges.  A failed attempt idles until the next owner
  event.
* ``"stealing-latency"`` — identical, but a successful steal charges a
  round-trip of the thief's own overhead ``c`` as extra wall-clock on the
  period that ships the stolen work (the steal-latency regime of
  Gast/Khatiri/Trystram, arXiv:1805.00857, mapped onto the paper's single
  overhead parameter).

Host churn reuses the PR 4 fault runtime unchanged (crash/restart kills
in-flight work exactly like an owner reclaim; loss, delay, jitter,
corruption, and drift hook in at the same event-loop points as
``run_farm``).  The resilient retry path is deliberately not supported here
— a lost dispatch idles until the next owner event, matching
``run_farm(retry=None)``.

:func:`mean_field_fleet` computes a fixed-point approximation of fleet
makespan/goodput (availability × per-episode expected work over the owner
renewal cycle, with an iterated steal-RTT correction for the latency
policy) in the spirit of Van Houdt's mean-field analyses of stealing
(arXiv:1810.13186); ``bench_fleet.py`` records its error against
simulation.

Exact-parity caveat: the per-range admission test reproduces the scalar
per-task loop bit-for-bit when partial prefix sums are exact in binary
floating point (e.g. the dyadic task durations the benchmarks use); for
general durations the packing may differ from the scalar loop only at the
``1e-12`` admission tolerance boundary.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.hetero_recurrence import HETERO_FAMILIES, generate_schedules_hetero
from ..core.life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
    UniformRisk,
)
from ..core.schedule import Schedule
from ..core.t0_bounds import family_bracket_batch
from ..exceptions import SimulationError
from ..faults import CrashFault, FaultLog, FaultPlan, FaultRuntime
from .farm import (
    _OWNER_LEAVES,
    _OWNER_RETURNS,
    _PERIOD_ENDS,
    _WS_CRASH,
    _WS_RESTART,
    WorkstationStats,
)
from .network import Network, Workstation
from .owner import OwnerProcess

__all__ = [
    "FLEET_POLICIES",
    "FLEET_CORES",
    "FleetSpec",
    "FleetPlan",
    "FleetResult",
    "plan_fleet_schedules",
    "run_fleet",
    "host_network",
    "host_rng",
    "mean_field_fleet",
]

FLEET_POLICIES = ("sharing", "stealing", "stealing-latency")
FLEET_CORES = ("batched", "heap")

_LN2 = math.log(2.0)
_BLOCK = 256  # OwnerProcess's draw-buffer width; must match for bit parity.

# One int64 orders every event: seq = (host idx << 32) | dispatch epoch.
# Both cores break exact (time, prio) ties with this same key, so their
# event orders are identical by construction; pushes check the epoch field
# against overflow instead of trusting an unbounded counter.
_SEQ_EPOCH_BITS = 32
_SEQ_EPOCH_MASK = (1 << _SEQ_EPOCH_BITS) - 1
_MAX_HOSTS = 1 << 30  # keeps seq inside a signed int64 for the JIT kernels
_TIMELINE_CHUNK = 4096  # hosts per vectorized owner-timeline batch

#: Default heterogeneity ranges per family: (param range, c range).
_HETERO_RANGES = {
    "uniform": ((50.0, 400.0), (0.5, 3.0)),
    "poly": ((50.0, 400.0), (0.5, 3.0)),
    "geomdec": ((1.02, 1.5), (0.1, 1.0)),
    "geominc": ((10.0, 120.0), (0.25, 2.0)),
}


def _make_life(family: str, value: float, d: int) -> LifeFunction:
    if family == "uniform":
        return UniformRisk(value)
    if family == "poly":
        return PolynomialRisk(d, value)
    if family == "geomdec":
        return GeometricDecreasingLifespan(value)
    return GeometricIncreasingRisk(value)


# ----------------------------------------------------------------------
# The fleet specification (SoA per-host parameters)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetSpec:
    """Per-host parameters for one fleet, as struct-of-arrays vectors.

    ``host_keys`` are the stable identities used for RNG substreams, fault
    streams, and log records; permuting hosts *with* their keys leaves every
    host's owner timeline unchanged (tested).  Defaults to ``0..n-1``.
    """

    family: str
    cs: np.ndarray
    params: np.ndarray
    speeds: np.ndarray
    present_means: np.ndarray
    d: int = 1
    seed: int = 0
    host_keys: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.family not in HETERO_FAMILIES:
            raise SimulationError(
                f"fleet family {self.family!r} must be one of {HETERO_FAMILIES}"
            )
        for name in ("cs", "params", "speeds", "present_means"):
            arr = np.asarray(getattr(self, name), dtype=float)
            object.__setattr__(self, name, arr)
            if arr.ndim != 1 or arr.shape != self.cs.shape:
                raise SimulationError(
                    f"{name} must be a vector matching cs, got shape {arr.shape}"
                )
        if self.cs.size == 0:
            raise SimulationError("a fleet needs at least one host")
        if np.any(self.cs < 0):
            raise SimulationError("overheads c must be nonnegative")
        if np.any(self.params <= 0) or not np.all(np.isfinite(self.params)):
            raise SimulationError(
                "life-function params must be positive and finite"
            )
        if np.any(self.speeds <= 0) or not np.all(np.isfinite(self.speeds)):
            raise SimulationError("host speeds must be positive and finite")
        if np.any(self.present_means <= 0):
            raise SimulationError("present means must be positive")
        keys = self.host_keys
        if keys is None:
            keys = np.arange(self.n_hosts)
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape != self.cs.shape or len(set(keys.tolist())) != keys.size:
            raise SimulationError("host_keys must be unique, one per host")
        object.__setattr__(self, "host_keys", keys)
        object.__setattr__(self, "d", int(self.d) if self.family == "poly" else 1)

    @property
    def n_hosts(self) -> int:
        return int(self.cs.size)

    @classmethod
    def homogeneous(
        cls,
        n_hosts: int,
        family: str = "uniform",
        param: float = 64.0,
        c: float = 1.0,
        present_mean: float = 8.0,
        speed: float = 1.0,
        d: int = 1,
        seed: int = 0,
    ) -> "FleetSpec":
        """``n_hosts`` identical hosts (each still on its own RNG substream)."""
        full = lambda v: np.full(int(n_hosts), float(v))
        return cls(family, full(c), full(param), full(speed),
                   full(present_mean), d=d, seed=seed)

    @classmethod
    def heterogeneous(
        cls,
        n_hosts: int,
        family: str = "uniform",
        param_range: Optional[tuple[float, float]] = None,
        c_range: Optional[tuple[float, float]] = None,
        speed_range: tuple[float, float] = (0.5, 2.0),
        present_mean_range: tuple[float, float] = (4.0, 16.0),
        d: int = 1,
        seed: int = 0,
    ) -> "FleetSpec":
        """Draw per-host parameters from seeded log-uniform ranges.

        The draws come from the dedicated spec substream
        ``default_rng([seed, 2])`` so they never interact with the owner
        (``[seed, 0, key]``) or steal (``[seed, 1, key]``) streams.
        """
        if int(n_hosts) < 1:
            raise SimulationError(
                f"a heterogeneous fleet needs at least one host, got {n_hosts}"
            )
        default_p, default_c = _HETERO_RANGES[family] if family in _HETERO_RANGES \
            else _HETERO_RANGES["uniform"]
        p_lo, p_hi = param_range or default_p
        c_lo, c_hi = c_range or default_c
        for name, (lo, hi) in (
            ("param_range", (p_lo, p_hi)),
            ("c_range", (c_lo, c_hi)),
            ("speed_range", tuple(speed_range)),
            ("present_mean_range", tuple(present_mean_range)),
        ):
            if not (math.isfinite(lo) and math.isfinite(hi)) \
                    or lo <= 0 or hi < lo:
                raise SimulationError(
                    f"heterogeneous {name} must satisfy 0 < lo <= hi with "
                    f"finite bounds (log-uniform draws), got ({lo}, {hi})"
                )
        rng = np.random.default_rng([int(seed), 2])
        logu = lambda lo, hi: np.exp(rng.uniform(math.log(lo), math.log(hi),
                                                 int(n_hosts)))
        return cls(family, logu(c_lo, c_hi), logu(p_lo, p_hi),
                   logu(*speed_range), logu(*present_mean_range), d=d, seed=seed)


def host_rng(spec: FleetSpec, i: int) -> np.random.Generator:
    """Host ``i``'s owner-draw substream: ``default_rng([seed, 0, key_i])``."""
    return np.random.default_rng([int(spec.seed), 0, int(spec.host_keys[i])])


def host_life(spec: FleetSpec, i: int) -> LifeFunction:
    """Host ``i``'s life function, materialized from the SoA parameters."""
    return _make_life(spec.family, float(spec.params[i]), spec.d)


def host_network(spec: FleetSpec, i: int) -> Network:
    """A single-host :class:`Network` equivalent to fleet host ``i``.

    Feeding this (plus :func:`host_rng` and the host's planned schedule) to
    ``run_farm`` reproduces the fleet host bit-for-bit — the differential
    contract the parity tests enforce.
    """
    owner = OwnerProcess.from_life_function(
        host_life(spec, i), float(spec.present_means[i])
    )
    ws = Workstation(int(spec.host_keys[i]), owner, speed=float(spec.speeds[i]))
    return Network([ws], c=float(spec.cs[i]))


# ----------------------------------------------------------------------
# Batched schedule planning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetPlan:
    """Per-host schedules chosen by one lane-batched ``t_0`` grid search."""

    family: str
    d: int
    t0s: np.ndarray
    #: Period lengths, shape ``(n_hosts, max_m)``, NaN-padded per host.
    periods: np.ndarray
    num_periods: np.ndarray
    #: Engine ``E(S; p)`` per host (unit speed; multiply by speed for rate).
    expected_work: np.ndarray
    grid: int
    engine: str

    @property
    def n_hosts(self) -> int:
        return int(self.t0s.size)

    def schedule(self, i: int) -> Schedule:
        m = int(self.num_periods[i])
        return Schedule(self.periods[i, :m])


def plan_fleet_schedules(
    spec: FleetSpec, grid: int = 9, engine: str = "numpy"
) -> FleetPlan:
    """Plan every host's schedule in one heterogeneous-engine call.

    Builds a ``grid``-point ``t_0`` window per host from the vectorized
    Section 4 closed-form brackets, evaluates all ``n_hosts × grid`` lanes
    through :func:`generate_schedules_hetero` (``engine="jit"`` uses the
    compiled lane loop when numba is available), and keeps each host's
    argmax-``E`` lane.
    """
    if grid < 1:
        raise SimulationError(f"t0 grid must have at least 1 point, got {grid}")
    n = spec.n_hosts
    lo, hi = family_bracket_batch(spec.family, spec.cs, spec.params, spec.d)
    # Clamp into the engine's validity window: c < t0 (< L for finite life).
    lo = np.maximum(lo, spec.cs * (1.0 + 1e-9) + 1e-12)
    if spec.family != "geomdec":
        hi = np.minimum(hi, spec.params * (1.0 - 1e-12))
    hi = np.maximum(hi, lo)
    fracs = np.linspace(0.0, 1.0, grid)
    t0_grid = lo[:, None] + fracs[None, :] * (hi - lo)[:, None]
    result = generate_schedules_hetero(
        spec.family,
        np.repeat(spec.cs, grid),
        np.repeat(spec.params, grid),
        t0_grid.ravel(),
        d=spec.d,
        engine=engine,
    )
    ew = result.expected_work.reshape(n, grid)
    best = np.argmax(ew, axis=1)
    rows = np.arange(n) * grid + best
    return FleetPlan(
        family=spec.family,
        d=spec.d,
        t0s=t0_grid[np.arange(n), best],
        periods=result.periods[rows],
        num_periods=result.num_periods[rows].astype(np.int64),
        expected_work=ew[np.arange(n), best],
        grid=grid,
        engine=engine,
    )


# ----------------------------------------------------------------------
# Range pools: the O(log) replacement for per-Task checkout
# ----------------------------------------------------------------------


class _RangePool:
    """A FIFO pool of ``(lo, hi)`` index ranges over the global durations.

    ``cum`` is the shared prefix sum (``cum[k]`` = total duration of tasks
    ``0..k-1``), so any range's work is one subtraction.  ``checkout``
    reproduces :meth:`TaskPool.checkout`'s sequential admission test
    (``used + d <= budget + 1e-12``) range-by-range: a binary search (or a
    mean-duration hint) lands near the cut, then an exact fix-up loop
    applies the literal scalar condition, so dyadic-duration workloads pack
    bit-identically.  ``fixup`` optionally routes the clamp + scan loops
    through the ``fleet_checkout_fixup`` JIT kernel (``engine="jit"``).
    """

    __slots__ = ("ranges", "cum", "count", "fixup")

    def __init__(
        self,
        ranges: Sequence[tuple[int, int]],
        cum: np.ndarray,
        fixup=None,
    ) -> None:
        self.ranges: deque[tuple[int, int]] = deque(ranges)
        self.cum = cum
        self.count = sum(hi - lo for lo, hi in self.ranges)
        self.fixup = fixup

    def checkout(
        self, budget: float, inv_mean: float = 0.0
    ) -> tuple[list[tuple[int, int]], float, int]:
        """Take a FIFO prefix fitting ``budget``: (ranges, work, n_tasks).

        ``inv_mean > 0`` (tasks per unit duration, usually the workload's
        global mean) seeds the cut with ``remaining budget × inv_mean``
        instead of a binary search.  The fix-up loops converge to the same
        unique cut from *any* starting index, so the result is identical —
        the batched core passes the hint to drop ``searchsorted`` from its
        hot path (worst case for wildly mixed durations is a longer linear
        fix-up walk, never a different answer).
        """
        limit = budget + 1e-12
        cum = self.cum
        item = cum.item
        queue = self.ranges
        used = 0.0
        n_taken = 0
        taken: list[tuple[int, int]] = []
        while queue:
            lo, hi = queue[0]
            base = item(lo)
            whole = item(hi) - base
            if used + whole <= limit:
                # The whole front range fits.  IEEE addition is monotone, so
                # every per-task prefix also passes the scalar admission test.
                used += whole
                taken.append((lo, hi))
                n_taken += hi - lo
                queue.popleft()
                continue
            if inv_mean > 0.0:
                j = lo + int((limit - used) * inv_mean)
            else:
                j = int(cum.searchsorted(limit - used + base, side="right")) - 1
            if self.fixup is not None:
                j = int(self.fixup(cum, base, used, limit, lo, hi, j))
            else:
                if j < lo:
                    j = lo
                elif j > hi:
                    j = hi
                # Exact fix-up: the scalar pool admits task k iff
                # used + (cum[k+1] - base) <= budget + 1e-12.
                while j < hi and used + (item(j + 1) - base) <= limit:
                    j += 1
                while j > lo and used + (item(j) - base) > limit:
                    j -= 1
            if j > lo:
                used += item(j) - base
                taken.append((lo, j))
                n_taken += j - lo
                queue.popleft()
                queue.appendleft((j, hi))
            break  # partial range: the next task does not fit
        self.count -= n_taken
        return taken, float(used), n_taken

    def restore_front(self, ranges: Sequence[tuple[int, int]]) -> None:
        """Return checked-out ranges to the front, preserving FIFO order."""
        self.ranges.extendleft(reversed(ranges))
        self.count += sum(hi - lo for lo, hi in ranges)

    def extend_back(self, ranges: Sequence[tuple[int, int]]) -> None:
        self.ranges.extend(ranges)
        self.count += sum(hi - lo for lo, hi in ranges)

    def steal_tail(self, target: int) -> tuple[list[tuple[int, int]], int]:
        """Remove ~``target`` tasks from the back (the victim's coldest work)."""
        queue = self.ranges
        stolen: list[tuple[int, int]] = []
        got = 0
        while queue and got < target:
            lo, hi = queue.pop()
            need = target - got
            if hi - lo > need:
                queue.append((lo, hi - need))
                stolen.append((hi - need, hi))
                got = target
            else:
                stolen.append((lo, hi))
                got += hi - lo
        stolen.reverse()
        self.count -= got
        return stolen, got


# ----------------------------------------------------------------------
# Per-host event-loop state
# ----------------------------------------------------------------------


class _Host:
    """Hot per-host cursor state for the shared event loop."""

    __slots__ = (
        "idx", "key", "c", "speed", "present_mean", "life", "rng", "steal_rng",
        "periods", "n_periods", "sched_idx", "pool",
        "pres_buf", "pres_n", "abs_buf", "abs_n",
        "returns", "ep_cursor",
        "absent", "crashed", "reclaim_at", "episode_started", "epoch",
        "inflight", "pending_rtt",
        "episodes", "committed", "killed", "tasks_done",
        "work_done", "work_lost", "overhead_paid", "idle_absent",
        "crashes", "lost", "delayed", "delay_time", "corrupted",
        "steals_attempted", "steals_succeeded", "steal_wait",
    )

    def __init__(self, idx: int, key: int, c: float, speed: float,
                 present_mean: float, life: LifeFunction,
                 rng: np.random.Generator,
                 steal_rng: Optional[np.random.Generator],
                 periods: list, pool: _RangePool) -> None:
        self.idx = idx
        self.key = key
        self.c = c
        self.speed = speed
        self.present_mean = present_mean
        self.life = life
        self.rng = rng
        self.steal_rng = steal_rng
        self.periods = periods
        self.n_periods = len(periods)
        self.sched_idx = 0
        self.pool = pool
        self.pres_buf = None
        self.pres_n = 0
        self.abs_buf = None
        self.abs_n = 0
        # Batched core: precomputed per-leave reclaim times + cursor.
        self.returns = None
        self.ep_cursor = 0
        self.absent = False
        self.crashed = False
        self.reclaim_at = math.inf
        self.episode_started = 0.0
        self.epoch = 0
        self.inflight = None  # (ranges, work, overhead, n_tasks)
        self.pending_rtt = 0.0
        self.episodes = 0
        self.committed = 0
        self.killed = 0
        self.tasks_done = 0
        self.work_done = 0.0
        self.work_lost = 0.0
        self.overhead_paid = 0.0
        self.idle_absent = 0.0
        self.crashes = 0
        self.lost = 0
        self.delayed = 0
        self.delay_time = 0.0
        self.corrupted = 0
        self.steals_attempted = 0
        self.steals_succeeded = 0
        self.steal_wait = 0.0

    # OwnerProcess's exact buffering discipline: 256-wide blocks, consumed
    # from the end, each draw floored at 1e-12 — so the substream is
    # bit-compatible with run_farm driving an OwnerProcess off the same rng.
    def next_present(self) -> float:
        n = self.pres_n
        if n == 0:
            self.pres_buf = self.rng.exponential(self.present_mean, size=_BLOCK)
            n = _BLOCK
        n -= 1
        self.pres_n = n
        v = float(self.pres_buf[n])
        return v if v > 1e-12 else 1e-12

    def next_absent(self) -> float:
        n = self.abs_n
        if n == 0:
            self.abs_buf = self.life.sample_reclaim_times(self.rng, _BLOCK)
            n = _BLOCK
        n -= 1
        self.abs_n = n
        v = float(self.abs_buf[n])
        return v if v > 1e-12 else 1e-12


# ----------------------------------------------------------------------
# Results (struct-of-arrays)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run, with per-host accounting as SoA arrays."""

    policy: str
    host_keys: np.ndarray
    episodes: np.ndarray
    periods_committed: np.ndarray
    periods_killed: np.ndarray
    tasks_completed_per_host: np.ndarray
    work_done: np.ndarray
    work_lost: np.ndarray
    overhead_paid: np.ndarray
    idle_absent_time: np.ndarray
    crashes: np.ndarray
    dispatches_lost: np.ndarray
    dispatches_delayed: np.ndarray
    delay_time: np.ndarray
    periods_corrupted: np.ndarray
    steals_attempted: np.ndarray
    steals_succeeded: np.ndarray
    steal_wait: np.ndarray
    tasks_total: int
    tasks_completed: int
    completion_time: float
    horizon: float
    events_processed: int
    #: Which event core produced this result ("batched" or "heap"); the two
    #: are bit-identical on every other field — the cross-core gate.
    core: str = "batched"
    fault_log: Optional[FaultLog] = None
    #: Structured event trace (``record_log=True`` only): tuples headed by
    #: "plan" / "dispatch" / "commit" / "kill" / "steal".
    dispatch_log: Optional[list] = None

    @property
    def n_hosts(self) -> int:
        return int(self.host_keys.size)

    @property
    def finished(self) -> bool:
        return self.tasks_completed == self.tasks_total

    @property
    def makespan(self) -> float:
        """Completion time if the workload finished, else NaN."""
        return self.completion_time

    @property
    def total_work_done(self) -> float:
        return float(np.sum(self.work_done))

    @property
    def total_work_lost(self) -> float:
        return float(np.sum(self.work_lost))

    @property
    def total_overhead(self) -> float:
        return float(np.sum(self.overhead_paid))

    @property
    def goodput(self) -> float:
        """Committed work per unit horizon time, summed over hosts."""
        return self.total_work_done / self.horizon if self.horizon > 0 else 0.0

    @property
    def total_steals(self) -> int:
        return int(np.sum(self.steals_succeeded))

    @property
    def steal_rate(self) -> float:
        """Successful steals per episode across the fleet (0 for sharing)."""
        eps = int(np.sum(self.episodes))
        return self.total_steals / eps if eps else 0.0

    def stats_for(self, i: int) -> WorkstationStats:
        """Host ``i``'s accounting as a scalar-farm :class:`WorkstationStats`."""
        return WorkstationStats(
            ws_id=int(self.host_keys[i]),
            episodes=int(self.episodes[i]),
            periods_committed=int(self.periods_committed[i]),
            periods_killed=int(self.periods_killed[i]),
            tasks_completed=int(self.tasks_completed_per_host[i]),
            work_done=float(self.work_done[i]),
            work_lost=float(self.work_lost[i]),
            overhead_paid=float(self.overhead_paid[i]),
            idle_absent_time=float(self.idle_absent_time[i]),
            crashes=int(self.crashes[i]),
            dispatches_lost=int(self.dispatches_lost[i]),
            dispatches_delayed=int(self.dispatches_delayed[i]),
            delay_time=float(self.delay_time[i]),
            periods_corrupted=int(self.periods_corrupted[i]),
            retries=0,
        )


# ----------------------------------------------------------------------
# The shared event core
# ----------------------------------------------------------------------


def _partition(n_tasks: int, n_hosts: int) -> list[tuple[int, int]]:
    """Even contiguous split of ``0..n_tasks`` into ``n_hosts`` blocks."""
    base, rem = divmod(n_tasks, n_hosts)
    bounds = [0]
    for i in range(n_hosts):
        bounds.append(bounds[-1] + base + (1 if i < rem else 0))
    return [(bounds[i], bounds[i + 1]) for i in range(n_hosts)]


def _fleet_kernels():
    """The compiled ``(checkout_fixup, event_order)`` pair, or ``(None, None)``.

    Resolved lazily so ``engine="numpy"`` runs never import the probe and
    numba-less installs transparently fall back to the Python/NumPy paths.
    """
    from .. import jitkernels

    if not jitkernels.available():
        return None, None
    k = jitkernels.kernels()
    return k.fleet_checkout_fixup, k.fleet_event_order


def _absence_inverse(
    family: str, d: int, lives: list, u: np.ndarray
) -> np.ndarray:
    """Vectorized ``LifeFunction.inverse`` across one chunk of hosts.

    ``u`` has shape ``(hosts, draws)``; row ``i`` holds host ``i``'s uniform
    block.  Applies the family's closed-form inverse transform with per-host
    parameters broadcast down the rows — the identical elementwise ufunc
    chain each :meth:`LifeFunction.inverse` performs, so every value is
    bit-equal to the per-host scalar path (the cross-core suite pins this).
    """
    m = u.shape[0]
    if family in ("uniform", "poly"):
        L = np.empty((m, 1))
        for r in range(m):
            L[r, 0] = lives[r].lifespan
        return L * (1.0 - u) ** (1.0 / d)
    if family == "geomdec":
        ln_a = np.empty((m, 1))
        for r in range(m):
            ln_a[r, 0] = lives[r].ln_a
        with np.errstate(divide="ignore"):
            return np.where(u > 0, -np.log(np.where(u > 0, u, 1.0)) / ln_a,
                            np.inf)
    # geominc: t = L + log2(1 - u * (1 - 2^{-L})), clipped into [0, L].
    L = np.empty((m, 1))
    for r in range(m):
        L[r, 0] = lives[r].lifespan
    denom = -np.expm1(-L * _LN2)
    inner = 1.0 - u * denom
    out = L + np.log(np.maximum(inner, np.finfo(float).tiny)) / _LN2
    return np.clip(out, 0.0, L)


def _plan_owner_timelines(
    spec: FleetSpec,
    hosts: list,
    horizon: float,
    start_absent: bool,
    runtime,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bulk-precompute every host's owner leave/return events.

    Extends the ``FaultRuntime.crash_arrays`` planning idea to owner draws.
    Per chunk of hosts: presence blocks (``rng.exponential``) and absence
    uniform blocks are drawn per host in the exact lazy refill order
    ``OwnerProcess`` uses (presence block first unless ``start_absent``,
    strict alternation, 256 wide, consumed from the end, floored at
    ``1e-12``), the family inverse transform runs once vectorized across
    the chunk, and the alternating presence/absence durations collapse to a
    timeline with one ``np.cumsum`` per chunk — the same left-to-right IEEE
    additions the scalar event loop performs, so every event time is
    bit-identical to the heap core's ``time + draw`` chain.

    Life drift is baked in exactly: an absence is scaled iff its *leave*
    time crossed the drift threshold, and since scaling never moves an
    already-crossed leave back below the threshold, the crossing computed on
    the unscaled timeline is the true one.  (The drain loop still calls
    ``absence_scale`` per leave for its drift-log side effect.)

    Hosts whose drawn timeline does not yet cover ``horizon`` simply draw
    further block pairs — the extra draws a lazy host would never have made
    are unobservable (generator state is not an output).

    Returns ``(times, prios, seqs)`` for every owner event with
    ``time <= horizon`` (unsorted), and fills ``h.returns`` /
    ``h.ep_cursor`` on each host with the per-leave reclaim lookup.
    """
    if runtime is not None:
        drift_at, drift_scale = runtime.drift_params()
    else:
        drift_at, drift_scale = math.inf, 1.0
    family, d = spec.family, spec.d
    out_t: list[np.ndarray] = []
    out_p: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    for c0 in range(0, len(hosts), _TIMELINE_CHUNK):
        act = hosts[c0:c0 + _TIMELINE_CHUNK]
        durs = None
        while act:
            k = len(act)
            P = np.empty((k, _BLOCK))
            U = np.empty((k, _BLOCK))
            # Exact per-generator call order: the stream that refills first
            # under lazy consumption is drawn first here.
            if start_absent:
                for r in range(k):
                    h = act[r]
                    U[r] = h.rng.uniform(0.0, 1.0, _BLOCK)
                    P[r] = h.rng.exponential(h.present_mean, _BLOCK)
            else:
                for r in range(k):
                    h = act[r]
                    P[r] = h.rng.exponential(h.present_mean, _BLOCK)
                    U[r] = h.rng.uniform(0.0, 1.0, _BLOCK)
            A = _absence_inverse(family, d, [h.life for h in act], U)
            # Blocks are consumed from the end, each value floored at 1e-12.
            P = P[:, ::-1]
            A = A[:, ::-1]
            P = np.where(P > 1e-12, P, 1e-12)
            A = np.where(A > 1e-12, A, 1e-12)
            seg = np.empty((k, 2 * _BLOCK))
            if start_absent:
                seg[:, 0::2] = A
                seg[:, 1::2] = P
            else:
                seg[:, 0::2] = P
                seg[:, 1::2] = A
            durs = seg if durs is None else np.concatenate([durs, seg], axis=1)
            if drift_at != math.inf and drift_scale != 1.0:
                cum0 = np.cumsum(durs, axis=1)
                if start_absent:
                    leaves0 = np.concatenate(
                        [np.zeros((k, 1)), cum0[:, 1::2][:, :-1]], axis=1
                    )
                    a_sl = slice(0, None, 2)
                else:
                    leaves0 = cum0[:, 0::2]
                    a_sl = slice(1, None, 2)
                crossed = leaves0 >= drift_at
                scaled = durs.copy()
                a_part = scaled[:, a_sl]
                scaled[:, a_sl] = np.where(crossed, a_part * drift_scale,
                                           a_part)
                cum = np.cumsum(scaled, axis=1)
            else:
                cum = np.cumsum(durs, axis=1)
            # Covered once the last in-matrix leave passes the horizon (its
            # return, if needed, is then guaranteed to be in-matrix too).
            last_leave = cum[:, -1] if start_absent else cum[:, -2]
            covered = last_leave > horizon
            if not covered.any():
                continue
            rows = np.flatnonzero(covered)
            cum_r = cum[rows]
            if start_absent:
                ret_m = cum_r[:, 0::2]
                leave_m = np.concatenate(
                    [np.zeros((rows.size, 1)), cum_r[:, 1::2][:, :-1]], axis=1
                )
            else:
                leave_m = cum_r[:, 0::2]
                ret_m = cum_r[:, 1::2]
            mask_lv = leave_m <= horizon
            mask_rt = ret_m <= horizon
            idxs = np.empty(rows.size, dtype=np.int64)
            for j, r in enumerate(rows):
                idxs[j] = act[r].idx
            base = (idxs << _SEQ_EPOCH_BITS)[:, None]
            n_lv = mask_lv.sum(axis=1)
            # One capped-and-contiguous matrix tolist beats 100k per-row
            # conversions; the cursor only reads the first n_lv entries per
            # row (one per leave <= horizon), extra columns are inert.
            ncap = int(n_lv.max())
            ret_rows = np.ascontiguousarray(ret_m[:, :ncap]).tolist()
            for j, r in enumerate(rows):
                h = act[r]
                h.returns = ret_rows[j]
                h.ep_cursor = 0
            out_t.append(leave_m[mask_lv])
            out_p.append(np.full(int(n_lv.sum()), _OWNER_LEAVES, np.int64))
            out_s.append(np.broadcast_to(base, leave_m.shape)[mask_lv])
            n_rt = int(mask_rt.sum())
            out_t.append(ret_m[mask_rt])
            out_p.append(np.full(n_rt, _OWNER_RETURNS, np.int64))
            out_s.append(np.broadcast_to(base, ret_m.shape)[mask_rt])
            if covered.all():
                break
            keep = ~covered
            act = [act[r] for r in np.flatnonzero(keep)]
            durs = durs[keep]
    if out_t:
        return (
            np.ascontiguousarray(np.concatenate(out_t)),
            np.concatenate(out_p),
            np.concatenate(out_s),
        )
    empty = np.zeros(0)
    return empty, empty.astype(np.int64), empty.astype(np.int64)


def run_fleet(
    spec: FleetSpec,
    durations: np.ndarray,
    horizon: float,
    policy: str = "sharing",
    plan: Optional[FleetPlan] = None,
    grid: int = 9,
    engine: str = "numpy",
    faults: Optional[FaultPlan] = None,
    start_absent: bool = False,
    record_log: bool = False,
    steal_fraction: float = 0.5,
    core: str = "batched",
    bucket_width: Optional[float] = None,
) -> FleetResult:
    """Advance every host of the fleet through one shared event loop.

    Parameters mirror :func:`repro.now.farm.run_farm` where they overlap;
    ``durations`` is the global task-duration array (FIFO order), ``policy``
    one of :data:`FLEET_POLICIES`, and ``plan`` an optional precomputed
    :class:`FleetPlan` (planned via :func:`plan_fleet_schedules` otherwise).
    ``steal_fraction`` is the fraction of a victim's pending tasks taken per
    successful steal (rounded up; default half).

    ``core`` selects the event core: ``"batched"`` (default) drains
    precomputed calendar-queue buckets, ``"heap"`` is the scalar ``heapq``
    loop kept as the differential oracle — the two are bit-identical (see
    the module docstring).  ``bucket_width`` overrides the batched core's
    bucket span in simulation-time units (default: auto-sized so static
    events average ~8 per bucket); it is a pure performance knob — results
    are identical for every width.
    """
    if not (horizon > 0 and math.isfinite(horizon)):
        raise SimulationError(
            f"horizon must be positive and finite, got {horizon}"
        )
    if policy not in FLEET_POLICIES:
        raise SimulationError(
            f"unknown fleet policy {policy!r}; expected one of {FLEET_POLICIES}"
        )
    if core not in FLEET_CORES:
        raise SimulationError(
            f"unknown fleet core {core!r}; expected one of {FLEET_CORES}"
        )
    if not 0.0 < steal_fraction <= 1.0:
        raise SimulationError(
            f"steal_fraction must lie in (0, 1], got {steal_fraction}"
        )
    if bucket_width is not None and not (
        bucket_width > 0 and math.isfinite(bucket_width)
    ):
        raise SimulationError(
            f"bucket_width must be positive and finite, got {bucket_width}"
        )
    durations = np.asarray(durations, dtype=float)
    if durations.ndim != 1 or durations.size == 0:
        raise SimulationError("durations must be a non-empty vector")
    if np.any(durations <= 0):
        raise SimulationError("task durations must be positive")
    if plan is None:
        plan = plan_fleet_schedules(spec, grid=grid, engine=engine)
    if plan.n_hosts != spec.n_hosts:
        raise SimulationError(
            f"plan covers {plan.n_hosts} hosts, spec has {spec.n_hosts}"
        )

    n_hosts = spec.n_hosts
    if n_hosts >= _MAX_HOSTS:
        raise SimulationError(
            f"fleet is capped at {_MAX_HOSTS - 1} hosts (int64 event seq)"
        )
    n_tasks = int(durations.size)
    cum = np.concatenate(([0.0], np.cumsum(durations)))
    stealing = policy != "sharing"
    latency = policy == "stealing-latency"

    checkout_fixup = event_order = None
    if engine == "jit":
        checkout_fixup, event_order = _fleet_kernels()

    if stealing:
        pools = [_RangePool([r] if r[1] > r[0] else [], cum, checkout_fixup)
                 for r in _partition(n_tasks, n_hosts)]
    else:
        shared = _RangePool([(0, n_tasks)], cum, checkout_fixup)
        pools = [shared] * n_hosts

    keys = spec.host_keys
    # Bulk scalar conversion + life-function interning: at 100k hosts the
    # per-host float()/tolist()/constructor churn is a visible slice of the
    # wall clock, and life functions are stateless so equal params share one.
    keys_l = [int(k) for k in keys.tolist()]
    cs_l = spec.cs.tolist()
    speeds_l = spec.speeds.tolist()
    pm_l = spec.present_means.tolist()
    periods_l = plan.periods.tolist()
    nper_l = plan.num_periods.tolist()
    seed = int(spec.seed)
    life_cache: dict[float, LifeFunction] = {}
    lives = []
    for p in spec.params.tolist():
        lf = life_cache.get(p)
        if lf is None:
            lf = life_cache[p] = _make_life(spec.family, p, spec.d)
        lives.append(lf)
    hosts = [
        _Host(
            i, keys_l[i], cs_l[i], speeds_l[i], pm_l[i], lives[i],
            np.random.default_rng([seed, 0, keys_l[i]]),
            np.random.default_rng([seed, 1, keys_l[i]])
            if stealing and n_hosts > 1 else None,
            periods_l[i][: int(nper_l[i])],
            pools[i],
        )
        for i in range(n_hosts)
    ]
    key_to_idx = {h.key: h.idx for h in hosts}

    runtime: Optional[FaultRuntime] = None
    if faults is not None:
        runtime = faults.start((h.key for h in hosts), horizon)

    pending_total = n_tasks
    inflight_count = 0
    completion_time = math.nan
    events = 0
    log: Optional[list] = [] if record_log else None

    if core == "heap":
        # --------------------------------------------------------------
        # Heap core: the scalar heapq loop — the differential oracle.
        # --------------------------------------------------------------
        heap_q: list[tuple[float, int, int]] = []

        def push(time: float, prio: int, idx: int, epoch: int = 0) -> None:
            if epoch > _SEQ_EPOCH_MASK:
                raise SimulationError(
                    "host dispatch epoch exceeded the 32-bit event-seq field"
                )
            heapq.heappush(
                heap_q, (time, prio, (idx << _SEQ_EPOCH_BITS) | epoch)
            )

        for h in hosts:
            if start_absent:
                push(0.0, _OWNER_LEAVES, h.idx)
            else:
                push(h.next_present(), _OWNER_LEAVES, h.idx)
        if runtime is not None:
            # Bulk-seed the churn timeline: crash_arrays flattens every
            # outage in the exact (sorted host, chronological) order
            # run_farm pushes in.
            churn_ws, churn_crash, churn_restart = runtime.crash_arrays()
            for k in range(churn_ws.size):
                idx = key_to_idx[int(churn_ws[k])]
                push(float(churn_crash[k]), _WS_CRASH, idx)
                push(float(churn_restart[k]), _WS_RESTART, idx)

        def idle_until_reclaim(h: _Host, now: float) -> None:
            h.idle_absent += max(0.0, min(h.reclaim_at, horizon) - now)

        def kill_in_flight(h: _Host) -> None:
            nonlocal pending_total, inflight_count
            bundle = h.inflight
            if bundle is None:
                return
            ranges, work, overhead, n_taken = bundle
            h.pool.restore_front(ranges)
            pending_total += n_taken
            h.killed += 1
            h.work_lost += work
            h.overhead_paid += overhead
            h.inflight = None
            h.epoch += 1
            inflight_count -= 1
            if log is not None:
                log.append(("kill", h.key, ranges))

        def dispatch(h: _Host, now: float) -> None:
            nonlocal pending_total, inflight_count
            if h.crashed:
                return
            pool = h.pool
            if pool.count == 0:
                # Steal before consulting the schedule: the schedule cursor
                # must not advance on an episode the empty pool would have
                # idled, so an n = 1 fleet consumes exactly run_farm's
                # policy calls.
                if h.steal_rng is not None:
                    h.steals_attempted += 1
                    victim_pos = int(h.steal_rng.integers(n_hosts - 1))
                    if victim_pos >= h.idx:
                        victim_pos += 1
                    victim = hosts[victim_pos]
                    if victim.pool.count > 0:
                        target = math.ceil(victim.pool.count * steal_fraction)
                        stolen, got = victim.pool.steal_tail(int(target))
                        pool.extend_back(stolen)
                        h.steals_succeeded += 1
                        if latency:
                            h.pending_rtt = h.c
                            h.steal_wait += h.c
                        if log is not None:
                            log.append(("steal", now, h.key, victim.key, got))
                    else:
                        idle_until_reclaim(h, now)
                        return
                else:
                    idle_until_reclaim(h, now)
                    return
            sched_idx = h.sched_idx
            if sched_idx >= h.n_periods:
                if log is not None:
                    log.append(("plan", h.key, now - h.episode_started, None))
                idle_until_reclaim(h, now)
                return
            planned = h.periods[sched_idx]
            h.sched_idx = sched_idx + 1
            if log is not None:
                log.append(("plan", h.key, now - h.episode_started, planned))
            if planned <= h.c:
                idle_until_reclaim(h, now)
                return
            budget = (planned - h.c) * h.speed
            # run_farm routes the budget through pack_period's planned-length
            # arithmetic; replay it literally so the floats agree to the bit.
            taken, work, n_taken = pool.checkout((h.c + budget) - h.c)
            if not taken:
                idle_until_reclaim(h, now)
                return
            c_eff = h.c
            extra_delay = 0.0
            if runtime is not None:
                fate = runtime.dispatch_fate(h.key, now, h.c)
                if fate.lost:
                    pool.restore_front(taken)
                    h.lost += 1
                    idle_until_reclaim(h, now)
                    return
                c_eff = fate.c_effective
                extra_delay = fate.delay
                if extra_delay > 0.0:
                    h.delayed += 1
                    h.delay_time += extra_delay
            pending_total -= n_taken
            rtt = h.pending_rtt
            h.pending_rtt = 0.0
            wall = c_eff + extra_delay + rtt + work / h.speed
            h.inflight = (taken, work, c_eff, n_taken)
            h.epoch += 1
            inflight_count += 1
            push(now + wall, _PERIOD_ENDS, h.idx, h.epoch)
            if log is not None:
                log.append(("dispatch", now, h.key, work, c_eff, n_taken))

        while heap_q:
            time, prio, seq = heapq.heappop(heap_q)
            if time > horizon:
                break
            events += 1
            idx = seq >> _SEQ_EPOCH_BITS
            h = hosts[idx]

            if prio == _WS_CRASH:
                kill_in_flight(h)
                h.crashed = True
                h.crashes += 1
                assert runtime is not None
                runtime.log.record(time, "crash", h.key)

            elif prio == _WS_RESTART:
                h.crashed = False
                assert runtime is not None
                runtime.log.record(time, "restart", h.key)
                if h.absent and time < h.reclaim_at and h.inflight is None:
                    dispatch(h, time)

            elif prio == _OWNER_LEAVES:
                absence = h.next_absent()
                if runtime is not None:
                    absence *= runtime.absence_scale(h.key, time)
                h.absent = True
                h.reclaim_at = time + absence
                h.episode_started = time
                h.sched_idx = 0
                h.pending_rtt = 0.0
                h.episodes += 1
                push(h.reclaim_at, _OWNER_RETURNS, idx)
                dispatch(h, time)

            elif prio == _OWNER_RETURNS:
                kill_in_flight(h)
                h.absent = False
                h.reclaim_at = math.inf
                push(time + h.next_present(), _OWNER_LEAVES, idx)

            else:  # _PERIOD_ENDS
                if (seq & _SEQ_EPOCH_MASK) != h.epoch or h.inflight is None:
                    continue
                ranges, work, overhead, n_taken = h.inflight
                h.inflight = None
                inflight_count -= 1
                if runtime is not None and runtime.commit_corrupted(h.key, time):
                    h.pool.restore_front(ranges)
                    pending_total += n_taken
                    h.corrupted += 1
                    h.work_lost += work
                    h.overhead_paid += overhead
                    dispatch(h, time)
                    continue
                h.committed += 1
                h.tasks_done += n_taken
                h.work_done += work
                h.overhead_paid += overhead
                if log is not None:
                    log.append(("commit", time, h.key, ranges))
                if pending_total == 0 and math.isnan(completion_time):
                    if inflight_count == 0:
                        completion_time = time
                        break
                dispatch(h, time)

    else:
        # --------------------------------------------------------------
        # Batched core: precomputed static events drained through a
        # calendar queue of fixed-width time buckets.  Every handler is
        # inlined — no closure calls, no heap — but processes events in
        # exactly the heap core's (time, prio, seq) order, so the two
        # cores are bit-identical (the cross-core differential gate).
        # --------------------------------------------------------------
        st_t, st_p, st_s = _plan_owner_timelines(
            spec, hosts, horizon, start_absent, runtime
        )
        if runtime is not None:
            churn_ws, churn_crash, churn_restart = runtime.crash_arrays()
            if churn_ws.size:
                cidx = np.array(
                    [key_to_idx[int(w)] for w in churn_ws], dtype=np.int64
                )
                alive = churn_restart <= horizon
                st_t = np.concatenate(
                    [st_t, churn_crash, churn_restart[alive]]
                )
                st_p = np.concatenate([
                    st_p,
                    np.full(cidx.size, _WS_CRASH, np.int64),
                    np.full(int(alive.sum()), _WS_RESTART, np.int64),
                ])
                st_s = np.concatenate([
                    st_s,
                    cidx << _SEQ_EPOCH_BITS,
                    cidx[alive] << _SEQ_EPOCH_BITS,
                ])
        if event_order is not None:
            order = event_order(st_t, st_p, st_s)
        else:
            order = np.lexsort((st_s, st_p, st_t))
        st_t = st_t[order]
        st_p = st_p[order]
        st_s = st_s[order]

        n_static = int(st_t.size)
        if bucket_width is None:
            nb = min(max(n_static // 8, 1), 1 << 16)
        else:
            nb = min(max(int(math.ceil(horizon / bucket_width)), 1), 1 << 20)
        inv_w = nb / horizon
        if n_static:
            st_b = np.minimum((st_t * inv_w).astype(np.int64), nb - 1)
            bounds = np.searchsorted(st_b, np.arange(nb + 1)).tolist()
        else:
            bounds = [0] * (nb + 1)
        dyn: list[list] = [[] for _ in range(nb)]

        inv_mean = n_tasks / float(cum[-1])
        # Exact empty-checkout guard: checkout admits its first task iff some
        # adjacent prefix-sum gap fits the limit, so a budget below the
        # smallest gap can never take work — skip the call, same result.
        min_gap = float(np.min(np.diff(cum)))
        inf = math.inf
        MASK = _SEQ_EPOCH_MASK
        stop = False
        for cur in range(nb):
            lo_b = bounds[cur]
            hi_b = bounds[cur + 1]
            evs = dyn[cur]
            if hi_b > lo_b:
                # Materialize this bucket's static cohort only now — keeping
                # the whole schedule as live tuples would tax every GC pass.
                merged = list(zip(
                    st_t[lo_b:hi_b].tolist(),
                    st_p[lo_b:hi_b].tolist(),
                    st_s[lo_b:hi_b].tolist(),
                ))
                if evs:
                    merged.extend(evs)
                    merged.sort()
                evs = merged
            elif evs:
                evs.sort()
            else:
                continue
            pos = 0
            n_evs = len(evs)
            while pos < n_evs:
                time, prio, seq = evs[pos]
                pos += 1
                idx = seq >> 32
                h = hosts[idx]

                if prio == 2:  # _PERIOD_ENDS (hot path)
                    bundle = h.inflight
                    if (seq & MASK) != h.epoch or bundle is None:
                        continue  # stale epoch: superseded by a kill
                    work = bundle[1]
                    n_taken = bundle[3]
                    h.inflight = None
                    inflight_count -= 1
                    if runtime is not None and runtime.commit_corrupted(
                        h.key, time
                    ):
                        h.pool.restore_front(bundle[0])
                        pending_total += n_taken
                        h.corrupted += 1
                        h.work_lost += work
                        h.overhead_paid += bundle[2]
                    else:
                        h.committed += 1
                        h.tasks_done += n_taken
                        h.work_done += work
                        h.overhead_paid += bundle[2]
                        if log is not None:
                            log.append(("commit", time, h.key, bundle[0]))
                        if pending_total == 0 \
                                and completion_time != completion_time:
                            if inflight_count == 0:
                                completion_time = time
                                stop = True
                                break
                elif prio == 1:  # _OWNER_LEAVES
                    if runtime is not None:
                        # Drift scaling is baked into h.returns; the call
                        # remains for its drift-log side effect.
                        runtime.absence_scale(h.key, time)
                    k = h.ep_cursor
                    h.ep_cursor = k + 1
                    h.absent = True
                    h.reclaim_at = h.returns[k]
                    h.episode_started = time
                    h.sched_idx = 0
                    h.pending_rtt = 0.0
                    h.episodes += 1
                elif prio == 0:  # _OWNER_RETURNS
                    bundle = h.inflight
                    if bundle is not None:
                        h.pool.restore_front(bundle[0])
                        pending_total += bundle[3]
                        h.killed += 1
                        h.work_lost += bundle[1]
                        h.overhead_paid += bundle[2]
                        h.inflight = None
                        h.epoch += 1
                        inflight_count -= 1
                        if log is not None:
                            log.append(("kill", h.key, bundle[0]))
                    h.absent = False
                    h.reclaim_at = inf
                    continue
                elif prio == -1:  # _WS_CRASH
                    bundle = h.inflight
                    if bundle is not None:
                        h.pool.restore_front(bundle[0])
                        pending_total += bundle[3]
                        h.killed += 1
                        h.work_lost += bundle[1]
                        h.overhead_paid += bundle[2]
                        h.inflight = None
                        h.epoch += 1
                        inflight_count -= 1
                        if log is not None:
                            log.append(("kill", h.key, bundle[0]))
                    h.crashed = True
                    h.crashes += 1
                    runtime.log.record(time, "crash", h.key)
                    continue
                else:  # _WS_RESTART
                    h.crashed = False
                    runtime.log.record(time, "restart", h.key)
                    if not (h.absent and time < h.reclaim_at
                            and h.inflight is None):
                        continue

                # ---- dispatch, inlined (falls through from period-end
                # commit/corruption, owner leave, and eligible restart) ----
                if h.crashed:
                    continue
                pool = h.pool
                if pool.count == 0:
                    srng = h.steal_rng
                    if srng is None:
                        ra = h.reclaim_at
                        if ra > horizon:
                            ra = horizon
                        if ra > time:
                            h.idle_absent += ra - time
                        continue
                    h.steals_attempted += 1
                    victim_pos = int(srng.integers(n_hosts - 1))
                    if victim_pos >= idx:
                        victim_pos += 1
                    victim = hosts[victim_pos]
                    vpool = victim.pool
                    if vpool.count > 0:
                        stolen, got = vpool.steal_tail(
                            int(math.ceil(vpool.count * steal_fraction))
                        )
                        pool.extend_back(stolen)
                        h.steals_succeeded += 1
                        if latency:
                            h.pending_rtt = h.c
                            h.steal_wait += h.c
                        if log is not None:
                            log.append(("steal", time, h.key, victim.key, got))
                    else:
                        ra = h.reclaim_at
                        if ra > horizon:
                            ra = horizon
                        if ra > time:
                            h.idle_absent += ra - time
                        continue
                sched_idx = h.sched_idx
                if sched_idx >= h.n_periods:
                    if log is not None:
                        log.append(("plan", h.key, time - h.episode_started,
                                    None))
                    ra = h.reclaim_at
                    if ra > horizon:
                        ra = horizon
                    if ra > time:
                        h.idle_absent += ra - time
                    continue
                planned = h.periods[sched_idx]
                h.sched_idx = sched_idx + 1
                if log is not None:
                    log.append(("plan", h.key, time - h.episode_started,
                                planned))
                c = h.c
                if planned <= c:
                    ra = h.reclaim_at
                    if ra > horizon:
                        ra = horizon
                    if ra > time:
                        h.idle_absent += ra - time
                    continue
                speed = h.speed
                budget = (planned - c) * speed
                budget = (c + budget) - c
                if budget + 1e-12 < min_gap:
                    ra = h.reclaim_at
                    if ra > horizon:
                        ra = horizon
                    if ra > time:
                        h.idle_absent += ra - time
                    continue
                taken, work, n_taken = pool.checkout(budget, inv_mean)
                if not taken:
                    ra = h.reclaim_at
                    if ra > horizon:
                        ra = horizon
                    if ra > time:
                        h.idle_absent += ra - time
                    continue
                c_eff = c
                extra_delay = 0.0
                if runtime is not None:
                    fate = runtime.dispatch_fate(h.key, time, c)
                    if fate.lost:
                        pool.restore_front(taken)
                        h.lost += 1
                        ra = h.reclaim_at
                        if ra > horizon:
                            ra = horizon
                        if ra > time:
                            h.idle_absent += ra - time
                        continue
                    c_eff = fate.c_effective
                    extra_delay = fate.delay
                    if extra_delay > 0.0:
                        h.delayed += 1
                        h.delay_time += extra_delay
                pending_total -= n_taken
                rtt = h.pending_rtt
                h.pending_rtt = 0.0
                wall = c_eff + extra_delay + rtt + work / speed
                h.inflight = (taken, work, c_eff, n_taken)
                epoch = h.epoch + 1
                h.epoch = epoch
                inflight_count += 1
                t_end = time + wall
                if t_end <= horizon:
                    if epoch > MASK:
                        raise SimulationError(
                            "host dispatch epoch exceeded the 32-bit "
                            "event-seq field"
                        )
                    b = int(t_end * inv_w)
                    if b > cur:
                        if b >= nb:
                            b = nb - 1
                        dyn[b].append((t_end, 2, (idx << 32) | epoch))
                    else:
                        # Same bucket: keep exact order via a sorted insert
                        # past the current position (t_end > time).
                        insort(evs, (t_end, 2, (idx << 32) | epoch), pos)
                        n_evs += 1
                if log is not None:
                    log.append(("dispatch", time, h.key, work, c_eff,
                                n_taken))
            events += pos
            if stop:
                break

    # Teardown: in-flight bundles at the cut return without stats.
    for h in hosts:
        if h.inflight is not None:
            ranges, _w, _o, n_taken = h.inflight
            h.pool.restore_front(ranges)
            pending_total += n_taken
            h.inflight = None
            h.epoch += 1

    gather = lambda name, dtype: np.array([getattr(h, name) for h in hosts],
                                          dtype=dtype)
    return FleetResult(
        policy=policy,
        host_keys=keys.copy(),
        episodes=gather("episodes", np.int64),
        periods_committed=gather("committed", np.int64),
        periods_killed=gather("killed", np.int64),
        tasks_completed_per_host=gather("tasks_done", np.int64),
        work_done=gather("work_done", float),
        work_lost=gather("work_lost", float),
        overhead_paid=gather("overhead_paid", float),
        idle_absent_time=gather("idle_absent", float),
        crashes=gather("crashes", np.int64),
        dispatches_lost=gather("lost", np.int64),
        dispatches_delayed=gather("delayed", np.int64),
        delay_time=gather("delay_time", float),
        periods_corrupted=gather("corrupted", np.int64),
        steals_attempted=gather("steals_attempted", np.int64),
        steals_succeeded=gather("steals_succeeded", np.int64),
        steal_wait=gather("steal_wait", float),
        tasks_total=n_tasks,
        tasks_completed=int(sum(h.tasks_done for h in hosts)),
        completion_time=completion_time,
        horizon=horizon,
        events_processed=events,
        core=core,
        fault_log=None if runtime is None else runtime.log,
        dispatch_log=log,
    )


# ----------------------------------------------------------------------
# Mean-field fixed-point approximation
# ----------------------------------------------------------------------


def _mean_absence(family: str, params: np.ndarray, d: int) -> np.ndarray:
    """``E[R] = ∫ p(t) dt`` per host, in closed form per Section 4 family."""
    if family == "uniform":
        return params / 2.0
    if family == "poly":
        return params * d / (d + 1.0)
    if family == "geomdec":
        return 1.0 / np.log(params)
    # geominc: ∫0^L (2^{L-t} - 1) / (2^L - 1) dt = 1/ln2 - L / (2^L - 1).
    return 1.0 / _LN2 - params / np.expm1(params * _LN2)


def mean_field_fleet(
    spec: FleetSpec,
    plan: FleetPlan,
    total_work: float,
    policy: str = "sharing",
    faults: Optional[FaultPlan] = None,
    max_iter: int = 64,
) -> dict:
    """Fixed-point makespan/goodput prediction for one fleet configuration.

    Each host is approximated as an independent renewal process: per owner
    cycle (``present_mean + E[absence]``) it banks its schedule's expected
    work ``E(S; p) × speed``, thinned by crash availability
    ``mtbf / (mtbf + restart)``.  The fleet drains ``total_work`` at the
    summed rate; for ``"stealing-latency"`` the steal RTT consumes wall
    clock once per refill episode after a host's initial share drains, which
    feeds back into the makespan — iterated to a fixed point.  Returns a
    dict with ``makespan``, ``goodput``, ``per_host_goodput``, and the
    predicted ``steals`` (0 for sharing).
    """
    if policy not in FLEET_POLICIES:
        raise SimulationError(
            f"unknown fleet policy {policy!r}; expected one of {FLEET_POLICIES}"
        )
    cycle = spec.present_means + _mean_absence(spec.family, spec.params, spec.d)
    availability = 1.0
    if faults is not None:
        crash = faults.get(CrashFault)
        if crash is not None and crash.restart_time > 0:
            availability = crash.mtbf / (crash.mtbf + crash.restart_time)
    per_host = availability * plan.expected_work * spec.speeds / cycle
    rate = float(np.sum(per_host))
    if rate <= 0:
        return {"makespan": math.inf, "goodput": 0.0,
                "per_host_goodput": per_host, "steals": 0.0}
    makespan = total_work / rate
    steals = 0.0
    if policy != "sharing" and spec.n_hosts > 1:
        share = total_work / spec.n_hosts
        for _ in range(max_iter):
            drain = np.minimum(share / per_host, makespan)
            refill_episodes = np.maximum(makespan - drain, 0.0) / cycle
            steals = float(np.sum(refill_episodes))
            overhead_work = 0.0
            if policy == "stealing-latency":
                # Each refill's RTT forfeits c × speed × availability of work.
                overhead_work = float(np.sum(
                    refill_episodes * spec.cs * spec.speeds * availability
                ))
            new_makespan = (total_work + overhead_work) / rate
            if abs(new_makespan - makespan) <= 1e-9 * makespan:
                makespan = new_makespan
                break
            makespan = 0.5 * (makespan + new_makespan)
    return {
        "makespan": makespan,
        "goodput": rate,
        "per_host_goodput": per_host,
        "steals": steals,
    }
