"""The guideline recurrence (Theorem 3.1 / Corollary 3.1).

For an optimal schedule ``S = t_0, t_1, ...`` under a differentiable life
function ``p``, Corollary 3.1 gives the computationally friendly system

    p(T_k) = p(T_{k-1}) + (t_{k-1} - c) * p'(T_{k-1}),      k >= 1.     (3.6)

Because ``p`` is strictly decreasing where positive, each equation determines
``T_k`` (hence ``t_k = T_k - T_{k-1}``) from the state ``(T_{k-1}, t_{k-1})``:
the right-hand side is a *target* survival value, and ``T_k = p^{-1}(target)``.
The paper highlights the "progressive" nature of this system — ``t_{k+1}`` can
be chosen only after period ``k`` is fixed — which the progressive scheduler
(:mod:`repro.core.progressive`) exploits with conditional probabilities.

This module provides:

* :func:`next_period` — one recurrence step, with exact closed forms for the
  Section 4 families (eqs. 4.1, 4.6, 4.7 and the general ``p_{d,L}`` form)
  and a numerically robust generic path via ``p^{-1}``;
* :func:`generate_schedule` — iterate from ``t_0`` to a full schedule, with a
  principled termination rule and a reported termination reason;
* :func:`recurrence_residuals` / :func:`satisfies_recurrence` — verify that a
  given schedule satisfies system (3.6), used by tests and by the Theorem 5.1
  local-optimality experiments.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
)
from .schedule import Schedule

__all__ = [
    "Termination",
    "RecurrenceOutcome",
    "next_period",
    "generate_schedule",
    "recurrence_residuals",
    "satisfies_recurrence",
]


class Termination(enum.Enum):
    """Why :func:`generate_schedule` stopped emitting periods."""

    #: The recurrence target ``p(T_{k-1}) + (t_{k-1}-c) p'(T_{k-1})`` fell to
    #: (or below) zero: no further boundary exists inside the support.
    TARGET_NONPOSITIVE = "target_nonpositive"
    #: The next period length would be ``<= c`` — it could contribute no work
    #: (Proposition 2.1), so the schedule ends.
    UNPRODUCTIVE = "unproductive"
    #: The cumulative boundary reached the potential lifespan ``L``.
    LIFESPAN_EXHAUSTED = "lifespan_exhausted"
    #: Tail contributions dropped below tolerance (infinite-support case).
    TAIL_NEGLIGIBLE = "tail_negligible"
    #: Hit ``max_periods`` before any other rule fired.
    MAX_PERIODS = "max_periods"


@dataclass(frozen=True)
class RecurrenceOutcome:
    """A guideline-generated schedule plus diagnostics."""

    schedule: Schedule
    termination: Termination
    #: Target survival values used at each recurrence step (length ``m - 1``).
    targets: FloatArray

    @property
    def num_periods(self) -> int:
        return self.schedule.num_periods


# ----------------------------------------------------------------------
# Closed-form single steps for the Section 4 families
# ----------------------------------------------------------------------


def _next_polynomial(p: PolynomialRisk, c: float, t_prev: float, boundary_prev: float) -> float:
    """Section 4.1's closed form for ``p_{d,L}``.

    ``t_k = ((1 + d (t_{k-1} - c) / T_{k-1})^{1/d} - 1) * T_{k-1}``; for
    ``d = 1`` this is eq. (4.1): ``t_k = t_{k-1} - c``.
    """
    if p.d == 1:
        return t_prev - c
    ratio = 1.0 + p.d * (t_prev - c) / boundary_prev
    if ratio <= 0.0:
        return math.nan
    return (ratio ** (1.0 / p.d) - 1.0) * boundary_prev


def _next_geometric_decreasing(
    p: GeometricDecreasingLifespan, c: float, t_prev: float
) -> float:
    """Section 4.2's closed form (eq. 4.6): ``a^{-t_k} = 1 + (c - t_{k-1}) ln a``.

    Solvable only while ``t_{k-1} < c + 1/ln a`` (the paper's parenthetical
    remark); beyond that the target is non-positive and the schedule ends.
    """
    arg = 1.0 + (c - t_prev) * p.ln_a
    if arg <= 0.0:
        return math.nan
    return -math.log(arg) / p.ln_a


def _next_geometric_increasing(c: float, t_prev: float) -> float:
    """Section 4.3's closed form (eq. 4.7): ``t_k = log2((t_{k-1} - c) ln 2 + 1)``."""
    arg = (t_prev - c) * math.log(2.0) + 1.0
    if arg <= 0.0:
        return math.nan
    return math.log2(arg)


# ----------------------------------------------------------------------
# Generic step
# ----------------------------------------------------------------------


def recurrence_target(
    p: LifeFunction, c: float, t_prev: float, boundary_prev: float
) -> float:
    """The right-hand side of (3.6): ``p(T_{k-1}) + (t_{k-1} - c) p'(T_{k-1})``."""
    return float(p(boundary_prev)) + (t_prev - c) * float(p.derivative(boundary_prev))


def next_period(
    p: LifeFunction,
    c: float,
    t_prev: float,
    boundary_prev: float,
    use_closed_form: bool = True,
) -> Optional[float]:
    """One step of system (3.6): the next period length, or ``None`` if none exists.

    ``None`` signals that the recurrence target is non-positive (the schedule
    cannot continue inside the support).  A returned value may still be
    ``<= c``; the caller decides whether to keep such an unproductive period
    (:func:`generate_schedule` drops it and stops).
    """
    if use_closed_form:
        step = _closed_form_step(p, c, t_prev, boundary_prev)
        if step is not None:
            return None if math.isnan(step) else step

    target = recurrence_target(p, c, t_prev, boundary_prev)
    p_prev = float(p(boundary_prev))
    if target <= 0.0 or target >= p_prev:
        # target >= p_prev would require the boundary to move backwards,
        # which happens only for t_prev < c; treat as termination.
        return None if target <= 0.0 else 0.0
    boundary_next = float(p.inverse(target))
    return boundary_next - boundary_prev


def _closed_form_step(
    p: LifeFunction, c: float, t_prev: float, boundary_prev: float
) -> Optional[float]:
    """Dispatch to a Section 4 closed form; ``None`` means "no closed form"."""
    if isinstance(p, PolynomialRisk):
        return _next_polynomial(p, c, t_prev, boundary_prev)
    if isinstance(p, GeometricDecreasingLifespan):
        return _next_geometric_decreasing(p, c, t_prev)
    if isinstance(p, GeometricIncreasingRisk):
        return _next_geometric_increasing(c, t_prev)
    return None


# ----------------------------------------------------------------------
# Full schedule generation
# ----------------------------------------------------------------------


def generate_schedule(
    p: LifeFunction,
    c: float,
    t0: float,
    max_periods: int = 10_000,
    tail_tol: float = 1e-12,
    use_closed_form: bool = True,
) -> RecurrenceOutcome:
    """Generate a full guideline schedule from the initial period length ``t0``.

    Iterates system (3.6) from ``(t_0, T_0 = t_0)``.  Termination rules, in
    priority order at each step:

    1. boundary reached the lifespan → ``LIFESPAN_EXHAUSTED``;
    2. recurrence target non-positive → ``TARGET_NONPOSITIVE``;
    3. next period ``<= c`` (zero work; Proposition 2.1) → ``UNPRODUCTIVE``;
    4. next period's expected contribution below ``tail_tol`` relative to the
       accumulated expectation, with negligible residual survival →
       ``TAIL_NEGLIGIBLE`` (only reachable for unbounded support);
    5. ``max_periods`` periods emitted → ``MAX_PERIODS``.

    The returned schedule always contains at least the initial period.

    Raises
    ------
    InvalidScheduleError
        If ``t0 <= c`` (the initial period must be productive) or ``c < 0``.
    """
    if c < 0:
        raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
    if t0 <= c:
        raise InvalidScheduleError(f"initial period t0 = {t0} must exceed the overhead c = {c}")
    if math.isfinite(p.lifespan) and t0 >= p.lifespan:
        # A single period spanning the whole lifespan earns p(L) = 0; clamp
        # rather than reject so t0 sweeps remain total.
        return RecurrenceOutcome(
            Schedule([min(t0, p.lifespan)]),
            Termination.LIFESPAN_EXHAUSTED,
            np.array([]),
        )

    lifespan = p.lifespan
    finite_life = math.isfinite(lifespan)
    periods = [float(t0)]
    targets: list[float] = []
    boundary = float(t0)
    p_here = float(p(boundary))  # survival at the current boundary (cached)
    e_so_far = max(0.0, t0 - c) * p_here
    termination = Termination.MAX_PERIODS
    sqrt_tail = math.sqrt(tail_tol)

    for _ in range(max_periods - 1):
        if finite_life and boundary >= lifespan - 1e-15 * lifespan:
            termination = Termination.LIFESPAN_EXHAUSTED
            break
        t_prev = periods[-1]
        closed = _closed_form_step(p, c, t_prev, boundary) if use_closed_form else None
        if closed is not None:
            t_next: Optional[float] = None if math.isnan(closed) else closed
            target = math.nan  # closed forms never need the explicit target
        else:
            target = p_here + (t_prev - c) * float(p.derivative(boundary))
            if target <= 0.0:
                t_next = None
            elif target >= p_here:
                t_next = 0.0
            else:
                t_next = float(p.inverse(target)) - boundary
        if t_next is None:
            termination = Termination.TARGET_NONPOSITIVE
            break
        if t_next <= c:
            termination = Termination.UNPRODUCTIVE
            break
        if finite_life and boundary + t_next > lifespan:
            # The recurrence wants to overshoot L; the residual window
            # [boundary, L] earns p(L) = 0, so end the schedule here.
            termination = Termination.LIFESPAN_EXHAUSTED
            break
        if math.isnan(target):
            target = recurrence_target(p, c, t_prev, boundary)
        targets.append(target)
        boundary += t_next
        periods.append(float(t_next))
        p_here = float(p(boundary))
        contribution = (t_next - c) * p_here
        e_so_far += contribution
        if contribution < tail_tol * max(1.0, e_so_far) and p_here < sqrt_tail:
            termination = Termination.TAIL_NEGLIGIBLE
            break

    return RecurrenceOutcome(Schedule(periods), termination, np.asarray(targets, dtype=float))


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------


def recurrence_residuals(schedule: Schedule, p: LifeFunction, c: float) -> FloatArray:
    """Residuals of system (3.6) for ``k = 1 .. m-1``.

    ``r_k = p(T_k) - p(T_{k-1}) - (t_{k-1} - c) * p'(T_{k-1})`` — identically
    zero (up to numerics) for a guideline-generated schedule.
    """
    boundaries = schedule.boundaries
    if schedule.num_periods < 2:
        return np.array([])
    p_vals = np.asarray(p(boundaries), dtype=float)
    dp_vals = np.asarray(p.derivative(boundaries[:-1]), dtype=float)
    return p_vals[1:] - p_vals[:-1] - (schedule.periods[:-1] - c) * dp_vals


def satisfies_recurrence(
    schedule: Schedule, p: LifeFunction, c: float, atol: float = 1e-8
) -> bool:
    """Whether the schedule satisfies Corollary 3.1's system within ``atol``."""
    residuals = recurrence_residuals(schedule, p, c)
    return bool(np.all(np.abs(residuals) <= atol))
