"""The paper's scheduling guidelines as a single high-level API.

The intended workflow (Sections 3–4, 6):

1. bracket the optimal initial period ``t_0`` with Theorems 3.2/3.3
   ("substantially narrow one's search space ... factor-of-2 uncertainty");
2. pick ``t_0`` inside the bracket — either a heuristic point (lower / mid /
   upper) or a 1-D numeric search over the bracket, which is cheap because
   every other period follows deterministically;
3. generate the remaining periods with the Corollary 3.1 recurrence.

:func:`guideline_schedule` packages all three steps and reports the bracket,
the chosen ``t_0``, the termination reason, and the expected work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..exceptions import CycleStealingError
from ..types import Bracket
from .life_functions import LifeFunction, Shape
from .plancache import PlanCache
from .recurrence import RecurrenceOutcome, Termination, generate_schedule
from .schedule import Schedule
from .t0_bounds import lower_bound_t0, t0_bracket

__all__ = ["GuidelineResult", "guideline_schedule", "T0Strategy"]

#: Accepted values for the ``t0_strategy`` argument.
T0Strategy = ("optimize", "lower", "mid", "upper")


@dataclass(frozen=True)
class GuidelineResult:
    """A guideline-generated schedule plus full provenance."""

    schedule: Schedule
    expected_work: float
    t0: float
    bracket: Bracket
    termination: Termination
    t0_strategy: str

    @property
    def num_periods(self) -> int:
        return self.schedule.num_periods


def _bracket_or_fallback(p: LifeFunction, c: float, shape: Optional[Shape]) -> Bracket:
    try:
        return t0_bracket(p, c, shape=shape)
    except ValueError:
        # GENERAL shape — Theorem 3.3 is unavailable; keep the Theorem 3.2
        # lower bound and cap by the lifespan / a deep tail quantile.
        lo = lower_bound_t0(p, c)
        hi = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-6))
        return Bracket(lo, max(hi, lo))


def guideline_schedule(
    p: LifeFunction,
    c: float,
    t0: Optional[float] = None,
    t0_strategy: str = "optimize",
    shape: Optional[Shape] = None,
    grid: int = 129,
    max_periods: int = 10_000,
    cache: Optional[PlanCache] = None,
) -> GuidelineResult:
    """Produce a near-optimal cycle-stealing schedule for life function ``p``.

    Parameters
    ----------
    p:
        The episode's life function (Section 2.1 axioms; validated shapes get
        tighter ``t_0`` upper bounds via Theorem 3.3).
    c:
        The communication overhead bracketing each period (send + return).
    t0:
        Explicit initial period length.  When given, the bracket is still
        computed for reporting but not enforced.
    t0_strategy:
        How to choose ``t_0`` when not given explicitly: ``"optimize"`` (1-D
        search of expected work over the bracket — the paper's recommended
        use of its "manageably narrow search space"), or the heuristic points
        ``"lower"`` / ``"mid"`` / ``"upper"`` of the bracket.
    shape:
        Override the life function's declared shape (e.g. from
        :func:`repro.core.life_functions.detect_shape` for fitted curves).
    grid:
        Grid resolution for the ``"optimize"`` strategy.
    max_periods:
        Safety cap on generated periods.
    cache:
        Optional :class:`~repro.core.plancache.PlanCache`; the
        ``"optimize"`` strategy's ``t_0`` search rides it (keyed on the life
        function's fingerprint), so repeated guideline queries for the same
        ``(p, c)`` are served in O(1).

    Raises
    ------
    CycleStealingError
        If no productive schedule exists (bracket collapses below ``c``).
    """
    if t0_strategy not in T0Strategy:
        raise ValueError(f"t0_strategy must be one of {T0Strategy}, got {t0_strategy!r}")
    bracket = _bracket_or_fallback(p, c, shape)

    if t0 is not None:
        chosen = float(t0)
        strategy_used = "explicit"
        outcome = generate_schedule(p, c, chosen, max_periods=max_periods)
        ew = outcome.schedule.expected_work(p, c)
    elif t0_strategy == "optimize":
        from .optimizer import optimize_t0_via_recurrence

        chosen, outcome, ew = optimize_t0_via_recurrence(
            p, c, bracket=bracket, grid=grid, cache=cache
        )
        strategy_used = "optimize"
    else:
        point = {"lower": bracket.lo, "mid": bracket.mid, "upper": bracket.hi}[t0_strategy]
        if point <= c:
            raise CycleStealingError(
                f"bracket point t0={point} does not exceed the overhead c={c}; "
                "no productive schedule exists for this (p, c)"
            )
        if math.isfinite(p.lifespan):
            point = min(point, p.lifespan * (1 - 1e-12))
        chosen = float(point)
        strategy_used = t0_strategy
        outcome = generate_schedule(p, c, chosen, max_periods=max_periods)
        ew = outcome.schedule.expected_work(p, c)

    return GuidelineResult(
        schedule=outcome.schedule,
        expected_work=ew,
        t0=chosen,
        bracket=bracket,
        termination=outcome.termination,
        t0_strategy=strategy_used,
    )
