"""Core library: the paper's primary contribution.

Life functions (Section 2.1), schedules and expected work (eq. 2.1), the
guideline recurrence (Corollary 3.1), ``t_0`` bounds (Theorems 3.2/3.3),
exact optima from [3] (Section 4), a numeric ground-truth optimizer,
greedy/progressive schedulers (Section 6), and the Section 5 structural
analysis tools.
"""

from .batch_recurrence import (
    BatchRecurrenceResult,
    batch_expected_work,
    generate_schedules_batch,
)
from .hetero_recurrence import (
    HETERO_FAMILIES,
    HeteroBatchResult,
    generate_schedules_hetero,
)
from .exact import (
    ExactResult,
    geometric_decreasing_optimal_period,
    geometric_decreasing_optimal_schedule,
    geometric_decreasing_optimal_work,
    geometric_increasing_optimal_schedule,
    uniform_optimal_num_periods,
    uniform_optimal_schedule,
    uniform_t0_asymptotic,
)
from .existence import (
    admissibility_margin,
    satisfies_corollary_32,
    supremum_probe,
    tail_admissibility_margin,
)
from .greedy import greedy_next_period, greedy_schedule
from .guidelines import GuidelineResult, guideline_schedule
from .life_functions import (
    ConditionalLifeFunction,
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    GompertzLife,
    LifeFunction,
    LogLogisticLife,
    MixtureLife,
    ParetoLife,
    PolynomialRisk,
    Shape,
    TimeScaledLife,
    UniformRisk,
    WeibullLife,
    detect_shape,
    is_concave,
    is_convex,
)
from .optimizer import (
    OptimizationResult,
    expected_work_gradient,
    optimize_fixed_m,
    optimize_schedule,
    optimize_t0_via_recurrence,
)
from .plancache import (
    CACHE_SCHEMA_VERSION,
    CacheStats,
    LatencyReservoir,
    PlanCache,
    default_cache_dir,
    default_plan_cache,
    plan_key,
    reset_default_plan_cache,
)
from .perturbation import (
    LocalOptimalityReport,
    is_locally_optimal,
    perturbation_gain,
    perturbation_margins,
    perturbed,
    shift_gain,
    shifted,
)
from .productive import is_productive, make_productive
from .progressive import ProgressiveScheduler, progressive_schedule
from .recurrence import (
    RecurrenceOutcome,
    Termination,
    generate_schedule,
    next_period,
    recurrence_residuals,
    satisfies_recurrence,
)
from .schedule import Schedule, expected_work, truncate_infinite
from .serving import (
    BatchingPlanServer,
    CircuitBreaker,
    PlanServer,
    ServedPlan,
    TierChaos,
    TierStats,
)
from .sharding import (
    ShardConfig,
    ShardedPlanServer,
    ShardWorker,
    build_shard_server,
    shard_of,
    shard_of_query,
    split_batch,
)
from .structure import (
    StructureReport,
    period_decrements,
    satisfies_concave_decrements,
    satisfies_convex_decrements,
    verify_structure,
)
from .discrete_opt import DiscreteOptimum, solve_discrete_optimal
from .distribution import WorkDistribution, optimize_risk_averse, work_distribution
from .t0_bounds import (
    geometric_decreasing_bracket,
    geometric_increasing_window,
    lower_bound_t0,
    max_periods_bound,
    polynomial_bracket,
    t0_bracket,
    t0_lower_bound_cor54,
    t0_lower_bound_cor55,
    uniform_bracket,
    upper_bound_t0,
)
from .uniqueness import (
    T0Landscape,
    count_expected_work_peaks,
    is_unique_optimum_numerically,
    scan_t0_landscape,
)
from .worstcase import (
    CompetitiveResult,
    competitive_ratio,
    guaranteed_work,
    optimize_competitive_schedule,
)

__all__ = [
    # life functions
    "LifeFunction", "ConditionalLifeFunction", "Shape",
    "UniformRisk", "PolynomialRisk", "GeometricDecreasingLifespan",
    "GeometricIncreasingRisk", "WeibullLife", "ParetoLife",
    "GompertzLife", "LogLogisticLife",
    "MixtureLife", "TimeScaledLife",
    "detect_shape", "is_concave", "is_convex",
    # schedules
    "Schedule", "expected_work", "truncate_infinite",
    "is_productive", "make_productive",
    # recurrence and guidelines
    "generate_schedule", "next_period", "recurrence_residuals",
    "satisfies_recurrence", "RecurrenceOutcome", "Termination",
    "BatchRecurrenceResult", "generate_schedules_batch", "batch_expected_work",
    "HeteroBatchResult", "generate_schedules_hetero", "HETERO_FAMILIES",
    "guideline_schedule", "GuidelineResult",
    # t0 bounds
    "t0_bracket", "lower_bound_t0", "upper_bound_t0",
    "uniform_bracket", "polynomial_bracket", "geometric_decreasing_bracket",
    "geometric_increasing_window",
    "max_periods_bound", "t0_lower_bound_cor54", "t0_lower_bound_cor55",
    # exact optima
    "ExactResult", "uniform_optimal_schedule", "uniform_optimal_num_periods",
    "uniform_t0_asymptotic", "geometric_decreasing_optimal_period",
    "geometric_decreasing_optimal_work", "geometric_decreasing_optimal_schedule",
    "geometric_increasing_optimal_schedule",
    # optimizer
    "OptimizationResult", "optimize_fixed_m", "optimize_schedule",
    "optimize_t0_via_recurrence", "expected_work_gradient",
    # plan cache
    "PlanCache", "CacheStats", "LatencyReservoir", "plan_key", "CACHE_SCHEMA_VERSION",
    "default_plan_cache", "default_cache_dir", "reset_default_plan_cache",
    # resilient serving chain
    "PlanServer", "ServedPlan", "CircuitBreaker", "TierStats", "TierChaos",
    "BatchingPlanServer",
    # sharded multi-worker serving tier
    "ShardedPlanServer", "ShardWorker", "ShardConfig", "build_shard_server",
    "shard_of", "shard_of_query", "split_batch",
    # greedy / progressive
    "greedy_schedule", "greedy_next_period",
    "ProgressiveScheduler", "progressive_schedule",
    # perturbation / structure / existence
    "shifted", "perturbed", "shift_gain", "perturbation_gain",
    "perturbation_margins", "is_locally_optimal", "LocalOptimalityReport",
    "period_decrements", "satisfies_concave_decrements",
    "satisfies_convex_decrements", "verify_structure", "StructureReport",
    "admissibility_margin", "satisfies_corollary_32",
    "tail_admissibility_margin", "supremum_probe",
    # worst-case sequel / discrete DP / uniqueness explorers
    "guaranteed_work", "competitive_ratio", "CompetitiveResult",
    "optimize_competitive_schedule",
    "DiscreteOptimum", "solve_discrete_optimal",
    "WorkDistribution", "work_distribution", "optimize_risk_averse",
    "T0Landscape", "scan_t0_landscape", "count_expected_work_peaks",
    "is_unique_optimum_numerically",
]
