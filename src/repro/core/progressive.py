"""Progressive (online) scheduling with conditional probabilities (Section 6).

Section 6 observes that system (3.6) is "progressive": ``t_{k+1}`` can be
determined only after period ``k`` has ended, so "in principle, one could use
*conditional*, rather than absolute, probabilities to determine schedule S
progressively, period by period."

:class:`ProgressiveScheduler` implements that idea: after surviving to elapsed
time ``s``, it conditions the life function on survival (``p_s(t) =
p(s+t)/p(s)``) and picks the next period as the *initial* period of a fresh
guideline schedule for ``p_s``.  Interesting consequences, quantified by
experiment EA-PROG:

* for the memoryless geometric-decreasing family, ``p_s = p`` and the
  progressive schedule has equal periods — it coincides with [3]'s optimum;
* for the uniform-risk family, ``p_s`` is uniform on the remaining window
  ``[0, L - s]``, so each progressive period is ``≈ sqrt(2c(L - s))`` — close
  to, but not exactly, the optimal decrement structure;
* when the true reclaim risk is only *estimated*, re-planning after each
  survival incorporates the evidence "still alive at s" automatically.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from ..exceptions import CycleStealingError
from .guidelines import guideline_schedule
from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = ["ProgressiveScheduler", "progressive_schedule"]


class ProgressiveScheduler:
    """Stateful period-by-period scheduler using conditional survival.

    Parameters
    ----------
    p:
        The (absolute-time) life function of the episode.
    c:
        Communication overhead per period.
    t0_strategy:
        Strategy for picking the initial period of each conditional
        re-planning step (see :func:`repro.core.guidelines.guideline_schedule`).
    min_survival:
        Stop proposing periods once conditional survival mass drops below
        this threshold (there is effectively no episode left to schedule).
    """

    def __init__(
        self,
        p: LifeFunction,
        c: float,
        t0_strategy: str = "optimize",
        min_survival: float = 1e-9,
        grid: int = 65,
    ) -> None:
        if c < 0:
            raise ValueError(f"overhead c must be nonnegative, got {c}")
        self.p = p
        self.c = float(c)
        self.t0_strategy = t0_strategy
        self.min_survival = float(min_survival)
        self.grid = int(grid)
        self.elapsed = 0.0
        self._done = False

    def next_period(self) -> Optional[float]:
        """The next period length given survival to the current elapsed time.

        Returns ``None`` when the scheduler declines to continue (no
        productive period remains).  Calling again after ``None`` keeps
        returning ``None``.  The caller must invoke :meth:`advance` after the
        period *survives*; on reclaim, simply stop.
        """
        if self._done:
            return None
        survival = float(self.p(self.elapsed))
        if survival <= self.min_survival:
            self._done = True
            return None
        lifespan = self.p.lifespan
        if math.isfinite(lifespan) and lifespan - self.elapsed <= self.c:
            self._done = True
            return None
        conditional = self.p.conditional(self.elapsed) if self.elapsed > 0 else self.p
        try:
            result = guideline_schedule(
                conditional, self.c, t0_strategy=self.t0_strategy, grid=self.grid
            )
        except CycleStealingError:
            self._done = True
            return None
        t = float(result.t0)
        if t <= self.c:
            self._done = True
            return None
        return t

    def advance(self, period: float) -> None:
        """Record that a period of the given length completed (survived)."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.elapsed += float(period)

    def reset(self) -> None:
        """Return to the start of a fresh episode."""
        self.elapsed = 0.0
        self._done = False

    def periods(self, max_periods: int = 10_000) -> Iterator[float]:
        """Iterate the full a-priori progressive schedule (assuming survival)."""
        self.reset()
        for _ in range(max_periods):
            t = self.next_period()
            if t is None:
                return
            yield t
            self.advance(t)


def progressive_schedule(
    p: LifeFunction,
    c: float,
    t0_strategy: str = "optimize",
    max_periods: int = 10_000,
) -> Schedule:
    """Materialize the progressive scheduler's full (survival-path) schedule.

    This is the schedule the progressive policy would execute if the owner
    never returned — directly comparable, via ``expected_work``, with the
    a-priori guideline schedule and the exact optimum.
    """
    scheduler = ProgressiveScheduler(p, c, t0_strategy=t0_strategy)
    periods = list(scheduler.periods(max_periods=max_periods))
    if not periods:
        raise CycleStealingError(
            f"progressive scheduler produced no periods for c={c} and {p!r}"
        )
    return Schedule(periods)
