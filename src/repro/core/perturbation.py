"""Shifts and perturbations of schedules (Sections 3.2 and 5.1).

The paper's proofs compare a candidate schedule ``S`` against two kinds of
local edits:

* the ``⟨k, ±δ⟩``-*shift* — period ``k`` alone grows or shrinks by ``δ``
  (all later periods slide; used to prove Theorem 3.1);
* the ``[k, ±δ]``-*perturbation* — period ``k`` grows by ``δ`` while period
  ``k+1`` shrinks by ``δ`` (later boundaries unchanged; used in Theorem 5.1
  and in [3]'s ``S^{±k}`` comparisons).

Theorem 5.1: for a *concave* life function, any schedule satisfying system
(3.6) is strictly more productive than every ``δ``-perturbation of itself —
the "local sufficiency" of the guidelines.  :func:`perturbation_margins` and
:func:`is_locally_optimal` verify this numerically for arbitrary schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = [
    "shifted",
    "perturbed",
    "shift_gain",
    "perturbation_gain",
    "perturbation_margins",
    "is_locally_optimal",
    "LocalOptimalityReport",
]


def shifted(schedule: Schedule, k: int, delta: float) -> Schedule:
    """The ``⟨k, +δ⟩``-shift (use negative ``delta`` for ``⟨k, −δ⟩``).

    Period ``k`` becomes ``t_k + δ``; every later boundary moves by ``δ``.
    """
    new_length = schedule[k] + delta
    if new_length <= 0:
        raise InvalidScheduleError(
            f"shift of {delta} would make period {k} non-positive ({new_length})"
        )
    return schedule.with_period(k, new_length)


def perturbed(schedule: Schedule, k: int, delta: float) -> Schedule:
    """The ``[k, +δ]``-perturbation (negative ``delta`` for ``[k, −δ]``).

    Period ``k`` becomes ``t_k + δ`` and period ``k+1`` becomes
    ``t_{k+1} − δ``; boundaries after ``T_{k+1}`` are unchanged.
    """
    if k + 1 >= schedule.num_periods:
        raise InvalidScheduleError(
            f"perturbation needs a successor period; k={k} is the last index"
        )
    a = schedule[k] + delta
    b = schedule[k + 1] - delta
    if a <= 0 or b <= 0:
        raise InvalidScheduleError(
            f"perturbation of {delta} at k={k} produces non-positive periods ({a}, {b})"
        )
    arr = schedule.periods.copy()
    arr[k] = a
    arr[k + 1] = b
    return Schedule(arr)


def shift_gain(schedule: Schedule, p: LifeFunction, c: float, k: int, delta: float) -> float:
    """``E(S^{⟨k,+δ⟩}; p) − E(S; p)`` — positive means the shift improves ``S``."""
    return shifted(schedule, k, delta).expected_work(p, c) - schedule.expected_work(p, c)


def perturbation_gain(
    schedule: Schedule, p: LifeFunction, c: float, k: int, delta: float
) -> float:
    """``E(S^{[k,+δ]}; p) − E(S; p)`` — positive means the perturbation improves ``S``."""
    return perturbed(schedule, k, delta).expected_work(p, c) - schedule.expected_work(p, c)


@dataclass(frozen=True)
class LocalOptimalityReport:
    """Result of probing all ``[k, ±δ]`` perturbations of a schedule."""

    #: Largest E-gain found over all probed perturbations (< 0 ⟹ locally optimal).
    max_gain: float
    #: (k, delta) achieving ``max_gain``.
    argmax: tuple[int, float]
    #: Every probed gain, shape ``(num_pairs, num_deltas, 2)`` (last axis: +δ, −δ).
    gains: FloatArray

    @property
    def locally_optimal(self) -> bool:
        return self.max_gain <= 0.0


def perturbation_margins(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    deltas: FloatArray | None = None,
) -> LocalOptimalityReport:
    """Probe every adjacent pair with a ladder of ``±δ`` perturbations.

    ``deltas`` defaults to seven magnitudes spanning ``1e-6 .. 0.25`` times
    each pair's *productive slack* ``min(t_k - c, t_{k+1} - c)`` (falling back
    to the smaller period when a period is already unproductive).  Theorem
    5.1's guarantee lives in the productive regime — it licenses ordinary
    subtraction via Proposition 2.1 — so a ``+δ`` large enough to push the
    successor below ``c`` can escape the theorem through the ``⊖`` operator
    and legitimately improve ``E``; such probes are a different (period-count
    changing) move, not a Theorem 5.1 perturbation.  Explicit ``deltas`` are
    capped only by feasibility.
    """
    m = schedule.num_periods
    if m < 2:
        return LocalOptimalityReport(-np.inf, (0, 0.0), np.empty((0, 0, 2)))
    fractions = (
        np.asarray(deltas, dtype=float)
        if deltas is not None
        else np.array([1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25])
    )
    base = schedule.expected_work(p, c)
    gains = np.empty((m - 1, fractions.size, 2))
    best = -np.inf
    arg = (0, 0.0)
    for k in range(m - 1):
        feasible_cap = min(schedule[k], schedule[k + 1])
        productive_cap = min(schedule[k] - c, schedule[k + 1] - c)
        cap = productive_cap if productive_cap > 0 else feasible_cap
        for j, frac in enumerate(fractions):
            delta = frac * cap if deltas is None else min(frac, 0.999 * feasible_cap)
            for s, sign in enumerate((+1.0, -1.0)):
                gain = perturbed(schedule, k, sign * delta).expected_work(p, c) - base
                gains[k, j, s] = gain
                if gain > best:
                    best = gain
                    arg = (k, sign * delta)
    return LocalOptimalityReport(best, arg, gains)


def is_locally_optimal(
    schedule: Schedule,
    p: LifeFunction,
    c: float,
    deltas: FloatArray | None = None,
    tol: float = 1e-12,
) -> bool:
    """Whether no probed ``[k, ±δ]`` perturbation improves ``E`` beyond ``tol``.

    Theorem 5.1 guarantees this for recurrence-satisfying schedules under
    concave life functions.
    """
    report = perturbation_margins(schedule, p, c, deltas)
    return report.max_gain <= tol * max(1.0, abs(schedule.expected_work(p, c)))
