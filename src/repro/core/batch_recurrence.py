"""Batch schedule-search engine: the Corollary 3.1 recurrence over t0 *vectors*.

The scalar engine (:func:`repro.core.recurrence.generate_schedule`) iterates
system (3.6) for one initial period ``t_0`` at a time — ``O(grid × periods)``
Python-level steps for a ``t_0`` sweep, which is the dominant cost of the
paper's search recipe (grid the Theorem 3.2/3.3 bracket, score ``E(S; p)``,
refine).  This module iterates the same system for an **entire vector of
``t_0`` candidates simultaneously**:

* each candidate occupies one *lane* of a NumPy state block
  ``(T_{k-1}, t_{k-1}, p(T_{k-1}), E_{so far})``;
* every recurrence step issues one vectorized ``p(...)`` /
  ``p.derivative(...)`` / ``p.inverse(...)`` call over the still-alive lanes
  (with vectorized closed forms for the Section 4 families, mirroring
  :func:`repro.core.recurrence._closed_form_step`);
* lanes terminate independently, with the same rules and priority order as
  the scalar engine (``LIFESPAN_EXHAUSTED``, ``TARGET_NONPOSITIVE``,
  ``UNPRODUCTIVE``, ``TAIL_NEGLIGIBLE``, ``MAX_PERIODS``), so a whole grid
  costs ``O(max periods)`` vector operations.

The scalar engine remains the specification: for every lane the batch engine
must reproduce its periods, boundaries, recurrence targets, and termination
reason (up to ULP-scale float noise from ``numpy`` vs ``math`` transcendental
kernels).  :mod:`repro.core.testing` packages that cross-validation in the
style of the simulation engines' differential harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .life_functions import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    LifeFunction,
    PolynomialRisk,
)
from .recurrence import RecurrenceOutcome, Termination
from .schedule import Schedule

__all__ = [
    "BatchRecurrenceResult",
    "generate_schedules_batch",
    "batch_expected_work",
]

#: Stable integer codes for per-lane termination bookkeeping.
_TERMINATION_BY_CODE: tuple[Termination, ...] = (
    Termination.TARGET_NONPOSITIVE,
    Termination.UNPRODUCTIVE,
    Termination.LIFESPAN_EXHAUSTED,
    Termination.TAIL_NEGLIGIBLE,
    Termination.MAX_PERIODS,
)
_CODE: dict[Termination, int] = {t: i for i, t in enumerate(_TERMINATION_BY_CODE)}


@dataclass(frozen=True)
class BatchRecurrenceResult:
    """Guideline schedules for a vector of ``t_0`` candidates, plus diagnostics.

    Lane ``i`` holds the schedule the Corollary 3.1 recurrence generates from
    ``t0s[i]``.  Ragged per-lane data is stored as NaN-padded rectangular
    arrays; :meth:`schedule` / :meth:`outcome` materialize single lanes in the
    scalar engine's types.
    """

    #: The initial period candidates, one per lane.
    t0s: FloatArray
    #: Period lengths, shape ``(n_lanes, max_m)``; NaN beyond a lane's end.
    periods: FloatArray
    #: Number of periods per lane.
    num_periods: np.ndarray
    #: Per-lane termination codes (indices into ``_TERMINATION_BY_CODE``).
    termination_codes: np.ndarray
    #: Recurrence targets, shape ``(n_lanes, max_m - 1)``; NaN-padded.
    targets: FloatArray
    #: ``E(S(t_0); p)`` per lane (eq. 2.1, scored over the emitted periods).
    expected_work: FloatArray

    @property
    def n_lanes(self) -> int:
        return int(self.t0s.size)

    @property
    def boundaries(self) -> FloatArray:
        """Cumulative period boundaries ``T_k`` per lane (NaN-padded)."""
        out = np.cumsum(np.where(np.isnan(self.periods), 0.0, self.periods), axis=1)
        out[np.isnan(self.periods)] = np.nan
        return out

    @property
    def best(self) -> int:
        """Index of the lane with the largest expected work."""
        return int(np.argmax(self.expected_work))

    def termination(self, i: int) -> Termination:
        """The termination reason of lane ``i``."""
        return _TERMINATION_BY_CODE[int(self.termination_codes[i])]

    @property
    def terminations(self) -> tuple[Termination, ...]:
        """Per-lane termination reasons, in lane order."""
        return tuple(_TERMINATION_BY_CODE[int(code)] for code in self.termination_codes)

    def schedule(self, i: int) -> Schedule:
        """Materialize lane ``i`` as a :class:`Schedule`."""
        m = int(self.num_periods[i])
        return Schedule(self.periods[i, :m])

    def outcome(self, i: int) -> RecurrenceOutcome:
        """Materialize lane ``i`` in the scalar engine's result type."""
        m = int(self.num_periods[i])
        targets = self.targets[i, : m - 1] if m > 1 else np.array([])
        return RecurrenceOutcome(
            self.schedule(i), self.termination(i), np.asarray(targets, dtype=float).copy()
        )


# ----------------------------------------------------------------------
# Vectorized closed-form steps for the Section 4 families
# ----------------------------------------------------------------------


def _batch_closed_form_step(
    p: LifeFunction, c: float, t_prev: FloatArray, boundary_prev: FloatArray
) -> Optional[FloatArray]:
    """Vectorized Section 4 closed form; NaN lanes mean "no next period".

    Mirrors :func:`repro.core.recurrence._closed_form_step` lane-wise;
    ``None`` means the family has no closed form (use the generic path).
    """
    if isinstance(p, PolynomialRisk):
        if p.d == 1:
            return t_prev - c
        ratio = 1.0 + p.d * (t_prev - c) / boundary_prev
        ok = ratio > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = (ratio[ok] ** (1.0 / p.d) - 1.0) * boundary_prev[ok]
        return out
    if isinstance(p, GeometricDecreasingLifespan):
        arg = 1.0 + (c - t_prev) * p.ln_a
        ok = arg > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = -np.log(arg[ok]) / p.ln_a
        return out
    if isinstance(p, GeometricIncreasingRisk):
        arg = (t_prev - c) * math.log(2.0) + 1.0
        ok = arg > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = np.log2(arg[ok])
        return out
    return None


# ----------------------------------------------------------------------
# The lane engine
# ----------------------------------------------------------------------


def generate_schedules_batch(
    p: LifeFunction,
    c: float,
    t0s: Union[Sequence[float], FloatArray],
    max_periods: int = 10_000,
    tail_tol: float = 1e-12,
    use_closed_form: bool = True,
    engine: str = "numpy",
) -> BatchRecurrenceResult:
    """Iterate system (3.6) from every ``t_0`` in ``t0s`` simultaneously.

    Lane-for-lane equivalent to calling
    :func:`repro.core.recurrence.generate_schedule` on each candidate — same
    termination rules in the same priority order, same recurrence targets,
    same lifespan clamping (``t_0 >= L`` collapses to a single clamped period
    with ``LIFESPAN_EXHAUSTED``) — but each recurrence step costs a constant
    number of vector operations over the still-alive lanes instead of one
    Python iteration per lane.

    ``engine="jit"`` runs the compiled lane loop from
    :mod:`repro.jitkernels` when (a) numba is importable and enabled and
    (b) ``p`` is one of the Section 4 closed-form families; in every other
    case it silently runs this NumPy path, so callers may request ``"jit"``
    unconditionally.  Expected work is rescored with
    :func:`batch_expected_work` either way, and periods agree with the NumPy
    engine bit-for-bit except at the transcendental sites documented in
    :mod:`repro.jitkernels.kernels` (``<= a`` few ULP).

    Raises
    ------
    InvalidScheduleError
        If ``c < 0``, ``t0s`` is empty or not one-dimensional, or any lane
        has ``t0 <= c`` (every initial period must be productive, exactly as
        the scalar engine requires).
    """
    if engine not in ("numpy", "jit"):
        raise InvalidScheduleError(
            f"unknown engine {engine!r}; expected 'numpy' or 'jit'"
        )
    if c < 0:
        raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
    t0_arr = np.asarray(t0s, dtype=float)
    if t0_arr.ndim != 1:
        raise InvalidScheduleError(f"t0s must be one-dimensional, got shape {t0_arr.shape}")
    if t0_arr.size == 0:
        raise InvalidScheduleError("need at least one t0 candidate")
    if not np.all(np.isfinite(t0_arr)):
        raise InvalidScheduleError("t0 candidates must be finite")
    if np.any(t0_arr <= c):
        bad = float(t0_arr[t0_arr <= c][0])
        raise InvalidScheduleError(
            f"initial period t0 = {bad} must exceed the overhead c = {c}"
        )

    if engine == "jit":
        jitted = _generate_batch_jit(p, c, t0_arr, max_periods, tail_tol)
        if jitted is not None:
            return jitted
        # Unmapped family or no usable numba: transparent NumPy fallback.

    n = t0_arr.size
    lifespan = p.lifespan
    finite_life = math.isfinite(lifespan)

    term = np.full(n, _CODE[Termination.MAX_PERIODS], dtype=np.int8)
    alive = np.ones(n, dtype=bool)
    first = t0_arr.copy()
    if finite_life:
        # A t0 spanning the whole lifespan earns p(L) = 0; clamp rather than
        # reject so t0 sweeps remain total (scalar engine's pre-loop rule).
        clamped = t0_arr >= lifespan
        if np.any(clamped):
            first[clamped] = np.minimum(t0_arr[clamped], lifespan)
            term[clamped] = _CODE[Termination.LIFESPAN_EXHAUSTED]
            alive[clamped] = False

    sqrt_tail = math.sqrt(tail_tol)
    edge = lifespan - 1e-15 * lifespan if finite_life else math.inf

    # Compacted live-lane state: ``idx`` maps the compact rows back to lanes;
    # everything else (previous period, boundary T_{k-1}, p(T_{k-1}), banked
    # E) lives in dense arrays the vector ops run over directly.  Dead lanes
    # are dropped by boolean compaction instead of masked out, so per-step
    # cost tracks the number of *surviving* candidates.
    idx = np.nonzero(alive)[0]
    tp = first[idx]
    b = first[idx]
    ph = np.asarray(p(b), dtype=float) if idx.size else np.empty(0)
    e = np.maximum(0.0, tp - c) * ph

    # NaN-padded output buffers, grown geometrically; column k holds period
    # k+1 (and its recurrence target) for the lanes that reached it.
    cap = 32
    periods_buf = np.full((n, cap), np.nan)
    targets_buf = np.full((n, cap), np.nan)
    k = 0

    for _ in range(max_periods - 1):
        if idx.size == 0:
            break
        if finite_life:
            hit = b >= edge
            if np.any(hit):
                term[idx[hit]] = _CODE[Termination.LIFESPAN_EXHAUSTED]
                keep = ~hit
                idx, tp, b, ph, e = idx[keep], tp[keep], b[keep], ph[keep], e[keep]
                if idx.size == 0:
                    break

        target: Optional[FloatArray] = None
        closed = _batch_closed_form_step(p, c, tp, b) if use_closed_form else None
        if closed is not None:
            t_next = closed  # NaN lanes: target non-positive, schedule ends
        else:
            target = ph + (tp - c) * np.asarray(p.derivative(b), dtype=float)
            t_next = np.full(idx.size, np.nan)
            # target >= p(T_{k-1}) would move the boundary backwards (only for
            # t_prev < c); emit a zero-length period so the UNPRODUCTIVE rule
            # fires, exactly as the scalar engine does.
            t_next[target >= ph] = 0.0
            inside = (target > 0.0) & (target < ph)
            if np.any(inside):
                t_next[inside] = np.asarray(p.inverse(target[inside]), dtype=float) - b[inside]

        nonpositive = np.isnan(t_next)
        unproductive = ~nonpositive & (t_next <= c)
        if finite_life:
            overshoot = ~nonpositive & ~unproductive & (b + t_next > lifespan)
            surviving = ~(nonpositive | unproductive | overshoot)
            term[idx[overshoot]] = _CODE[Termination.LIFESPAN_EXHAUSTED]
        else:
            surviving = ~(nonpositive | unproductive)
        term[idx[nonpositive]] = _CODE[Termination.TARGET_NONPOSITIVE]
        term[idx[unproductive]] = _CODE[Termination.UNPRODUCTIVE]
        if not np.any(surviving):
            break

        sidx = idx[surviving]
        tn = t_next[surviving]
        if target is None:
            tgt = ph[surviving] + (tp[surviving] - c) * np.asarray(
                p.derivative(b[surviving]), dtype=float
            )
        else:
            tgt = target[surviving]

        if k == cap:
            cap *= 2
            grown = np.full((n, cap), np.nan)
            grown[:, : periods_buf.shape[1]] = periods_buf
            periods_buf = grown
            grown = np.full((n, cap), np.nan)
            grown[:, : targets_buf.shape[1]] = targets_buf
            targets_buf = grown
        periods_buf[sidx, k] = tn
        targets_buf[sidx, k] = tgt
        k += 1

        b = b[surviving] + tn
        tp = tn
        ph = np.asarray(p(b), dtype=float)
        contribution = (tn - c) * ph
        e = e[surviving] + contribution
        negligible = (contribution < tail_tol * np.maximum(1.0, e)) & (ph < sqrt_tail)
        if np.any(negligible):
            term[sidx[negligible]] = _CODE[Termination.TAIL_NEGLIGIBLE]
            keep = ~negligible
            idx, tp, b, ph, e = sidx[keep], tp[keep], b[keep], ph[keep], e[keep]
        else:
            idx = sidx

    periods = np.concatenate([first[:, None], periods_buf[:, :k]], axis=1)
    targets = targets_buf[:, :k]
    num_periods = 1 + np.sum(~np.isnan(periods[:, 1:]), axis=1)
    return BatchRecurrenceResult(
        t0s=t0_arr,
        periods=periods,
        num_periods=num_periods,
        termination_codes=term,
        targets=targets,
        expected_work=batch_expected_work(periods, p, c),
    )


def _targets_from_periods(
    p: LifeFunction, c: float, periods: FloatArray
) -> FloatArray:
    """Reconstruct the recurrence targets from an emitted period block.

    Column ``k`` of the result is ``p(T_k) + (t_k - c) p'(T_k)`` wherever
    period ``k + 1`` was emitted — exactly the value the NumPy engine records
    in its loop, because boundary accumulation is sequential in both places
    and ``p`` / ``p.derivative`` are elementwise.  Lets the jit path return
    full diagnostics without the kernel carrying the life-function object.
    """
    n, width = periods.shape
    if width <= 1:
        return np.empty((n, 0))
    boundaries = np.cumsum(np.where(np.isnan(periods), 0.0, periods), axis=1)
    emitted = ~np.isnan(periods[:, 1:])
    targets = np.full((n, width - 1), np.nan)
    prev_b = boundaries[:, :-1][emitted]
    prev_t = periods[:, :-1][emitted]
    targets[emitted] = np.asarray(p(prev_b), dtype=float) + (prev_t - c) * np.asarray(
        p.derivative(prev_b), dtype=float
    )
    return targets


def _generate_batch_jit(
    p: LifeFunction,
    c: float,
    t0_arr: FloatArray,
    max_periods: int,
    tail_tol: float,
) -> Optional[BatchRecurrenceResult]:
    """The compiled homogeneous sweep, or ``None`` when it cannot apply.

    A single-``(p, c)`` sweep is the heterogeneous kernel with constant
    ``c``/θ lanes, so the one compiled loop serves both engines.  Expected
    work is rescored with :func:`batch_expected_work` (NumPy's pairwise row
    reduction) so the jit path is score-identical with the NumPy engine
    rather than only period-identical.
    """
    from .. import jitkernels

    if not jitkernels.available():
        return None
    mapped = jitkernels.life_family_of(p)
    if mapped is None:
        return None
    fam, d, theta = mapped
    kern = jitkernels.kernels()
    n = t0_arr.size
    periods, num_periods, term, _ = kern.hetero_recurrence(
        fam,
        int(d),
        np.full(n, float(c)),
        np.full(n, float(theta)),
        np.ascontiguousarray(t0_arr, dtype=np.float64),
        int(max_periods),
        float(tail_tol),
    )
    return BatchRecurrenceResult(
        t0s=t0_arr,
        periods=periods,
        num_periods=num_periods,
        termination_codes=term,
        targets=_targets_from_periods(p, c, periods),
        expected_work=batch_expected_work(periods, p, c),
    )


def batch_expected_work(
    periods: FloatArray, p: LifeFunction, c: float, engine: str = "numpy"
) -> FloatArray:
    """Row-wise eq. (2.1) over a NaN-padded ``(n_lanes, max_m)`` period block.

    One vectorized life-function evaluation over the full boundary block; NaN
    padding contributes nothing (its work term is zeroed).  Matches
    :meth:`repro.core.schedule.Schedule.expected_work` lane-wise up to
    summation-order float noise.

    ``engine="jit"`` uses the compiled row scorer when numba is usable and
    ``p`` is a Section 4 family (NumPy fallback otherwise).  The compiled
    scorer accumulates each row left to right like the scalar engine, so its
    values may differ from the NumPy path's pairwise row reduction by
    summation-order float noise — the same relationship the scalar and NumPy
    engines already have with each other.
    """
    if engine not in ("numpy", "jit"):
        raise InvalidScheduleError(
            f"unknown engine {engine!r}; expected 'numpy' or 'jit'"
        )
    if c < 0:
        raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
    if engine == "jit":
        from .. import jitkernels

        if jitkernels.available():
            mapped = jitkernels.life_family_of(p)
            if mapped is not None:
                fam, d, theta = mapped
                n = np.asarray(periods).shape[0]
                return jitkernels.kernels().expected_work_rows(
                    np.ascontiguousarray(periods, dtype=np.float64),
                    fam,
                    int(d),
                    np.full(n, float(c)),
                    np.full(n, float(theta)),
                )
    filled = np.where(np.isnan(periods), 0.0, periods)
    boundaries = np.cumsum(filled, axis=1)
    survival = np.asarray(p(boundaries), dtype=float)
    work = np.maximum(0.0, filled - c)
    # "+ 0.0" normalizes IEEE -0.0 (from p values of -0.0 at the lifespan).
    return np.sum(work * survival, axis=1) + 0.0
