"""Worst-case (adversarial) analysis of cycle-stealing schedules.

The paper's footnote 1 announces a sequel "focus[ing] on (nearly) optimizing
a worst-case, rather than expected, measure of a cycle-stealing episode's
work output."  This module implements the natural worst-case measures so the
expected-work guidelines can be stress-tested against an adversary:

* :func:`guaranteed_work` — work banked under the worst reclaim time within a
  horizon (trivially 0 unless the adversary is constrained to let the episode
  run at least ``tau``);
* :func:`competitive_ratio` — the classic online measure: the infimum over
  reclaim times ``R`` of ``work(S, R) / (R - c)`` (banked work versus what a
  clairvoyant scheduler earns with one period ending just before ``R``);
* :func:`optimize_competitive_schedule` — the best schedule in the geometric
  family ``t_k = t_0 q^k``, the shape classical competitive analysis (and the
  randomized strategy of [2]) points to.

The adversary's power: it observes the schedule and reclaims at the worst
moment — an infinitesimal instant *before* a period boundary, wiping that
whole period.  Hence only the boundary-time limits matter, which makes the
infimum computable exactly from the schedule's boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .schedule import Schedule

__all__ = [
    "guaranteed_work",
    "competitive_ratio",
    "CompetitiveResult",
    "optimize_competitive_schedule",
]


def guaranteed_work(schedule: Schedule, c: float, min_episode: float) -> float:
    """Work banked even under the worst reclaim time ``R >= min_episode``.

    The adversary reclaims at the worst moment no earlier than
    ``min_episode``; the infimum is attained in the limit approaching the
    first boundary ``T_k >= min_episode`` (killing period ``k``), or at
    ``min_episode`` itself if that lies strictly inside a period.
    """
    if min_episode < 0:
        raise InvalidScheduleError(f"min_episode must be nonnegative, got {min_episode}")
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    boundaries = schedule.boundaries
    # Worst admissible reclaim: the first boundary at or after min_episode
    # (kill that period); if none, the adversary must let everything finish.
    idx = int(np.searchsorted(boundaries, min_episode, side="left"))
    if idx >= schedule.num_periods:
        return float(cumulative[-1])
    return float(cumulative[idx])


def _worst_ratio(schedule: Schedule, c: float, min_episode: float) -> float:
    """Infimum over R >= min_episode of work(S, R) / (R - c)."""
    boundaries = schedule.boundaries
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    worst = math.inf
    # Candidate adversary moves: just before each boundary T_k >= min_episode
    # (banked = cumulative[k], omniscient ≈ T_k - c), and exactly at
    # min_episode (banked = work of periods ending before it).
    for k in range(schedule.num_periods):
        r = float(boundaries[k])
        if r < min_episode or r <= c:
            continue
        worst = min(worst, float(cumulative[k]) / (r - c))
    if min_episode > c:
        k0 = int(np.searchsorted(boundaries, min_episode, side="left"))
        worst = min(worst, float(cumulative[k0]) / (min_episode - c))
    # After the last boundary the ratio cumulative[-1]/(R - c) decreases in R
    # without bound (the schedule has ended but the adversary can stay away);
    # a finite-horizon episode caps R at the horizon.
    return worst


def competitive_ratio(
    schedule: Schedule,
    c: float,
    min_episode: Optional[float] = None,
    horizon: Optional[float] = None,
) -> float:
    """The schedule's competitive ratio against a clairvoyant scheduler.

    ``inf_{min_episode <= R <= horizon} work(S, R) / (R - c)`` — how much of
    the clairvoyant's single-period haul the schedule guarantees, whatever the
    reclaim time.  ``min_episode`` defaults to the first boundary (otherwise
    every schedule scores 0: the adversary reclaims immediately).  ``horizon``
    defaults to the schedule's total length (beyond it the schedule banks
    nothing more while the clairvoyant keeps earning).
    """
    if min_episode is None:
        min_episode = float(schedule.boundaries[0]) * (1 + 1e-12)
    if horizon is None:
        horizon = schedule.total_length
    if horizon <= min_episode:
        raise InvalidScheduleError(
            f"horizon {horizon} must exceed min_episode {min_episode}"
        )
    boundaries = schedule.boundaries
    cumulative = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    worst = math.inf
    for k in range(schedule.num_periods):
        r = float(boundaries[k])
        if r <= max(min_episode, c) or r > horizon:
            continue
        worst = min(worst, float(cumulative[k]) / (r - c))
    # Endpoint candidates.
    for r in (min_episode, horizon):
        if r > c:
            k0 = int(np.searchsorted(boundaries, r, side="left"))
            worst = min(worst, float(cumulative[k0]) / (r - c))
    return worst


@dataclass(frozen=True)
class CompetitiveResult:
    """A worst-case-optimized geometric schedule."""

    schedule: Schedule
    ratio: float
    first_period: float
    growth: float


def optimize_competitive_schedule(
    c: float,
    horizon: float,
    min_episode: Optional[float] = None,
    max_periods: int = 64,
) -> CompetitiveResult:
    """Best geometric schedule ``t_k = t_0 q^k`` by competitive ratio.

    Classical doubling intuition says geometric growth balances the adversary:
    whatever period it kills, the banked prefix is a constant fraction of the
    elapsed time.  We optimize ``(t_0, q)`` numerically (Nelder-Mead over a
    log parameterization, multi-started) for the episode window
    ``[min_episode, horizon]``.

    The resulting ratios quantify the price of draconian preemption without
    distributional knowledge — the counterpoint to the expected-work
    guidelines, and the regime where [2]'s randomized strategy operates.
    """
    if min_episode is None:
        min_episode = 4.0 * c
    if min_episode <= c:
        raise InvalidScheduleError(f"min_episode must exceed c, got {min_episode}")

    def build(t0: float, q: float) -> Schedule:
        periods = [t0]
        total = t0
        while total < horizon and len(periods) < max_periods:
            nxt = periods[-1] * q
            periods.append(nxt)
            total += nxt
        return Schedule(periods)

    def neg_ratio(x: FloatArray) -> float:
        t0 = math.exp(x[0])
        q = 1.0 + math.exp(x[1])
        if t0 <= c * 1.0001:
            return 0.0
        try:
            s = build(t0, q)
            return -competitive_ratio(s, c, min_episode=min_episode, horizon=horizon)
        except InvalidScheduleError:
            return 0.0

    best_x = None
    best_val = 0.0
    for t0_guess in (min_episode * 0.5, min_episode, 2.0 * min_episode):
        for q_guess in (1.3, 2.0, 3.0):
            x0 = np.array([math.log(max(t0_guess, 1.5 * c)), math.log(q_guess - 1.0)])
            res = minimize(neg_ratio, x0, method="Nelder-Mead",
                           options={"maxiter": 400, "xatol": 1e-6, "fatol": 1e-10})
            if -res.fun > best_val:
                best_val = -res.fun
                best_x = res.x
    if best_x is None:
        raise InvalidScheduleError(
            f"no geometric schedule achieves a positive ratio for c={c}, "
            f"horizon={horizon}"
        )
    t0 = math.exp(best_x[0])
    q = 1.0 + math.exp(best_x[1])
    schedule = build(t0, q)
    return CompetitiveResult(
        schedule=schedule,
        ratio=competitive_ratio(schedule, c, min_episode=min_episode, horizon=horizon),
        first_period=t0,
        growth=q,
    )
