"""Cycle-stealing schedules and their expected work (Section 2.1, eq. 2.1).

A schedule ``S = t_0, t_1, ...`` partitions the borrowed workstation's
potential availability into non-overlapping periods.  Period ``k`` starts at
``tau_k = t_0 + ... + t_{k-1}`` and ends at ``T_k = tau_k + t_k``; it
accomplishes ``t_k ⊖ c`` units of work (the fixed overhead ``c`` covers the
send-work and return-results communications), and that work survives only if
the workstation is not reclaimed by ``T_k``.  Hence the expected work

    E(S; p) = sum_i (t_i ⊖ c) * p(T_i).

The library represents schedules as immutable wrappers over float arrays.
Infinite schedules (e.g. the equal-period optimum for the geometric-decreasing
scenario) are handled by finite truncations with certified truncation error —
see :func:`truncate_infinite` — plus closed forms in :mod:`repro.core.exact`.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, Sequence, Union

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .life_functions import LifeFunction

__all__ = ["Schedule", "expected_work", "truncate_infinite"]


class Schedule:
    """An immutable finite cycle-stealing schedule ``t_0, t_1, ..., t_{m-1}``.

    Parameters
    ----------
    periods:
        The period lengths, all strictly positive.

    Notes
    -----
    Equality and hashing are by value (exact float comparison); use
    :meth:`approx_equals` for tolerant comparison.
    """

    __slots__ = ("_periods", "_boundaries")

    def __init__(self, periods: Union[Sequence[float], FloatArray]) -> None:
        arr = np.asarray(periods, dtype=float)
        if arr.ndim != 1:
            raise InvalidScheduleError(f"periods must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            raise InvalidScheduleError("a schedule must have at least one period")
        if not np.all(np.isfinite(arr)):
            raise InvalidScheduleError("period lengths must be finite")
        if np.any(arr <= 0):
            raise InvalidScheduleError(
                f"period lengths must be strictly positive, got min {arr.min()}"
            )
        self._periods = arr.copy()
        self._periods.setflags(write=False)
        boundaries = np.cumsum(self._periods)
        boundaries.setflags(write=False)
        self._boundaries = boundaries

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def periods(self) -> FloatArray:
        """Read-only array of period lengths ``t_0 .. t_{m-1}``."""
        return self._periods

    @property
    def boundaries(self) -> FloatArray:
        """Read-only array of period end times ``T_0 .. T_{m-1}`` (cumulative sums)."""
        return self._boundaries

    @property
    def num_periods(self) -> int:
        """The number of periods ``m``."""
        return int(self._periods.size)

    @property
    def total_length(self) -> float:
        """``T_{m-1} = t_0 + ... + t_{m-1}`` — the schedule's total span."""
        return float(self._boundaries[-1])

    def start_of(self, k: int) -> float:
        """``tau_k``: the start time of period ``k`` (Section 2.1)."""
        if not 0 <= k < self.num_periods:
            raise IndexError(f"period index {k} out of range [0, {self.num_periods})")
        return 0.0 if k == 0 else float(self._boundaries[k - 1])

    def __len__(self) -> int:
        return self.num_periods

    def __iter__(self) -> Iterator[float]:
        return iter(self._periods.tolist())

    def __getitem__(self, k: int) -> float:
        return float(self._periods[k])

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------

    def work_per_period(self, c: float) -> FloatArray:
        """``t_i ⊖ c`` for each period — the work each period can accomplish."""
        if c < 0:
            raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
        return np.maximum(0.0, self._periods - c)

    def productive_mask(self, c: float) -> np.ndarray:
        """Boolean mask of *productive* periods (``t_i > c``)."""
        return self._periods > c

    def is_productive(self, c: float) -> bool:
        """Proposition 2.1's normal form: every period except possibly the last
        has length ``> c``."""
        if self.num_periods == 1:
            return True
        return bool(np.all(self._periods[:-1] > c))

    def expected_work(self, p: LifeFunction, c: float) -> float:
        """``E(S; p)`` per eq. (2.1): ``sum_i (t_i ⊖ c) p(T_i)``."""
        return expected_work(self, p, c)

    def realized_work(self, reclaim_time: float, c: float) -> float:
        """Work actually banked if the owner reclaims at ``reclaim_time``.

        Period ``i`` counts iff the workstation survives past its end:
        ``T_i < reclaim_time``.  This is the Section 2.1 accounting: "if B is
        reclaimed by time T_k, then the episode ends, having accomplished
        work sum_{i<k} (t_i ⊖ c)" — the interrupted period is lost.
        """
        completed = self._boundaries < reclaim_time
        return float(np.sum(self.work_per_period(c)[completed]))

    # ------------------------------------------------------------------
    # Structural edits (used by Proposition 2.1 and perturbation analysis)
    # ------------------------------------------------------------------

    def with_period(self, k: int, new_length: float) -> "Schedule":
        """Copy with period ``k`` replaced (a ⟨k, ±δ⟩ *shift*, Section 3.2)."""
        arr = self._periods.copy()
        arr[k] = new_length
        return Schedule(arr)

    def drop_period(self, k: int) -> "Schedule":
        """Copy with period ``k`` removed."""
        if self.num_periods == 1:
            raise InvalidScheduleError("cannot drop the only period")
        return Schedule(np.delete(self._periods, k))

    def merge_first_two(self) -> "Schedule":
        """The schedule ``t_0 + t_1, t_2, ...`` used in Theorem 3.2's proof."""
        if self.num_periods < 2:
            raise InvalidScheduleError("need at least two periods to merge")
        arr = np.concatenate(([self._periods[0] + self._periods[1]], self._periods[2:]))
        return Schedule(arr)

    def split_first(self, t_hat: float) -> "Schedule":
        """The schedule ``t_hat, t_0 - t_hat, t_1, ...`` from Lemma 3.1's proof."""
        if not 0 < t_hat < self._periods[0]:
            raise InvalidScheduleError(
                f"split point must lie strictly inside the first period (0, {self._periods[0]})"
            )
        arr = np.concatenate(([t_hat, self._periods[0] - t_hat], self._periods[1:]))
        return Schedule(arr)

    # ------------------------------------------------------------------
    # Comparison / repr
    # ------------------------------------------------------------------

    def approx_equals(self, other: "Schedule", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Tolerant elementwise equality of period lengths."""
        return self.num_periods == other.num_periods and bool(
            np.allclose(self._periods, other._periods, rtol=rtol, atol=atol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.num_periods == other.num_periods and bool(
            np.array_equal(self._periods, other._periods)
        )

    def __hash__(self) -> int:
        return hash(self._periods.tobytes())

    def __repr__(self) -> str:
        if self.num_periods <= 6:
            body = ", ".join(f"{t:.6g}" for t in self._periods)
        else:
            head = ", ".join(f"{t:.6g}" for t in self._periods[:3])
            tail = ", ".join(f"{t:.6g}" for t in self._periods[-2:])
            body = f"{head}, ..., {tail}"
        return f"Schedule([{body}], m={self.num_periods})"


def expected_work(schedule: Schedule, p: LifeFunction, c: float) -> float:
    """Expected work ``E(S; p) = sum_i (t_i ⊖ c) p(T_i)`` (eq. 2.1).

    Vectorized: one life-function evaluation over the boundary array and a dot
    product.  Boundaries beyond a finite lifespan contribute 0 (``p`` clamps).
    """
    if c < 0:
        raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
    survival = np.asarray(p(schedule.boundaries), dtype=float)
    # "+ 0.0" normalizes IEEE -0.0 (from p values of -0.0 at the lifespan).
    return float(np.dot(schedule.work_per_period(c), survival)) + 0.0


def truncate_infinite(
    period_source: Union[Iterable[float], Callable[[int], float]],
    p: LifeFunction,
    c: float,
    tol: float = 1e-12,
    max_periods: int = 100_000,
) -> Schedule:
    """Materialize an infinite schedule as a finite one with bounded E-loss.

    ``period_source`` yields successive period lengths (an iterable, or a
    callable mapping the period index to its length).  Generation stops when
    the *remaining* expected work is provably below ``tol``: the tail after
    boundary ``T`` is at most ``∫_T^∞ p``, bounded here by the crude but safe
    ``p(T) * E[remaining lifetime]`` estimate — we simply stop once the
    current period's own contribution falls below ``tol * max(1, E_so_far)``
    and ``p(T)`` itself is below ``sqrt(tol)``, which suffices for the
    geometrically decaying tails the model allows (``p -> 0`` monotonically).

    Raises
    ------
    InvalidScheduleError
        If ``max_periods`` periods are generated without meeting the stopping
        rule (the tail decays too slowly to truncate safely).
    """
    if callable(period_source):
        source: Iterator[float] = (period_source(i) for i in range(max_periods + 1))
    else:
        source = iter(period_source)

    periods: list[float] = []
    total = 0.0
    e_so_far = 0.0
    converged = False
    for i, t in enumerate(source):
        if i >= max_periods:
            break
        if t <= 0 or not math.isfinite(t):
            converged = True  # the source itself terminated the schedule
            break
        total += t
        contribution = max(0.0, t - c) * float(p(total))
        periods.append(t)
        e_so_far += contribution
        if contribution < tol * max(1.0, e_so_far) and float(p(total)) < math.sqrt(tol):
            converged = True
            break
        if math.isfinite(p.lifespan) and total >= p.lifespan:
            converged = True
            break
    else:
        converged = True  # finite iterable exhausted: nothing left to truncate
    if not periods:
        raise InvalidScheduleError("period source produced no usable periods")
    if not converged:
        raise InvalidScheduleError(
            f"infinite schedule did not converge within {max_periods} periods"
        )
    return Schedule(periods)
