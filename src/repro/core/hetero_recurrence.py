"""Heterogeneous batch recurrence: system (3.6) over *mixed* ``(c, θ, t0)`` lanes.

:mod:`repro.core.batch_recurrence` vectorizes the Corollary 3.1 recurrence
over a vector of ``t_0`` candidates that share one life function and one
overhead — the shape of a single ``t_0`` search.  Batched *serving*
(:meth:`repro.analysis.tables_precompute.TableServer.query_batch`) needs the
transpose: thousands of concurrent queries, each with its **own** overhead
``c`` and family parameter ``θ``, all inside one Section 4 closed-form
family.  Because the closed-form steps of eqs. (4.1), (4.6), (4.7) and the
general ``p_{d,L}`` form are arithmetic in ``(c, θ)``, the whole mixed batch
still advances with one vector operation per recurrence step.

Each lane ``i`` of :func:`generate_schedules_hetero` reproduces
:func:`repro.core.recurrence.generate_schedule` for
``(make_family_life(family, θ_i), c_i, t0_i)``: the same termination rules in
the same priority order, the same lifespan clamping, and the same expected
work ``E(S; p)`` accumulated in the same left-to-right order.  Relative to
the scalar engine the periods may drift by an ulp where ``libm`` and NumPy's
ufunc kernels round ``pow`` differently, but every operation is elementwise
per lane, so an ``n = 1`` call is **bit-identical** to the corresponding lane
of an ``n = N`` call — the invariant the batched serving parity tests rely
on (scalar serving entry points are thin ``n = 1`` wrappers over this
engine, never a separate code path).

Only the four table families are supported; anything else must go through
the scalar engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .recurrence import Termination
from .schedule import Schedule

__all__ = [
    "HETERO_FAMILIES",
    "HeteroBatchResult",
    "generate_schedules_hetero",
]

#: Families with per-lane vectorized kernels (the Section 4 table families).
HETERO_FAMILIES = ("uniform", "poly", "geomdec", "geominc")

#: Stable integer codes, matching :mod:`repro.core.batch_recurrence`.
_TERMINATION_BY_CODE: tuple[Termination, ...] = (
    Termination.TARGET_NONPOSITIVE,
    Termination.UNPRODUCTIVE,
    Termination.LIFESPAN_EXHAUSTED,
    Termination.TAIL_NEGLIGIBLE,
    Termination.MAX_PERIODS,
)
_CODE: dict[Termination, int] = {t: i for i, t in enumerate(_TERMINATION_BY_CODE)}

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class HeteroBatchResult:
    """Per-lane schedules for a mixed ``(c, θ, t0)`` batch, NaN-padded."""

    family: str
    #: Per-lane overheads / family parameters / initial periods.
    cs: FloatArray
    params: FloatArray
    t0s: FloatArray
    #: Period lengths, shape ``(n_lanes, max_m)``; NaN beyond a lane's end.
    periods: FloatArray
    num_periods: np.ndarray
    termination_codes: np.ndarray
    #: ``E(S; p)`` per lane, accumulated exactly as the scalar engine does.
    expected_work: FloatArray

    @property
    def n_lanes(self) -> int:
        return int(self.t0s.size)

    def termination(self, i: int) -> Termination:
        return _TERMINATION_BY_CODE[int(self.termination_codes[i])]

    def schedule(self, i: int) -> Schedule:
        """Materialize lane ``i`` as a :class:`Schedule`."""
        m = int(self.num_periods[i])
        return Schedule(self.periods[i, :m])


# ----------------------------------------------------------------------
# Per-family vectorized kernels (survival + closed-form step)
# ----------------------------------------------------------------------


def _survival(family: str, d: int, params: FloatArray, t: FloatArray) -> FloatArray:
    """Lane-wise ``p(t; θ)``, matching ``LifeFunction.__call__``'s clamping."""
    if family in ("uniform", "poly"):
        out = 1.0 - (t / params) ** d
    elif family == "geomdec":
        out = np.exp(-np.log(params) * t)
    elif family == "geominc":
        denom = -np.expm1(-params * _LN2)
        out = -np.expm1((t - params) * _LN2) / denom
    else:  # pragma: no cover - guarded by generate_schedules_hetero
        raise InvalidScheduleError(f"no heterogeneous kernel for family {family!r}")
    return np.clip(out, 0.0, 1.0)


def _step(
    family: str,
    d: int,
    cs: FloatArray,
    params: FloatArray,
    t_prev: FloatArray,
    boundary_prev: FloatArray,
) -> FloatArray:
    """One lane-wise closed-form recurrence step; NaN means "no next period".

    Mirrors :func:`repro.core.recurrence._closed_form_step` per family, with
    the scalar parameters ``c`` (and ``a`` for the geometric-decreasing
    family) promoted to per-lane vectors.
    """
    if family == "uniform" or (family == "poly" and d == 1):
        return t_prev - cs  # eq. (4.1)
    if family == "poly":
        ratio = 1.0 + d * (t_prev - cs) / boundary_prev
        ok = ratio > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = (ratio[ok] ** (1.0 / d) - 1.0) * boundary_prev[ok]
        return out
    if family == "geomdec":
        ln_a = np.log(params)
        arg = 1.0 + (cs - t_prev) * ln_a
        ok = arg > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = -np.log(arg[ok]) / ln_a[ok]
        return out
    if family == "geominc":
        arg = (t_prev - cs) * _LN2 + 1.0
        ok = arg > 0.0
        out = np.full_like(t_prev, np.nan)
        out[ok] = np.log2(arg[ok])
        return out
    raise InvalidScheduleError(  # pragma: no cover - guarded by caller
        f"no heterogeneous kernel for family {family!r}"
    )


def _lifespans(family: str, params: FloatArray) -> FloatArray:
    """Per-lane potential lifespans ``L`` (inf for the geometric-decreasing)."""
    if family == "geomdec":
        return np.full_like(params, np.inf)
    return params


# ----------------------------------------------------------------------
# The mixed-lane engine
# ----------------------------------------------------------------------


def generate_schedules_hetero(
    family: str,
    cs: FloatArray,
    params: FloatArray,
    t0s: FloatArray,
    d: int = 1,
    max_periods: int = 10_000,
    tail_tol: float = 1e-12,
    engine: str = "numpy",
) -> HeteroBatchResult:
    """Iterate system (3.6) over lanes with per-lane ``(c, θ, t0)``.

    ``d`` is the polynomial degree (only read for ``family="poly"``;
    ``"uniform"`` is the ``d = 1`` special case).  Lane ``i`` reproduces
    ``generate_schedule(make_family_life(family, params[i]), cs[i], t0s[i])``
    period-for-period, with the engine-internal expected work accumulated in
    the scalar engine's left-to-right order.

    ``engine="jit"`` runs the compiled per-lane loop from
    :mod:`repro.jitkernels` when numba is importable and enabled, silently
    falling back to this NumPy path otherwise; the compiled loop replays the
    same operations per lane, so results agree bit-for-bit except at the
    transcendental sites documented in :mod:`repro.jitkernels.kernels`.

    Raises
    ------
    InvalidScheduleError
        On an unsupported family, mismatched lane vectors, an unknown
        ``engine``, any ``c < 0``, or any non-finite / unproductive
        (``t0 <= c``) initial period.
    """
    if engine not in ("numpy", "jit"):
        raise InvalidScheduleError(
            f"unknown engine {engine!r}; expected 'numpy' or 'jit'"
        )
    if family not in HETERO_FAMILIES:
        raise InvalidScheduleError(
            f"family {family!r} has no heterogeneous batch kernel; "
            f"expected one of {HETERO_FAMILIES}"
        )
    cs = np.asarray(cs, dtype=float)
    params = np.asarray(params, dtype=float)
    t0_arr = np.asarray(t0s, dtype=float)
    if not (cs.shape == params.shape == t0_arr.shape) or cs.ndim != 1:
        raise InvalidScheduleError(
            f"cs/params/t0s must be equal-length vectors, got shapes "
            f"{cs.shape}/{params.shape}/{t0_arr.shape}"
        )
    if t0_arr.size == 0:
        raise InvalidScheduleError("need at least one lane")
    if np.any(cs < 0):
        raise InvalidScheduleError("overheads c must be nonnegative")
    if not np.all(np.isfinite(t0_arr)):
        raise InvalidScheduleError("t0 candidates must be finite")
    if np.any(t0_arr <= cs):
        bad = int(np.argmax(t0_arr <= cs))
        raise InvalidScheduleError(
            f"initial period t0 = {t0_arr[bad]} must exceed the overhead "
            f"c = {cs[bad]} (lane {bad})"
        )
    d = int(d) if family == "poly" else 1

    if engine == "jit":
        from .. import jitkernels

        if jitkernels.available():
            periods, num_periods, term, e_full = jitkernels.kernels().hetero_recurrence(
                jitkernels.family_code(family),
                d,
                np.ascontiguousarray(cs, dtype=np.float64),
                np.ascontiguousarray(params, dtype=np.float64),
                np.ascontiguousarray(t0_arr, dtype=np.float64),
                int(max_periods),
                float(tail_tol),
            )
            return HeteroBatchResult(
                family=family,
                cs=cs,
                params=params,
                t0s=t0_arr,
                periods=periods,
                num_periods=num_periods,
                termination_codes=term,
                expected_work=e_full,
            )
        # No usable numba: transparent NumPy fallback.

    n = t0_arr.size
    lifespans = _lifespans(family, params)
    finite_life = bool(np.any(np.isfinite(lifespans)))

    term = np.full(n, _CODE[Termination.MAX_PERIODS], dtype=np.int8)
    alive = np.ones(n, dtype=bool)
    first = t0_arr.copy()
    if finite_life:
        # A t0 spanning the whole lifespan earns p(L) = 0; clamp rather than
        # reject so serving sweeps stay total (scalar engine's pre-loop rule).
        clamped = t0_arr >= lifespans
        if np.any(clamped):
            first[clamped] = np.minimum(t0_arr[clamped], lifespans[clamped])
            term[clamped] = _CODE[Termination.LIFESPAN_EXHAUSTED]
            alive[clamped] = False

    sqrt_tail = math.sqrt(tail_tol)

    # Compacted live-lane state, exactly as in generate_schedules_batch, with
    # the per-lane (c, θ, L) vectors compacted alongside the recurrence state.
    idx = np.nonzero(alive)[0]
    tp = first[idx]
    b = first[idx]
    lc = cs[idx]
    lv = params[idx]
    ll = lifespans[idx]
    ph = _survival(family, d, lv, b) if idx.size else np.empty(0)
    e_full = np.zeros(n)
    e_full[idx] = np.maximum(0.0, tp - lc) * ph
    e = e_full[idx]

    cap = 32
    periods_buf = np.full((n, cap), np.nan)
    k = 0

    for _ in range(max_periods - 1):
        if idx.size == 0:
            break
        if finite_life:
            hit = b >= ll - 1e-15 * ll
            if np.any(hit):
                term[idx[hit]] = _CODE[Termination.LIFESPAN_EXHAUSTED]
                keep = ~hit
                idx, tp, b, lc, lv, ll, ph, e = (
                    idx[keep], tp[keep], b[keep], lc[keep],
                    lv[keep], ll[keep], ph[keep], e[keep],
                )
                if idx.size == 0:
                    break

        t_next = _step(family, d, lc, lv, tp, b)
        nonpositive = np.isnan(t_next)
        unproductive = ~nonpositive & (t_next <= lc)
        if finite_life:
            overshoot = ~nonpositive & ~unproductive & (b + t_next > ll)
            surviving = ~(nonpositive | unproductive | overshoot)
            term[idx[overshoot]] = _CODE[Termination.LIFESPAN_EXHAUSTED]
        else:
            surviving = ~(nonpositive | unproductive)
        term[idx[nonpositive]] = _CODE[Termination.TARGET_NONPOSITIVE]
        term[idx[unproductive]] = _CODE[Termination.UNPRODUCTIVE]
        if not np.any(surviving):
            break

        sidx = idx[surviving]
        tn = t_next[surviving]
        if k == cap:
            cap *= 2
            grown = np.full((n, cap), np.nan)
            grown[:, : periods_buf.shape[1]] = periods_buf
            periods_buf = grown
        periods_buf[sidx, k] = tn
        k += 1

        b = b[surviving] + tn
        tp = tn
        lc = lc[surviving]
        lv = lv[surviving]
        ll = ll[surviving]
        ph = _survival(family, d, lv, b)
        contribution = (tn - lc) * ph
        e = e[surviving] + contribution
        e_full[sidx] = e
        negligible = (contribution < tail_tol * np.maximum(1.0, e)) & (ph < sqrt_tail)
        if np.any(negligible):
            term[sidx[negligible]] = _CODE[Termination.TAIL_NEGLIGIBLE]
            keep = ~negligible
            idx, tp, b, lc, lv, ll, ph, e = (
                sidx[keep], tp[keep], b[keep], lc[keep],
                lv[keep], ll[keep], ph[keep], e[keep],
            )
        else:
            idx = sidx

    periods = np.concatenate([first[:, None], periods_buf[:, :k]], axis=1)
    num_periods = 1 + np.sum(~np.isnan(periods[:, 1:]), axis=1)
    return HeteroBatchResult(
        family=family,
        cs=cs,
        params=params,
        t0s=t0_arr,
        periods=periods,
        num_periods=num_periods,
        termination_codes=term,
        expected_work=e_full + 0.0,
    )
