"""Bounds on the optimal initial period length ``t_0`` (Sections 3.3, 4, 5).

Determining ``t_0`` "remains an art" (Section 6): system (3.6) pins down every
*non-initial* period from ``t_0``, but ``t_0`` itself is only bracketed.  The
paper provides:

* **Theorem 3.2** (any differentiable ``p``) — the implicit lower bound

      t_0 >= sqrt(c²/4 - c p(t_0)/p'(t_0)) + c/2;                       (3.7)

* **Theorem 3.3** (``t_0 > 2c``) — implicit upper bounds

      t_0 <= 2 sqrt(c²/4 - c p(t_0)/p'(t_0))  + c     (convex p),      (3.13)
      t_0 <= 2 sqrt(c²/4 - c p(t_0)/p'(t_0/2)) + c    (concave p);     (3.14)

* **Section 4 closed forms** — explicit brackets for each studied family;
* **Corollaries 5.3–5.5** (concave p with lifespan ``L``) — the period-count
  bound ``m < ceil(sqrt(2L/c + 1/4) + 1/2)`` and the refinements
  ``t_0 >= L/m + (m-1)c/2`` and ``t_0 > sqrt(cL/2) + 3c/4``.

The implicit bounds are fixed-point inequalities ``t >= f(t)`` / ``t <= f(t)``;
we report the extreme roots of ``t = f(t)``, located by a sign-change scan plus
Brent refinement.  For the paper's monotone families the crossing is unique and
the closed forms cross-check the generic solver (tested).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np
from scipy.optimize import brentq

from ..exceptions import BracketError
from ..types import Bracket
from .life_functions import LifeFunction, Shape

__all__ = [
    "theorem_32_rhs",
    "theorem_33_rhs",
    "lower_bound_t0",
    "upper_bound_t0",
    "t0_bracket",
    "uniform_bracket",
    "polynomial_bracket",
    "geometric_decreasing_bracket",
    "geometric_increasing_window",
    "family_bracket_batch",
    "max_periods_bound",
    "t0_lower_bound_cor54",
    "t0_lower_bound_cor55",
]

_LN2 = math.log(2.0)


# ----------------------------------------------------------------------
# The implicit bound functions
# ----------------------------------------------------------------------


def theorem_32_rhs(p: LifeFunction, c: float, t: float) -> float:
    """``sqrt(c²/4 - c p(t)/p'(t)) + c/2`` — the RHS of inequality (3.7).

    ``p' < 0`` on the interior, so the radicand is ``>= c²/4``.
    """
    dp = float(p.derivative(t))
    if dp >= 0.0:
        # Derivative vanishes only at support boundaries; the ratio p/p'
        # diverges there, making the bound vacuous (infinite).
        return math.inf
    radicand = c * c / 4.0 - c * float(p(t)) / dp
    return math.sqrt(radicand) + c / 2.0


def theorem_33_rhs(p: LifeFunction, c: float, t: float, concave: bool) -> float:
    """RHS of (3.13) (convex) or (3.14) (concave): ``2 sqrt(...) + c``.

    The concave variant evaluates the derivative at ``t/2`` (the Mean-Value
    Theorem point lands in ``(t_0/2, t_0)`` and concavity bounds ``p'`` there
    by ``p'(t_0/2)``).
    """
    dp = float(p.derivative(t / 2.0 if concave else t))
    if dp >= 0.0:
        return math.inf
    radicand = c * c / 4.0 - c * float(p(t)) / dp
    return 2.0 * math.sqrt(radicand) + c


# ----------------------------------------------------------------------
# Root finding for the fixed-point inequalities
# ----------------------------------------------------------------------


def _probe_horizon(p: LifeFunction) -> float:
    """Upper end of the search range: the lifespan, or a deep tail quantile."""
    if math.isfinite(p.lifespan):
        return p.lifespan
    return float(p.inverse(1e-10))


def _scan_roots(
    g: Callable[[float], float],
    lo: float,
    hi: float,
    n: int = 4096,
    g_vec: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> list[float]:
    """All roots of ``g`` located by sign changes on an ``n``-point grid.

    ``g_vec``, when given, evaluates the grid in one vectorized call; Brent
    refinement still uses the scalar ``g`` near each crossing.
    """
    ts = np.linspace(lo, hi, n)
    if g_vec is not None:
        with np.errstate(all="ignore"):
            vals = np.asarray(g_vec(ts), dtype=float)
    else:
        vals = np.array([g(t) for t in ts])
    finite = np.isfinite(vals)
    roots: list[float] = []
    pair_ok = finite[:-1] & finite[1:]
    sign_change = pair_ok & (vals[:-1] * vals[1:] < 0.0)
    exact_zero = finite & (vals == 0.0)
    for i in np.nonzero(exact_zero[:-1])[0]:
        roots.append(float(ts[i]))
    for i in np.nonzero(sign_change)[0]:
        if vals[i] == 0.0:
            continue  # already recorded as an exact zero
        roots.append(float(brentq(g, ts[i], ts[i + 1], xtol=1e-12, rtol=1e-12)))
    if exact_zero[-1]:
        roots.append(float(ts[-1]))
    return sorted(roots)


def lower_bound_t0(p: LifeFunction, c: float) -> float:
    """Theorem 3.2's lower bound on the optimal ``t_0``, as a number.

    Returns the smallest root of ``t = theorem_32_rhs(p, c, t)``: every ``t``
    below it violates (3.7), so the optimal ``t_0`` cannot lie there.
    """
    if c < 0:
        raise ValueError(f"overhead c must be nonnegative, got {c}")
    if c == 0.0:
        return 0.0
    horizon = _probe_horizon(p)
    eps = 1e-9 * horizon

    def g(t: float) -> float:
        return t - theorem_32_rhs(p, c, t)

    def g_vec(ts: np.ndarray) -> np.ndarray:
        dp = np.asarray(p.derivative(ts), dtype=float)
        pv = np.asarray(p(ts), dtype=float)
        rhs = np.where(
            dp < 0.0, np.sqrt(c * c / 4.0 - c * pv / np.where(dp < 0, dp, -1.0)) + c / 2.0,
            np.inf,
        )
        return ts - rhs

    roots = _scan_roots(g, eps, horizon * (1.0 - 1e-12), g_vec=g_vec)
    if not roots:
        raise BracketError(
            "Theorem 3.2 fixed point not found on the support; "
            "the life function may violate the model assumptions"
        )
    return roots[0]


def upper_bound_t0(p: LifeFunction, c: float, shape: Optional[Shape] = None) -> float:
    """Theorem 3.3's upper bound on the optimal ``t_0``, as a number.

    Uses (3.13) for convex ``p`` and (3.14) for concave ``p``; the declared
    shape can be overridden with ``shape``.  The theorem applies to
    ``t_0 > 2c``, so the returned bound is never below ``2c``.  If the
    fixed-point equation has no root on the support (the inequality holds
    everywhere), the bound degenerates to the horizon — for a finite lifespan,
    ``L`` itself, which is always a valid upper bound on ``t_0``.

    Raises
    ------
    ValueError
        If the (effective) shape is ``GENERAL``: Theorem 3.3 needs convexity
        or concavity.
    """
    if c < 0:
        raise ValueError(f"overhead c must be nonnegative, got {c}")
    effective = shape if shape is not None else p.shape
    if effective is Shape.GENERAL:
        raise ValueError(
            "Theorem 3.3 requires a convex or concave life function; "
            "got GENERAL shape (use detect_shape or pass shape explicitly)"
        )
    # For LINEAR (both convex and concave), the two RHS forms coincide since
    # p' is constant; use the convex branch.
    concave = effective is Shape.CONCAVE
    horizon = _probe_horizon(p)
    eps = 1e-9 * horizon

    def g(t: float) -> float:
        return t - theorem_33_rhs(p, c, t, concave=concave)

    def g_vec(ts: np.ndarray) -> np.ndarray:
        dp = np.asarray(p.derivative(ts / 2.0 if concave else ts), dtype=float)
        pv = np.asarray(p(ts), dtype=float)
        rhs = np.where(
            dp < 0.0,
            2.0 * np.sqrt(c * c / 4.0 - c * pv / np.where(dp < 0, dp, -1.0)) + c,
            np.inf,
        )
        return ts - rhs

    roots = _scan_roots(g, eps, horizon * (1.0 - 1e-12), g_vec=g_vec)
    bound = max(roots) if roots else horizon
    return max(bound, 2.0 * c)


def t0_bracket(p: LifeFunction, c: float, shape: Optional[Shape] = None) -> Bracket:
    """The Theorem 3.2 + 3.3 bracket on the optimal initial period length.

    The paper: these bounds "substantially narrow one's search space for the
    optimal t_0 ... but they usually still leave one with a factor-of-2
    uncertainty".
    """
    lo = lower_bound_t0(p, c)
    hi = upper_bound_t0(p, c, shape=shape)
    if math.isfinite(p.lifespan):
        hi = min(hi, p.lifespan)
        lo = min(lo, hi)
    return Bracket(lo, max(hi, lo))


# ----------------------------------------------------------------------
# Section 4 closed-form brackets
# ----------------------------------------------------------------------


def polynomial_bracket(d: int, lifespan: float, c: float) -> Bracket:
    """Section 4.1's explicit bracket for ``p_{d,L}``:

    ``(c/d)^{1/(d+1)} L^{d/(d+1)}  <=  t_0  <=  2 (c/d)^{1/(d+1)} L^{d/(d+1)} + 1``.
    """
    if d < 1:
        raise ValueError(f"degree d must be >= 1, got {d}")
    base = (c / d) ** (1.0 / (d + 1)) * lifespan ** (d / (d + 1.0))
    return Bracket(base, 2.0 * base + 1.0)


def uniform_bracket(lifespan: float, c: float) -> Bracket:
    """Eq. (4.4): ``sqrt(cL) <= t_0 <= 2 sqrt(cL) + 1`` (uniform risk, d = 1).

    Compare the true optimum (4.5): ``t_0 = sqrt(2cL) + low-order terms``.
    """
    return polynomial_bracket(1, lifespan, c)


def geometric_decreasing_bracket(a: float, c: float) -> Bracket:
    """Section 4.2's bracket: ``sqrt(c²/4 + c/ln a) + c/2 <= t_0 <= c + 1/ln a``.

    The upper bound (from Lemma 3.1 / solvability of eq. 4.6) is remarkably
    close to the true transcendental optimum ``t_0 + a^{-t_0}/ln a = c + 1/ln a``.
    """
    if a <= 1:
        raise ValueError(f"risk factor a must exceed 1, got {a}")
    ln_a = math.log(a)
    lo = math.sqrt(c * c / 4.0 + c / ln_a) + c / 2.0
    hi = c + 1.0 / ln_a
    # For large c the generic lower bound can exceed the Lemma 3.1 ceiling;
    # the bracket is then the point at the ceiling.
    return Bracket(min(lo, hi), hi)


def geometric_increasing_window(lifespan: float, c: float) -> Bracket:
    """Section 4.3's asymptotic window: ``2^{t_0/2} t_0² <= 2^L <= 2^{t_0} t_0²``.

    Taking base-2 logs: ``t_0 + 2 log2 t_0 >= L`` and ``t_0/2 + 2 log2 t_0 <= L``,
    i.e. ``t_0`` lies between the roots of ``t + 2 log2 t = L`` (lower) and
    ``t/2 + 2 log2 t = L`` (upper) — so ``t_0 = L - Θ(log L)``.  Stated "to
    within low-order additive terms", so treat as an asymptotic guide, not a
    hard bracket (the benches report both this window and the exact implicit
    Theorem 3.2/3.3 bounds).
    """
    if lifespan <= 1.0:
        raise ValueError(f"window requires L > 1, got {lifespan}")

    def solve(coeff: float) -> float:
        g = lambda t: coeff * t + 2.0 * math.log2(t) - lifespan
        lo, hi = 1e-6, lifespan / coeff + 1.0
        if g(lo) > 0:
            return lo
        return float(brentq(g, lo, hi, xtol=1e-12))

    lower = solve(1.0)
    upper = solve(0.5)
    upper = min(upper, lifespan)
    lower = min(lower, upper)
    return Bracket(lower, upper)


def family_bracket_batch(
    family: str,
    cs: np.ndarray,
    params: np.ndarray,
    d: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Section 4 brackets for per-lane ``(c, θ)`` batches.

    Lane ``i`` reproduces the scalar closed form for its family —
    :func:`polynomial_bracket` (``uniform`` is ``d = 1``),
    :func:`geometric_decreasing_bracket`, or
    :func:`geometric_increasing_window` — as one array operation, so a
    10k-host fleet planner gets all its ``t_0`` search windows in a single
    call.  Returns ``(lo, hi)`` arrays; for ``geominc`` the window roots of
    ``coeff·t + 2 log2 t = L`` are located by a damped vectorized Newton
    iteration (the map is smooth and monotone on ``t > 0``) instead of
    per-lane Brent solves, agreeing with the scalar solver to ~1e-9.
    """
    cs = np.asarray(cs, dtype=float)
    params = np.asarray(params, dtype=float)
    if cs.shape != params.shape or cs.ndim != 1:
        raise ValueError(
            f"cs/params must be equal-length vectors, got {cs.shape}/{params.shape}"
        )
    if family in ("uniform", "poly"):
        dd = 1 if family == "uniform" else int(d)
        if dd < 1:
            raise ValueError(f"degree d must be >= 1, got {dd}")
        if np.any(params <= 0):
            raise ValueError("lifespans must be positive")
        base = (cs / dd) ** (1.0 / (dd + 1)) * params ** (dd / (dd + 1.0))
        lo, hi = base, 2.0 * base + 1.0
    elif family == "geomdec":
        if np.any(params <= 1.0):
            raise ValueError("risk factor a must exceed 1")
        ln_a = np.log(params)
        hi = cs + 1.0 / ln_a
        lo = np.minimum(np.sqrt(cs * cs / 4.0 + cs / ln_a) + cs / 2.0, hi)
    elif family == "geominc":
        if np.any(params <= 1.0):
            raise ValueError("geominc window requires L > 1")

        def solve(coeff: float) -> np.ndarray:
            t = np.maximum(params / coeff, 1.5)
            for _ in range(64):
                g = coeff * t + 2.0 * np.log2(t) - params
                t = np.maximum(t - g / (coeff + 2.0 / (t * _LN2)), 1e-6)
            return t

        hi = np.minimum(solve(0.5), params)
        lo = np.minimum(solve(1.0), hi)
    else:
        raise ValueError(f"no closed-form bracket batch for family {family!r}")
    return lo, hi


# ----------------------------------------------------------------------
# Section 5 refinements (concave life functions)
# ----------------------------------------------------------------------


def max_periods_bound(lifespan: float, c: float) -> int:
    """Corollary 5.3: an optimal schedule for a concave ``p`` with lifespan ``L``
    has ``m < ceil(sqrt(2L/c + 1/4) + 1/2)`` periods.

    Returns that ceiling; valid schedules have strictly fewer periods.  The
    uniform-risk optimum attains the floor version (the bound is tight).
    """
    if lifespan <= 0 or c <= 0:
        raise ValueError(f"need positive lifespan and overhead, got L={lifespan}, c={c}")
    return int(math.ceil(math.sqrt(2.0 * lifespan / c + 0.25) + 0.5))


def t0_lower_bound_cor54(lifespan: float, c: float, m: int) -> float:
    """Corollary 5.4: for a concave ``p`` whose optimal schedule has ``m``
    periods, ``t_0 >= L/m + (m-1) c / 2``."""
    if m < 1:
        raise ValueError(f"period count must be >= 1, got {m}")
    return lifespan / m + (m - 1) * c / 2.0


def t0_lower_bound_cor55(lifespan: float, c: float) -> float:
    """Corollary 5.5 (left inequality): ``t_0 > sqrt(cL/2) + 3c/4`` for concave
    ``p`` with lifespan ``L``."""
    return math.sqrt(c * lifespan / 2.0) + 0.75 * c
