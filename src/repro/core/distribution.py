"""The full distribution of banked work — beyond eq. (2.1)'s expectation.

The paper optimizes the *expected* work and defers worst-case measures to a
sequel (footnote 1).  In between sit the distributional questions a user
actually faces ("what work am I 90% sure to bank?").  For a fixed schedule the
distribution is exact and closed-form: the banked work takes one of ``m + 1``
values — the cumulative work after ``k`` completed periods, for
``k = 0 .. m`` — and

    P[exactly k periods complete] = p(T_{k-1}) - p(T_k)      (with T_{-1} = 0,
                                                              p(T_m) term 0 for
                                                              the all-complete
                                                              atom p(T_{m-1})).

This module exposes that distribution (:func:`work_distribution`), its summary
statistics, and a *risk-averse* schedule optimizer maximizing
``E[W] - λ·Std[W]`` or a work quantile — the natural bridge between the
paper's expectation objective and its sequel's worst case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import InvalidScheduleError
from ..types import FloatArray
from .life_functions import LifeFunction
from .schedule import Schedule

__all__ = [
    "WorkDistribution",
    "work_distribution",
    "optimize_risk_averse",
]


@dataclass(frozen=True)
class WorkDistribution:
    """Exact distribution of the work banked by a schedule.

    ``atoms[k]`` is the banked work when exactly ``k`` periods complete;
    ``probabilities[k]`` its probability.  Atoms are nondecreasing in ``k``.
    """

    atoms: FloatArray
    probabilities: FloatArray

    def __post_init__(self) -> None:
        if self.atoms.shape != self.probabilities.shape:
            raise InvalidScheduleError("atoms and probabilities must align")
        total = float(self.probabilities.sum())
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise InvalidScheduleError(f"probabilities sum to {total}, not 1")

    @property
    def mean(self) -> float:
        """``E[W]`` — identical to eq. (2.1)'s expected work (tested)."""
        return float(np.dot(self.atoms, self.probabilities))

    @property
    def variance(self) -> float:
        mu = self.mean
        return float(np.dot((self.atoms - mu) ** 2, self.probabilities))

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def prob_at_least(self, w: float) -> float:
        """``P[W >= w]``."""
        return float(self.probabilities[self.atoms >= w - 1e-12].sum())

    def quantile(self, q: float) -> float:
        """The smallest work level ``w`` with ``P[W <= w] >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must lie in [0, 1], got {q}")
        cdf = np.cumsum(self.probabilities)
        idx = int(np.searchsorted(cdf, q - 1e-12, side="left"))
        idx = min(idx, self.atoms.size - 1)
        return float(self.atoms[idx])

    def cvar_lower(self, q: float) -> float:
        """Mean of the worst ``q`` fraction of outcomes (lower CVaR)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"CVaR level must lie in (0, 1], got {q}")
        remaining = q
        acc = 0.0
        for w, pr in zip(self.atoms, self.probabilities):
            take = min(pr, remaining)
            acc += take * w
            remaining -= take
            if remaining <= 1e-15:
                break
        return acc / q


def work_distribution(schedule: Schedule, p: LifeFunction, c: float) -> WorkDistribution:
    """Exact banked-work distribution of a schedule under life function ``p``."""
    if c < 0:
        raise InvalidScheduleError(f"overhead c must be nonnegative, got {c}")
    boundaries = schedule.boundaries
    survival = np.concatenate(([1.0], np.asarray(p(boundaries), dtype=float)))
    # P[exactly k of m periods complete] = p(T_{k-1}) - p(T_k) for k < m, and
    # p(T_{m-1}) for k = m.
    probs = np.empty(schedule.num_periods + 1)
    probs[:-1] = survival[:-1] - survival[1:]
    probs[-1] = survival[-1]
    probs = np.maximum(probs, 0.0)
    probs /= probs.sum()
    atoms = np.concatenate(([0.0], np.cumsum(schedule.work_per_period(c))))
    return WorkDistribution(atoms=atoms, probabilities=probs)


def optimize_risk_averse(
    p: LifeFunction,
    c: float,
    risk_aversion: float = 0.0,
    quantile: Optional[float] = None,
    grid: int = 129,
) -> tuple[Schedule, WorkDistribution]:
    """Optimize ``t_0`` (recurrence family) for a risk-sensitive objective.

    ``risk_aversion = λ`` maximizes ``E[W] - λ·Std[W]``; passing ``quantile``
    instead maximizes the ``quantile``-level of the work distribution
    (ties broken by the mean).  ``λ = 0`` recovers the paper's expectation
    objective.

    Restricting to the Corollary 3.1 family keeps the search 1-D; the
    recurrence is only *known* to be necessary for the expectation objective,
    so the result is a guideline-flavoured heuristic for the risk-averse
    case — exactly the spirit of the paper's "manageably narrow search space".
    """
    from .batch_recurrence import generate_schedules_batch
    from .optimizer import optimize_t0_via_recurrence
    from .t0_bounds import lower_bound_t0

    if risk_aversion < 0:
        raise ValueError(f"risk aversion must be nonnegative, got {risk_aversion}")

    # Reuse the guideline bracket machinery for the search interval.
    _, base_outcome, _ = optimize_t0_via_recurrence(p, c, grid=max(grid // 2, 17))
    base_t0 = float(base_outcome.schedule.periods[0])
    lo = max(lower_bound_t0(p, c) * 0.5, c * (1 + 1e-9))
    hi = base_t0 * 2.5
    if math.isfinite(p.lifespan):
        hi = min(hi, p.lifespan * (1 - 1e-12))

    def score(dist: WorkDistribution) -> float:
        if quantile is not None:
            return dist.quantile(quantile) + 1e-9 * dist.mean
        return dist.mean - risk_aversion * dist.std

    t0s = np.linspace(lo, hi, grid)
    t0s = t0s[t0s > c]
    if t0s.size == 0:
        raise InvalidScheduleError(
            f"risk-averse search interval [{lo:.6g}, {hi:.6g}] has no "
            f"productive t0 > c = {c}"
        )
    # One batched recurrence for all candidate schedules; the (cheap,
    # O(m)-sized) distribution scoring stays per-lane.
    batch = generate_schedules_batch(p, c, t0s)
    best: tuple[float, Schedule, WorkDistribution] | None = None
    for i in range(batch.n_lanes):
        schedule = batch.schedule(i)
        dist = work_distribution(schedule, p, c)
        value = score(dist)
        if best is None or value > best[0]:
            best = (value, schedule, dist)
    assert best is not None  # t0s nonempty => loop ran at least once
    return best[1], best[2]
