"""Numerical exploration of the uniqueness open question (Section 6).

"Are optimal cycle-stealing schedules unique?  Significantly, Theorem 3.1
gives a handle on this basic question, since it implies that distinct optimal
schedules must have different *initial* period-lengths."

That observation reduces uniqueness to a 1-D question: since the recurrence
(3.6) propagates ``t_0`` deterministically, the set of candidate optima is
``{S(t_0)}``, and multiple optima exist iff the map ``t_0 -> E(S(t_0); p)``
attains its maximum at more than one point.  :func:`count_expected_work_peaks`
scans that map for interior local maxima; :func:`is_unique_optimum_numerically`
reports whether the global maximum is unique up to tolerance.

For every Section 4 family the answer comes out unique (matching the paper's
"each of the life functions studied in [3] admits a unique optimal
schedule"); mixtures can produce genuinely multimodal E(t_0) landscapes,
which is exactly the situation the open question worries about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..types import Bracket, FloatArray
from .batch_recurrence import generate_schedules_batch
from .life_functions import LifeFunction
from .plancache import PlanCache, plan_key
from .t0_bounds import lower_bound_t0

__all__ = ["T0Landscape", "scan_t0_landscape", "count_expected_work_peaks",
           "is_unique_optimum_numerically"]


@dataclass(frozen=True)
class T0Landscape:
    """The sampled map ``t_0 -> E(S(t_0); p)`` over a search interval."""

    t0_values: FloatArray
    expected_work: FloatArray

    @property
    def argmax(self) -> float:
        return float(self.t0_values[int(np.argmax(self.expected_work))])

    @property
    def max(self) -> float:
        return float(np.max(self.expected_work))

    def local_maxima(self, rel_tol: float = 1e-6) -> FloatArray:
        """t0 values of strict interior local maxima of the sampled map."""
        e = self.expected_work
        scale = max(float(np.max(e)), 1e-300)
        interior = np.arange(1, e.size - 1)
        is_peak = (e[interior] >= e[interior - 1] + rel_tol * scale * 0) & (
            e[interior] > e[interior - 1] - rel_tol * scale
        )
        # A robust peak: strictly above both neighbours beyond tolerance.
        peaks = [
            i
            for i in interior
            if e[i] > e[i - 1] + rel_tol * scale and e[i] > e[i + 1] + rel_tol * scale
        ]
        return self.t0_values[np.asarray(peaks, dtype=int)] if peaks else np.array([])


def scan_t0_landscape(
    p: LifeFunction,
    c: float,
    bracket: Bracket | None = None,
    n_points: int = 513,
    widen: float = 2.0,
    cache: Optional[PlanCache] = None,
) -> T0Landscape:
    """Sample ``E(S(t_0))`` on a grid over (a widened) t0 search interval.

    ``cache`` (a :class:`~repro.core.plancache.PlanCache`) memoizes the whole
    sampled landscape keyed on ``p.fingerprint()`` and the grid parameters.
    """
    if cache is not None:
        fp = cache.fingerprint_of(p)
        key = None if fp is None else plan_key(
            "t0landscape", fp, c,
            bracket=None if bracket is None else (bracket.lo, bracket.hi),
            n_points=n_points, widen=widen,
        )
        from .. import io as _io  # deferred: repro.io imports this module

        return cache.get_or_compute(
            key,
            lambda: scan_t0_landscape(p, c, bracket, n_points, widen),
            to_payload=_io.t0_landscape_to_dict,
            from_payload=_io.t0_landscape_from_dict,
        )
    if bracket is None:
        lo = max(lower_bound_t0(p, c) / widen, c * (1 + 1e-9))
        hi_cap = p.lifespan if math.isfinite(p.lifespan) else float(p.inverse(1e-8))
        hi = min(hi_cap * (1 - 1e-12), max(lo * widen * 4, lo * 1.01))
    else:
        lo = max(bracket.lo / widen, c * (1 + 1e-9))
        hi = bracket.hi * widen
        if math.isfinite(p.lifespan):
            hi = min(hi, p.lifespan * (1 - 1e-12))
    ts = np.linspace(lo, hi, n_points)
    # One lane per grid point: the whole landscape costs O(max periods)
    # vectorized recurrence steps instead of n_points scalar walks.
    batch = generate_schedules_batch(p, c, ts)
    return T0Landscape(t0_values=ts, expected_work=batch.expected_work)


def count_expected_work_peaks(
    p: LifeFunction, c: float, n_points: int = 513, rel_tol: float = 1e-6
) -> int:
    """Number of interior local maxima of the t0 landscape."""
    return int(scan_t0_landscape(p, c, n_points=n_points).local_maxima(rel_tol).size)


def is_unique_optimum_numerically(
    p: LifeFunction,
    c: float,
    n_points: int = 1025,
    rel_tol: float = 1e-4,
) -> bool:
    """Whether the global maximum of the t0 landscape is attained once.

    True when exactly one sampled local maximum comes within ``rel_tol``
    (relative) of the global maximum.  A numerical *indication*, not a proof —
    the open question stands; this is the experimental handle the paper
    suggests.
    """
    landscape = scan_t0_landscape(p, c, n_points=n_points)
    peaks_t0 = landscape.local_maxima(rel_tol=1e-9)
    if peaks_t0.size == 0:
        return True  # monotone landscape: the max sits at an endpoint, once
    peak_values = np.interp(peaks_t0, landscape.t0_values, landscape.expected_work)
    near_global = np.sum(peak_values >= landscape.max * (1 - rel_tol))
    return bool(near_global <= 1)
