"""Additional analytic life-function families beyond the paper's four.

These extend the library's coverage of realistic owner-absence shapes:

* :class:`GompertzLife` — ``p(t) = exp(-(b/eta)(e^{eta t} - 1))``:
  exponentially *accelerating* hazard, the smooth unbounded-support cousin of
  the coffee-break scenario.  Concave wherever the hazard dominates (checked
  numerically; declared GENERAL since concavity fails near 0 for small b).
* :class:`LogLogisticLife` — ``p(t) = 1 / (1 + (t/alpha)^beta)``: a
  heavy-ish tail with closed-form inverse; for ``beta > 1`` the hazard rises
  then falls (meetings that are either short or very long).  For ``beta <= 1``
  the tail is so heavy that — like the paper's Pareto example — the
  Corollary 3.2 tail signature indicates no optimal schedule exists.
"""

from __future__ import annotations

import math

import numpy as np

from ...types import ArrayLike, FloatArray
from .base import LifeFunction, Shape

__all__ = ["GompertzLife", "LogLogisticLife"]


class GompertzLife(LifeFunction):
    """``p(t) = exp(-(b/eta)(e^{eta t} - 1))`` — accelerating reclaim hazard.

    The hazard is ``b e^{eta t}``: like the coffee-break family the risk
    grows exponentially, but support is unbounded and the growth rate is a
    free parameter.  ``eta -> 0`` degenerates to the memoryless family with
    rate ``b``.
    """

    def __init__(self, b: float, eta: float) -> None:
        super().__init__()
        if b <= 0 or eta <= 0:
            raise ValueError(f"need b > 0 and eta > 0, got b={b}, eta={eta}")
        self.b = float(b)
        self.eta = float(eta)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("b", self.b), ("eta", self.eta))

    def _cum_hazard(self, t: FloatArray) -> FloatArray:
        return (self.b / self.eta) * np.expm1(self.eta * t)

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.exp(-self._cum_hazard(t))

    def _derivative(self, t: FloatArray) -> FloatArray:
        return -self.b * np.exp(self.eta * t) * np.exp(-self._cum_hazard(t))

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        with np.errstate(divide="ignore"):
            inner = 1.0 - (self.eta / self.b) * np.log(np.where(arr > 0, arr, 1.0))
            out = np.where(arr > 0, np.log(inner) / self.eta, np.inf)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return math.inf

    @property
    def shape(self) -> Shape:
        # p'' changes sign at b e^{eta t} = eta, i.e. the curve has a flex
        # point whenever b < eta; declare GENERAL and let callers probe.
        return Shape.GENERAL

    def __repr__(self) -> str:
        return f"GompertzLife(b={self.b}, eta={self.eta})"


class LogLogisticLife(LifeFunction):
    """``p(t) = 1 / (1 + (t/alpha)^beta)`` — short-or-very-long absences.

    ``alpha`` is the median absence; for ``beta > 1`` the hazard is unimodal.
    The tail decays like ``t^{-beta}``, so for ``beta <= 1`` this family
    joins the Pareto example in admitting no optimal schedule (tail margin
    ``1 + (t-c) p'/p -> 1 - beta``).
    """

    def __init__(self, alpha: float, beta: float) -> None:
        super().__init__()
        if alpha <= 0 or beta <= 0:
            raise ValueError(f"need alpha > 0 and beta > 0, got {alpha}, {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("alpha", self.alpha), ("beta", self.beta))

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return 1.0 / (1.0 + (t / self.alpha) ** self.beta)

    def _derivative(self, t: FloatArray) -> FloatArray:
        a, b = self.alpha, self.beta
        with np.errstate(divide="ignore", invalid="ignore"):
            x = (t / a) ** (b - 1.0)
            out = -(b / a) * x / (1.0 + (t / a) ** b) ** 2
        if b < 1.0:
            out = np.where(t == 0.0, -np.inf, out)
        return out

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        with np.errstate(divide="ignore"):
            ratio = np.where(arr > 0, 1.0 / np.where(arr > 0, arr, 1.0) - 1.0, np.inf)
            out = self.alpha * ratio ** (1.0 / self.beta)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return math.inf

    @property
    def shape(self) -> Shape:
        return Shape.GENERAL

    def __repr__(self) -> str:
        return f"LogLogisticLife(alpha={self.alpha}, beta={self.beta})"
