"""Life functions: the risk profiles of cycle-stealing episodes (Section 2.1).

Exports the abstract base, the analytic families of Sections 3.1/4, and the
composition/shape utilities.
"""

from .base import ConditionalLifeFunction, LifeFunction, Shape
from .extra_families import GompertzLife, LogLogisticLife
from .families import (
    GeometricDecreasingLifespan,
    GeometricIncreasingRisk,
    ParetoLife,
    PolynomialRisk,
    UniformRisk,
    WeibullLife,
)
from .shape import detect_shape, is_concave, is_convex
from .transforms import MixtureLife, TimeScaledLife

__all__ = [
    "LifeFunction",
    "ConditionalLifeFunction",
    "Shape",
    "UniformRisk",
    "PolynomialRisk",
    "GeometricDecreasingLifespan",
    "GeometricIncreasingRisk",
    "WeibullLife",
    "ParetoLife",
    "GompertzLife",
    "LogLogisticLife",
    "MixtureLife",
    "TimeScaledLife",
    "detect_shape",
    "is_concave",
    "is_convex",
]
