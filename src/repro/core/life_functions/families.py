"""The analytic life-function families of Sections 3.1 and 4.

Three scenarios are inherited from the phenomenological study [3] and drive
the paper's evaluation (Section 4):

* :class:`UniformRisk` — ``p(t) = 1 - t/L`` (Section 4.1, d = 1): the risk of
  interruption is uniform across the potential lifespan; both concave and
  convex.
* :class:`PolynomialRisk` — ``p_{d,L}(t) = 1 - t^d / L^d`` (Section 4.1): the
  concave generalization studied in the paper's first case family.
* :class:`GeometricDecreasingLifespan` — ``p_a(t) = a^{-t}`` (Section 4.2):
  episodes with a "half-life"; convex, unbounded support.
* :class:`GeometricIncreasingRisk` — ``p(t) = (2^L - 2^t)/(2^L - 1)``
  (Section 4.3): the "coffee break" scenario, where the risk of interruption
  doubles at every time unit; concave.

Two further families support the library's testing and the Corollary 3.2
existence experiment:

* :class:`WeibullLife` — ``p(t) = exp(-(t/scale)^k)``: convex for ``k <= 1``;
  for ``k > 1`` it has a flex point, exercising the ``GENERAL`` shape paths.
* :class:`ParetoLife` — ``p(t) = (1 + t)^{-d}``: the paper's example (after
  Corollary 3.2) of a family that, for ``d > 1``, admits **no** optimal
  schedule.

All closed-form inverses and derivatives are exact, so the guideline
recurrence and the Monte-Carlo sampler never fall back to grid inversion for
these families.
"""

from __future__ import annotations

import math

import numpy as np

from ...types import ArrayLike, FloatArray
from .base import LifeFunction, Shape

__all__ = [
    "UniformRisk",
    "PolynomialRisk",
    "GeometricDecreasingLifespan",
    "GeometricIncreasingRisk",
    "WeibullLife",
    "ParetoLife",
]


class PolynomialRisk(LifeFunction):
    """``p_{d,L}(t) = 1 - (t/L)^d`` on ``[0, L]`` — Section 4.1's concave family.

    ``d = 1`` is the *uniform risk* scenario of [3].  For every integer
    ``d >= 1`` the function is concave (``p''(t) = -d(d-1) t^{d-2} / L^d <= 0``),
    so Theorem 3.3's concave upper bound and the Section 5 structural results
    (strictly decreasing periods, finiteness) all apply.
    """

    def __init__(self, d: int, lifespan: float) -> None:
        super().__init__()
        if d < 1 or int(d) != d:
            raise ValueError(f"degree d must be a positive integer, got {d}")
        if lifespan <= 0:
            raise ValueError(f"lifespan must be positive, got {lifespan}")
        self.d = int(d)
        self._lifespan = float(lifespan)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("d", float(self.d)), ("L", self._lifespan))

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return 1.0 - (t / self._lifespan) ** self.d

    def _derivative(self, t: FloatArray) -> FloatArray:
        d, L = self.d, self._lifespan
        return -(d / L) * (t / L) ** (d - 1)

    def second_derivative(self, t: ArrayLike, h: float = 1e-6) -> ArrayLike:
        arr, scalar = self._coerce(t)
        d, L = self.d, self._lifespan
        out = np.zeros_like(arr)
        inside = arr <= L
        if d >= 2:
            out[inside] = -(d * (d - 1) / L**2) * (arr[inside] / L) ** (d - 2)
        return float(out[0]) if scalar else out

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        out = self._lifespan * (1.0 - arr) ** (1.0 / self.d)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return self._lifespan

    @property
    def shape(self) -> Shape:
        return Shape.LINEAR if self.d == 1 else Shape.CONCAVE

    def __repr__(self) -> str:
        return f"PolynomialRisk(d={self.d}, L={self._lifespan})"


class UniformRisk(PolynomialRisk):
    """``p(t) = 1 - t/L`` — uniform interruption risk (Section 4.1, d = 1).

    Both concave and convex; its unique optimal schedule (from [3]) has
    ``t_k = t_{k-1} - c`` and ``t_0 = sqrt(2cL) + low-order terms``.
    """

    def __init__(self, lifespan: float) -> None:
        super().__init__(d=1, lifespan=lifespan)

    def __repr__(self) -> str:
        return f"UniformRisk(L={self._lifespan})"


class GeometricDecreasingLifespan(LifeFunction):
    """``p_a(t) = a^{-t}`` — episodes with a half-life (Section 4.2).

    Convex with unbounded support.  The memoryless property (constant hazard
    ``ln a``) makes the conditional risk identical at every instant, which is
    why the true optimal schedule of [3] is infinite with all periods equal.
    """

    def __init__(self, a: float) -> None:
        super().__init__()
        if a <= 1:
            raise ValueError(f"risk factor a must exceed 1, got {a}")
        self.a = float(a)
        self.ln_a = math.log(self.a)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("a", self.a),)

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.exp(-self.ln_a * t)

    def _derivative(self, t: FloatArray) -> FloatArray:
        return -self.ln_a * np.exp(-self.ln_a * t)

    def second_derivative(self, t: ArrayLike, h: float = 1e-6) -> ArrayLike:
        out = self.ln_a**2 * np.exp(-self.ln_a * np.asarray(t, dtype=float))
        return float(out) if np.ndim(t) == 0 else out

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        with np.errstate(divide="ignore"):
            out = np.where(arr > 0, -np.log(np.where(arr > 0, arr, 1.0)) / self.ln_a, np.inf)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return math.inf

    @property
    def shape(self) -> Shape:
        return Shape.CONVEX

    def __repr__(self) -> str:
        return f"GeometricDecreasingLifespan(a={self.a})"


class GeometricIncreasingRisk(LifeFunction):
    """``p(t) = (2^L - 2^t) / (2^L - 1)`` on ``[0, L]`` — Section 4.3.

    Models an opportunity like a coffee break: the risk of interruption
    doubles at every time step.  Concave (``p''(t) = -2^t ln^2 2/(2^L-1) < 0``).

    Evaluation is carried out in a numerically careful form,
    ``p(t) = (1 - 2^{t-L}) / (1 - 2^{-L})``, so lifespans up to ~1000 stay
    well inside double-precision range.
    """

    def __init__(self, lifespan: float) -> None:
        super().__init__()
        if lifespan <= 0:
            raise ValueError(f"lifespan must be positive, got {lifespan}")
        self._lifespan = float(lifespan)
        # 1 - 2^{-L}, computed stably for large L.
        self._denom = -math.expm1(-self._lifespan * math.log(2.0))

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("L", self._lifespan),)

    def _evaluate(self, t: FloatArray) -> FloatArray:
        # (1 - 2^{t-L}) / (1 - 2^{-L})
        return -np.expm1((t - self._lifespan) * math.log(2.0)) / self._denom

    def _derivative(self, t: FloatArray) -> FloatArray:
        ln2 = math.log(2.0)
        return -ln2 * np.exp((t - self._lifespan) * ln2) / self._denom

    def second_derivative(self, t: ArrayLike, h: float = 1e-6) -> ArrayLike:
        ln2 = math.log(2.0)
        arr = np.asarray(t, dtype=float)
        out = -(ln2**2) * np.exp((arr - self._lifespan) * ln2) / self._denom
        return float(out) if np.ndim(t) == 0 else out

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        ln2 = math.log(2.0)
        # y = (1 - 2^{t-L}) / denom  =>  t = L + log2(1 - y * denom)
        inner = 1.0 - arr * self._denom
        out = self._lifespan + np.log(np.maximum(inner, np.finfo(float).tiny)) / ln2
        out = np.clip(out, 0.0, self._lifespan)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return self._lifespan

    @property
    def shape(self) -> Shape:
        return Shape.CONCAVE

    def __repr__(self) -> str:
        return f"GeometricIncreasingRisk(L={self._lifespan})"


class WeibullLife(LifeFunction):
    """``p(t) = exp(-(t/scale)^k)`` — a flexible extra family.

    Convex for ``k <= 1`` (decreasing hazard; ``k = 1`` recovers the
    geometric-decreasing scenario with ``a = e^{1/scale}``).  For ``k > 1``
    the survival curve has a flex point, so only the shape-free guidelines
    (Theorem 3.1 recurrence, Theorem 3.2 lower bound) apply — this is the
    library's canonical ``GENERAL``-shape test case.
    """

    def __init__(self, k: float, scale: float = 1.0) -> None:
        super().__init__()
        if k <= 0 or scale <= 0:
            raise ValueError(f"k and scale must be positive, got k={k}, scale={scale}")
        self.k = float(k)
        self.scale = float(scale)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("k", self.k), ("scale", self.scale))

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.exp(-((t / self.scale) ** self.k))

    def _derivative(self, t: FloatArray) -> FloatArray:
        k, s = self.k, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            grad = -(k / s) * (t / s) ** (k - 1.0) * np.exp(-((t / s) ** k))
        if k < 1.0:
            grad = np.where(t == 0.0, -np.inf, grad)
        return grad

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        with np.errstate(divide="ignore"):
            out = np.where(
                arr > 0,
                self.scale * (-np.log(np.where(arr > 0, arr, 1.0))) ** (1.0 / self.k),
                np.inf,
            )
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return math.inf

    @property
    def shape(self) -> Shape:
        return Shape.CONVEX if self.k <= 1.0 else Shape.GENERAL

    def __repr__(self) -> str:
        return f"WeibullLife(k={self.k}, scale={self.scale})"


class ParetoLife(LifeFunction):
    """``p(t) = (1 + t)^{-d}`` — the heavy-tailed example after Corollary 3.2.

    The paper notes that for ``d > 1`` this family admits **no** optimal
    schedule: the supremum of expected work over schedules is approached but
    never attained.  Convex, unbounded support.
    """

    def __init__(self, d: float) -> None:
        super().__init__()
        if d <= 0:
            raise ValueError(f"exponent d must be positive, got {d}")
        self.d = float(d)

    def _fingerprint_params(self) -> tuple[tuple[str, float], ...]:
        return (("d", self.d),)

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return (1.0 + t) ** (-self.d)

    def _derivative(self, t: FloatArray) -> FloatArray:
        return -self.d * (1.0 + t) ** (-self.d - 1.0)

    def inverse(self, y: ArrayLike) -> ArrayLike:
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        with np.errstate(divide="ignore"):
            out = np.where(arr > 0, np.where(arr > 0, arr, 1.0) ** (-1.0 / self.d) - 1.0, np.inf)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        return math.inf

    @property
    def shape(self) -> Shape:
        return Shape.CONVEX

    def __repr__(self) -> str:
        return f"ParetoLife(d={self.d})"
