"""Abstract base class for life functions (Section 2.1 of the paper).

A *life function* ``p`` encodes the risk profile of a cycle-stealing episode:
``p(t)`` is the probability that the borrowed workstation has **not** been
reclaimed by time ``t``.  The model requires:

* ``p(0) == 1``;
* ``p`` decreases monotonically;
* if an upper bound ``L`` on the episode duration is known (the *potential
  lifespan*), ``p`` reaches 0 at ``L``; otherwise ``p(t) -> 0`` as ``t -> inf``;
* for the paper's analytical guidelines, ``p`` must be differentiable and have
  no flex point — i.e. be *concave* (``p'`` non-increasing) or *convex*
  (``p'`` non-decreasing) — although several results hold for general
  differentiable ``p``.

Subclasses provide the function, its derivative, its support, and (where a
closed form exists) its inverse; the base class supplies numerically robust
defaults for everything else, including inverse-transform sampling of reclaim
times for the Monte-Carlo simulator.
"""

from __future__ import annotations

import enum
import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ...exceptions import BracketError, InvalidLifeFunctionError, SupportError
from ...types import ArrayLike, FloatArray


class Shape(enum.Enum):
    """Structural shape of a life function, per Section 3.1.

    ``CONCAVE`` means ``p'`` is everywhere non-increasing; ``CONVEX`` means
    ``p'`` is everywhere non-decreasing; ``LINEAR`` satisfies both (the
    uniform-risk function); ``GENERAL`` satisfies neither globally, so only
    the shape-free results (Theorems 3.1 and 3.2) apply.
    """

    CONCAVE = "concave"
    CONVEX = "convex"
    LINEAR = "linear"
    GENERAL = "general"

    @property
    def is_concave(self) -> bool:
        return self in (Shape.CONCAVE, Shape.LINEAR)

    @property
    def is_convex(self) -> bool:
        return self in (Shape.CONVEX, Shape.LINEAR)


class LifeFunction(ABC):
    """A smooth survival function ``p(t)`` for a cycle-stealing episode.

    Instances are immutable and vectorized: :meth:`__call__` and
    :meth:`derivative` accept scalars or numpy arrays of times ``t >= 0``.
    Times beyond a finite lifespan evaluate to ``p = 0`` and ``p' = 0``.
    """

    #: Resolution of the cached grid used by the generic inverse/sampler.
    _GRID_SIZE = 4097

    def __init__(self) -> None:
        self._inverse_grid: Optional[tuple[FloatArray, FloatArray]] = None

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------

    @abstractmethod
    def _evaluate(self, t: FloatArray) -> FloatArray:
        """Evaluate ``p`` on an array of times inside the support."""

    @abstractmethod
    def _derivative(self, t: FloatArray) -> FloatArray:
        """Evaluate ``p'`` on an array of times inside the support."""

    @property
    @abstractmethod
    def lifespan(self) -> float:
        """The potential lifespan ``L`` (``math.inf`` when unbounded)."""

    @property
    @abstractmethod
    def shape(self) -> Shape:
        """Declared shape (concavity/convexity) of the function."""

    # ------------------------------------------------------------------
    # Vectorized evaluation with support handling
    # ------------------------------------------------------------------

    def _coerce(self, t: ArrayLike) -> tuple[FloatArray, bool]:
        arr = np.asarray(t, dtype=float)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        if np.any(arr < 0):
            raise SupportError(f"life function evaluated at negative time: {arr.min()}")
        return arr, scalar

    def __call__(self, t: ArrayLike) -> ArrayLike:
        """Survival probability ``p(t)`` (vectorized; 0 beyond the lifespan)."""
        if isinstance(t, (float, int)):  # fast scalar path (hot in recurrences)
            if t < 0:
                raise SupportError(f"life function evaluated at negative time: {t}")
            if t > self.lifespan:
                return 0.0
            value = float(self._evaluate(np.asarray([t], dtype=float))[0])
            return min(max(value, 0.0), 1.0)
        arr, scalar = self._coerce(t)
        out = np.zeros_like(arr)
        inside = arr <= self.lifespan
        if np.any(inside):
            out[inside] = np.clip(self._evaluate(arr[inside]), 0.0, 1.0)
        return float(out[0]) if scalar else out

    def derivative(self, t: ArrayLike) -> ArrayLike:
        """Derivative ``p'(t)`` (vectorized; 0 beyond the lifespan)."""
        if isinstance(t, (float, int)):  # fast scalar path (hot in recurrences)
            if t < 0:
                raise SupportError(f"life function evaluated at negative time: {t}")
            if t > self.lifespan:
                return 0.0
            return float(self._derivative(np.asarray([t], dtype=float))[0])
        arr, scalar = self._coerce(t)
        out = np.zeros_like(arr)
        inside = arr <= self.lifespan
        if np.any(inside):
            out[inside] = self._derivative(arr[inside])
        return float(out[0]) if scalar else out

    def second_derivative(self, t: ArrayLike, h: float = 1e-6) -> ArrayLike:
        """Numeric second derivative via central differences on ``p'``.

        Subclasses with closed forms may override.  Used only for shape
        diagnostics, never inside the guideline recurrences.
        """
        arr, scalar = self._coerce(t)
        span = self.lifespan if math.isfinite(self.lifespan) else max(1.0, float(arr.max()))
        step = h * max(1.0, span)
        lo = np.maximum(arr - step, 0.0)
        hi = arr + step
        if math.isfinite(self.lifespan):
            hi = np.minimum(hi, self.lifespan)
        denom = hi - lo
        out = (np.asarray(self.derivative(hi)) - np.asarray(self.derivative(lo))) / denom
        return float(out[0]) if scalar else out

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def hazard(self, t: ArrayLike) -> ArrayLike:
        """Hazard rate ``h(t) = -p'(t) / p(t)`` — the instantaneous reclaim risk."""
        p = np.asarray(self(t), dtype=float)
        dp = np.asarray(self.derivative(t), dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(p > 0, -dp / np.where(p > 0, p, 1.0), np.inf)
        return float(out) if np.isscalar(t) or np.ndim(t) == 0 else out

    def expected_lifetime(self) -> float:
        """``E[R] = ∫ p(t) dt`` — the mean reclaim time (may be infinite)."""
        from scipy import integrate

        upper = self.lifespan
        if math.isinf(upper):
            # Integrate to a quantile far in the tail, then bound the remainder.
            upper = self.inverse(1e-12)
        value, _ = integrate.quad(lambda x: float(self(x)), 0.0, upper, limit=200)
        return float(value)

    # ------------------------------------------------------------------
    # Fingerprinting (content addressing for the plan cache)
    # ------------------------------------------------------------------

    def _fingerprint_params(self) -> Optional[tuple[tuple[str, float], ...]]:
        """Canonical ``(name, value)`` pairs identifying this instance.

        Families with closed-form parameters override this; the default
        returns ``None``, which makes :meth:`fingerprint` fall back to
        content probing (hashing ``p`` on a canonical grid).
        """
        return None

    def fingerprint(self) -> str:
        """A stable content address: family name + canonical params + shape.

        Two instances with equal fingerprints represent the same survival
        function, so cached schedules / ``t_0`` searches keyed on the
        fingerprint can be served interchangeably (the plan cache's
        contract, :mod:`repro.core.plancache`).  Floats are rendered with
        ``float.hex`` so the key is exact and platform-stable.
        """
        name = type(self).__qualname__
        params = self._fingerprint_params()
        if params is not None:
            body = ",".join(f"{key}={float(value).hex()}" for key, value in params)
        else:
            body = f"probe:{self._content_probe_digest()}"
        return f"{name}({body})|{self.shape.value}"

    def _content_probe_digest(self, n_points: int = 65) -> str:
        """SHA-256 of ``p`` sampled on a canonical support-covering grid.

        The generic fingerprint for subclasses without declared parameters:
        deterministic, and collision-safe up to the probe resolution (two
        functions agreeing on all 65 probe points are treated as identical).
        """
        import hashlib

        if math.isfinite(self.lifespan):
            upper = self.lifespan
        else:
            upper = float(self.inverse(1e-9))
            if not math.isfinite(upper) or upper <= 0:
                upper = self._tail_horizon(1e-9)
        ts = np.linspace(0.0, upper, n_points)
        vals = np.asarray(self(ts), dtype=float)
        digest = hashlib.sha256()
        digest.update(np.asarray([upper], dtype=float).tobytes())
        digest.update(vals.tobytes())
        return digest.hexdigest()[:20]

    def conditional(self, s: float) -> "ConditionalLifeFunction":
        """The life function conditioned on survival to time ``s``.

        ``p_s(t) = p(s + t) / p(s)`` — used by the progressive scheduler of
        Section 6, which re-plans after each completed period using
        conditional rather than absolute probabilities.
        """
        return ConditionalLifeFunction(self, s)

    # ------------------------------------------------------------------
    # Inversion and sampling
    # ------------------------------------------------------------------

    def _grid(self) -> tuple[FloatArray, FloatArray]:
        """Monotone (p-values, times) grid for generic inversion, cached."""
        if self._inverse_grid is None:
            if math.isfinite(self.lifespan):
                upper = self.lifespan
            else:
                upper = self._tail_horizon()
            ts = np.linspace(0.0, upper, self._GRID_SIZE)
            ps = np.asarray(self(ts), dtype=float)
            # Enforce strict monotonicity for interp (ties collapse to first).
            ps = np.minimum.accumulate(ps)
            self._inverse_grid = (ps[::-1].copy(), ts[::-1].copy())
        return self._inverse_grid

    def _tail_horizon(self, eps: float = 1e-14) -> float:
        """A time by which ``p`` has decayed below ``eps`` (unbounded support)."""
        hi = 1.0
        for _ in range(200):
            if float(self(hi)) < eps:
                return hi
            hi *= 2.0
        raise BracketError("life function tail decays too slowly to locate horizon")

    def inverse(self, y: ArrayLike) -> ArrayLike:
        """``p^{-1}(y)``: the time at which survival first drops to ``y``.

        Vectorized via a cached monotone grid plus linear interpolation;
        subclasses override with closed forms where available.  For finite
        lifespan, ``inverse(0) == L``.
        """
        arr = np.asarray(y, dtype=float)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        ps, ts = self._grid()
        out = np.interp(arr, ps, ts)
        return float(out[0]) if scalar else out

    def sample_reclaim_times(self, rng: np.random.Generator, size: int) -> FloatArray:
        """Draw ``size`` i.i.d. reclaim times ``R`` with ``P(R > t) = p(t)``.

        Inverse-transform sampling: ``R = p^{-1}(U)``, ``U ~ Uniform(0, 1)``.
        """
        u = rng.uniform(0.0, 1.0, size=size)
        return np.asarray(self.inverse(u), dtype=float)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, n_points: int = 257, tol: float = 1e-8) -> None:
        """Check the Section 2.1 requirements numerically.

        Raises :class:`InvalidLifeFunctionError` if ``p(0) != 1``, if ``p``
        increases anywhere on the probe grid, or if a finite lifespan does not
        drive ``p`` to 0.
        """
        if abs(float(self(0.0)) - 1.0) > tol:
            raise InvalidLifeFunctionError(f"p(0) = {self(0.0)!r}, expected 1")
        upper = self.lifespan if math.isfinite(self.lifespan) else self._tail_horizon(1e-9)
        ts = np.linspace(0.0, upper, n_points)
        ps = np.asarray(self(ts), dtype=float)
        if np.any(np.diff(ps) > tol):
            raise InvalidLifeFunctionError("life function increases somewhere on its support")
        if math.isfinite(self.lifespan) and ps[-1] > tol:
            raise InvalidLifeFunctionError(
                f"p(L) = {ps[-1]} > 0 for finite lifespan L = {self.lifespan}"
            )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(lifespan={self.lifespan}, shape={self.shape.value})"


class ConditionalLifeFunction(LifeFunction):
    """``p_s(t) = p(s + t) / p(s)`` — the episode's risk profile given survival to ``s``.

    Produced by :meth:`LifeFunction.conditional`.  Inherits the parent's shape:
    conditioning rescales by the constant ``1/p(s)`` and shifts the argument,
    both of which preserve concavity/convexity of the survival curve.
    """

    def __init__(self, parent: LifeFunction, s: float) -> None:
        super().__init__()
        if s < 0:
            raise SupportError(f"conditioning time must be nonnegative, got {s}")
        ps = float(parent(s))
        if ps <= 0.0:
            raise SupportError(f"cannot condition on survival to t={s}: p(s) = 0")
        self.parent = parent
        self.s = float(s)
        self._ps = ps

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.asarray(self.parent(self.s + t), dtype=float) / self._ps

    def _derivative(self, t: FloatArray) -> FloatArray:
        return np.asarray(self.parent.derivative(self.s + t), dtype=float) / self._ps

    def fingerprint(self) -> str:
        """Compose the parent's fingerprint with the conditioning time."""
        return (
            f"ConditionalLifeFunction(s={self.s.hex()};{self.parent.fingerprint()})"
            f"|{self.shape.value}"
        )

    def inverse(self, y: ArrayLike) -> ArrayLike:
        """Exact inverse via the parent: ``p_s(t) = y  ⟺  t = p⁻¹(y·p(s)) − s``.

        Reuses the parent's (closed-form or cached-grid) inverse instead of
        building a fresh grid per conditional object — the progressive
        scheduler constructs many short-lived conditionals.
        """
        arr = np.asarray(y, dtype=float)
        if np.any((arr < 0) | (arr > 1)):
            raise ValueError("inverse() requires probabilities in [0, 1]")
        out = np.asarray(self.parent.inverse(arr * self._ps), dtype=float) - self.s
        out = np.maximum(out, 0.0)
        return float(out) if np.ndim(y) == 0 else out

    @property
    def lifespan(self) -> float:
        parent_l = self.parent.lifespan
        return parent_l - self.s if math.isfinite(parent_l) else math.inf

    @property
    def shape(self) -> Shape:
        return self.parent.shape
