"""Composition and transformation of life functions.

The paper assumes exact knowledge of ``p`` but notes the guidelines "extend
easily to situations wherein this knowledge is approximate".  Mixtures and
time scalings let us build richer risk profiles (e.g. "the owner is away for
a meeting with probability 0.7, otherwise a coffee break") while preserving
the survival-function axioms of Section 2.1.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...types import FloatArray
from .base import LifeFunction, Shape

__all__ = ["MixtureLife", "TimeScaledLife"]


class MixtureLife(LifeFunction):
    """Convex combination ``p(t) = sum_i w_i p_i(t)`` of life functions.

    Mixtures of survival functions are survival functions.  Shape is preserved
    only when every component shares it (a mixture of concave functions is
    concave, etc.); otherwise the mixture reports ``GENERAL`` and only the
    shape-free guidelines apply.
    """

    def __init__(self, components: Sequence[LifeFunction], weights: Sequence[float]) -> None:
        super().__init__()
        if len(components) == 0:
            raise ValueError("mixture requires at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have equal length")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or not math.isclose(float(w.sum()), 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValueError(f"weights must be nonnegative and sum to 1, got {weights}")
        self.components = tuple(components)
        self.weights = w

    def fingerprint(self) -> str:
        """Compose component fingerprints with their (exact-hex) weights."""
        body = "+".join(
            f"{float(w).hex()}*{comp.fingerprint()}"
            for w, comp in zip(self.weights, self.components)
        )
        return f"MixtureLife[{body}]|{self.shape.value}"

    def _evaluate(self, t: FloatArray) -> FloatArray:
        acc = np.zeros_like(t)
        for w, comp in zip(self.weights, self.components):
            acc += w * np.asarray(comp(t), dtype=float)
        return acc

    def _derivative(self, t: FloatArray) -> FloatArray:
        acc = np.zeros_like(t)
        for w, comp in zip(self.weights, self.components):
            acc += w * np.asarray(comp.derivative(t), dtype=float)
        return acc

    @property
    def lifespan(self) -> float:
        return max(comp.lifespan for comp in self.components)

    @property
    def shape(self) -> Shape:
        if all(c.shape.is_concave for c in self.components):
            if all(c.shape.is_convex for c in self.components):
                return Shape.LINEAR
            return Shape.CONCAVE
        if all(c.shape.is_convex for c in self.components):
            return Shape.CONVEX
        return Shape.GENERAL


class TimeScaledLife(LifeFunction):
    """``p(t) = parent(t / factor)`` — stretch (factor > 1) or compress time.

    Useful for expressing life functions in different time units (e.g.
    converting a trace recorded in seconds to task-time units) without
    refitting.  Shape is preserved.
    """

    def __init__(self, parent: LifeFunction, factor: float) -> None:
        super().__init__()
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self.parent = parent
        self.factor = float(factor)

    def fingerprint(self) -> str:
        """Compose the parent's fingerprint with the scale factor."""
        return (
            f"TimeScaledLife(factor={self.factor.hex()};{self.parent.fingerprint()})"
            f"|{self.shape.value}"
        )

    def _evaluate(self, t: FloatArray) -> FloatArray:
        return np.asarray(self.parent(t / self.factor), dtype=float)

    def _derivative(self, t: FloatArray) -> FloatArray:
        return np.asarray(self.parent.derivative(t / self.factor), dtype=float) / self.factor

    @property
    def lifespan(self) -> float:
        parent_l = self.parent.lifespan
        return parent_l * self.factor if math.isfinite(parent_l) else math.inf

    @property
    def shape(self) -> Shape:
        return self.parent.shape
