"""Numeric shape (concavity/convexity) detection for life functions.

Theorem 3.3's two upper bounds on the optimal initial period require knowing
whether the life function is convex or concave (Section 3.1: ``p'`` everywhere
non-decreasing, resp. non-increasing).  Analytic families declare their shape;
for empirical/fitted life functions we detect it numerically by probing the
derivative on a grid.
"""

from __future__ import annotations

import math

import numpy as np

from .base import LifeFunction, Shape

__all__ = ["detect_shape", "is_concave", "is_convex"]


def _derivative_samples(p: LifeFunction, n_points: int) -> np.ndarray:
    upper = p.lifespan if math.isfinite(p.lifespan) else p.inverse(1e-9)
    # Avoid the exact endpoints, where families like Weibull(k<1) blow up.
    ts = np.linspace(0.0, upper, n_points + 2)[1:-1]
    return np.asarray(p.derivative(ts), dtype=float)


def detect_shape(p: LifeFunction, n_points: int = 513, tol: float = 1e-9) -> Shape:
    """Classify ``p`` by probing ``p'`` for monotonicity on its support.

    Returns :data:`Shape.LINEAR` when ``p'`` is constant to within ``tol``,
    :data:`Shape.CONCAVE` / :data:`Shape.CONVEX` when it is monotone, and
    :data:`Shape.GENERAL` otherwise.  ``tol`` is relative to the magnitude of
    the derivative samples.
    """
    dp = _derivative_samples(p, n_points)
    scale = max(float(np.max(np.abs(dp))), 1e-300)
    diffs = np.diff(dp) / scale
    nonincreasing = bool(np.all(diffs <= tol))
    nondecreasing = bool(np.all(diffs >= -tol))
    if nonincreasing and nondecreasing:
        return Shape.LINEAR
    if nonincreasing:
        return Shape.CONCAVE
    if nondecreasing:
        return Shape.CONVEX
    return Shape.GENERAL


def is_concave(p: LifeFunction, n_points: int = 513, tol: float = 1e-9) -> bool:
    """Whether ``p`` is concave (``p'`` non-increasing), by declaration or probe."""
    if p.shape is not Shape.GENERAL:
        return p.shape.is_concave
    return detect_shape(p, n_points, tol).is_concave


def is_convex(p: LifeFunction, n_points: int = 513, tol: float = 1e-9) -> bool:
    """Whether ``p`` is convex (``p'`` non-decreasing), by declaration or probe."""
    if p.shape is not Shape.GENERAL:
        return p.shape.is_convex
    return detect_shape(p, n_points, tol).is_convex
